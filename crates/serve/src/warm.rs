//! Per-variant warm-start store.
//!
//! Every converged bias point deposits its self-energies here; a later
//! point of the same variant seeds its Born iteration from the nearest
//! deposited bias. Seeds are shared behind `Arc` — depositing never
//! copies tensors, and a lookup clones only at the solver boundary
//! (`ScfOptions::warm` takes owned state).

use std::sync::{Arc, Mutex};

use qt_core::scf::WarmStart;

/// Nearest-bias warm-start store for one device variant.
#[derive(Default)]
pub struct WarmStore {
    /// `(bias, seed)` pairs in deposit order; small (one per solved
    /// point), so nearest lookup is a linear scan.
    entries: Mutex<Vec<(f64, Arc<WarmStart>)>>,
}

impl WarmStore {
    pub fn new() -> Self {
        WarmStore::default()
    }

    /// Deposit the converged state of `bias`. Replaces an existing entry
    /// at the same bias (latest solve wins).
    pub fn deposit(&self, bias: f64, seed: Arc<WarmStart>) {
        let mut entries = self.entries.lock().unwrap();
        match entries.iter_mut().find(|(b, _)| *b == bias) {
            Some(slot) => slot.1 = seed,
            None => entries.push((bias, seed)),
        }
    }

    /// The seed whose bias is nearest to `bias`, if any.
    pub fn nearest(&self, bias: f64) -> Option<(f64, Arc<WarmStart>)> {
        let entries = self.entries.lock().unwrap();
        entries
            .iter()
            .min_by(|(a, _), (b, _)| (a - bias).abs().partial_cmp(&(b - bias).abs()).unwrap())
            .map(|(b, s)| (*b, s.clone()))
    }

    /// Number of deposited seeds.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_core::gf::{ElectronSelfEnergy, PhononSelfEnergy};
    use qt_core::params::SimParams;

    fn seed() -> Arc<WarmStart> {
        let p = SimParams {
            nkz: 1,
            nqz: 1,
            ne: 2,
            nw: 1,
            na: 4,
            nb: 2,
            norb: 1,
            bnum: 2,
        };
        Arc::new(WarmStart {
            sigma: ElectronSelfEnergy::zeros(&p),
            pi: PhononSelfEnergy::zeros(&p),
        })
    }

    #[test]
    fn nearest_picks_the_closest_bias_and_deposit_replaces() {
        let store = WarmStore::new();
        assert!(store.nearest(0.1).is_none());
        store.deposit(0.0, seed());
        store.deposit(0.4, seed());
        assert_eq!(store.nearest(0.1).unwrap().0, 0.0);
        assert_eq!(store.nearest(0.3).unwrap().0, 0.4);
        let replacement = seed();
        store.deposit(0.4, replacement.clone());
        assert_eq!(store.len(), 2, "same-bias deposit replaces, not appends");
        assert!(Arc::ptr_eq(&store.nearest(0.39).unwrap().1, &replacement));
    }
}
