//! The structured JSON report: per-phase statistics, model residuals,
//! convergence trajectory, and per-rank communication volumes.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::{counters, journal, registry, registry::PhaseStat, series};

/// Per-phase entry of the report.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseReport {
    /// Phase path, e.g. `"sse/sigma/dace"`.
    pub path: String,
    /// Number of spans closed on this path.
    pub calls: u64,
    /// Summed span duration in milliseconds (wall-time for sequential
    /// phases, aggregate busy time for worker-thread phases).
    pub wall_ms: f64,
    /// Real flops attributed to the phase, in Gflop.
    pub gflop: f64,
    /// Throughput over the summed duration, in Gflop/s.
    pub gflop_per_s: f64,
    /// Communicated bytes attributed to the phase.
    pub bytes: u64,
    /// Heap bytes allocated while the phase was open (`alloc.bytes`;
    /// non-zero only under the counting global allocator).
    pub alloc_bytes: u64,
    /// Heap allocations performed while the phase was open
    /// (`alloc.count`).
    pub alloc_count: u64,
}

/// One measured-vs-model comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelResidual {
    /// What is being compared, e.g. `"sse_dace_flops_vs_exact"`.
    pub name: String,
    /// The instrumented measurement.
    pub measured: f64,
    /// The closed-form model value.
    pub model: f64,
    /// `(measured - model) / model`.
    pub rel_error: f64,
    /// Whether the model is implementation-exact (residual must vanish)
    /// or an asymptotic paper form (informational).
    pub exact: bool,
}

impl ModelResidual {
    /// Build a residual entry, computing the relative error.
    pub fn new(name: impl Into<String>, measured: f64, model: f64, exact: bool) -> Self {
        let rel_error = if model != 0.0 {
            (measured - model) / model
        } else if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        ModelResidual {
            name: name.into(),
            measured,
            model,
            rel_error,
            exact,
        }
    }
}

/// One SCF iteration of the convergence trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvergencePoint {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Current residual; `None` on the first iteration (no previous
    /// Green's function to difference against).
    pub residual: Option<f64>,
    /// Mixing factor applied to the self-energies this iteration.
    pub mixing: f64,
    /// Wall-time of the iteration in milliseconds.
    pub wall_ms: f64,
    /// Terminal current after the iteration.
    pub current: f64,
    /// Heap bytes allocated during the iteration (non-zero only under
    /// the counting global allocator). The cold-vs-warm gap of this
    /// column is the allocator-traffic payoff of the workspace arenas
    /// and the boundary cache.
    pub alloc_bytes: u64,
}

/// Cold-vs-warm SCF iteration comparison: iteration 0 pays Sancho-Rubio
/// decimation and arena warm-up; later iterations should be served from
/// the boundary cache and the workspace pools.
#[derive(Clone, Debug, PartialEq)]
pub struct WarmupStats {
    /// Wall-time of iteration 0 in milliseconds.
    pub cold_wall_ms: f64,
    /// Mean wall-time of iterations ≥ 1 in milliseconds.
    pub warm_wall_ms: f64,
    /// `cold_wall_ms / warm_wall_ms`.
    pub wall_speedup: f64,
    /// Heap bytes allocated during iteration 0.
    pub cold_alloc_bytes: u64,
    /// Mean heap bytes allocated per iteration ≥ 1.
    pub warm_alloc_bytes: u64,
    /// `1 − warm/cold` allocator-byte reduction (0 when cold is 0).
    pub alloc_reduction: f64,
}

impl WarmupStats {
    /// Derive cold-vs-warm statistics from a convergence trajectory.
    /// Returns `None` with fewer than two iterations (no warm sample).
    pub fn from_convergence(points: &[ConvergencePoint]) -> Option<WarmupStats> {
        let (cold, warm) = points.split_first()?;
        if warm.is_empty() {
            return None;
        }
        let warm_wall_ms = warm.iter().map(|p| p.wall_ms).sum::<f64>() / warm.len() as f64;
        let warm_alloc_bytes = warm.iter().map(|p| p.alloc_bytes).sum::<u64>() / warm.len() as u64;
        Some(WarmupStats {
            cold_wall_ms: cold.wall_ms,
            warm_wall_ms,
            wall_speedup: if warm_wall_ms > 0.0 {
                cold.wall_ms / warm_wall_ms
            } else {
                0.0
            },
            cold_alloc_bytes: cold.alloc_bytes,
            warm_alloc_bytes,
            alloc_reduction: if cold.alloc_bytes > 0 {
                1.0 - warm_alloc_bytes as f64 / cold.alloc_bytes as f64
            } else {
                0.0
            },
        })
    }
}

/// Resilience counters: what the numerical health guards caught and what
/// the recovery machinery (η-bump retries, adaptive mixing, the reliable
/// comm protocol, checkpointing) did about it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// `(E, kz)` / `(ω, qz)` points quarantined after numerical failures.
    pub quarantined_points: u64,
    /// Sancho-Rubio retries at a bumped imaginary broadening.
    pub eta_retries: u64,
    /// Times the adaptive SCF controller halved the mixing factor.
    pub mixing_backoffs: u64,
    /// Communication retries (retransmissions and receive timeouts).
    pub comm_retries: u64,
    /// SCF checkpoints written.
    pub checkpoint_writes: u64,
}

impl HealthReport {
    /// Snapshot the global health counters.
    pub fn from_counters() -> Self {
        HealthReport {
            quarantined_points: counters::total_quarantined_points(),
            eta_retries: counters::total_eta_retries(),
            mixing_backoffs: counters::total_mixing_backoffs(),
            comm_retries: counters::total_comm_retries(),
            checkpoint_writes: counters::total_checkpoint_writes(),
        }
    }
}

/// Elastic-recovery counters: rank deaths detected by the liveness layer
/// and what the survivor re-tiling did about them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElasticityReport {
    /// Ranks declared dead (heartbeat expiry, dead-flag cascade, or a
    /// failed send implicating them).
    pub rank_deaths: u64,
    /// Receive-poll timeouts: each is one liveness probe of the sender's
    /// heartbeat epoch (benign while the peer still makes progress; the
    /// probe that finds a stalled epoch past its deadline declares death).
    pub heartbeat_timeouts: u64,
    /// Survivor re-tiling rounds (one per failed exchange attempt).
    pub retile_events: u64,
    /// Work-unit tiles migrated from dead ranks onto survivors.
    pub migrated_tiles: u64,
}

impl ElasticityReport {
    /// Snapshot the global elasticity counters.
    pub fn from_counters() -> Self {
        ElasticityReport {
            rank_deaths: counters::total_rank_deaths(),
            heartbeat_timeouts: counters::total_heartbeat_timeouts(),
            retile_events: counters::total_retile_events(),
            migrated_tiles: counters::total_migrated_tiles(),
        }
    }
}

/// Load-balance summary of the distributed iteration: per-rank busy
/// times, the resulting imbalance ratio, and what the adaptive machinery
/// (cost-model re-tiling, intra-iteration work stealing) did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BalanceReport {
    /// Busy milliseconds per world slot (compute time, excluding waits).
    pub rank_busy_ms: Vec<f64>,
    /// `max / mean` of the per-rank busy times (1.0 = perfect balance).
    pub imbalance_ratio: f64,
    /// The same ratio under the static uniform tiling — the baseline the
    /// adaptive layer is compared against. 0.0 when not measured.
    pub imbalance_before: f64,
    /// Steal requests sent by idle ranks (`balance.steal_requests`).
    pub steal_requests: u64,
    /// Work units granted to thieves (`balance.stolen_units`).
    pub stolen_units: u64,
    /// Iteration-to-iteration re-partitioning passes
    /// (`balance.rebalance_events`).
    pub rebalance_events: u64,
    /// Units whose owner changed across re-partitioning passes
    /// (`balance.moved_units`).
    pub moved_units: u64,
}

impl BalanceReport {
    /// Build from measured per-rank busy times (milliseconds), snapshotting
    /// the global balance counters. `imbalance_before` is the static-tiling
    /// baseline ratio when one was measured, else 0.
    pub fn from_busy_times(rank_busy_ms: Vec<f64>, imbalance_before: f64) -> Self {
        let ratio = Self::ratio(&rank_busy_ms);
        BalanceReport {
            rank_busy_ms,
            imbalance_ratio: ratio,
            imbalance_before,
            steal_requests: counters::total_steal_requests(),
            stolen_units: counters::total_stolen_units(),
            rebalance_events: counters::total_rebalance_events(),
            moved_units: counters::total_rebalance_moved_units(),
        }
    }

    /// `max / mean` of a busy-time vector; 1.0 for empty or all-zero
    /// input.
    pub fn ratio(busy: &[f64]) -> f64 {
        if busy.is_empty() {
            return 1.0;
        }
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        busy.iter().cloned().fold(0.0, f64::max) / mean
    }
}

/// Kernel-selection summary: what the per-block sparse/dense selector
/// decided during RGF, how much work each route carried, and how the
/// measured wall-time per route compares to the calibrated model's
/// prediction — so a mis-calibrated selector shows up as a CI-visible
/// residual instead of a silent slowdown.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelSelectionReport {
    /// Per-block-operation decisions that chose the CSR sparse route.
    pub sparse_selected: u64,
    /// Per-block-operation decisions that kept the blocked dense GEMM.
    pub dense_selected: u64,
    /// Hysteresis flips of sticky per-block choices.
    pub switches: u64,
    /// Real flops executed by the CSR sparse kernels.
    pub sparse_flops: u64,
    /// Bytes streamed by the CSR sparse kernels (minimal traffic model).
    pub sparse_bytes: u64,
    /// Flops of selector-governed coupling products run densely.
    pub dense_flops: u64,
    /// Measured seconds in sparse-selected coupling ops (0 when the
    /// timing spans were disabled).
    pub sparse_secs: f64,
    /// Measured seconds in dense-selected coupling ops.
    pub dense_secs: f64,
    /// Model-predicted seconds for the same timed sparse ops (0 when the
    /// strategy carried no calibrated rates).
    pub predicted_sparse_secs: f64,
    /// Model-predicted seconds for the same timed dense ops.
    pub predicted_dense_secs: f64,
    /// The crossover density the selector was operating with (sparse
    /// wins below it); 0 when unknown to the report writer.
    pub crossover_density: f64,
}

impl KernelSelectionReport {
    /// Snapshot the global kernel-selection counters. The crossover
    /// density is not a counter; the caller that knows the calibration
    /// fills it in.
    pub fn from_counters() -> Self {
        KernelSelectionReport {
            sparse_selected: counters::total_kernel_sparse_selected(),
            dense_selected: counters::total_kernel_dense_selected(),
            switches: counters::total_kernel_switches(),
            sparse_flops: counters::total_kernel_sparse_flops(),
            sparse_bytes: counters::total_kernel_sparse_bytes(),
            dense_flops: counters::total_kernel_dense_flops(),
            sparse_secs: counters::total_kernel_sparse_ns() as f64 / 1e9,
            dense_secs: counters::total_kernel_dense_ns() as f64 / 1e9,
            predicted_sparse_secs: counters::total_kernel_sparse_pred_ns() as f64 / 1e9,
            predicted_dense_secs: counters::total_kernel_dense_pred_ns() as f64 / 1e9,
            crossover_density: 0.0,
        }
    }
}

/// Sweep-service availability summary: what admission control, the
/// deadline watchdog, warm-start degradation, retry, the circuit
/// breaker, and drain-on-shutdown did over the service's lifetime.
/// `warm_starts` counts seeding *attempts*, so `warm_fallbacks` (seeds
/// that failed validation and re-ran cold) can never exceed it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// Sweep requests admitted into the service queue.
    pub admitted: u64,
    /// Sweep requests rejected with backpressure.
    pub rejected: u64,
    /// Sweep requests completed with every point answered.
    pub completed: u64,
    /// Sweep requests that failed after exhausting retries.
    pub failed: u64,
    /// Requests cancelled by the deadline watchdog.
    pub deadline_cancels: u64,
    /// Sweep points seeded from a neighboring converged solve.
    pub warm_starts: u64,
    /// Warm-start validation failures degraded to cold solves.
    pub warm_fallbacks: u64,
    /// Per-request retries after transient failures.
    pub retries: u64,
    /// Circuit-breaker trips quarantining device variants.
    pub breaker_opens: u64,
    /// In-flight sweep points checkpointed by drain-on-shutdown.
    pub drained: u64,
    /// Warm-start seeds evicted by the bounded store's spread policy.
    pub warm_evicted: u64,
}

impl ServiceReport {
    /// Snapshot the global service counters. Settled-side counters
    /// (completed, failed, warm_fallbacks) are read *before* their
    /// attempted-side counterparts (admitted, warm_starts): the service
    /// bumps attempts before settlements, so with monotonic counters this
    /// read order keeps `completed + failed <= admitted` and
    /// `warm_fallbacks <= warm_starts` true even mid-run.
    pub fn from_counters() -> Self {
        let completed = counters::total_service_completed();
        let failed = counters::total_service_failed();
        let warm_fallbacks = counters::total_service_warm_fallbacks();
        ServiceReport {
            admitted: counters::total_service_admitted(),
            rejected: counters::total_service_rejected(),
            completed,
            failed,
            deadline_cancels: counters::total_service_deadline_cancels(),
            warm_starts: counters::total_service_warm_starts(),
            warm_fallbacks,
            retries: counters::total_service_retries(),
            breaker_opens: counters::total_service_breaker_opens(),
            drained: counters::total_service_drained(),
            warm_evicted: counters::total_service_warm_evicted(),
        }
    }
}

/// Scenario-corpus summary: what the golden-corpus gate saw — scenarios
/// built and rejected by the fail-closed builder, scenarios executed,
/// fingerprint match/mismatch tallies, and chaos-matrix reruns.
/// `matched + mismatched` never exceeds `scenarios_run` (every compared
/// fingerprint comes from a run; chaos reruns are counted separately).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorpusReport {
    /// Scenarios parsed, validated and built into simulations.
    pub scenarios_built: u64,
    /// Scenarios rejected fail-closed with typed errors.
    pub scenarios_rejected: u64,
    /// Golden-corpus scenarios executed end to end.
    pub scenarios_run: u64,
    /// Scenario fingerprints that matched their golden record.
    pub matched: u64,
    /// Scenario fingerprints that diverged from their golden record.
    pub mismatched: u64,
    /// Chaos-matrix reruns of corpus scenarios under fault injection.
    pub chaos_reruns: u64,
}

impl CorpusReport {
    /// Snapshot the global corpus counters. Settled-side tallies
    /// (matched, mismatched) are read *before* `scenarios_run` so the
    /// `matched + mismatched <= scenarios_run` invariant holds even if
    /// another scenario lands mid-snapshot.
    pub fn from_counters() -> Self {
        let matched = counters::total_corpus_matched();
        let mismatched = counters::total_corpus_mismatched();
        CorpusReport {
            scenarios_built: counters::total_corpus_scenarios_built(),
            scenarios_rejected: counters::total_corpus_scenarios_rejected(),
            scenarios_run: counters::total_corpus_scenarios_run(),
            matched,
            mismatched,
            chaos_reruns: counters::total_corpus_chaos_reruns(),
        }
    }
}

/// Metrics time-series block: the periodic counter snapshots taken by
/// [`crate::series`], in chronological order, with ring-drop accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesBlock {
    /// Samples in chronological order.
    pub samples: Vec<series::Sample>,
    /// Samples lost to sample-ring overflow.
    pub dropped: u64,
}

impl SeriesBlock {
    /// Snapshot the global sample ring.
    pub fn from_series() -> Self {
        let (samples, dropped) = series::snapshot();
        SeriesBlock { samples, dropped }
    }
}

/// Event-journal summary block: how many events the flight recorder
/// holds, how many it lost to ring overflow, and the per-kind breakdown.
/// The full timeline is not embedded in the report — it ships in
/// postmortem dumps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JournalBlock {
    /// Events currently buffered across all rings.
    pub events: u64,
    /// Events lost to ring overflow (the `journal.dropped` counter).
    pub dropped: u64,
    /// Buffered events per kind tag, sorted by tag.
    pub by_kind: Vec<(String, u64)>,
}

impl JournalBlock {
    /// Summarize the live journal without draining it.
    pub fn from_journal() -> Self {
        let by_kind: Vec<(String, u64)> = journal::kind_counts()
            .into_iter()
            .map(|(t, n)| (t.to_string(), n))
            .collect();
        JournalBlock {
            events: by_kind.iter().map(|(_, n)| n).sum(),
            dropped: counters::total_journal_dropped(),
            by_kind,
        }
    }
}

/// Per-rank communication volume of a distributed phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankComm {
    /// Rank index within the thread world.
    pub rank: usize,
    /// Bytes this rank pushed to other ranks (self-sends are free).
    pub sent_bytes: u64,
    /// Bytes this rank received from other ranks.
    pub recv_bytes: u64,
}

/// The full telemetry report emitted by `reproduce profile`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryReport {
    /// Per-phase statistics, sorted by path.
    pub phases: Vec<PhaseReport>,
    /// Measured-vs-model comparisons (Tables 3–5).
    pub residuals: Vec<ModelResidual>,
    /// SCF convergence trajectory.
    pub convergence: Vec<ConvergencePoint>,
    /// Per-rank communication volumes of the distributed iteration.
    pub comm: Vec<RankComm>,
    /// Total flops counted since the last reset.
    pub total_flops: u64,
    /// Total communicated bytes counted since the last reset.
    pub total_bytes: u64,
    /// Contact self-energies served from the `BoundaryCache`
    /// (`boundary.cache_hits`).
    pub boundary_cache_hits: u64,
    /// Contact self-energies recomputed by Sancho-Rubio decimation.
    pub boundary_cache_misses: u64,
    /// Cold-vs-warm SCF iteration comparison, when a trajectory with at
    /// least two iterations was recorded.
    pub warmup: Option<WarmupStats>,
    /// Resilience counters; `None` only for reports predating the health
    /// guards (`check-report --require-health` rejects those).
    pub health: Option<HealthReport>,
    /// Elastic-recovery counters; `None` only for reports predating the
    /// rank-failure recovery machinery (also rejected under
    /// `check-report --require-health`).
    pub elasticity: Option<ElasticityReport>,
    /// Load-balance summary of the distributed iteration; `None` until a
    /// run with per-rank busy-time measurement fills it in
    /// (`check-report --require-balance` rejects reports without it).
    pub balance: Option<BalanceReport>,
    /// Kernel-selection summary; `None` until a run actually exercised
    /// the per-block sparse/dense selector (`check-report
    /// --require-kernel-selection` rejects reports without it).
    pub kernel_selection: Option<KernelSelectionReport>,
    /// Sweep-service availability summary; `None` until a run touched
    /// the service admission path (`check-report --require-service`
    /// rejects reports without it).
    pub service: Option<ServiceReport>,
    /// Scenario-corpus summary; `None` until a run touched the scenario
    /// builder or the golden-corpus gate (`check-report
    /// --require-corpus` rejects reports without it).
    pub corpus: Option<CorpusReport>,
    /// Metrics time-series; `None` unless series sampling was enabled.
    pub series: Option<SeriesBlock>,
    /// Event-journal summary; `None` unless journaling was enabled.
    pub journal: Option<JournalBlock>,
}

fn phase_report(path: &str, s: &PhaseStat) -> PhaseReport {
    let wall_s = s.wall_ns as f64 / 1e9;
    let gflop = s.flops as f64 / 1e9;
    PhaseReport {
        path: path.to_string(),
        calls: s.calls,
        wall_ms: s.wall_ns as f64 / 1e6,
        gflop,
        gflop_per_s: if wall_s > 0.0 { gflop / wall_s } else { 0.0 },
        bytes: s.bytes,
        alloc_bytes: s.alloc_bytes,
        alloc_count: s.alloc_count,
    }
}

impl TelemetryReport {
    /// Build a report from the current global telemetry state: the phase
    /// registry, the GEMM pack/kernel hot sections, and the counter
    /// totals. Residuals, convergence and per-rank comm sections start
    /// empty — the caller fills them in.
    pub fn from_current() -> Self {
        let mut phases: BTreeMap<String, PhaseStat> = registry::snapshot();
        let split = counters::gemm_split();
        if split.pack_calls > 0 {
            phases.insert(
                "gemm.pack".to_string(),
                PhaseStat {
                    calls: split.pack_calls,
                    wall_ns: split.pack_ns,
                    ..PhaseStat::default()
                },
            );
        }
        if split.kernel_calls > 0 {
            phases.insert(
                "gemm.kernel".to_string(),
                PhaseStat {
                    calls: split.kernel_calls,
                    wall_ns: split.kernel_ns,
                    ..PhaseStat::default()
                },
            );
        }
        TelemetryReport {
            phases: phases.iter().map(|(p, s)| phase_report(p, s)).collect(),
            residuals: Vec::new(),
            convergence: Vec::new(),
            comm: Vec::new(),
            total_flops: counters::total_flops(),
            total_bytes: counters::total_bytes(),
            boundary_cache_hits: counters::total_boundary_hits(),
            boundary_cache_misses: counters::total_boundary_misses(),
            warmup: None,
            health: Some(HealthReport::from_counters()),
            elasticity: Some(ElasticityReport::from_counters()),
            balance: None,
            kernel_selection: (counters::total_kernel_sparse_selected()
                + counters::total_kernel_dense_selected()
                > 0)
            .then(KernelSelectionReport::from_counters),
            service: (counters::total_service_admitted() + counters::total_service_rejected() > 0)
                .then(ServiceReport::from_counters),
            corpus: (counters::total_corpus_scenarios_built()
                + counters::total_corpus_scenarios_rejected()
                + counters::total_corpus_scenarios_run()
                > 0)
            .then(CorpusReport::from_counters),
            series: series::series_enabled().then(SeriesBlock::from_series),
            journal: journal::journaling_enabled().then(JournalBlock::from_journal),
        }
    }

    /// Serialise as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("path".to_string(), Json::Str(p.path.clone())),
                    ("calls".to_string(), Json::Num(p.calls as f64)),
                    ("wall_ms".to_string(), Json::Num(p.wall_ms)),
                    ("gflop".to_string(), Json::Num(p.gflop)),
                    ("gflop_per_s".to_string(), Json::Num(p.gflop_per_s)),
                    ("bytes".to_string(), Json::Num(p.bytes as f64)),
                    ("alloc_bytes".to_string(), Json::Num(p.alloc_bytes as f64)),
                    ("alloc_count".to_string(), Json::Num(p.alloc_count as f64)),
                ])
            })
            .collect();
        let residuals = self
            .residuals
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(r.name.clone())),
                    ("measured".to_string(), Json::Num(r.measured)),
                    ("model".to_string(), Json::Num(r.model)),
                    ("rel_error".to_string(), Json::Num(r.rel_error)),
                    ("exact".to_string(), Json::Bool(r.exact)),
                ])
            })
            .collect();
        let convergence = self
            .convergence
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("iteration".to_string(), Json::Num(c.iteration as f64)),
                    (
                        "residual".to_string(),
                        c.residual.map_or(Json::Null, Json::Num),
                    ),
                    ("mixing".to_string(), Json::Num(c.mixing)),
                    ("wall_ms".to_string(), Json::Num(c.wall_ms)),
                    ("current".to_string(), Json::Num(c.current)),
                    ("alloc_bytes".to_string(), Json::Num(c.alloc_bytes as f64)),
                ])
            })
            .collect();
        let comm = self
            .comm
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("rank".to_string(), Json::Num(c.rank as f64)),
                    ("sent_bytes".to_string(), Json::Num(c.sent_bytes as f64)),
                    ("recv_bytes".to_string(), Json::Num(c.recv_bytes as f64)),
                ])
            })
            .collect();
        let warmup = match &self.warmup {
            None => Json::Null,
            Some(w) => Json::Obj(vec![
                ("cold_wall_ms".to_string(), Json::Num(w.cold_wall_ms)),
                ("warm_wall_ms".to_string(), Json::Num(w.warm_wall_ms)),
                ("wall_speedup".to_string(), Json::Num(w.wall_speedup)),
                (
                    "cold_alloc_bytes".to_string(),
                    Json::Num(w.cold_alloc_bytes as f64),
                ),
                (
                    "warm_alloc_bytes".to_string(),
                    Json::Num(w.warm_alloc_bytes as f64),
                ),
                ("alloc_reduction".to_string(), Json::Num(w.alloc_reduction)),
            ]),
        };
        let health = match &self.health {
            None => Json::Null,
            Some(h) => Json::Obj(vec![
                (
                    "quarantined_points".to_string(),
                    Json::Num(h.quarantined_points as f64),
                ),
                ("eta_retries".to_string(), Json::Num(h.eta_retries as f64)),
                (
                    "mixing_backoffs".to_string(),
                    Json::Num(h.mixing_backoffs as f64),
                ),
                ("comm_retries".to_string(), Json::Num(h.comm_retries as f64)),
                (
                    "checkpoint_writes".to_string(),
                    Json::Num(h.checkpoint_writes as f64),
                ),
            ]),
        };
        let elasticity = match &self.elasticity {
            None => Json::Null,
            Some(e) => Json::Obj(vec![
                ("rank_deaths".to_string(), Json::Num(e.rank_deaths as f64)),
                (
                    "heartbeat_timeouts".to_string(),
                    Json::Num(e.heartbeat_timeouts as f64),
                ),
                (
                    "retile_events".to_string(),
                    Json::Num(e.retile_events as f64),
                ),
                (
                    "migrated_tiles".to_string(),
                    Json::Num(e.migrated_tiles as f64),
                ),
            ]),
        };
        let balance = match &self.balance {
            None => Json::Null,
            Some(b) => Json::Obj(vec![
                (
                    "rank_busy_ms".to_string(),
                    Json::Arr(b.rank_busy_ms.iter().map(|&ms| Json::Num(ms)).collect()),
                ),
                ("imbalance_ratio".to_string(), Json::Num(b.imbalance_ratio)),
                (
                    "imbalance_before".to_string(),
                    Json::Num(b.imbalance_before),
                ),
                (
                    "steal_requests".to_string(),
                    Json::Num(b.steal_requests as f64),
                ),
                ("stolen_units".to_string(), Json::Num(b.stolen_units as f64)),
                (
                    "rebalance_events".to_string(),
                    Json::Num(b.rebalance_events as f64),
                ),
                ("moved_units".to_string(), Json::Num(b.moved_units as f64)),
            ]),
        };
        let kernel_selection = match &self.kernel_selection {
            None => Json::Null,
            Some(k) => Json::Obj(vec![
                (
                    "sparse_selected".to_string(),
                    Json::Num(k.sparse_selected as f64),
                ),
                (
                    "dense_selected".to_string(),
                    Json::Num(k.dense_selected as f64),
                ),
                ("switches".to_string(), Json::Num(k.switches as f64)),
                ("sparse_flops".to_string(), Json::Num(k.sparse_flops as f64)),
                ("sparse_bytes".to_string(), Json::Num(k.sparse_bytes as f64)),
                ("dense_flops".to_string(), Json::Num(k.dense_flops as f64)),
                ("sparse_secs".to_string(), Json::Num(k.sparse_secs)),
                ("dense_secs".to_string(), Json::Num(k.dense_secs)),
                (
                    "predicted_sparse_secs".to_string(),
                    Json::Num(k.predicted_sparse_secs),
                ),
                (
                    "predicted_dense_secs".to_string(),
                    Json::Num(k.predicted_dense_secs),
                ),
                (
                    "crossover_density".to_string(),
                    Json::Num(k.crossover_density),
                ),
            ]),
        };
        let service = match &self.service {
            None => Json::Null,
            Some(s) => Json::Obj(vec![
                ("admitted".to_string(), Json::Num(s.admitted as f64)),
                ("rejected".to_string(), Json::Num(s.rejected as f64)),
                ("completed".to_string(), Json::Num(s.completed as f64)),
                ("failed".to_string(), Json::Num(s.failed as f64)),
                (
                    "deadline_cancels".to_string(),
                    Json::Num(s.deadline_cancels as f64),
                ),
                ("warm_starts".to_string(), Json::Num(s.warm_starts as f64)),
                (
                    "warm_fallbacks".to_string(),
                    Json::Num(s.warm_fallbacks as f64),
                ),
                ("retries".to_string(), Json::Num(s.retries as f64)),
                (
                    "breaker_opens".to_string(),
                    Json::Num(s.breaker_opens as f64),
                ),
                ("drained".to_string(), Json::Num(s.drained as f64)),
                ("warm_evicted".to_string(), Json::Num(s.warm_evicted as f64)),
            ]),
        };
        let corpus = match &self.corpus {
            None => Json::Null,
            Some(c) => Json::Obj(vec![
                (
                    "scenarios_built".to_string(),
                    Json::Num(c.scenarios_built as f64),
                ),
                (
                    "scenarios_rejected".to_string(),
                    Json::Num(c.scenarios_rejected as f64),
                ),
                (
                    "scenarios_run".to_string(),
                    Json::Num(c.scenarios_run as f64),
                ),
                ("matched".to_string(), Json::Num(c.matched as f64)),
                ("mismatched".to_string(), Json::Num(c.mismatched as f64)),
                ("chaos_reruns".to_string(), Json::Num(c.chaos_reruns as f64)),
            ]),
        };
        let series_block = match &self.series {
            None => Json::Null,
            Some(s) => Json::Obj(vec![
                (
                    "samples".to_string(),
                    Json::Arr(s.samples.iter().map(series::Sample::to_json).collect()),
                ),
                ("dropped".to_string(), Json::Num(s.dropped as f64)),
            ]),
        };
        let journal_block = match &self.journal {
            None => Json::Null,
            Some(j) => Json::Obj(vec![
                ("events".to_string(), Json::Num(j.events as f64)),
                ("dropped".to_string(), Json::Num(j.dropped as f64)),
                (
                    "by_kind".to_string(),
                    Json::Obj(
                        j.by_kind
                            .iter()
                            .map(|(k, n)| (k.clone(), Json::Num(*n as f64)))
                            .collect(),
                    ),
                ),
            ]),
        };
        Json::Obj(vec![
            ("phases".to_string(), Json::Arr(phases)),
            ("residuals".to_string(), Json::Arr(residuals)),
            ("convergence".to_string(), Json::Arr(convergence)),
            ("comm".to_string(), Json::Arr(comm)),
            (
                "total_flops".to_string(),
                Json::Num(self.total_flops as f64),
            ),
            (
                "total_bytes".to_string(),
                Json::Num(self.total_bytes as f64),
            ),
            (
                "boundary_cache_hits".to_string(),
                Json::Num(self.boundary_cache_hits as f64),
            ),
            (
                "boundary_cache_misses".to_string(),
                Json::Num(self.boundary_cache_misses as f64),
            ),
            ("warmup".to_string(), warmup),
            ("health".to_string(), health),
            ("elasticity".to_string(), elasticity),
            ("balance".to_string(), balance),
            ("kernel_selection".to_string(), kernel_selection),
            ("service".to_string(), service),
            ("corpus".to_string(), corpus),
            ("series".to_string(), series_block),
            ("journal".to_string(), journal_block),
        ])
        .dump()
    }

    /// Parse a report back from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let root = Json::parse(json).map_err(|e| format!("report does not parse: {e}"))?;
        let arr = |key: &str| -> Result<&[Json], String> {
            root.get(key)
                .and_then(Json::as_array)
                .ok_or(format!("report lacks {key:?} array"))
        };
        let str_field = |v: &Json, key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Json::as_str)
                .ok_or(format!("entry lacks string {key:?}"))?
                .to_string())
        };
        let num_field = |v: &Json, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("entry lacks number {key:?}"))
        };
        let int_field = |v: &Json, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("entry lacks integer {key:?}"))
        };

        let mut report = TelemetryReport {
            total_flops: int_field(&root, "total_flops")?,
            total_bytes: int_field(&root, "total_bytes")?,
            boundary_cache_hits: int_field(&root, "boundary_cache_hits")?,
            boundary_cache_misses: int_field(&root, "boundary_cache_misses")?,
            warmup: match root.get("warmup") {
                Some(Json::Null) | None => None,
                Some(w) => Some(WarmupStats {
                    cold_wall_ms: num_field(w, "cold_wall_ms")?,
                    warm_wall_ms: num_field(w, "warm_wall_ms")?,
                    wall_speedup: num_field(w, "wall_speedup")?,
                    cold_alloc_bytes: int_field(w, "cold_alloc_bytes")?,
                    warm_alloc_bytes: int_field(w, "warm_alloc_bytes")?,
                    alloc_reduction: num_field(w, "alloc_reduction")?,
                }),
            },
            health: match root.get("health") {
                Some(Json::Null) | None => None,
                Some(h) => Some(HealthReport {
                    quarantined_points: int_field(h, "quarantined_points")?,
                    eta_retries: int_field(h, "eta_retries")?,
                    mixing_backoffs: int_field(h, "mixing_backoffs")?,
                    comm_retries: int_field(h, "comm_retries")?,
                    checkpoint_writes: int_field(h, "checkpoint_writes")?,
                }),
            },
            elasticity: match root.get("elasticity") {
                Some(Json::Null) | None => None,
                Some(e) => Some(ElasticityReport {
                    rank_deaths: int_field(e, "rank_deaths")?,
                    heartbeat_timeouts: int_field(e, "heartbeat_timeouts")?,
                    retile_events: int_field(e, "retile_events")?,
                    migrated_tiles: int_field(e, "migrated_tiles")?,
                }),
            },
            balance: match root.get("balance") {
                Some(Json::Null) | None => None,
                Some(b) => Some(BalanceReport {
                    rank_busy_ms: b
                        .get("rank_busy_ms")
                        .and_then(Json::as_array)
                        .ok_or("balance lacks rank_busy_ms array")?
                        .iter()
                        .map(|v| v.as_f64().ok_or("bad rank_busy_ms entry"))
                        .collect::<Result<Vec<f64>, _>>()?,
                    imbalance_ratio: num_field(b, "imbalance_ratio")?,
                    imbalance_before: num_field(b, "imbalance_before")?,
                    steal_requests: int_field(b, "steal_requests")?,
                    stolen_units: int_field(b, "stolen_units")?,
                    rebalance_events: int_field(b, "rebalance_events")?,
                    moved_units: int_field(b, "moved_units")?,
                }),
            },
            kernel_selection: match root.get("kernel_selection") {
                Some(Json::Null) | None => None,
                Some(k) => Some(KernelSelectionReport {
                    sparse_selected: int_field(k, "sparse_selected")?,
                    dense_selected: int_field(k, "dense_selected")?,
                    switches: int_field(k, "switches")?,
                    sparse_flops: int_field(k, "sparse_flops")?,
                    sparse_bytes: int_field(k, "sparse_bytes")?,
                    dense_flops: int_field(k, "dense_flops")?,
                    sparse_secs: num_field(k, "sparse_secs")?,
                    dense_secs: num_field(k, "dense_secs")?,
                    predicted_sparse_secs: num_field(k, "predicted_sparse_secs")?,
                    predicted_dense_secs: num_field(k, "predicted_dense_secs")?,
                    crossover_density: num_field(k, "crossover_density")?,
                }),
            },
            service: match root.get("service") {
                Some(Json::Null) | None => None,
                Some(s) => Some(ServiceReport {
                    admitted: int_field(s, "admitted")?,
                    rejected: int_field(s, "rejected")?,
                    completed: int_field(s, "completed")?,
                    failed: int_field(s, "failed")?,
                    deadline_cancels: int_field(s, "deadline_cancels")?,
                    warm_starts: int_field(s, "warm_starts")?,
                    warm_fallbacks: int_field(s, "warm_fallbacks")?,
                    retries: int_field(s, "retries")?,
                    breaker_opens: int_field(s, "breaker_opens")?,
                    drained: int_field(s, "drained")?,
                    // Absent in reports predating the bounded warm store;
                    // default to zero rather than rejecting them.
                    warm_evicted: s.get("warm_evicted").and_then(Json::as_u64).unwrap_or(0),
                }),
            },
            corpus: match root.get("corpus") {
                Some(Json::Null) | None => None,
                Some(c) => Some(CorpusReport {
                    scenarios_built: int_field(c, "scenarios_built")?,
                    scenarios_rejected: int_field(c, "scenarios_rejected")?,
                    scenarios_run: int_field(c, "scenarios_run")?,
                    matched: int_field(c, "matched")?,
                    mismatched: int_field(c, "mismatched")?,
                    chaos_reruns: int_field(c, "chaos_reruns")?,
                }),
            },
            series: match root.get("series") {
                Some(Json::Null) | None => None,
                Some(s) => Some(SeriesBlock {
                    samples: s
                        .get("samples")
                        .and_then(Json::as_array)
                        .ok_or("series lacks samples array")?
                        .iter()
                        .map(series::Sample::from_json)
                        .collect::<Result<Vec<_>, _>>()?,
                    dropped: int_field(s, "dropped")?,
                }),
            },
            journal: match root.get("journal") {
                Some(Json::Null) | None => None,
                Some(j) => Some(JournalBlock {
                    events: int_field(j, "events")?,
                    dropped: int_field(j, "dropped")?,
                    by_kind: match j.get("by_kind") {
                        Some(Json::Obj(fields)) => fields
                            .iter()
                            .map(|(k, v)| {
                                Ok((
                                    k.clone(),
                                    v.as_u64().ok_or(format!("bad by_kind count for {k:?}"))?,
                                ))
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                        _ => return Err("journal block lacks by_kind object".into()),
                    },
                }),
            },
            ..TelemetryReport::default()
        };
        for p in arr("phases")? {
            report.phases.push(PhaseReport {
                path: str_field(p, "path")?,
                calls: int_field(p, "calls")?,
                wall_ms: num_field(p, "wall_ms")?,
                gflop: num_field(p, "gflop")?,
                gflop_per_s: num_field(p, "gflop_per_s")?,
                bytes: int_field(p, "bytes")?,
                alloc_bytes: int_field(p, "alloc_bytes")?,
                alloc_count: int_field(p, "alloc_count")?,
            });
        }
        for r in arr("residuals")? {
            report.residuals.push(ModelResidual {
                name: str_field(r, "name")?,
                measured: num_field(r, "measured")?,
                model: num_field(r, "model")?,
                rel_error: num_field(r, "rel_error")?,
                exact: r
                    .get("exact")
                    .and_then(Json::as_bool)
                    .ok_or("residual lacks bool \"exact\"")?,
            });
        }
        for c in arr("convergence")? {
            report.convergence.push(ConvergencePoint {
                iteration: int_field(c, "iteration")? as usize,
                residual: match c.get("residual") {
                    Some(Json::Null) | None => None,
                    Some(v) => Some(v.as_f64().ok_or("bad residual value")?),
                },
                mixing: num_field(c, "mixing")?,
                wall_ms: num_field(c, "wall_ms")?,
                current: num_field(c, "current")?,
                alloc_bytes: int_field(c, "alloc_bytes")?,
            });
        }
        for c in arr("comm")? {
            report.comm.push(RankComm {
                rank: int_field(c, "rank")? as usize,
                sent_bytes: int_field(c, "sent_bytes")?,
                recv_bytes: int_field(c, "recv_bytes")?,
            });
        }
        Ok(report)
    }

    /// Schema validation: every numeric field finite and non-negative
    /// where it must be, at least one phase present, and every residual
    /// marked `exact` actually vanishing.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("report has no phases".into());
        }
        for p in &self.phases {
            if p.path.is_empty() {
                return Err("phase with empty path".into());
            }
            if !(p.wall_ms.is_finite() && p.wall_ms >= 0.0) {
                return Err(format!("phase {:?} has bad wall_ms {}", p.path, p.wall_ms));
            }
            if !p.gflop.is_finite() || p.gflop < 0.0 || !p.gflop_per_s.is_finite() {
                return Err(format!("phase {:?} has bad flop stats", p.path));
            }
            if p.calls == 0 {
                return Err(format!("phase {:?} reported with zero calls", p.path));
            }
        }
        for r in &self.residuals {
            if !(r.measured.is_finite() && r.model.is_finite() && r.rel_error.is_finite()) {
                return Err(format!("residual {:?} is not finite", r.name));
            }
            if r.exact && r.rel_error.abs() > 1e-9 {
                return Err(format!(
                    "exact residual {:?} does not vanish: measured {} vs model {} (rel {})",
                    r.name, r.measured, r.model, r.rel_error
                ));
            }
        }
        for c in &self.convergence {
            if let Some(res) = c.residual {
                if !(res.is_finite() && res >= 0.0) {
                    return Err(format!("iteration {} has bad residual", c.iteration));
                }
            }
            if !c.wall_ms.is_finite() || !c.current.is_finite() || !c.mixing.is_finite() {
                return Err(format!("iteration {} has non-finite fields", c.iteration));
            }
        }
        if let Some(w) = &self.warmup {
            let nums = [
                w.cold_wall_ms,
                w.warm_wall_ms,
                w.wall_speedup,
                w.alloc_reduction,
            ];
            if nums.iter().any(|x| !x.is_finite()) {
                return Err("warmup stats contain non-finite fields".into());
            }
            if w.cold_wall_ms < 0.0 || w.warm_wall_ms < 0.0 || w.wall_speedup < 0.0 {
                return Err("warmup stats contain negative timings".into());
            }
        }
        if let Some(b) = &self.balance {
            if b.rank_busy_ms.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err("balance busy times contain bad entries".into());
            }
            if !b.imbalance_ratio.is_finite() || b.imbalance_ratio < 1.0 - 1e-9 {
                return Err(format!(
                    "balance imbalance_ratio {} is not a max/mean ratio",
                    b.imbalance_ratio
                ));
            }
            if !b.imbalance_before.is_finite() || b.imbalance_before < 0.0 {
                return Err("balance imbalance_before is bad".into());
            }
            let recomputed = BalanceReport::ratio(&b.rank_busy_ms);
            if !b.rank_busy_ms.is_empty() && (recomputed - b.imbalance_ratio).abs() > 1e-6 {
                return Err(format!(
                    "balance ratio {} disagrees with busy times (expect {recomputed})",
                    b.imbalance_ratio
                ));
            }
        }
        if let Some(k) = &self.kernel_selection {
            if k.sparse_selected + k.dense_selected == 0 {
                return Err("kernel_selection block present but no decisions recorded".into());
            }
            let secs = [
                k.sparse_secs,
                k.dense_secs,
                k.predicted_sparse_secs,
                k.predicted_dense_secs,
                k.crossover_density,
            ];
            if secs.iter().any(|x| !x.is_finite() || *x < 0.0) {
                return Err("kernel_selection block contains bad timings".into());
            }
            if !(0.0..=1.0).contains(&k.crossover_density) {
                return Err(format!(
                    "kernel_selection crossover_density {} is not a density",
                    k.crossover_density
                ));
            }
        }
        if let Some(s) = &self.service {
            if s.admitted + s.rejected == 0 {
                return Err("service block present but no requests recorded".into());
            }
            if s.completed + s.failed > s.admitted {
                return Err(format!(
                    "service settled {} requests but admitted only {}",
                    s.completed + s.failed,
                    s.admitted
                ));
            }
            if s.warm_fallbacks > s.warm_starts {
                return Err(format!(
                    "service warm_fallbacks {} exceeds warm_starts {}",
                    s.warm_fallbacks, s.warm_starts
                ));
            }
        }
        if let Some(c) = &self.corpus {
            if c.scenarios_built + c.scenarios_rejected + c.scenarios_run == 0 {
                return Err("corpus block present but no scenarios recorded".into());
            }
            if c.matched + c.mismatched > c.scenarios_run {
                return Err(format!(
                    "corpus compared {} fingerprints but ran only {} scenarios",
                    c.matched + c.mismatched,
                    c.scenarios_run
                ));
            }
        }
        if let Some(s) = &self.series {
            if s.samples
                .iter()
                .any(|x| !x.ts_us.is_finite() || x.ts_us < 0.0)
            {
                return Err("series samples contain bad timestamps".into());
            }
            if s.samples.windows(2).any(|w| w[0].ts_us > w[1].ts_us) {
                return Err("series samples are not chronological".into());
            }
        }
        if let Some(j) = &self.journal {
            let by_kind_total: u64 = j.by_kind.iter().map(|(_, n)| n).sum();
            if by_kind_total != j.events {
                return Err(format!(
                    "journal by_kind sums to {by_kind_total}, expected {} events",
                    j.events
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_and_validates() {
        registry::record("test/report/phase", 1_000_000, 8_000, 64, 4096, 16);
        let mut rep = TelemetryReport::from_current();
        rep.residuals
            .push(ModelResidual::new("flops_vs_exact", 8000.0, 8000.0, true));
        rep.residuals
            .push(ModelResidual::new("flops_vs_table3", 8000.0, 9000.0, false));
        rep.convergence.push(ConvergencePoint {
            iteration: 0,
            residual: None,
            mixing: 0.5,
            wall_ms: 1.0,
            current: 1e-6,
            alloc_bytes: 1 << 20,
        });
        rep.convergence.push(ConvergencePoint {
            iteration: 1,
            residual: Some(0.25),
            mixing: 0.5,
            wall_ms: 1.5,
            current: 2e-6,
            alloc_bytes: 1 << 10,
        });
        rep.comm.push(RankComm {
            rank: 0,
            sent_bytes: 100,
            recv_bytes: 50,
        });
        rep.warmup = WarmupStats::from_convergence(&rep.convergence);
        rep.health = Some(HealthReport {
            quarantined_points: 3,
            eta_retries: 1,
            mixing_backoffs: 2,
            comm_retries: 7,
            checkpoint_writes: 4,
        });
        rep.elasticity = Some(ElasticityReport {
            rank_deaths: 2,
            heartbeat_timeouts: 1,
            retile_events: 2,
            migrated_tiles: 6,
        });
        rep.balance = Some(BalanceReport {
            rank_busy_ms: vec![4.0, 2.0, 2.0],
            imbalance_ratio: 1.5,
            imbalance_before: 2.4,
            steal_requests: 5,
            stolen_units: 3,
            rebalance_events: 1,
            moved_units: 2,
        });
        rep.kernel_selection = Some(KernelSelectionReport {
            sparse_selected: 12,
            dense_selected: 4,
            switches: 1,
            sparse_flops: 1 << 20,
            sparse_bytes: 1 << 16,
            dense_flops: 1 << 22,
            sparse_secs: 0.01,
            dense_secs: 0.04,
            predicted_sparse_secs: 0.012,
            predicted_dense_secs: 0.038,
            crossover_density: 0.3,
        });
        rep.service = Some(ServiceReport {
            admitted: 8,
            rejected: 2,
            completed: 6,
            failed: 1,
            deadline_cancels: 1,
            warm_starts: 5,
            warm_fallbacks: 1,
            retries: 2,
            breaker_opens: 1,
            drained: 3,
            warm_evicted: 2,
        });
        rep.corpus = Some(CorpusReport {
            scenarios_built: 6,
            scenarios_rejected: 2,
            scenarios_run: 5,
            matched: 4,
            mismatched: 1,
            chaos_reruns: 3,
        });
        rep.series = Some(SeriesBlock {
            samples: vec![
                series::Sample {
                    ts_us: 10.0,
                    iteration: 0,
                    values: [7; crate::names::N_SERIES_METRICS],
                },
                series::Sample {
                    ts_us: 20.0,
                    iteration: 1,
                    values: [9; crate::names::N_SERIES_METRICS],
                },
            ],
            dropped: 1,
        });
        rep.journal = Some(JournalBlock {
            events: 5,
            dropped: 2,
            by_kind: vec![
                ("heartbeat_timeout".to_string(), 3),
                ("rank_death".to_string(), 2),
            ],
        });
        rep.validate().unwrap();
        let back = TelemetryReport::from_json(&rep.to_json()).unwrap();
        assert_eq!(back, rep);
        // A kernel-selection block with no decisions must not validate.
        let mut bad = rep.clone();
        bad.kernel_selection = Some(KernelSelectionReport::default());
        assert!(bad.validate().is_err());
        // Nor one whose crossover is not a density.
        bad.kernel_selection = Some(KernelSelectionReport {
            sparse_selected: 1,
            crossover_density: 1.5,
            ..KernelSelectionReport::default()
        });
        assert!(bad.validate().is_err());
        // A service block with no traffic, over-settled requests, or more
        // fallbacks than warm attempts must not validate.
        bad.kernel_selection = rep.kernel_selection.clone();
        bad.service = Some(ServiceReport::default());
        assert!(bad.validate().is_err());
        bad.service = Some(ServiceReport {
            admitted: 2,
            completed: 2,
            failed: 1,
            ..ServiceReport::default()
        });
        assert!(bad.validate().is_err());
        bad.service = Some(ServiceReport {
            admitted: 2,
            warm_starts: 1,
            warm_fallbacks: 2,
            ..ServiceReport::default()
        });
        assert!(bad.validate().is_err());
        // A corpus block with no activity, or with more fingerprint
        // comparisons than scenario runs, must not validate.
        bad.service = rep.service;
        bad.corpus = Some(CorpusReport::default());
        assert!(bad.validate().is_err());
        bad.corpus = Some(CorpusReport {
            scenarios_run: 1,
            matched: 1,
            mismatched: 1,
            ..CorpusReport::default()
        });
        assert!(bad.validate().is_err());
        // An inconsistent journal summary must not validate.
        rep.journal = Some(JournalBlock {
            events: 4,
            dropped: 0,
            by_kind: vec![("rank_death".to_string(), 2)],
        });
        assert!(rep.validate().is_err());
        // Nor a time-reversed series.
        rep.journal = None;
        rep.series.as_mut().unwrap().samples.reverse();
        assert!(rep.validate().is_err());
    }

    #[test]
    fn report_block_keys_come_from_the_name_registry() {
        use crate::names;
        registry::record("test/report/phase5", 1, 1, 0, 0, 0);
        crate::series::set_series_enabled(true);
        crate::series::sample_now();
        let mut rep = TelemetryReport::from_current();
        crate::series::set_series_enabled(false);
        rep.journal = Some(JournalBlock::from_journal());
        let root = Json::parse(&rep.to_json()).unwrap();
        let block_keys = |block: &str| -> Vec<String> {
            match root.get(block) {
                Some(Json::Obj(fields)) => fields.iter().map(|(k, _)| k.clone()).collect(),
                other => panic!("block {block:?} is not an object: {other:?}"),
            }
        };
        // Counter blocks spell their keys as `<block>.<key>` registry
        // entries (the report block `elasticity` maps to the `elastic.`
        // metric prefix).
        for key in block_keys("health") {
            let metric = format!("health.{key}");
            assert!(names::is_registered(&metric), "unregistered {metric:?}");
            assert_eq!(names::field_of(&metric), key);
        }
        for key in block_keys("elasticity") {
            let metric = format!("elastic.{key}");
            assert!(names::is_registered(&metric), "unregistered {metric:?}");
        }
        for key in [
            "steal_requests",
            "stolen_units",
            "rebalance_events",
            "moved_units",
        ] {
            assert!(names::is_registered(&format!("balance.{key}")));
        }
        // Counter fields of the kernel-selection block (the derived
        // timing fields are not counters and carry no registry entry).
        for key in [
            "sparse_selected",
            "dense_selected",
            "switches",
            "sparse_flops",
            "sparse_bytes",
            "dense_flops",
        ] {
            assert!(names::is_registered(&format!("kernel.{key}")));
        }
        // Every field of the service block mirrors a registered counter.
        rep.service = Some(ServiceReport {
            admitted: 1,
            ..ServiceReport::default()
        });
        let root = Json::parse(&rep.to_json()).unwrap();
        match root.get("service") {
            Some(Json::Obj(fields)) => {
                assert!(!fields.is_empty());
                for (key, _) in fields {
                    let metric = format!("service.{key}");
                    assert!(names::is_registered(&metric), "unregistered {metric:?}");
                    assert_eq!(names::field_of(&metric), *key);
                }
            }
            other => panic!("service block is not an object: {other:?}"),
        }
        // Every field of the corpus block mirrors a registered counter.
        rep.corpus = Some(CorpusReport {
            scenarios_built: 1,
            ..CorpusReport::default()
        });
        let root = Json::parse(&rep.to_json()).unwrap();
        match root.get("corpus") {
            Some(Json::Obj(fields)) => {
                assert!(!fields.is_empty());
                for (key, _) in fields {
                    let metric = format!("corpus.{key}");
                    assert!(names::is_registered(&metric), "unregistered {metric:?}");
                    assert_eq!(names::field_of(&metric), *key);
                }
            }
            other => panic!("corpus block is not an object: {other:?}"),
        }
        // Series samples key their values by the registered names
        // verbatim.
        let samples = root
            .get("series")
            .and_then(|s| s.get("samples"))
            .and_then(Json::as_array)
            .expect("series block with samples");
        assert!(!samples.is_empty());
        for s in samples {
            match s.get("values") {
                Some(Json::Obj(fields)) => {
                    for (k, _) in fields {
                        assert!(names::is_registered(k), "unregistered series metric {k:?}");
                    }
                }
                other => panic!("sample values is not an object: {other:?}"),
            }
        }
    }

    #[test]
    fn balance_block_validation() {
        registry::record("test/report/phase4", 1, 1, 0, 0, 0);
        let mut rep = TelemetryReport::from_current();
        // Absent block parses to None and validates.
        let back = TelemetryReport::from_json(&rep.to_json()).unwrap();
        assert_eq!(back.balance, None);
        back.validate().unwrap();
        // Ratio must agree with the busy-time vector.
        rep.balance = Some(BalanceReport {
            rank_busy_ms: vec![3.0, 1.0],
            imbalance_ratio: 1.2, // should be 1.5
            ..BalanceReport::default()
        });
        assert!(rep.validate().is_err());
        // from_busy_times computes the right ratio.
        let b = BalanceReport::from_busy_times(vec![3.0, 1.0], 0.0);
        assert!((b.imbalance_ratio - 1.5).abs() < 1e-12);
        rep.balance = Some(b);
        rep.validate().unwrap();
        // A sub-unity ratio is structurally impossible and rejected.
        rep.balance = Some(BalanceReport {
            rank_busy_ms: vec![],
            imbalance_ratio: 0.5,
            ..BalanceReport::default()
        });
        assert!(rep.validate().is_err());
    }

    #[test]
    fn from_current_always_carries_health_and_elasticity_blocks() {
        registry::record("test/report/phase3", 1, 1, 0, 0, 0);
        let rep = TelemetryReport::from_current();
        assert!(rep.health.is_some());
        assert!(rep.elasticity.is_some());
        // A legacy report without the blocks parses to None and still
        // validates (the --require-health gate is the caller's policy).
        let mut legacy = rep.clone();
        legacy.health = None;
        legacy.elasticity = None;
        let back = TelemetryReport::from_json(&legacy.to_json()).unwrap();
        assert_eq!(back.health, None);
        assert_eq!(back.elasticity, None);
        back.validate().unwrap();
    }

    #[test]
    fn validation_rejects_failed_exact_residual() {
        registry::record("test/report/phase2", 1, 1, 0, 0, 0);
        let mut rep = TelemetryReport::from_current();
        rep.residuals
            .push(ModelResidual::new("bad_exact", 100.0, 99.0, true));
        assert!(rep.validate().is_err());
    }

    #[test]
    fn warmup_stats_capture_cold_vs_warm_gap() {
        let mk = |it: usize, wall: f64, alloc: u64| ConvergencePoint {
            iteration: it,
            residual: if it == 0 { None } else { Some(0.1) },
            mixing: 0.5,
            wall_ms: wall,
            current: 0.0,
            alloc_bytes: alloc,
        };
        assert_eq!(WarmupStats::from_convergence(&[mk(0, 10.0, 100)]), None);
        let w = WarmupStats::from_convergence(&[mk(0, 10.0, 1000), mk(1, 2.0, 60), mk(2, 3.0, 40)])
            .unwrap();
        assert_eq!(w.cold_wall_ms, 10.0);
        assert!((w.warm_wall_ms - 2.5).abs() < 1e-12);
        assert!((w.wall_speedup - 4.0).abs() < 1e-12);
        assert_eq!(w.cold_alloc_bytes, 1000);
        assert_eq!(w.warm_alloc_bytes, 50);
        assert!((w.alloc_reduction - 0.95).abs() < 1e-12);
    }

    #[test]
    fn residual_handles_zero_model() {
        let r = ModelResidual::new("zero", 0.0, 0.0, true);
        assert_eq!(r.rel_error, 0.0);
        let r = ModelResidual::new("div", 1.0, 0.0, false);
        assert!(r.rel_error.is_infinite());
    }
}
