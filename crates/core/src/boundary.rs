//! Open boundary conditions: contact self-energies.
//!
//! Substitution (DESIGN.md §4): OMEN computes boundary self-energies with a
//! contour-integral method; we use Sancho–Rubio decimation, which produces
//! the same object (the retarded self-energy of a semi-infinite periodic
//! lead) with robust convergence. The lesser/greater components follow from
//! the fluctuation–dissipation theorem at the contact's equilibrium
//! occupation:
//!
//! * electrons: `Σ< = i·f·Γ`, `Σ> = −i·(1−f)·Γ`
//! * phonons:   `Π< = −i·n·Γ`, `Π> = −i·(n+1)·Γ`
//!
//! with `Γ = i(Σᴿ − Σᴿ†)`, which guarantees `Σ> − Σ< = Σᴿ − Σᴬ`.

use crate::health::{matrices_finite, NumericalError};
use qt_linalg::{c64, invert, Complex64, Matrix};
use std::sync::{OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Which contact a self-energy belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Convergence controls for the decimation iteration.
#[derive(Clone, Copy, Debug)]
pub struct BoundaryConfig {
    /// Imaginary broadening added to the energy (eV).
    pub eta: f64,
    /// Maximum decimation iterations.
    pub max_iter: usize,
    /// Convergence threshold on the coupling norm.
    pub tol: f64,
    /// Extra broadening added for the one-shot regularized retry after a
    /// decimation failure (non-convergence or a singular block). `0.0`
    /// disables the retry and surfaces the failure directly.
    pub eta_bump: f64,
}

impl Default for BoundaryConfig {
    fn default() -> Self {
        BoundaryConfig {
            eta: 1e-4,
            max_iter: 200,
            tol: 1e-12,
            eta_bump: 1e-3,
        }
    }
}

/// A converged surface self-energy plus the convergence evidence callers
/// need to audit it.
#[derive(Clone, Debug)]
pub struct SurfaceSelfEnergy {
    /// The retarded self-energy Σᴿ.
    pub sigma: Matrix,
    /// Decimation iterations actually executed.
    pub iterations: usize,
    /// Whether the coupling norm dropped below `tol`. Always true for a
    /// value returned from [`surface_self_energy`] — non-convergence is an
    /// error there — but kept explicit for logging and future relaxation.
    pub converged: bool,
    /// Final coupling norm (max over the α/β directions).
    pub residual: f64,
    /// Number of eta-bump retries spent (0 or 1).
    pub eta_retries: u32,
}

/// Retarded surface self-energy of a semi-infinite lead.
///
/// The lead repeats the period `(h00, s00)` with inter-period coupling
/// `(h01, s01)` (pointing *away* from the device). `z = E + iη` for
/// electrons or `ω² + iη` for phonons (pass `s00 = I`, `s01 = 0` then).
///
/// A decimation that exhausts `cfg.max_iter` or hits a singular block is
/// retried once with `cfg.eta_bump` of extra broadening (the standard
/// regularization for propagating energies where the coupling decays too
/// slowly); if that also fails, the *original* failure is returned as a
/// [`NumericalError`] — never a silently unconverged Σ.
pub fn surface_self_energy(
    z: Complex64,
    h00: &Matrix,
    h01: &Matrix,
    s00: &Matrix,
    s01: &Matrix,
    side: Side,
    cfg: &BoundaryConfig,
) -> Result<SurfaceSelfEnergy, NumericalError> {
    // Thread-local attribution (called from inside the GF-phase workers);
    // "contour" is the paper's name for the boundary-condition stage.
    let _span = qt_telemetry::Span::enter("contour");
    match decimate(z, h00, h01, s00, s01, side, cfg) {
        Ok(out) => Ok(out),
        Err(first) if cfg.eta_bump > 0.0 => {
            qt_telemetry::counters::add_eta_retry();
            qt_telemetry::journal::emit(qt_telemetry::EventKind::EtaRetry);
            let zb = z + c64(0.0, cfg.eta_bump);
            match decimate(zb, h00, h01, s00, s01, side, cfg) {
                Ok(mut out) => {
                    out.eta_retries = 1;
                    Ok(out)
                }
                // The bumped retry failing too is strictly less informative
                // than the original failure; surface that one.
                Err(_) => Err(first),
            }
        }
        Err(e) => Err(e),
    }
}

/// One Sancho–Rubio decimation pass at fixed `z`.
fn decimate(
    z: Complex64,
    h00: &Matrix,
    h01: &Matrix,
    s00: &Matrix,
    s01: &Matrix,
    side: Side,
    cfg: &BoundaryConfig,
) -> Result<SurfaceSelfEnergy, NumericalError> {
    let zs = |s: &Matrix, h: &Matrix| -> Matrix {
        let mut m = s.scale(z);
        m -= h;
        m
    };
    // Decimation on the A = z·S − H blocks: eliminating every other block
    // renormalizes the surface block as eps_s -= α·g·β (chain extending in
    // the +direction through α) or eps_s -= β·g·α (−direction). The sign
    // pattern follows from Gaussian elimination of A·x = I; the minus signs
    // in the coupling updates cancel pairwise in all accumulated products.
    let alpha0 = zs(s01, h01);
    let beta0 = zs(&s01.dagger(), &h01.dagger());
    let mut alpha = alpha0.clone();
    let mut beta = beta0.clone();
    let mut eps = zs(s00, h00);
    // Surface onsite for the chain extending away from the device.
    let mut eps_s = eps.clone();
    let mut iterations = 0;
    let mut residual = alpha.norm().max(beta.norm());
    while residual >= cfg.tol && iterations < cfg.max_iter {
        let g = invert(&eps)?;
        let ag = alpha.matmul(&g);
        let bg = beta.matmul(&g);
        let agb = ag.matmul(&beta);
        let bga = bg.matmul(&alpha);
        match side {
            // Left lead extends toward −∞: its exposed (rightmost) block is
            // renormalized through the β-direction.
            Side::Left => eps_s -= &bga,
            // Right lead extends toward +∞ through α.
            Side::Right => eps_s -= &agb,
        }
        eps -= &agb;
        eps -= &bga;
        alpha = ag.matmul(&alpha);
        beta = bg.matmul(&beta);
        iterations += 1;
        residual = alpha.norm().max(beta.norm());
    }
    if residual >= cfg.tol || !residual.is_finite() {
        return Err(NumericalError::BoundaryNonConvergence {
            iters: iterations,
            residual,
        });
    }
    let gs = invert(&eps_s)?;
    // Left lead couples into device block 0 via A_{0,−1} = β;
    // right lead via A_{N−1,N} = α.
    let sigma = match side {
        Side::Left => beta0.matmul(&gs).matmul(&alpha0),
        Side::Right => alpha0.matmul(&gs).matmul(&beta0),
    };
    if !matrices_finite([&sigma]) {
        return Err(NumericalError::NonFiniteTensor {
            phase: "contour",
            index: 0,
        });
    }
    Ok(SurfaceSelfEnergy {
        sigma,
        iterations,
        converged: true,
        residual,
        eta_retries: 0,
    })
}

/// FNV-1a accumulator over raw `f64` bit patterns — the identity key used
/// to decide whether a [`BoundaryCache`] binding is still valid. Hashing
/// the boundary Hamiltonian/overlap blocks, the energy grid and the
/// broadening configuration captures everything the retarded contact
/// self-energy depends on; bit-level equality means the memoized Σᴿ is
/// exact, not approximate.
pub struct KeyHasher(u64);

impl KeyHasher {
    pub fn new() -> Self {
        KeyHasher(0xcbf2_9ce4_8422_2325)
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    pub fn matrix(&mut self, m: &Matrix) -> &mut Self {
        self.u64(m.rows() as u64);
        for z in m.as_slice() {
            self.f64(z.re).f64(z.im);
        }
        self
    }

    /// Finished key; never 0, so 0 can mean "unbound".
    pub fn finish(&self) -> u64 {
        self.0.max(1)
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

#[derive(Default)]
struct CacheInner {
    electron_key: u64,
    electron: Vec<OnceLock<(Matrix, Matrix)>>,
    phonon_key: u64,
    phonon: Vec<OnceLock<(Matrix, Matrix)>>,
}

/// Memoized retarded contact self-energies `(Σᴿ_left, Σᴿ_right)` per grid
/// point. The Sancho–Rubio decimation (up to `max_iter` invert + 6-GEMM
/// rounds per point and side) depends only on the lead blocks, the grid
/// and the broadening — none of which change across Born iterations — so
/// iteration 1 pays for it once and every later iteration replays the
/// stored Σᴿ. Occupation-dependent lesser/greater parts are formed
/// *outside* the cache from the memoized Σᴿ, so contacts at any bias reuse
/// the same entries.
///
/// The cache is internally synchronized: a phase `bind_*`s its section
/// with the current identity key (write lock, invalidating stale entries),
/// then the per-point rayon workers fill/read slots through a shared
/// [`BoundaryCacheView`] (read lock + per-slot `OnceLock`).
#[derive(Default)]
pub struct BoundaryCache {
    inner: RwLock<CacheInner>,
}

impl BoundaryCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Write access with poison recovery. A panic on a thread holding the
    /// write lock leaves the flag set and the entries possibly
    /// half-rebuilt; rebuilding a cache is always safe while serving a
    /// half-built one is not, so recovery drops every entry and clears the
    /// flag instead of propagating the panic into the SCF loop.
    fn write_recover(&self) -> RwLockWriteGuard<'_, CacheInner> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = CacheInner::default();
                self.inner.clear_poison();
                guard
            }
        }
    }

    /// Read access with poison recovery (rebuild through the write path,
    /// then re-acquire).
    fn read_recover(&self) -> RwLockReadGuard<'_, CacheInner> {
        let poisoned = match self.inner.read() {
            Ok(guard) => return guard,
            // Move the error out so its embedded read guard can be released
            // before `write_recover` takes the write lock — holding it across
            // that call would deadlock this thread against itself.
            Err(p) => p,
        };
        drop(poisoned);
        drop(self.write_recover());
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Bind the electron section to `key` with `n` grid points. A key or
    /// size mismatch drops every stored electron entry.
    pub fn bind_electron(&self, key: u64, n: usize) {
        let mut inner = self.write_recover();
        if inner.electron_key != key || inner.electron.len() != n {
            inner.electron_key = key;
            inner.electron = (0..n).map(|_| OnceLock::new()).collect();
        }
    }

    /// Bind the phonon section to `key` with `n` grid points.
    pub fn bind_phonon(&self, key: u64, n: usize) {
        let mut inner = self.write_recover();
        if inner.phonon_key != key || inner.phonon.len() != n {
            inner.phonon_key = key;
            inner.phonon = (0..n).map(|_| OnceLock::new()).collect();
        }
    }

    /// Drop every stored entry (e.g. after mutating the Hamiltonian in
    /// place). Binding with the correct key makes this automatic; the
    /// explicit hook exists for callers that know they invalidated state.
    pub fn invalidate(&self) {
        let mut inner = self.write_recover();
        *inner = CacheInner::default();
    }

    /// Shared read view for the duration of a phase's parallel loop.
    pub fn view(&self) -> BoundaryCacheView<'_> {
        BoundaryCacheView(self.read_recover())
    }

    /// Poison the inner lock on purpose (panic while holding the write
    /// guard), so tests can exercise the recovery paths.
    #[cfg(test)]
    fn poison_for_test(&self) {
        let result = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = self.inner.write().unwrap();
                panic!("deliberate poison for test");
            })
            .join()
        });
        assert!(result.is_err(), "poisoning thread must have panicked");
        assert!(self.inner.is_poisoned(), "write-guard panic must poison");
    }
}

/// Read-locked access to a [`BoundaryCache`]; clonable across rayon
/// workers by taking one view per worker closure invocation.
pub struct BoundaryCacheView<'a>(RwLockReadGuard<'a, CacheInner>);

impl BoundaryCacheView<'_> {
    fn slot(
        slot: &OnceLock<(Matrix, Matrix)>,
        compute: impl FnOnce() -> Result<(Matrix, Matrix), NumericalError>,
    ) -> Result<&(Matrix, Matrix), NumericalError> {
        if let Some(pair) = slot.get() {
            qt_telemetry::counters::add_boundary_hit();
            return Ok(pair);
        }
        let pair = compute()?;
        qt_telemetry::counters::add_boundary_miss();
        Ok(slot.get_or_init(|| pair))
    }

    /// `(Σᴿ_left, Σᴿ_right)` for electron grid point `idx`, computing and
    /// storing it on first access. The section must have been bound via
    /// [`BoundaryCache::bind_electron`] with at least `idx + 1` points.
    pub fn electron(
        &self,
        idx: usize,
        compute: impl FnOnce() -> Result<(Matrix, Matrix), NumericalError>,
    ) -> Result<&(Matrix, Matrix), NumericalError> {
        Self::slot(&self.0.electron[idx], compute)
    }

    /// `(Πᴿ_left, Πᴿ_right)` for phonon grid point `idx`.
    pub fn phonon(
        &self,
        idx: usize,
        compute: impl FnOnce() -> Result<(Matrix, Matrix), NumericalError>,
    ) -> Result<&(Matrix, Matrix), NumericalError> {
        Self::slot(&self.0.phonon[idx], compute)
    }
}

/// Broadening matrix `Γ = i(Σᴿ − Σᴿ†)`.
pub fn gamma(sigma_r: &Matrix) -> Matrix {
    let mut d = sigma_r.clone();
    d -= &sigma_r.dagger();
    d.scale(Complex64::I)
}

/// Electron lesser/greater boundary self-energies at occupation `f`.
pub fn electron_lesser_greater(sigma_r: &Matrix, f: f64) -> (Matrix, Matrix) {
    let g = gamma(sigma_r);
    let lesser = g.scale(c64(0.0, f));
    let greater = g.scale(c64(0.0, f - 1.0));
    (lesser, greater)
}

/// Phonon lesser/greater boundary self-energies at Bose occupation `n`.
pub fn phonon_lesser_greater(pi_r: &Matrix, n: f64) -> (Matrix, Matrix) {
    let g = gamma(pi_r);
    let lesser = g.scale(c64(0.0, -n));
    let greater = g.scale(c64(0.0, -(n + 1.0)));
    (lesser, greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::hamiltonian::{ElectronModel, PhononModel};
    use crate::params::SimParams;

    fn electron_setup() -> (Matrix, Matrix, Matrix, Matrix) {
        let p = SimParams::test_small();
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let h = em.hamiltonian(&dev, 0.3);
        let s = em.overlap_matrix(&dev, 0.3);
        (
            h.diag(0).clone(),
            h.upper(0).clone(),
            s.diag(0).clone(),
            s.upper(0).clone(),
        )
    }

    #[test]
    fn surface_sigma_converges_and_dissipates() {
        let (h00, h01, s00, s01) = electron_setup();
        let cfg = BoundaryConfig::default();
        let z = c64(0.1, cfg.eta);
        let out = surface_self_energy(z, &h00, &h01, &s00, &s01, Side::Left, &cfg).unwrap();
        assert!(out.converged);
        assert!(out.iterations > 0 && out.iterations <= cfg.max_iter);
        assert!(out.residual < cfg.tol);
        let sig = out.sigma;
        // A retarded self-energy has a negative anti-Hermitian part:
        // Γ = i(Σ − Σ†) must be positive semidefinite; check via its trace
        // and smallest Rayleigh quotient over basis vectors.
        let g = gamma(&sig);
        let tr = g.trace();
        assert!(tr.re >= -1e-10, "tr Γ = {tr} must be non-negative");
        assert!(tr.im.abs() < 1e-10);
        assert!(g.is_hermitian(1e-10));
    }

    #[test]
    fn decimation_matches_fixed_point() {
        // The surface GF satisfies gs = (z·S00 − H00 − (z·S10−H10) gs (z·S01−H01))^{-1}
        // ... for the left-pointing lead. Verify the fixed-point residual.
        let (h00, h01, s00, s01) = electron_setup();
        let cfg = BoundaryConfig {
            eta: 1e-3,
            ..Default::default()
        };
        let z = c64(0.05, cfg.eta);
        // Sigma_left = beta gs alpha, so gs can be recovered:
        // compute directly with the same recursion internals by solving the
        // fixed point iteratively from scratch here.
        let zs = |s: &Matrix, h: &Matrix| {
            let mut m = s.scale(z);
            m -= h;
            m
        };
        let alpha0 = zs(&s01, &h01);
        let beta0 = zs(&s01.dagger(), &h01.dagger());
        let e0 = zs(&s00, &h00);
        // Brute-force fixed point iteration.
        let mut gs = invert(&e0).unwrap();
        for _ in 0..4000 {
            let mut m = e0.clone();
            let corr = beta0.matmul(&gs).matmul(&alpha0);
            m -= &corr;
            gs = invert(&m).unwrap();
        }
        let sigma_fp = beta0.matmul(&gs).matmul(&alpha0);
        let sigma_sr = surface_self_energy(z, &h00, &h01, &s00, &s01, Side::Left, &cfg)
            .unwrap()
            .sigma;
        let rel = sigma_fp.max_abs_diff(&sigma_sr) / sigma_sr.max_abs().max(1e-30);
        assert!(rel < 1e-6, "decimation vs fixed point rel err {rel}");
    }

    #[test]
    fn electron_occupations_bracket() {
        let (h00, h01, s00, s01) = electron_setup();
        let cfg = BoundaryConfig::default();
        let sig = surface_self_energy(c64(0.2, cfg.eta), &h00, &h01, &s00, &s01, Side::Right, &cfg)
            .unwrap()
            .sigma;
        let (l_full, g_full) = electron_lesser_greater(&sig, 1.0);
        let (l_empty, g_empty) = electron_lesser_greater(&sig, 0.0);
        // f = 1: Σ> = 0; f = 0: Σ< = 0.
        assert!(g_full.max_abs() < 1e-12);
        assert!(l_empty.max_abs() < 1e-12);
        // Identity Σ> − Σ< = Σᴿ − Σᴬ at any occupation.
        for (l, g) in [(l_full, g_full), (l_empty, g_empty)] {
            let mut lhs = g.clone();
            lhs -= &l;
            let mut rhs = sig.clone();
            rhs -= &sig.dagger();
            assert!(lhs.max_abs_diff(&rhs) < 1e-10);
        }
    }

    #[test]
    fn boundary_cache_memoizes_and_invalidates() {
        let cache = BoundaryCache::new();
        cache.bind_electron(42, 3);
        let mk = || {
            Ok((
                Matrix::identity(2),
                Matrix::identity(2).scale(c64(2.0, 0.0)),
            ))
        };
        {
            let v = cache.view();
            let first = v.electron(1, mk).unwrap();
            assert_eq!(first.1[(0, 0)], c64(2.0, 0.0));
            // Second access must replay the stored pair, not recompute.
            let again = v
                .electron(1, || panic!("cached slot must not recompute"))
                .unwrap();
            assert_eq!(again.0.as_slice(), Matrix::identity(2).as_slice());
        }
        // Re-binding with the same key keeps entries.
        cache.bind_electron(42, 3);
        cache
            .view()
            .electron(1, || panic!("same-key rebind must keep entries"))
            .unwrap();
        // A different key (H/grid changed) drops them.
        cache.bind_electron(43, 3);
        let mut recomputed = false;
        cache
            .view()
            .electron(1, || {
                recomputed = true;
                mk()
            })
            .unwrap();
        assert!(recomputed, "key change must invalidate");
        // Explicit invalidation hook.
        cache.bind_phonon(7, 2);
        cache.view().phonon(0, mk).unwrap();
        cache.invalidate();
        cache.bind_phonon(7, 2);
        let mut recomputed = false;
        cache
            .view()
            .phonon(0, || {
                recomputed = true;
                mk()
            })
            .unwrap();
        assert!(recomputed);
    }

    #[test]
    fn non_convergent_decimation_surfaces_error() {
        // One decimation round cannot drive the coupling norm below 1e-12
        // for a propagating energy; with the eta-bump retry disabled the
        // failure must surface as BoundaryNonConvergence, never as a
        // silently wrong Σ.
        let (h00, h01, s00, s01) = electron_setup();
        let cfg = BoundaryConfig {
            eta: 1e-8,
            max_iter: 1,
            eta_bump: 0.0,
            ..Default::default()
        };
        let z = c64(0.1, cfg.eta);
        let err = surface_self_energy(z, &h00, &h01, &s00, &s01, Side::Left, &cfg).unwrap_err();
        match err {
            NumericalError::BoundaryNonConvergence { iters, residual } => {
                assert_eq!(iters, 1);
                assert!(residual >= cfg.tol);
            }
            other => panic!("expected BoundaryNonConvergence, got {other:?}"),
        }
    }

    #[test]
    fn eta_bump_retry_recovers_slow_convergence() {
        // Pick an iteration budget that fails at the base eta but succeeds
        // once the retry adds eta_bump of broadening (larger broadening
        // makes the decimation couplings decay faster). Find the budget
        // empirically so the test tracks the model, not magic numbers.
        let (h00, h01, s00, s01) = electron_setup();
        let probe = |eta: f64| {
            let cfg = BoundaryConfig {
                eta,
                eta_bump: 0.0,
                ..Default::default()
            };
            surface_self_energy(c64(0.1, eta), &h00, &h01, &s00, &s01, Side::Left, &cfg)
                .unwrap()
                .iterations
        };
        let base_eta = 1e-8;
        let bump = 0.05;
        let need_base = probe(base_eta);
        let need_bumped = probe(base_eta + bump);
        assert!(
            need_bumped < need_base,
            "broadening must speed up convergence ({need_bumped} vs {need_base})"
        );
        let cfg = BoundaryConfig {
            eta: base_eta,
            max_iter: need_base - 1,
            eta_bump: bump,
            ..Default::default()
        };
        let retries0 = qt_telemetry::counters::total_eta_retries();
        let out = surface_self_energy(c64(0.1, base_eta), &h00, &h01, &s00, &s01, Side::Left, &cfg)
            .unwrap();
        assert!(out.converged);
        assert_eq!(out.eta_retries, 1);
        assert!(qt_telemetry::counters::total_eta_retries() > retries0);
    }

    #[test]
    fn poisoned_cache_recovers_instead_of_panicking() {
        let cache = BoundaryCache::new();
        cache.bind_electron(42, 3);
        let mk = || {
            Ok((
                Matrix::identity(2),
                Matrix::identity(2).scale(c64(2.0, 0.0)),
            ))
        };
        cache.view().electron(1, mk).unwrap();
        cache.poison_for_test();
        // Every public entry point must recover (rebuilding the cache)
        // rather than panicking mid-SCF. Recovery drops stored entries.
        cache.bind_electron(42, 3);
        let mut recomputed = false;
        cache
            .view()
            .electron(1, || {
                recomputed = true;
                mk()
            })
            .unwrap();
        assert!(recomputed, "poison recovery must drop stale entries");
        // Poison again and recover through the read path directly.
        cache.poison_for_test();
        let v = cache.view();
        drop(v);
        // And through invalidate + phonon bind.
        cache.poison_for_test();
        cache.invalidate();
        cache.poison_for_test();
        cache.bind_phonon(7, 2);
        cache.view().phonon(0, mk).unwrap();
    }

    #[test]
    fn key_hasher_separates_inputs() {
        let (h00, h01, _, _) = electron_setup();
        let mut a = KeyHasher::new();
        a.matrix(&h00).matrix(&h01).f64(1e-3);
        let mut b = KeyHasher::new();
        b.matrix(&h00).matrix(&h01).f64(1e-3);
        assert_eq!(a.finish(), b.finish(), "identical inputs -> identical key");
        let mut c = KeyHasher::new();
        let mut h00b = h00.clone();
        h00b[(0, 0)] += c64(1e-15, 0.0);
        c.matrix(&h00b).matrix(&h01).f64(1e-3);
        assert_ne!(a.finish(), c.finish(), "bit-level change -> new key");
        assert_ne!(a.finish(), 0, "finished keys are never the unbound value");
    }

    #[test]
    fn phonon_boundary_identity() {
        let p = SimParams::test_small();
        let dev = Device::new(&p);
        let pm = PhononModel::default();
        let phi = pm.dynamical(&dev, 0.5);
        let cfg = BoundaryConfig {
            eta: 1e-6,
            ..Default::default()
        };
        let w: f64 = 0.02;
        let z = c64(w * w, cfg.eta);
        let eye = Matrix::identity(phi.block_size());
        let zero = Matrix::zeros(phi.block_size(), phi.block_size());
        let pi = surface_self_energy(z, phi.diag(0), phi.upper(0), &eye, &zero, Side::Left, &cfg)
            .unwrap()
            .sigma;
        let n = 0.7;
        let (l, g) = phonon_lesser_greater(&pi, n);
        let mut lhs = g.clone();
        lhs -= &l;
        let mut rhs = pi.clone();
        rhs -= &pi.dagger();
        assert!(lhs.max_abs_diff(&rhs) < 1e-10, "Π> − Π< = Πᴿ − Πᴬ");
    }
}
