//! A leasable pool of world slots for the sweep service.
//!
//! The service batches concurrent bias sweeps onto one shared set of
//! rank threads. Each solve leases a contiguous capacity slice from this
//! pool and returns it on drop, so two requests can run side by side
//! without oversubscribing the machine, and a request that panics or is
//! cancelled can never leak its slots — RAII gives the lease back.
//!
//! Ranks that die mid-solve (detected by the elastic layer as a
//! [`qt_telemetry`-journaled rank death]) are *retired*: the pool's
//! capacity shrinks permanently and later leases are served from the
//! survivors. Retirement never blocks — a dead rank owes nothing.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct PoolState {
    /// Slots currently available to lease.
    available: usize,
    /// Total slots the pool still owns (shrinks on retirement).
    capacity: usize,
}

/// Shared, blocking pool of world slots. Cheaply cloneable; all clones
/// lease from the same capacity.
#[derive(Clone)]
pub struct RankPool {
    state: Arc<(Mutex<PoolState>, Condvar)>,
}

/// A leased slice of the pool. Returns its slots on drop.
pub struct RankLease {
    pool: RankPool,
    slots: usize,
}

impl RankLease {
    /// Number of world slots this lease holds.
    pub fn slots(&self) -> usize {
        self.slots
    }
}

impl Drop for RankLease {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.pool.state;
        let mut st = lock.lock().unwrap();
        // A retirement that raced this return may have shrunk capacity
        // below available + slots; never exceed what the pool still owns.
        st.available = (st.available + self.slots).min(st.capacity);
        cvar.notify_all();
    }
}

impl RankPool {
    /// A pool owning `capacity` world slots.
    pub fn new(capacity: usize) -> RankPool {
        RankPool {
            state: Arc::new((
                Mutex::new(PoolState {
                    available: capacity,
                    capacity,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Total slots the pool still owns (initial capacity minus
    /// retirements).
    pub fn capacity(&self) -> usize {
        self.state.0.lock().unwrap().capacity
    }

    /// Slots currently available to lease.
    pub fn available(&self) -> usize {
        self.state.0.lock().unwrap().available
    }

    /// Lease `slots` slots without blocking. `None` when the pool cannot
    /// satisfy the request right now — or ever, if retirements have
    /// shrunk capacity below `slots` (callers distinguish via
    /// [`RankPool::capacity`]).
    pub fn try_lease(&self, slots: usize) -> Option<RankLease> {
        let mut st = self.state.0.lock().unwrap();
        if st.available < slots {
            return None;
        }
        st.available -= slots;
        Some(RankLease {
            pool: self.clone(),
            slots,
        })
    }

    /// Lease `slots` slots, blocking until they free up or `timeout`
    /// elapses. Returns `None` on timeout, and immediately when
    /// retirements have made the request permanently unsatisfiable.
    pub fn lease_timeout(&self, slots: usize, timeout: Duration) -> Option<RankLease> {
        let (lock, cvar) = &*self.state;
        let deadline = std::time::Instant::now() + timeout;
        let mut st = lock.lock().unwrap();
        while st.available < slots {
            if st.capacity < slots {
                return None; // can never be satisfied
            }
            let left = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, res) = cvar.wait_timeout(st, left).unwrap();
            st = guard;
            if res.timed_out() && st.available < slots {
                return None;
            }
        }
        st.available -= slots;
        Some(RankLease {
            pool: self.clone(),
            slots,
        })
    }

    /// Permanently remove `slots` slots from the pool after rank deaths.
    /// Prefers idle slots; any remainder is absorbed as leases return
    /// (their slots are not re-added past the shrunk capacity).
    pub fn retire(&self, slots: usize) {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        st.capacity = st.capacity.saturating_sub(slots);
        st.available = st.available.min(st.capacity);
        // Waiters re-check capacity and give up if now unsatisfiable.
        cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn leases_return_on_drop() {
        let pool = RankPool::new(4);
        let a = pool.try_lease(3).unwrap();
        assert_eq!(pool.available(), 1);
        assert!(pool.try_lease(2).is_none(), "only one slot left");
        let b = pool.try_lease(1).unwrap();
        assert_eq!((a.slots(), b.slots()), (3, 1));
        drop(a);
        assert_eq!(pool.available(), 3);
        drop(b);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    fn blocking_lease_wakes_when_slots_free() {
        let pool = RankPool::new(2);
        let held = pool.try_lease(2).unwrap();
        let p2 = pool.clone();
        let waiter = thread::spawn(move || p2.lease_timeout(2, Duration::from_secs(10)));
        thread::sleep(Duration::from_millis(20));
        drop(held);
        let lease = waiter.join().unwrap().expect("waiter gets the slots");
        assert_eq!(lease.slots(), 2);
    }

    #[test]
    fn lease_times_out_when_pool_stays_full() {
        let pool = RankPool::new(1);
        let _held = pool.try_lease(1).unwrap();
        assert!(pool.lease_timeout(1, Duration::from_millis(30)).is_none());
    }

    #[test]
    fn retirement_shrinks_capacity_and_absorbs_returns() {
        let pool = RankPool::new(4);
        let lease = pool.try_lease(3).unwrap();
        // Two ranks die: one idle slot is reclaimed immediately, the
        // other debt is absorbed when the outstanding lease returns.
        pool.retire(2);
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.available(), 1);
        drop(lease);
        assert_eq!(pool.available(), 2, "returns never exceed capacity");
        // A request larger than the shrunk capacity fails fast instead
        // of blocking forever.
        assert!(pool.lease_timeout(3, Duration::from_secs(10)).is_none());
    }

    #[test]
    fn retirement_wakes_doomed_waiters() {
        let pool = RankPool::new(2);
        let _held = pool.try_lease(2).unwrap();
        let p2 = pool.clone();
        let waiter = thread::spawn(move || p2.lease_timeout(2, Duration::from_secs(10)));
        thread::sleep(Duration::from_millis(20));
        pool.retire(1);
        assert!(
            waiter.join().unwrap().is_none(),
            "waiter gives up once capacity < request"
        );
    }
}
