//! # qt-core — dissipative quantum transport (NEGF) core
pub mod boundary;
pub mod checkpoint;
pub mod device;
pub mod flops;
pub mod gf;
pub mod grids;
pub mod hamiltonian;
pub mod health;
pub mod observables;
pub mod params;
pub mod rgf;
pub mod scf;
pub mod sse;
