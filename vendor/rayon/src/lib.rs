//! Offline stand-in for `rayon` 1.10.
//!
//! The build environment has no registry access, so the workspace patches
//! `rayon` to this crate. The parallel-iterator entry points return the
//! corresponding *standard* iterators, so every downstream combinator
//! (`map`, `enumerate`, `for_each`, `collect`, …) is the std one and the
//! code runs sequentially with identical results. Rank-level parallelism
//! in this workspace uses `std::thread` scopes directly and is unaffected.

pub mod prelude {
    /// `into_par_iter()` → the std `into_iter()`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` / `par_chunks()` on shared slices and `Vec`s.
    pub trait ParallelSlice<T> {
        fn as_seq_slice(&self) -> &[T];
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.as_seq_slice().iter()
        }
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.as_seq_slice().chunks(size)
        }
    }
    impl<T, S: AsRef<[T]> + ?Sized> ParallelSlice<T> for S {
        fn as_seq_slice(&self) -> &[T] {
            self.as_ref()
        }
    }

    /// `par_iter_mut()` / `par_chunks_mut()` on mutable slices and `Vec`s.
    pub trait ParallelSliceMut<T> {
        fn as_seq_slice_mut(&mut self) -> &mut [T];
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.as_seq_slice_mut().iter_mut()
        }
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.as_seq_slice_mut().chunks_mut(size)
        }
    }
    impl<T, S: AsMut<[T]> + ?Sized> ParallelSliceMut<T> for S {
        fn as_seq_slice_mut(&mut self) -> &mut [T] {
            self.as_mut()
        }
    }
}

/// Sequential stand-in: one logical worker.
pub fn current_num_threads() -> usize {
    1
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder;

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder
    }
    pub fn num_threads(self, _n: usize) -> Self {
        self
    }
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

pub struct ThreadPool;

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
}

pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn entry_points_alias_std_iterators() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let s: i32 = (0..5).into_par_iter().sum();
        assert_eq!(s, 10);
        let mut buf = [0usize; 6];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i;
            }
        });
        assert_eq!(buf, [0, 0, 1, 1, 2, 2]);
    }
}
