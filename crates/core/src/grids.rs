//! Energy, frequency and momentum grids, plus equilibrium statistics.
//!
//! The SSE convolutions index `G(E − ħω, kz − qz)` directly by grid offsets,
//! so the phonon frequency grid is aligned with the electron energy grid:
//! `ω_l = l · dE` for `l = 1..Nω`. Momentum is periodic on `[−π, π)` and
//! wraps modulo `Nkz` — exactly the index arithmetic of Fig. 5.

use crate::params::SimParams;

/// Boltzmann constant in eV/K.
pub const KB_EV: f64 = 8.617_333_262e-5;

/// Uniform electron energy grid with an aligned phonon frequency ladder.
#[derive(Clone, Debug)]
pub struct Grids {
    /// Electron energies in eV (length `NE`).
    pub energies: Vec<f64>,
    /// Phonon energies `ħω` in eV (length `Nω`); `omegas[l] = (l+1)·dE`.
    pub omegas: Vec<f64>,
    /// Electron momentum points in `[−π, π)` (length `Nkz`).
    pub kz: Vec<f64>,
    /// Phonon momentum points (length `Nqz`).
    pub qz: Vec<f64>,
    /// Energy grid spacing in eV.
    pub de: f64,
}

impl Grids {
    /// Build grids spanning `[emin, emax]` with the simulation dimensions.
    pub fn new(p: &SimParams, emin: f64, emax: f64) -> Self {
        Grids::try_new(p, emin, emax).expect("invalid energy window")
    }

    /// Fallible [`Grids::new`]: the entry point for user-supplied windows
    /// (scenario files), where a bad window must surface as an error
    /// instead of a panic.
    pub fn try_new(p: &SimParams, emin: f64, emax: f64) -> Result<Self, String> {
        if !emin.is_finite() || !emax.is_finite() {
            return Err(format!("energy window [{emin}, {emax}] must be finite"));
        }
        if emax <= emin {
            return Err(format!("empty energy window: emax {emax} <= emin {emin}"));
        }
        if p.ne <= 1 {
            return Err(format!("ne must exceed 1, got {}", p.ne));
        }
        let de = (emax - emin) / (p.ne - 1) as f64;
        let energies = (0..p.ne).map(|e| emin + e as f64 * de).collect();
        let omegas = (0..p.nw).map(|l| (l + 1) as f64 * de).collect();
        let kz = momentum_points(p.nkz);
        let qz = momentum_points(p.nqz);
        Ok(Grids {
            energies,
            omegas,
            kz,
            qz,
            de,
        })
    }

    /// Index of `E − ω_l` on the energy grid, `None` if below the window.
    #[inline]
    pub fn e_minus_w(&self, e_idx: usize, w_idx: usize) -> Option<usize> {
        e_idx.checked_sub(w_idx + 1)
    }

    /// Index of `E + ω_l`, `None` if above the window.
    #[inline]
    pub fn e_plus_w(&self, e_idx: usize, w_idx: usize) -> Option<usize> {
        let i = e_idx + w_idx + 1;
        (i < self.energies.len()).then_some(i)
    }

    /// Periodic wrap of `kz − qz` (momentum conservation on the ring).
    #[inline]
    pub fn k_minus_q(&self, k_idx: usize, q_idx: usize) -> usize {
        let nk = self.kz.len();
        (k_idx + nk - (q_idx % nk)) % nk
    }

    /// Periodic wrap of `kz + qz`.
    #[inline]
    pub fn k_plus_q(&self, k_idx: usize, q_idx: usize) -> usize {
        (k_idx + q_idx) % self.kz.len()
    }
}

/// `n` momentum points uniformly covering `[−π, π)`.
pub fn momentum_points(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| -std::f64::consts::PI + 2.0 * std::f64::consts::PI * i as f64 / n as f64)
        .collect()
}

/// Fermi–Dirac occupation at energy `e` (eV), chemical potential `mu`,
/// temperature `t` (K).
pub fn fermi(e: f64, mu: f64, t: f64) -> f64 {
    let x = (e - mu) / (KB_EV * t.max(1e-9));
    if x > 500.0 {
        0.0
    } else if x < -500.0 {
        1.0
    } else {
        1.0 / (x.exp() + 1.0)
    }
}

/// Bose–Einstein occupation at phonon energy `w` (eV), temperature `t` (K).
pub fn bose(w: f64, t: f64) -> f64 {
    let x = w / (KB_EV * t.max(1e-9));
    if x > 500.0 {
        0.0
    } else {
        1.0 / (x.exp() - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grids() -> Grids {
        Grids::new(&SimParams::test_small(), -1.0, 1.0)
    }

    #[test]
    fn energy_grid_uniform_and_aligned() {
        let g = grids();
        assert_eq!(g.energies.len(), 12);
        assert!((g.energies[0] + 1.0).abs() < 1e-14);
        assert!((g.energies[11] - 1.0).abs() < 1e-14);
        // Frequency ladder aligned with grid spacing.
        for (l, w) in g.omegas.iter().enumerate() {
            assert!((w - (l + 1) as f64 * g.de).abs() < 1e-14);
        }
    }

    #[test]
    fn energy_offset_indexing() {
        let g = grids();
        assert_eq!(g.e_minus_w(5, 0), Some(4));
        assert_eq!(g.e_minus_w(5, 2), Some(2));
        assert_eq!(g.e_minus_w(0, 0), None);
        assert_eq!(g.e_plus_w(5, 0), Some(6));
        assert_eq!(g.e_plus_w(11, 0), None);
        // Consistency: the index shift matches the energy difference.
        let e_idx = 6;
        let w_idx = 1;
        let em = g.e_minus_w(e_idx, w_idx).unwrap();
        assert!(
            (g.energies[e_idx] - g.omegas[w_idx] - g.energies[em]).abs() < 1e-12,
            "grid alignment must make E − ω land exactly on a grid point"
        );
    }

    #[test]
    fn momentum_wraps_periodically() {
        let g = grids();
        assert_eq!(g.k_minus_q(0, 1), 2); // Nkz = 3
        assert_eq!(g.k_minus_q(2, 2), 0);
        assert_eq!(g.k_plus_q(2, 2), 1);
        for k in 0..3 {
            for q in 0..3 {
                assert_eq!(g.k_minus_q(g.k_plus_q(k, q), q), k);
            }
        }
    }

    #[test]
    fn fermi_limits() {
        assert!((fermi(-10.0, 0.0, 300.0) - 1.0).abs() < 1e-12);
        assert!(fermi(10.0, 0.0, 300.0) < 1e-12);
        assert!((fermi(0.0, 0.0, 300.0) - 0.5).abs() < 1e-12);
        // No overflow far from mu.
        assert_eq!(fermi(1e6, 0.0, 300.0), 0.0);
        assert_eq!(fermi(-1e6, 0.0, 300.0), 1.0);
    }

    #[test]
    fn bose_properties() {
        let t = 300.0;
        let w = 0.01;
        let n = bose(w, t);
        assert!(n > 0.0);
        // Detailed balance: n(w) + 1 = e^{w/kT} n(w).
        let ratio = (n + 1.0) / n;
        assert!((ratio - (w / (KB_EV * t)).exp()).abs() < 1e-9);
        // High-frequency limit vanishes.
        assert!(bose(10.0, 300.0) < 1e-12);
    }

    #[test]
    fn bad_windows_are_typed_errors_not_panics() {
        let p = SimParams::test_small();
        assert!(Grids::try_new(&p, 1.0, -1.0).is_err());
        assert!(Grids::try_new(&p, 0.0, 0.0).is_err());
        assert!(Grids::try_new(&p, f64::NAN, 1.0).is_err());
        assert!(Grids::try_new(&p, -1.0, f64::INFINITY).is_err());
        let mut p1 = p;
        p1.ne = 1;
        assert!(Grids::try_new(&p1, -1.0, 1.0).is_err());
        assert!(Grids::try_new(&p, -1.0, 1.0).is_ok());
    }

    #[test]
    fn momentum_points_cover_brillouin_zone() {
        let k = momentum_points(21);
        assert_eq!(k.len(), 21);
        assert!((k[0] + std::f64::consts::PI).abs() < 1e-14);
        assert!(k[20] < std::f64::consts::PI);
    }
}
