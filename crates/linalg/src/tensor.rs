//! N-dimensional row-major complex tensors.
//!
//! The SSE phase manipulates 5-D/6-D tensors (`G≷[Nkz,NE,NA,Norb,Norb]`,
//! `D≷[Nqz,Nω,NA,NB,3,3]`, §2). The data-layout transformation of Fig. 10c
//! permutes dimensions so that the batched GEMM streams contiguous memory —
//! this type provides exactly the operations needed for that: shape/stride
//! bookkeeping, contiguous inner-slice views, and permuted copies.

use crate::complex::Complex64;

/// Dense row-major N-dimensional tensor.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<Complex64>,
}

fn compute_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1; shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * shape[d + 1];
    }
    strides
}

impl Tensor {
    /// Zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            strides: compute_strides(shape),
            data: vec![Complex64::ZERO; len],
        }
    }

    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Linear offset of a multi-index.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        idx.iter().zip(&self.strides).map(|(&i, &s)| i * s).sum()
    }

    #[inline]
    pub fn get(&self, idx: &[usize]) -> Complex64 {
        self.data[self.offset(idx)]
    }

    #[inline]
    pub fn set(&mut self, idx: &[usize], v: Complex64) {
        let o = self.offset(idx);
        self.data[o] = v;
    }

    #[inline]
    pub fn add_assign_at(&mut self, idx: &[usize], v: Complex64) {
        let o = self.offset(idx);
        self.data[o] += v;
    }

    /// Borrow the contiguous inner block starting at `prefix` and spanning
    /// the remaining dimensions (e.g. the `Norb x Norb` matrix at
    /// `G[kz, E, a, :, :]`).
    pub fn inner(&self, prefix: &[usize]) -> &[Complex64] {
        let span: usize = self.shape[prefix.len()..].iter().product();
        let off: usize = prefix.iter().zip(&self.strides).map(|(&i, &s)| i * s).sum();
        &self.data[off..off + span]
    }

    /// Mutable variant of [`Tensor::inner`].
    pub fn inner_mut(&mut self, prefix: &[usize]) -> &mut [Complex64] {
        let span: usize = self.shape[prefix.len()..].iter().product();
        let off: usize = prefix.iter().zip(&self.strides).map(|(&i, &s)| i * s).sum();
        &mut self.data[off..off + span]
    }

    /// Return a copy with dimensions permuted so that output dimension `d`
    /// is input dimension `perm[d]` (numpy's `transpose(perm)` followed by
    /// `ascontiguousarray` — the data-layout transformation of Fig. 10c).
    pub fn permuted(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.shape.len());
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let mut out = Tensor::zeros(&new_shape);
        self.permute_copy_into(perm, &mut out);
        out
    }

    /// Like [`Tensor::permuted`], but the copy's storage is checked out of
    /// the per-thread [`crate::workspace`] pool. Hand the tensor back with
    /// [`Tensor::recycle`] on the same thread when done; dropping it
    /// instead simply releases the buffer to the heap.
    pub fn permuted_pooled(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.shape.len());
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let mut out = Tensor {
            strides: compute_strides(&new_shape),
            data: crate::workspace::take_scratch(self.len()),
            shape: new_shape,
        };
        self.permute_copy_into(perm, &mut out);
        out
    }

    /// Return this tensor's backing storage to the per-thread workspace
    /// pool (the counterpart of [`Tensor::permuted_pooled`]).
    pub fn recycle(self) {
        crate::workspace::give_scratch(self.data);
    }

    fn permute_copy_into(&self, perm: &[usize], out: &mut Tensor) {
        let ndim = perm.len();
        // One pooled buffer holds both the output odometer and the
        // gathered source index.
        let mut odo = crate::workspace::take_idx(2 * ndim);
        {
            let (idx, src) = odo.split_at_mut(ndim);
            for _ in 0..self.len() {
                for (d, &p) in perm.iter().enumerate() {
                    src[p] = idx[d];
                }
                let v = self.get(src);
                out.set(idx, v);
                for d in (0..ndim).rev() {
                    idx[d] += 1;
                    if idx[d] < out.shape[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
        }
        crate::workspace::give_idx(odo);
    }

    /// Frobenius norm over all entries.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry-wise difference with another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Set all entries to zero keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(Complex64::ZERO);
    }

    /// Memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Complex64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn strides_row_major() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.strides(), &[12, 4, 1]);
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], c64(5.0, -1.0));
        assert_eq!(t.get(&[1, 2, 3]), c64(5.0, -1.0));
        assert_eq!(t.as_slice()[12 + 2 * 4 + 3], c64(5.0, -1.0));
    }

    #[test]
    fn inner_views_matrix_block() {
        let mut t = Tensor::zeros(&[2, 2, 3, 3]);
        for i in 0..3 {
            for j in 0..3 {
                t.set(&[1, 0, i, j], c64((i * 3 + j) as f64, 0.0));
            }
        }
        let block = t.inner(&[1, 0]);
        assert_eq!(block.len(), 9);
        for (n, z) in block.iter().enumerate() {
            assert_eq!(*z, c64(n as f64, 0.0));
        }
    }

    #[test]
    fn permuted_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    t.set(&[i, j, k], c64((100 * i + 10 * j + k) as f64, 0.0));
                }
            }
        }
        let p = t.permuted(&[2, 0, 1]); // out[k,i,j] = in[i,j,k]
        assert_eq!(p.shape(), &[4, 2, 3]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(p.get(&[k, i, j]), t.get(&[i, j, k]));
                }
            }
        }
        // Permuting back restores the original.
        let back = p.permuted(&[1, 2, 0]);
        assert_eq!(back, t);
    }

    #[test]
    fn permuted_pooled_matches_permuted() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        for (n, z) in t.as_mut_slice().iter_mut().enumerate() {
            *z = c64(n as f64, -(n as f64));
        }
        let heap = t.permuted(&[2, 0, 1]);
        let pooled = t.permuted_pooled(&[2, 0, 1]);
        assert_eq!(heap, pooled);
        pooled.recycle();
        // A second checkout of the same size reuses the recycled buffer.
        let again = t.permuted_pooled(&[2, 0, 1]);
        assert_eq!(heap, again);
        again.recycle();
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.add_assign_at(&[0, 1], c64(1.0, 0.0));
        t.add_assign_at(&[0, 1], c64(2.0, 0.5));
        assert_eq!(t.get(&[0, 1]), c64(3.0, 0.5));
    }

    #[test]
    fn bytes_accounting() {
        let t = Tensor::zeros(&[3, 5]);
        assert_eq!(t.bytes(), 15 * 16);
    }
}
