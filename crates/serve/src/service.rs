//! The sweep service: admission control, worker loop, and shutdown drain.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use qt_core::checkpoint::CheckpointConfig;
use qt_core::scf::{run_scf_with, CancelToken, ScfError, ScfOptions, Simulation, WarmStart};
use qt_dist::RankPool;
use qt_telemetry::{counters, journal, EventKind};

use crate::breaker::CircuitBreaker;
use crate::config::{
    PointResult, ServeConfig, SubmitError, SweepRequest, SweepResponse, SweepStatus, SweepTicket,
    VariantSpec,
};
use crate::warm::WarmStore;
use crate::watchdog::Watchdog;

/// One registered variant at runtime: its spec, the shared simulation
/// (one boundary cache serving every request of the variant), and the
/// warm-start store.
struct VariantRuntime {
    spec: VariantSpec,
    sim: Simulation,
    warm: WarmStore,
}

struct Job {
    id: u64,
    req: SweepRequest,
    resp: Sender<SweepResponse>,
}

/// State shared between the submit path, the workers, and shutdown.
struct Shared {
    cfg: ServeConfig,
    variants: Vec<VariantRuntime>,
    pool: RankPool,
    /// Requests admitted but not yet dequeued — the explicit bound the
    /// unbounded transport channel doesn't give us.
    depth: AtomicUsize,
    draining: AtomicBool,
    breaker: Mutex<CircuitBreaker>,
    /// Cancel tokens of in-flight sweeps, for the shutdown drain.
    active: Mutex<Vec<(u64, CancelToken)>>,
}

/// The running service. Dropping it without [`Service::shutdown`] lets
/// workers finish the queue normally; `shutdown` drains instead.
pub struct Service {
    shared: Arc<Shared>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Watchdog,
    next_id: AtomicU64,
}

impl Service {
    /// Build the simulations and start the worker + watchdog threads.
    /// Each variant's parameters and energy window go through the
    /// fallible builder ([`Simulation::try_new`]); a bad registration is
    /// a typed [`SubmitError::InvalidVariant`], not a panic — variant
    /// specs come from user configuration (scenario files, service
    /// callers), never from trusted code.
    pub fn start(variants: Vec<VariantSpec>, cfg: ServeConfig) -> Result<Service, SubmitError> {
        let variants = variants
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let sim = Simulation::try_new(spec.params, spec.emin, spec.emax)
                    .map_err(|reason| SubmitError::InvalidVariant { variant: i, reason })?;
                Ok(VariantRuntime {
                    sim,
                    warm: WarmStore::with_capacity(cfg.warm_capacity),
                    spec,
                })
            })
            .collect::<Result<Vec<_>, SubmitError>>()?;
        let breaker =
            CircuitBreaker::new(variants.len(), cfg.breaker_threshold, cfg.breaker_cooldown);
        let pool = RankPool::new(cfg.pool_slots);
        let shared = Arc::new(Shared {
            variants,
            pool,
            depth: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            breaker: Mutex::new(breaker),
            active: Mutex::new(Vec::new()),
            cfg,
        });
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        let watchdog = Watchdog::spawn();
        let workers = (0..shared.cfg.workers.max(1))
            .map(|w| {
                let shared = shared.clone();
                let rx = rx.clone();
                let wd = watchdog.handle.clone();
                std::thread::Builder::new()
                    .name(format!("qt-serve-worker-{w}"))
                    .spawn(move || worker_loop(shared, rx, wd))
                    .expect("spawn service worker")
            })
            .collect();
        Ok(Service {
            shared,
            tx: Some(tx),
            workers,
            watchdog,
            next_id: AtomicU64::new(1),
        })
    }

    /// The shared rank pool (for observability and tests).
    pub fn pool(&self) -> &RankPool {
        &self.shared.pool
    }

    /// Admit a sweep or reject it with explicit backpressure. Admission
    /// is strictly bounded: at most `queue_capacity` requests may sit
    /// between submit and dequeue.
    pub fn submit(&self, req: SweepRequest) -> Result<SweepTicket, SubmitError> {
        let id = self.next_id.fetch_add(1, SeqCst);
        let reject = |err: SubmitError| {
            counters::add_service_rejected();
            journal::emit(EventKind::RequestRejected { request: id });
            Err(err)
        };
        if req.variant >= self.shared.variants.len() {
            return reject(SubmitError::UnknownVariant {
                variant: req.variant,
            });
        }
        // A NaN/infinite bias would poison the warm store's nearest-
        // neighbor search and the contact occupations deep inside the
        // worker; reject it here, at the trust boundary, instead.
        if let Some(index) = req.biases.iter().position(|b| !b.is_finite()) {
            return reject(SubmitError::NonFiniteBias { index });
        }
        if self.shared.draining.load(SeqCst) {
            return reject(SubmitError::ShuttingDown);
        }
        if let Err(retry_after) = self
            .shared
            .breaker
            .lock()
            .unwrap()
            .check(req.variant, Instant::now())
        {
            return reject(SubmitError::BreakerOpen { retry_after });
        }
        // Reserve a queue slot; back off with a depth-scaled hint when
        // the queue is at capacity.
        let cap = self.shared.cfg.queue_capacity;
        if self
            .shared
            .depth
            .fetch_update(SeqCst, SeqCst, |d| (d < cap).then_some(d + 1))
            .is_err()
        {
            let hint = self.shared.cfg.retry_after_hint;
            return reject(SubmitError::QueueFull {
                retry_after: hint * (cap as u32).max(1),
            });
        }
        counters::add_service_admitted();
        journal::emit(EventKind::RequestAdmitted { request: id });
        let (resp_tx, resp_rx) = crossbeam::channel::unbounded();
        let job = Job {
            id,
            req,
            resp: resp_tx,
        };
        // The send only fails after shutdown dropped the receiver side;
        // answer the caller directly in that narrow race.
        if let Some(tx) = &self.tx {
            if tx.send(job).is_err() {
                self.shared.depth.fetch_sub(1, SeqCst);
                return Err(SubmitError::ShuttingDown);
            }
        } else {
            self.shared.depth.fetch_sub(1, SeqCst);
            return Err(SubmitError::ShuttingDown);
        }
        Ok(SweepTicket { id, rx: resp_rx })
    }

    /// Drain and stop: reject new submits, cancel in-flight sweeps (they
    /// write QTCKPT01 drain checkpoints when `drain_dir` is configured and
    /// answer [`SweepStatus::Drained`]), answer still-queued requests
    /// with [`SweepStatus::ShutDown`], and join every thread.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, SeqCst);
        for (_, token) in self.shared.active.lock().unwrap().iter() {
            token.cancel();
        }
        // Disconnect the queue so workers exit once it is drained.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.watchdog.stop();
    }
}

fn worker_loop(shared: Arc<Shared>, rx: Receiver<Job>, wd: crate::watchdog::WatchdogHandle) {
    while let Ok(job) = rx.recv() {
        shared.depth.fetch_sub(1, SeqCst);
        if shared.draining.load(SeqCst) {
            let _ = job.resp.send(SweepResponse {
                id: job.id,
                status: SweepStatus::ShutDown,
            });
            continue;
        }
        journal::set_thread_unit(job.id as i64);
        let status = run_sweep(&shared, &wd, &job);
        journal::set_thread_unit(-1);
        settle(&shared, &job, &status);
        let _ = job.resp.send(SweepResponse { id: job.id, status });
    }
}

/// Settle counters, journal, and the circuit breaker for a finished
/// request. Deadline and drain outcomes are availability events, not
/// evidence against the variant — only `Failed` feeds the breaker.
fn settle(shared: &Shared, job: &Job, status: &SweepStatus) {
    match status {
        SweepStatus::Completed { points } => {
            counters::add_service_completed();
            journal::emit(EventKind::RequestDone {
                request: job.id,
                degraded_points: points.iter().filter(|p| p.degraded_to_cold).count() as u64,
            });
            shared
                .breaker
                .lock()
                .unwrap()
                .record_success(job.req.variant);
        }
        SweepStatus::Failed { .. } => {
            counters::add_service_failed();
            let tripped = shared
                .breaker
                .lock()
                .unwrap()
                .record_failure(job.req.variant, Instant::now());
            if tripped {
                counters::add_service_breaker_open();
                journal::emit(EventKind::BreakerOpen {
                    variant: job.req.variant as u64,
                });
            }
        }
        SweepStatus::DeadlineExpired { .. }
        | SweepStatus::Drained { .. }
        | SweepStatus::ShutDown => {}
    }
}

/// Why a point stopped short of an answer.
enum PointStop {
    /// Cooperative cancellation; carries the drain checkpoint path if
    /// one was written.
    Cancelled {
        checkpoint: Option<std::path::PathBuf>,
    },
    /// Out of retry budget (or structurally unservable).
    Failed(String),
}

fn run_sweep(shared: &Shared, wd: &crate::watchdog::WatchdogHandle, job: &Job) -> SweepStatus {
    let _span = qt_telemetry::Span::enter_global("serve/sweep");
    let vr = &shared.variants[job.req.variant];
    let token = CancelToken::new();
    let expired = Arc::new(AtomicBool::new(false));
    let _deadline_guard = job
        .req
        .deadline
        .map(|d| wd.register(job.id, Instant::now() + d, token.clone(), expired.clone()));
    shared.active.lock().unwrap().push((job.id, token.clone()));
    // A shutdown signalled between the drain-cancel pass and this push
    // would miss the token; re-check so the sweep still stops promptly.
    if shared.draining.load(SeqCst) {
        token.cancel();
    }

    #[cfg(feature = "fault-inject")]
    if let Some(victim) = job.req.chaos_kill_rank {
        chaos_probe(shared, vr, victim);
    }

    let mut completed: Vec<PointResult> = Vec::new();
    let mut stop: Option<(usize, PointStop)> = None;
    for (i, &bias) in job.req.biases.iter().enumerate() {
        match solve_point(shared, vr, job, i, bias, &token) {
            Ok(point) => completed.push(point),
            Err(why) => {
                stop = Some((i, why));
                break;
            }
        }
    }
    shared
        .active
        .lock()
        .unwrap()
        .retain(|(id, _)| *id != job.id);
    match stop {
        None => SweepStatus::Completed { points: completed },
        Some((_, PointStop::Failed(error))) => SweepStatus::Failed { error, completed },
        Some((_, PointStop::Cancelled { .. })) if expired.load(SeqCst) => {
            SweepStatus::DeadlineExpired { completed }
        }
        Some((i, PointStop::Cancelled { checkpoint })) => {
            // Shutdown drain: account the checkpointed point.
            let mut checkpoints = Vec::new();
            if let Some(path) = checkpoint {
                counters::add_service_drained();
                journal::emit(EventKind::DrainCheckpoint {
                    request: job.id,
                    point: i as u64,
                });
                checkpoints.push(path);
            }
            SweepStatus::Drained {
                completed,
                checkpoints,
            }
        }
    }
}

/// Scale a warm seed into garbage (chaos hook): the poisoned solve
/// starts absurdly far from the fixed point, cannot pass the residual
/// test within the iteration budget, and must take the validated
/// cold-fallback path.
fn poison_seed(seed: &mut WarmStart) {
    const FACTOR: f64 = 1e9;
    for t in [
        &mut seed.sigma.lesser,
        &mut seed.sigma.greater,
        &mut seed.pi.lesser,
        &mut seed.pi.greater,
    ] {
        for z in t.as_mut_slice() {
            *z = z.scale(FACTOR);
        }
    }
}

fn solve_point(
    shared: &Shared,
    vr: &VariantRuntime,
    job: &Job,
    index: usize,
    bias: f64,
    token: &CancelToken,
) -> Result<PointResult, PointStop> {
    // Lease compute slots; a pool shrunk (by retirements) below one
    // solve's needs can never serve again — fail fast, don't hang.
    let slots = shared.cfg.slots_per_solve.max(1);
    let Some(_lease) = shared
        .pool
        .lease_timeout(slots, Duration::from_secs(600))
        .filter(|_| !token.is_cancelled())
    else {
        if token.is_cancelled() {
            return Err(PointStop::Cancelled { checkpoint: None });
        }
        return Err(PointStop::Failed(format!(
            "rank pool cannot serve {slots} slots (capacity {})",
            shared.pool.capacity()
        )));
    };
    let mut cfg = vr.spec.cfg;
    cfg.gf.contacts.mu_left = bias / 2.0;
    cfg.gf.contacts.mu_right = -bias / 2.0;
    let ckpt = shared.cfg.drain_dir.as_ref().map(|dir| CheckpointConfig {
        path: dir.join(format!("request-{}-point-{index}.ckpt", job.id)),
        every: 0, // drain-only: written on cancellation, never mid-loop
    });

    // Warm attempt: seed from the nearest solved bias. Warm failures
    // (non-convergence or numerical error) degrade to the cold path
    // below WITHOUT burning retry budget — a bad seed is the service's
    // fault, not the variant's.
    let mut degraded_to_cold = false;
    let mut warm_attempted = false;
    if let Some((_, seed)) = vr.warm.nearest(bias) {
        warm_attempted = true;
        counters::add_service_warm_start();
        let mut seed = (*seed).clone();
        if job.req.poison_warm_point == Some(index) {
            poison_seed(&mut seed);
        }
        let warm_run = run_scf_with(
            &vr.sim,
            &cfg,
            ScfOptions {
                ckpt: ckpt.as_ref(),
                warm: Some(seed),
                cancel: Some(token.clone()),
                ..Default::default()
            },
        );
        match warm_run {
            Ok(res) if res.converged => {
                return Ok(finish_point(vr, bias, res, true, false, 0));
            }
            Err(ScfError::Cancelled { checkpointed, .. }) => {
                return Err(PointStop::Cancelled {
                    checkpoint: checkpointed.then(|| ckpt.as_ref().unwrap().path.clone()),
                });
            }
            // Validation failed: journal the degradation and fall
            // through to the cold solve.
            Ok(_) | Err(_) => {
                degraded_to_cold = true;
                counters::add_service_warm_fallback();
                journal::emit(EventKind::WarmFallback {
                    request: job.id,
                    point: index as u64,
                });
            }
        }
    }

    // Cold path with retry + exponential backoff.
    let mut retries = 0u32;
    loop {
        let cold_run = run_scf_with(
            &vr.sim,
            &cfg,
            ScfOptions {
                ckpt: ckpt.as_ref(),
                cancel: Some(token.clone()),
                ..Default::default()
            },
        );
        let error = match cold_run {
            Ok(res) if res.converged => {
                return Ok(finish_point(
                    vr,
                    bias,
                    res,
                    warm_attempted,
                    degraded_to_cold,
                    retries,
                ));
            }
            Ok(res) => format!(
                "did not converge in {} iterations (residual {:?})",
                res.iterations,
                res.residuals.last()
            ),
            Err(ScfError::Cancelled { checkpointed, .. }) => {
                return Err(PointStop::Cancelled {
                    checkpoint: checkpointed.then(|| ckpt.as_ref().unwrap().path.clone()),
                });
            }
            Err(e) => e.to_string(),
        };
        if retries >= shared.cfg.max_retries {
            return Err(PointStop::Failed(format!(
                "bias {bias} V failed after {retries} retries: {error}"
            )));
        }
        let backoff = shared.cfg.retry_backoff * 2u32.saturating_pow(retries);
        retries += 1;
        counters::add_service_retry();
        std::thread::sleep(backoff);
    }
}

/// Deposit the converged state into the warm store and build the
/// point's result record.
fn finish_point(
    vr: &VariantRuntime,
    bias: f64,
    res: qt_core::scf::ScfResult,
    warm_started: bool,
    degraded_to_cold: bool,
    retries: u32,
) -> PointResult {
    let point = PointResult {
        bias,
        current: res.current_history.last().copied().unwrap_or(0.0),
        iterations: res.iterations,
        converged: res.converged,
        warm_started,
        degraded_to_cold,
        retries,
    };
    vr.warm.deposit(
        bias,
        Arc::new(WarmStart {
            sigma: res.sigma,
            pi: res.pi,
        }),
    );
    point
}

/// Chaos hook: one elastic distributed iteration with a seeded rank
/// kill, run as a health probe of the pool's world. Exercises the
/// heartbeat → death → retile recovery end-to-end (its events land in
/// the same journal as the sweep) and retires the dead ranks from the
/// pool. The sweep's numbers are untouched: recovery is bitwise-exact,
/// and the probe shares no solver state with the SCF path.
#[cfg(feature = "fault-inject")]
fn chaos_probe(shared: &Shared, vr: &VariantRuntime, victim: usize) {
    use qt_dist::{distributed_iteration_elastic_with_faults, ElasticPolicy, FaultPlan};
    let procs = shared.cfg.pool_slots.max(2);
    let (te, ta) = if procs.is_multiple_of(2) {
        (2, procs / 2)
    } else {
        (1, procs)
    };
    let policy = ElasticPolicy {
        max_bad_fraction: 1.0 / procs as f64,
        ..Default::default()
    };
    let plan = FaultPlan::new(42).with_kill_at(victim % procs, 3);
    match distributed_iteration_elastic_with_faults(
        &vr.sim.p,
        &vr.sim.dev,
        &vr.sim.em,
        &vr.sim.pm,
        &vr.sim.grids,
        &vr.spec.cfg.gf,
        te,
        ta,
        &policy,
        plan,
    ) {
        Ok(out) => {
            if !out.deaths.is_empty() {
                shared.pool.retire(out.deaths.len());
            }
        }
        Err(e) => eprintln!("qt-serve: chaos probe failed outright: {e}"),
    }
}
