//! Untransformed reference SSE kernels (Fig. 5 / Fig. 8).
//!
//! A literal transcription of the paper's Python: one 8-D loop nest, every
//! small operation allocating its operands — the "Python" column of
//! Table 7. Correct, readable, slow; the other variants are checked against
//! it.

use super::SseInputs;
use crate::gf::{ElectronSelfEnergy, PhononSelfEnergy};
use crate::params::N3D;
use qt_linalg::{c64, Matrix, Tensor};

/// Fetch the `Norb × Norb` matrix at `G[kz, E, a]` as a fresh allocation.
fn g_block(g: &Tensor, k: usize, e: usize, a: usize, no: usize) -> Matrix {
    Matrix::from_vec(no, no, g.inner(&[k, e, a]).to_vec())
}

/// Fetch `∇H[a, slot, i]`.
fn dh_block(dh: &Tensor, a: usize, slot: usize, i: usize, no: usize) -> Matrix {
    Matrix::from_vec(no, no, dh.inner(&[a, slot, i]).to_vec())
}

/// `∇H_ba,i` via the reverse neighbor slot, falling back to the
/// antisymmetry `∇H_ba = −(∇H_ab)†`.
pub(super) fn dh_reverse(
    inputs: &SseInputs<'_>,
    a: usize,
    slot: usize,
    b: usize,
    i: usize,
) -> Matrix {
    let no = inputs.p.norb;
    match (0..inputs.p.nb).find(|&s| inputs.dev.neighbor(b, s) == Some(a)) {
        Some(s) => dh_block(inputs.dh, b, s, i, no),
        None => dh_block(inputs.dh, a, slot, i, no)
            .dagger()
            .scale(c64(-1.0, 0.0)),
    }
}

/// Σ≷ via the untransformed loop nest.
pub fn sigma(inputs: &SseInputs<'_>) -> ElectronSelfEnergy {
    let p = inputs.p;
    let no = p.norb;
    let mut out = ElectronSelfEnergy::zeros(p);
    let scale = c64(super::sigma_scale(p, inputs.grids), 0.0);
    for (g, d, d_other, sig) in [
        (
            inputs.g_lesser,
            inputs.d_lesser_pre,
            inputs.d_greater_pre,
            &mut out.lesser,
        ),
        (
            inputs.g_greater,
            inputs.d_greater_pre,
            inputs.d_lesser_pre,
            &mut out.greater,
        ),
    ] {
        for k in 0..p.nkz {
            for e in 0..p.ne {
                for q in 0..p.nqz {
                    for w in 0..p.nw {
                        let kq = inputs.grids.k_minus_q(k, q);
                        // Emission (E − ħω, weight D̃≷(ω)) and absorption
                        // (E + ħω, weight conj D̃≶(ω) with (i, j) swapped —
                        // the bosonic identity D≷(−ω) = D≶(ω)ᵀ*): the
                        // "G≷(E ± ħω)" the production code communicates.
                        let sidebands = [inputs.grids.e_minus_w(e, w), inputs.grids.e_plus_w(e, w)];
                        for i in 0..N3D {
                            for j in 0..N3D {
                                for a in 0..p.na {
                                    for slot in 0..p.nb {
                                        let Some(f) = inputs.dev.neighbor(a, slot) else {
                                            continue;
                                        };
                                        for (side, eshift) in sidebands.iter().enumerate() {
                                            let Some(es) = *eshift else {
                                                continue;
                                            };
                                            // dHG = G[k−q, E∓ω, f] @ ∇H[a, b, i]
                                            let dhg = g_block(g, kq, es, f, no)
                                                .matmul(&dh_block(inputs.dh, a, slot, i, no));
                                            let dval = if side == 0 {
                                                d.get(&[q, w, a, slot, i, j])
                                            } else {
                                                d_other.get(&[q, w, a, slot, j, i]).conj()
                                            };
                                            let dhd =
                                                dh_block(inputs.dh, a, slot, j, no).scale(dval);
                                            // Σ[k, E, a] += dHG @ dHD
                                            let prod = dhg.matmul(&dhd).scale(scale);
                                            let dst = sig.inner_mut(&[k, e, a]);
                                            for (o, v) in dst.iter_mut().zip(prod.as_slice()) {
                                                *o += *v;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Π≷ via the untransformed loop nest (Eqs. 4–5): for every neighbor pair
/// `(a, b)` and `(qz, ω)`,
/// `T_ij = Σ_{kz} ∫dE tr{∇H_ba,i · G≷_aa(E+ω, k+q) · ∇H_ab,j · G≶_bb(E, k)}`
/// contributes `+T` to the off-diagonal slot (Eq. 5) and `−T` to the
/// diagonal slot (Eq. 4).
pub fn pi(inputs: &SseInputs<'_>) -> PhononSelfEnergy {
    let p = inputs.p;
    let no = p.norb;
    let mut out = PhononSelfEnergy::zeros(p);
    let scale = c64(super::pi_scale(p, inputs.grids), 0.0);
    // Π< pairs G<(E+ω) with G>(E); Π> pairs G>(E+ω) with G<(E).
    for (g_hi, g_lo, pi_t) in [
        (inputs.g_lesser, inputs.g_greater, &mut out.lesser),
        (inputs.g_greater, inputs.g_lesser, &mut out.greater),
    ] {
        for q in 0..p.nqz {
            for w in 0..p.nw {
                for a in 0..p.na {
                    for slot in 0..p.nb {
                        let Some(b) = inputs.dev.neighbor(a, slot) else {
                            continue;
                        };
                        let mut t_ij = Matrix::zeros(N3D, N3D);
                        for k in 0..p.nkz {
                            let kq = inputs.grids.k_plus_q(k, q);
                            for e in 0..p.ne {
                                let Some(ep) = inputs.grids.e_plus_w(e, w) else {
                                    continue;
                                };
                                let g1 = g_block(g_hi, kq, ep, a, no);
                                let g2 = g_block(g_lo, k, e, b, no);
                                for i in 0..N3D {
                                    let dh_ba = dh_reverse(inputs, a, slot, b, i);
                                    for j in 0..N3D {
                                        let dh_ab = dh_block(inputs.dh, a, slot, j, no);
                                        let tr =
                                            dh_ba.matmul(&g1).matmul(&dh_ab).matmul(&g2).trace();
                                        t_ij[(i, j)] += tr;
                                    }
                                }
                            }
                        }
                        let t_ij = t_ij.scale(scale);
                        // Off-diagonal slot (Eq. 5, +i prefactor).
                        let dst = pi_t.inner_mut(&[q, w, a, slot]);
                        for (o, v) in dst.iter_mut().zip(t_ij.as_slice()) {
                            *o += *v;
                        }
                        // Diagonal slot (Eq. 4, −i prefactor).
                        let dst = pi_t.inner_mut(&[q, w, a, p.nb]);
                        for (o, v) in dst.iter_mut().zip(t_ij.as_slice()) {
                            *o -= *v;
                        }
                    }
                }
            }
        }
    }
    out
}
