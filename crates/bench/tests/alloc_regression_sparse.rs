//! Allocation-regression smoke for the sparse RGF path (feature
//! `count-alloc`): warm solves through the auto-selector must serve every
//! scratch buffer — dense workspace *and* pooled CSR storage — from the
//! arenas.
//!
//! Separate test binary from `alloc_regression` for the same reason that
//! one documents: the telemetry counters are process-global, so each
//! allocation assertion needs its own process. The solve runs inside a
//! 1-thread rayon pool so the arenas warm up on one deterministic worker.
#![cfg(feature = "count-alloc")]

use qt_core::rgf::{self, KernelSelector, MultiplyStrategy};

#[global_allocator]
static ALLOC: qt_bench::alloc::CountingAllocator = qt_bench::alloc::CountingAllocator;

#[test]
fn warm_sparse_selected_solves_are_allocation_free_on_the_hot_path() {
    let (blocks, bs) = (6usize, 32usize);
    let (a, sig) = qt_bench::sparse_rgf_problem(blocks, bs, 0.05, 7);
    // dense_rate = 0 forces the crossover to 1.0: every coupling block
    // routes through the CSR kernels regardless of measured density, so
    // the pooled sparse scratch (from_dense_pooled / recycle) is what
    // this test exercises.
    let auto = MultiplyStrategy::Auto {
        dense_rate: 0.0,
        sparse_rate: 1.0,
        band: 0.1,
    };
    let sel = KernelSelector::new(blocks - 1);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("rayon pool");
    pool.install(|| {
        qt_telemetry::set_enabled(true);
        qt_telemetry::reset_all();
        let solve = || {
            let out = rgf::rgf_with_selector(&a, &sig, auto, Some(&sel)).expect("rgf");
            // Return the output blocks so the next solve draws them from
            // the pool instead of the heap, like the SCF loop does.
            for m in out
                .gr_diag
                .into_iter()
                .chain(out.gl_diag)
                .chain(out.gg_diag)
                .chain(out.gr_lower)
                .chain(out.gr_upper)
                .chain(out.gl_lower)
            {
                qt_linalg::workspace::give(m);
            }
        };
        solve();
        for n in 0..blocks - 1 {
            assert_eq!(
                sel.choice(n),
                Some(true),
                "coupling {n}: selector must route sparse with a clamped crossover"
            );
        }
        let cold_fresh = qt_telemetry::counters::total_ws_fresh();
        let cold_bytes = qt_telemetry::counters::total_alloc_bytes();
        assert!(cold_fresh > 0, "cold solve must populate the arenas");
        assert!(
            cold_bytes > 0,
            "counting allocator must be active under --features count-alloc"
        );
        for warm in 1..=3u32 {
            let fresh0 = qt_telemetry::counters::total_ws_fresh();
            let bytes0 = qt_telemetry::counters::total_alloc_bytes();
            solve();
            assert_eq!(
                qt_telemetry::counters::total_ws_fresh(),
                fresh0,
                "warm solve {warm}: workspace pool misses"
            );
            let warm_bytes = qt_telemetry::counters::total_alloc_bytes() - bytes0;
            assert!(
                warm_bytes < cold_bytes / 2,
                "warm solve {warm}: {warm_bytes} bytes allocated vs cold {cold_bytes} — \
                 sparse hot path regressed"
            );
        }
    });
}
