//! Analytic flop models (§4.3, Table 3).
//!
//! The SSE formulas are the paper's own, exact:
//!
//! * OMEN:  `64·NA·NB·N3D·Nkz·Nqz·NE·Nω·Norb³`
//! * DaCe:  `32·NA·NB·N3D·Nkz·Nqz·NE·Nω·Norb³ + 32·NA·NB·N3D·Nkz·NE·Norb³`
//!
//! The GF-phase kernels (contour integral, RGF) mix dense and sparse work;
//! the paper measures them with `nvprof`. Our substitute: a block-cubed
//! model `8·Nkz·NE·bnum·κ·(NA/bnum·Norb)³` with κ calibrated once against
//! Table 3 (documented empirical constants, like the paper's measured
//! values).

use crate::params::{SimParams, N3D};

/// Calibrated RGF constant in `RGF_KAPPA·Nkz·NE·bnum·bs³` (fit to Table 3's
/// 52.95 Pflop at `Nkz = 3` for the 4,864-atom structure with `bnum = 152`).
pub const RGF_KAPPA: f64 = 2904.9;

/// Calibrated contour-integral constant in `CONTOUR_KAPPA·Nkz·NE·bs³`
/// (8.45 Pflop at the same calibration point).
pub const CONTOUR_KAPPA: f64 = 70459.0;

/// Table 3, "SSE (OMEN)": both small matrix products performed for every
/// point of the full 8-D iteration space.
pub fn sse_omen_flops(p: &SimParams) -> f64 {
    64.0 * (p.na * p.nb * N3D) as f64
        * (p.nkz * p.nqz) as f64
        * (p.ne * p.nw) as f64
        * (p.norb * p.norb * p.norb) as f64
}

/// Table 3, "SSE (DaCe)": redundancy removal makes the `∇H·G` stage
/// independent of `(Nqz, Nω)`.
pub fn sse_dace_flops(p: &SimParams) -> f64 {
    let norb3 = (p.norb * p.norb * p.norb) as f64;
    32.0 * (p.na * p.nb * N3D) as f64 * (p.nkz * p.nqz) as f64 * (p.ne * p.nw) as f64 * norb3
        + 32.0 * (p.na * p.nb * N3D) as f64 * p.nkz as f64 * p.ne as f64 * norb3
}

/// RGF flop model: `κ·Nkz·NE·bnum·bs³` with `bs = NA/bnum·Norb`.
pub fn rgf_flops(p: &SimParams) -> f64 {
    let bs = p.e_block_size() as f64;
    RGF_KAPPA * (p.nkz * p.ne * p.bnum) as f64 * bs * bs * bs
}

/// Contour-integral (boundary conditions) flop model.
pub fn contour_flops(p: &SimParams) -> f64 {
    let bs = p.e_block_size() as f64;
    CONTOUR_KAPPA * (p.nkz * p.ne) as f64 * bs * bs * bs
}

/// One full GF+SSE iteration under the DaCe variant.
pub fn iteration_flops_dace(p: &SimParams) -> f64 {
    contour_flops(p) + rgf_flops(p) + sse_dace_flops(p)
}

/// One full iteration under the original OMEN algorithm.
pub fn iteration_flops_omen(p: &SimParams) -> f64 {
    contour_flops(p) + rgf_flops(p) + sse_omen_flops(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PFLOP: f64 = 1e15;

    /// Table 3 row-by-row: SSE numbers are exact, GF-phase numbers are the
    /// calibrated fits.
    #[test]
    fn table3_sse_omen_exact() {
        // Paper: NA=4,864, NB=34, NE=706, Nω=70, Norb=12.
        for (nkz, expect) in [
            (3, 24.41),
            (5, 67.80),
            (7, 132.89),
            (9, 219.67),
            (11, 328.15),
        ] {
            let p = SimParams::paper_si_4864(nkz);
            let got = sse_omen_flops(&p) / PFLOP;
            assert!(
                (got - expect).abs() / expect < 0.005,
                "Nkz={nkz}: got {got:.2} Pflop, paper {expect}"
            );
        }
    }

    #[test]
    fn table3_sse_dace_matches_within_formula_tolerance() {
        // The paper's printed values deviate <2% from its own closed form
        // (extra bookkeeping in the measured kernel); we reproduce the
        // closed form.
        for (nkz, expect) in [
            (3, 12.38),
            (5, 34.19),
            (7, 66.85),
            (9, 110.36),
            (11, 164.71),
        ] {
            let p = SimParams::paper_si_4864(nkz);
            let got = sse_dace_flops(&p) / PFLOP;
            assert!(
                (got - expect).abs() / expect < 0.02,
                "Nkz={nkz}: got {got:.2} Pflop, paper {expect}"
            );
        }
    }

    #[test]
    fn sse_reduction_approaches_two() {
        let p = SimParams::paper_si_4864(11);
        let ratio = sse_omen_flops(&p) / sse_dace_flops(&p);
        assert!(ratio > 1.9 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn rgf_scales_linearly_in_nkz() {
        let f3 = rgf_flops(&SimParams::paper_si_4864(3));
        let f9 = rgf_flops(&SimParams::paper_si_4864(9));
        assert!((f9 / f3 - 3.0).abs() < 1e-12);
        // Calibration point: 52.95 Pflop at Nkz=3.
        assert!((f3 / PFLOP - 52.95).abs() / 52.95 < 0.02, "{}", f3 / PFLOP);
    }

    #[test]
    fn contour_calibration_point() {
        let f3 = contour_flops(&SimParams::paper_si_4864(3));
        assert!((f3 / PFLOP - 8.45).abs() / 8.45 < 0.02, "{}", f3 / PFLOP);
    }

    #[test]
    fn instrumented_kernels_match_analytic_shape() {
        // Run the actual Σ kernels at tiny scale and compare the measured
        // flop ratio OMEN/DaCe with the analytic prediction.
        use crate::sse::{self, testutil, SseVariant};
        let fx = testutil::fixture();
        let inputs = fx.inputs();
        let (_, f_omen) = qt_linalg::count_flops(|| sse::sigma(&inputs, SseVariant::Omen));
        let (_, f_dace) = qt_linalg::count_flops(|| sse::sigma(&inputs, SseVariant::Dace));
        let measured = f_omen as f64 / f_dace as f64;
        let analytic = sse_omen_flops(&fx.p) / sse_dace_flops(&fx.p);
        // The tiny fixture has boundary effects (energy window clamps),
        // so allow a generous band around the analytic ratio.
        assert!(
            (measured / analytic - 1.0).abs() < 0.8,
            "measured {measured:.2} vs analytic {analytic:.2}"
        );
        assert!(measured > 1.0);
    }
}
