//! Symbolic integer expressions.
//!
//! Memlet subsets in an SDFG are symbolic in the simulation parameters
//! (`Nkz`, `NE`, tile sizes `s_k`, …). Propagating them and summing access
//! counts requires a small computer-algebra layer: exact integer arithmetic,
//! affine-form extraction (for range propagation), `min`/`max` (for
//! clamping), simplification, and evaluation against parameter bindings.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A symbolic integer expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymExpr {
    Const(i64),
    Sym(String),
    Add(Box<SymExpr>, Box<SymExpr>),
    Sub(Box<SymExpr>, Box<SymExpr>),
    Mul(Box<SymExpr>, Box<SymExpr>),
    /// Euclidean (floor) division by a positive expression.
    Div(Box<SymExpr>, Box<SymExpr>),
    Min(Box<SymExpr>, Box<SymExpr>),
    Max(Box<SymExpr>, Box<SymExpr>),
}

/// Bindings from symbol names to concrete values.
pub type Bindings = BTreeMap<String, i64>;

/// Error when evaluating an expression with unbound symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnboundSymbol(pub String);

impl fmt::Display for UnboundSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unbound symbol `{}`", self.0)
    }
}

impl std::error::Error for UnboundSymbol {}

impl SymExpr {
    /// Symbol by name.
    pub fn sym(name: impl Into<String>) -> SymExpr {
        SymExpr::Sym(name.into())
    }

    /// Integer constant.
    pub const fn int(v: i64) -> SymExpr {
        SymExpr::Const(v)
    }

    pub fn min(self, other: SymExpr) -> SymExpr {
        SymExpr::Min(Box::new(self), Box::new(other)).simplified()
    }

    pub fn max(self, other: SymExpr) -> SymExpr {
        SymExpr::Max(Box::new(self), Box::new(other)).simplified()
    }

    /// Floor division (rhs must evaluate positive). Not `std::ops::Div`:
    /// this is flooring integer division on symbolic expressions, and the
    /// builder methods keep a uniform `min/max/div` naming.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: SymExpr) -> SymExpr {
        SymExpr::Div(Box::new(self), Box::new(other)).simplified()
    }

    /// Evaluate against bindings.
    pub fn eval(&self, b: &Bindings) -> Result<i64, UnboundSymbol> {
        Ok(match self {
            SymExpr::Const(v) => *v,
            SymExpr::Sym(s) => *b.get(s).ok_or_else(|| UnboundSymbol(s.clone()))?,
            SymExpr::Add(l, r) => l.eval(b)? + r.eval(b)?,
            SymExpr::Sub(l, r) => l.eval(b)? - r.eval(b)?,
            SymExpr::Mul(l, r) => l.eval(b)? * r.eval(b)?,
            SymExpr::Div(l, r) => l.eval(b)?.div_euclid(r.eval(b)?),
            SymExpr::Min(l, r) => l.eval(b)?.min(r.eval(b)?),
            SymExpr::Max(l, r) => l.eval(b)?.max(r.eval(b)?),
        })
    }

    /// All free symbols, sorted.
    pub fn symbols(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_symbols(&self, out: &mut Vec<String>) {
        match self {
            SymExpr::Const(_) => {}
            SymExpr::Sym(s) => out.push(s.clone()),
            SymExpr::Add(l, r)
            | SymExpr::Sub(l, r)
            | SymExpr::Mul(l, r)
            | SymExpr::Div(l, r)
            | SymExpr::Min(l, r)
            | SymExpr::Max(l, r) => {
                l.collect_symbols(out);
                r.collect_symbols(out);
            }
        }
    }

    /// Substitute a symbol by an expression.
    pub fn subs(&self, name: &str, value: &SymExpr) -> SymExpr {
        match self {
            SymExpr::Const(v) => SymExpr::Const(*v),
            SymExpr::Sym(s) => {
                if s == name {
                    value.clone()
                } else {
                    SymExpr::Sym(s.clone())
                }
            }
            SymExpr::Add(l, r) => {
                SymExpr::Add(Box::new(l.subs(name, value)), Box::new(r.subs(name, value)))
            }
            SymExpr::Sub(l, r) => {
                SymExpr::Sub(Box::new(l.subs(name, value)), Box::new(r.subs(name, value)))
            }
            SymExpr::Mul(l, r) => {
                SymExpr::Mul(Box::new(l.subs(name, value)), Box::new(r.subs(name, value)))
            }
            SymExpr::Div(l, r) => {
                SymExpr::Div(Box::new(l.subs(name, value)), Box::new(r.subs(name, value)))
            }
            SymExpr::Min(l, r) => {
                SymExpr::Min(Box::new(l.subs(name, value)), Box::new(r.subs(name, value)))
            }
            SymExpr::Max(l, r) => {
                SymExpr::Max(Box::new(l.subs(name, value)), Box::new(r.subs(name, value)))
            }
        }
        .simplified()
    }

    /// Recursive constant folding and identity elimination. Expressions with
    /// a purely affine structure are additionally rebuilt in canonical form,
    /// so `(a + 5) - a` folds to `5`.
    pub fn simplified(&self) -> SymExpr {
        let folded = self.folded();
        if let Some((coeffs, c)) = folded.as_affine() {
            let rebuilt = {
                let mut expr: Option<SymExpr> = None;
                for (name, &coeff) in coeffs.iter().filter(|(_, &v)| v != 0) {
                    let term = if coeff == 1 {
                        SymExpr::Sym(name.clone())
                    } else {
                        SymExpr::Mul(
                            Box::new(SymExpr::Const(coeff)),
                            Box::new(SymExpr::Sym(name.clone())),
                        )
                    };
                    expr = Some(match expr {
                        None => term,
                        Some(e) => SymExpr::Add(Box::new(e), Box::new(term)),
                    });
                }
                match (expr, c) {
                    (None, c) => SymExpr::Const(c),
                    (Some(e), 0) => e,
                    (Some(e), c) => SymExpr::Add(Box::new(e), Box::new(SymExpr::Const(c))),
                }
            };
            // Keep whichever form is smaller (the canonical rebuild folds
            // things like `(N − 1) + 1` but would bloat forms with many
            // repeated symbols).
            if rebuilt.node_count() < folded.node_count() {
                return rebuilt;
            }
        }
        folded
    }

    /// Number of nodes in the expression tree.
    fn node_count(&self) -> usize {
        match self {
            SymExpr::Const(_) | SymExpr::Sym(_) => 1,
            SymExpr::Add(l, r)
            | SymExpr::Sub(l, r)
            | SymExpr::Mul(l, r)
            | SymExpr::Div(l, r)
            | SymExpr::Min(l, r)
            | SymExpr::Max(l, r) => 1 + l.node_count() + r.node_count(),
        }
    }

    /// Structural constant folding and identity elimination.
    fn folded(&self) -> SymExpr {
        use SymExpr::*;
        match self {
            Const(_) | Sym(_) => self.clone(),
            Add(l, r) => match (l.simplified(), r.simplified()) {
                (Const(a), Const(b)) => Const(a + b),
                (Const(0), x) | (x, Const(0)) => x,
                (a, b) => Add(Box::new(a), Box::new(b)),
            },
            Sub(l, r) => match (l.simplified(), r.simplified()) {
                (Const(a), Const(b)) => Const(a - b),
                (x, Const(0)) => x,
                (a, b) if a == b => Const(0),
                (a, b) => Sub(Box::new(a), Box::new(b)),
            },
            Mul(l, r) => match (l.simplified(), r.simplified()) {
                (Const(a), Const(b)) => Const(a * b),
                (Const(0), _) | (_, Const(0)) => Const(0),
                (Const(1), x) | (x, Const(1)) => x,
                (a, b) => Mul(Box::new(a), Box::new(b)),
            },
            Div(l, r) => match (l.simplified(), r.simplified()) {
                (Const(a), Const(b)) if b != 0 => Const(a.div_euclid(b)),
                (x, Const(1)) => x,
                (Const(0), _) => Const(0),
                (a, b) => Div(Box::new(a), Box::new(b)),
            },
            Min(l, r) => match (l.simplified(), r.simplified()) {
                (Const(a), Const(b)) => Const(a.min(b)),
                (a, b) if a == b => a,
                (a, b) => Min(Box::new(a), Box::new(b)),
            },
            Max(l, r) => match (l.simplified(), r.simplified()) {
                (Const(a), Const(b)) => Const(a.max(b)),
                (a, b) if a == b => a,
                (a, b) => Max(Box::new(a), Box::new(b)),
            },
        }
    }

    /// Decompose into affine form `sum(coeff_i * sym_i) + const`, if possible.
    /// `Min`/`Max`/`Div` and products of symbols return `None`.
    pub fn as_affine(&self) -> Option<(BTreeMap<String, i64>, i64)> {
        use SymExpr::*;
        match self {
            Const(v) => Some((BTreeMap::new(), *v)),
            Sym(s) => {
                let mut m = BTreeMap::new();
                m.insert(s.clone(), 1);
                Some((m, 0))
            }
            Add(l, r) => {
                let (ml, cl) = l.as_affine()?;
                let (mut mr, cr) = r.as_affine()?;
                for (k, v) in ml {
                    *mr.entry(k).or_insert(0) += v;
                }
                Some((mr, cl + cr))
            }
            Sub(l, r) => {
                let (ml, cl) = l.as_affine()?;
                let (mr, cr) = r.as_affine()?;
                let mut m = ml;
                for (k, v) in mr {
                    *m.entry(k).or_insert(0) -= v;
                }
                Some((m, cl - cr))
            }
            Mul(l, r) => {
                let (ml, cl) = l.as_affine()?;
                let (mr, cr) = r.as_affine()?;
                if ml.is_empty() {
                    // constant * affine
                    let mut m = mr;
                    for v in m.values_mut() {
                        *v *= cl;
                    }
                    Some((m, cl * cr))
                } else if mr.is_empty() {
                    let mut m = ml;
                    for v in m.values_mut() {
                        *v *= cr;
                    }
                    Some((m, cl * cr))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// True if the expression is the constant zero after simplification.
    pub fn is_zero(&self) -> bool {
        matches!(self.simplified(), SymExpr::Const(0))
    }
}

impl From<i64> for SymExpr {
    fn from(v: i64) -> Self {
        SymExpr::Const(v)
    }
}

impl From<&str> for SymExpr {
    fn from(s: &str) -> Self {
        SymExpr::sym(s)
    }
}

impl Add for SymExpr {
    type Output = SymExpr;
    fn add(self, rhs: SymExpr) -> SymExpr {
        SymExpr::Add(Box::new(self), Box::new(rhs)).simplified()
    }
}

impl Sub for SymExpr {
    type Output = SymExpr;
    fn sub(self, rhs: SymExpr) -> SymExpr {
        SymExpr::Sub(Box::new(self), Box::new(rhs)).simplified()
    }
}

impl Mul for SymExpr {
    type Output = SymExpr;
    fn mul(self, rhs: SymExpr) -> SymExpr {
        SymExpr::Mul(Box::new(self), Box::new(rhs)).simplified()
    }
}

impl Neg for SymExpr {
    type Output = SymExpr;
    fn neg(self) -> SymExpr {
        SymExpr::Const(0) - self
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExpr::Const(v) => write!(f, "{v}"),
            SymExpr::Sym(s) => write!(f, "{s}"),
            SymExpr::Add(l, r) => write!(f, "({l} + {r})"),
            SymExpr::Sub(l, r) => write!(f, "({l} - {r})"),
            SymExpr::Mul(l, r) => write!(f, "{l}*{r}"),
            SymExpr::Div(l, r) => write!(f, "({l} / {r})"),
            SymExpr::Min(l, r) => write!(f, "min({l}, {r})"),
            SymExpr::Max(l, r) => write!(f, "max({l}, {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn eval_basic() {
        let e = SymExpr::sym("x") * SymExpr::int(3) + SymExpr::sym("y") - SymExpr::int(1);
        assert_eq!(e.eval(&b(&[("x", 4), ("y", 2)])).unwrap(), 13);
    }

    #[test]
    fn unbound_symbol_errors() {
        let e = SymExpr::sym("missing");
        assert!(e.eval(&b(&[])).is_err());
    }

    #[test]
    fn simplification_identities() {
        let x = SymExpr::sym("x");
        assert_eq!((x.clone() + SymExpr::int(0)), x);
        assert_eq!((x.clone() * SymExpr::int(1)), x);
        assert_eq!((x.clone() * SymExpr::int(0)), SymExpr::int(0));
        assert_eq!((x.clone() - x.clone()), SymExpr::int(0));
        assert_eq!(SymExpr::int(2) + SymExpr::int(3), SymExpr::int(5));
    }

    #[test]
    fn min_max_fold() {
        assert_eq!(SymExpr::int(3).min(SymExpr::int(5)), SymExpr::int(3));
        assert_eq!(SymExpr::int(3).max(SymExpr::int(5)), SymExpr::int(5));
        let x = SymExpr::sym("x");
        assert_eq!(x.clone().min(x.clone()), x);
    }

    #[test]
    fn canonical_rebuild_folds_constant_chains() {
        // (N − 1) + 1 → N
        let e = SymExpr::sym("N") - SymExpr::int(1) + SymExpr::int(1);
        assert_eq!(e, SymExpr::sym("N"));
        // x + x → 2*x
        let two_x = SymExpr::sym("x") + SymExpr::sym("x");
        let b: Bindings = [("x".to_string(), 7)].into_iter().collect();
        assert_eq!(two_x.eval(&b).unwrap(), 14);
    }

    #[test]
    fn substitute() {
        // (k - q) with k := tk*sk  ->  tk*sk - q
        let e = SymExpr::sym("k") - SymExpr::sym("q");
        let s = e.subs("k", &(SymExpr::sym("tk") * SymExpr::sym("sk")));
        assert_eq!(s.eval(&b(&[("tk", 2), ("sk", 10), ("q", 3)])).unwrap(), 17);
    }

    #[test]
    fn affine_decomposition() {
        // 2x - 3y + 7
        let e = SymExpr::int(2) * SymExpr::sym("x") - SymExpr::int(3) * SymExpr::sym("y")
            + SymExpr::int(7);
        let (coeffs, c) = e.as_affine().unwrap();
        assert_eq!(c, 7);
        assert_eq!(coeffs.get("x"), Some(&2));
        assert_eq!(coeffs.get("y"), Some(&-3));
        // x*y is not affine
        let nl = SymExpr::sym("x") * SymExpr::sym("y");
        assert!(nl.as_affine().is_none());
    }

    #[test]
    fn floor_division() {
        let e = SymExpr::sym("n").div(SymExpr::int(4));
        assert_eq!(e.eval(&b(&[("n", 10)])).unwrap(), 2);
        assert_eq!(e.eval(&b(&[("n", -1)])).unwrap(), -1);
    }

    #[test]
    fn display_readable() {
        let e = SymExpr::sym("sk") + SymExpr::sym("sq") - SymExpr::int(1);
        assert_eq!(format!("{e}"), "((sk + sq) - 1)");
    }

    #[test]
    fn symbols_sorted_unique() {
        let e = SymExpr::sym("b") * SymExpr::sym("a") + SymExpr::sym("b");
        assert_eq!(e.symbols(), vec!["a".to_string(), "b".to_string()]);
    }
}
