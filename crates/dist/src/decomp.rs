//! Data decompositions: OMEN's momentum×energy split and DaCe's
//! energy×atom tiling (§4.1).

use qt_core::params::SimParams;
use std::ops::Range;

/// Balanced contiguous 1-D block partition of `total` items into `parts`.
#[derive(Clone, Copy, Debug)]
pub struct BlockPartition {
    pub total: usize,
    pub parts: usize,
}

impl BlockPartition {
    pub fn new(total: usize, parts: usize) -> Self {
        assert!(parts > 0 && parts <= total, "need 1..=total parts");
        BlockPartition { total, parts }
    }

    /// Half-open index range of part `i`. The first `total % parts` parts
    /// get one extra element.
    pub fn range(&self, i: usize) -> Range<usize> {
        assert!(i < self.parts);
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        let start = i * base + i.min(extra);
        let len = base + usize::from(i < extra);
        start..start + len
    }

    /// Which part owns global index `idx`.
    pub fn owner(&self, idx: usize) -> usize {
        assert!(idx < self.total);
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        let fat = (base + 1) * extra; // indices covered by the fat parts
        if idx < fat {
            idx / (base + 1)
        } else {
            extra + (idx - fat) / base.max(1)
        }
    }

    pub fn len(&self, i: usize) -> usize {
        self.range(i).len()
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// OMEN's natural decomposition: processes split the energy axis
/// (momentum kept whole per process at this granularity).
#[derive(Clone, Copy, Debug)]
pub struct OmenDecomp {
    pub energy: BlockPartition,
}

impl OmenDecomp {
    pub fn new(p: &SimParams, procs: usize) -> Self {
        OmenDecomp {
            energy: BlockPartition::new(p.ne, procs),
        }
    }

    /// Owner rank of the `(qz, ω)` phonon point (round-robin).
    pub fn d_owner(&self, p: &SimParams, q: usize, w: usize) -> usize {
        (q * p.nw + w) % self.energy.parts
    }
}

/// OMEN's full three-level MPI distribution (§2.1): momentum groups ×
/// energy chunks × spatial (RGF block) ranks. The paper's production runs
/// validated this layout up to 95k cores; the communication analysis of
/// §4.1 collapses the momentum and spatial levels and keeps the energy
/// split, which is what [`OmenDecomp`] models.
#[derive(Clone, Copy, Debug)]
pub struct ThreeLevelDecomp {
    /// Partition of the `Nkz` momentum points.
    pub momentum: BlockPartition,
    /// Partition of the `NE` energies within one momentum group.
    pub energy: BlockPartition,
    /// Spatial ranks sharing one `(kz, E)` RGF solve.
    pub spatial: usize,
}

impl ThreeLevelDecomp {
    pub fn new(p: &SimParams, k_groups: usize, e_groups: usize, spatial: usize) -> Self {
        assert!(spatial >= 1);
        ThreeLevelDecomp {
            momentum: BlockPartition::new(p.nkz, k_groups),
            energy: BlockPartition::new(p.ne, e_groups),
            spatial,
        }
    }

    /// Total rank count.
    pub fn procs(&self) -> usize {
        self.momentum.parts * self.energy.parts * self.spatial
    }

    /// Rank of `(momentum group, energy group, spatial index)`.
    pub fn rank(&self, kg: usize, eg: usize, s: usize) -> usize {
        (kg * self.energy.parts + eg) * self.spatial + s
    }

    /// Inverse of [`ThreeLevelDecomp::rank`].
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        let s = rank % self.spatial;
        let rest = rank / self.spatial;
        (rest / self.energy.parts, rest % self.energy.parts, s)
    }

    /// The spatial group of ranks that collectively own the `(kz, E)` point.
    pub fn owners_of_point(&self, kz: usize, e: usize) -> std::ops::Range<usize> {
        let base = self.rank(self.momentum.owner(kz), self.energy.owner(e), 0);
        base..base + self.spatial
    }
}

/// DaCe's communication-avoiding tiling: `TE` energy × `TA` atom tiles.
#[derive(Clone, Copy, Debug)]
pub struct DaceDecomp {
    pub te: usize,
    pub ta: usize,
    pub energy: BlockPartition,
    pub atoms: BlockPartition,
}

impl DaceDecomp {
    pub fn new(p: &SimParams, te: usize, ta: usize) -> Self {
        DaceDecomp {
            te,
            ta,
            energy: BlockPartition::new(p.ne, te),
            atoms: BlockPartition::new(p.na, ta),
        }
    }

    pub fn procs(&self) -> usize {
        self.te * self.ta
    }

    /// Rank of tile `(i, j)`.
    pub fn rank(&self, i: usize, j: usize) -> usize {
        i * self.ta + j
    }

    /// Tile coordinates of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.ta, rank % self.ta)
    }

    /// Energies needed by energy-tile `i`, including the `Nω` halo on both
    /// sides (for the `E ∓ ω` emission/absorption reads — the `2Nω` term of
    /// the volume formula), clamped to the grid.
    pub fn energy_halo(&self, i: usize, nw: usize) -> Range<usize> {
        let r = self.energy.range(i);
        r.start.saturating_sub(nw)..(r.end + nw).min(self.energy.total)
    }

    /// Atoms needed by atom-tile `j`: the tile widened by the neighbor
    /// window `NB/2` on each side (the paper's indirection model), clamped.
    pub fn atom_window(&self, j: usize, nb: usize, na: usize) -> Range<usize> {
        let r = self.atoms.range(j);
        r.start.saturating_sub(nb / 2 + nb % 2)..(r.end + nb / 2 + nb % 2).min(na)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly() {
        for (total, parts) in [(10, 3), (16, 4), (7, 7), (100, 9)] {
            let bp = BlockPartition::new(total, parts);
            let mut covered = vec![false; total];
            for i in 0..parts {
                for idx in bp.range(i) {
                    assert!(!covered[idx], "overlap at {idx}");
                    covered[idx] = true;
                    assert_eq!(bp.owner(idx), i, "owner({idx})");
                }
            }
            assert!(covered.iter().all(|&c| c), "gap in cover");
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = (0..parts).map(|i| bp.len(i)).collect();
            let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn dace_grid_roundtrip() {
        let p = SimParams::test_small();
        let d = DaceDecomp::new(&p, 3, 4);
        assert_eq!(d.procs(), 12);
        for r in 0..12 {
            let (i, j) = d.coords(r);
            assert_eq!(d.rank(i, j), r);
        }
    }

    #[test]
    fn halos_clamp_at_boundaries() {
        let p = SimParams::test_small(); // ne=12, na=16, nw=3, nb=4
        let d = DaceDecomp::new(&p, 3, 4);
        let h0 = d.energy_halo(0, p.nw);
        assert_eq!(h0.start, 0);
        let h1 = d.energy_halo(1, p.nw);
        assert_eq!(h1.start, d.energy.range(1).start - p.nw);
        assert_eq!(h1.end, d.energy.range(1).end + p.nw);
        let hlast = d.energy_halo(2, p.nw);
        assert_eq!(hlast.end, p.ne, "upper halo clamps at the grid end");
        let w0 = d.atom_window(0, p.nb, p.na);
        assert_eq!(w0.start, 0);
        let w3 = d.atom_window(3, p.nb, p.na);
        assert_eq!(w3.end, p.na);
        let w1 = d.atom_window(1, p.nb, p.na);
        assert_eq!(w1.start, d.atoms.range(1).start - 2);
        assert_eq!(w1.end, d.atoms.range(1).end + 2);
    }

    #[test]
    fn three_level_rank_bijection() {
        let p = SimParams::test_small(); // nkz=3, ne=12
        let d = ThreeLevelDecomp::new(&p, 3, 4, 2);
        assert_eq!(d.procs(), 24);
        for r in 0..d.procs() {
            let (kg, eg, s) = d.coords(r);
            assert_eq!(d.rank(kg, eg, s), r);
        }
        // Every (kz, E) point has exactly `spatial` owners, and all points
        // are covered.
        let mut owned = vec![0usize; d.procs()];
        for kz in 0..p.nkz {
            for e in 0..p.ne {
                let o = d.owners_of_point(kz, e);
                assert_eq!(o.len(), 2);
                for r in o {
                    owned[r] += 1;
                }
            }
        }
        // Balanced: every rank owns the same number of points (dims divide).
        assert!(owned.iter().all(|&c| c == owned[0]), "{owned:?}");
    }

    #[test]
    fn omen_d_owner_round_robin() {
        let p = SimParams::test_small();
        let d = OmenDecomp::new(&p, 4);
        let owners: Vec<usize> = (0..p.nqz)
            .flat_map(|q| (0..p.nw).map(move |w| (q, w)))
            .map(|(q, w)| d.d_owner(&p, q, w))
            .collect();
        assert!(owners.iter().all(|&o| o < 4));
        for r in 0..4 {
            assert!(owners.contains(&r));
        }
    }
}
