//! The complete §3 workflow in one run: a domain scientist writes the SSE
//! kernel in the high-level DSL (the Fig. 5 program), the frontend parses
//! it into a dataflow IR, and the performance engineer applies the §4.2
//! transformation pipeline — without touching the original source.
//!
//! ```sh
//! cargo run --release --example frontend_pipeline
//! ```

use dace_omen::sdfg::library;
use dace_omen::sdfg::{parse_program, transforms, Bindings, StateGraph, FIG5_SSE_SIGMA};

fn main() {
    println!("== domain scientist's source (Fig. 5 DSL) ==");
    println!("{}", FIG5_SSE_SIGMA.trim());

    let tree = parse_program(FIG5_SSE_SIGMA).expect("the Fig. 5 program parses");
    println!("\n== parsed dataflow (scope tree) ==\n{tree}");

    let b: Bindings = [
        ("Nkz", 3i64),
        ("NE", 32),
        ("Nqz", 3),
        ("Nw", 4),
        ("N3D", 3),
        ("NA", 32),
        ("NB", 4),
        ("Norb", 4),
    ]
    .iter()
    .map(|&(k, v)| (k.to_string(), v))
    .collect();
    let models = [library::neighbor_model()];
    let before = tree.stats(&b, &models);
    println!(
        "movement before: {:.3} Gflop, {} accesses, {} KiB transients",
        before.flops as f64 / 1e9,
        before.total_accesses(),
        before.transient_bytes / 1024
    );

    // Performance engineer's session: fission, redundancy removal, layout,
    // fusion — the same rewrites the paper applies, on the *parsed* tree.
    let mut tree = tree;
    transforms::map_fission(&mut tree, "map0").expect("fission");
    transforms::redundancy_removal(
        &mut tree,
        "map_stmt1",
        &[("kz".into(), "qz".into()), ("E".into(), "w".into())],
    )
    .expect("redundancy removal");
    transforms::data_layout(&mut tree, "G", &[2, 0, 1, 3, 4]).expect("layout");
    transforms::multiplication_fusion(&mut tree, "map_stmt1", &["kz", "E"]).expect("fusion");
    tree.validate().expect("still valid");

    let after = tree.stats(&b, &models);
    println!(
        "movement after:  {:.3} Gflop, {} accesses, {} KiB transients",
        after.flops as f64 / 1e9,
        after.total_accesses(),
        after.transient_bytes / 1024
    );
    println!(
        "flop reduction {:.2}x, access reduction {:.2}x",
        before.flops as f64 / after.flops as f64,
        before.total_accesses() as f64 / after.total_accesses() as f64
    );

    std::fs::write(
        "fig5_parsed_transformed.dot",
        StateGraph::from_tree(&tree).to_dot(),
    )
    .expect("write dot");
    println!("\nwrote fig5_parsed_transformed.dot");
    println!("\ntransformed tree:\n{tree}");
}
