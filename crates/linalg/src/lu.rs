//! LU factorization with partial pivoting for complex dense matrices.
//!
//! The RGF recursion inverts one diagonal block per forward step
//! (`gR_n = (A_nn − A_{n,n-1} gR_{n-1} A_{n-1,n})^{-1}`), so a robust dense
//! inverse is the second-most executed kernel after GEMM.

use crate::complex::Complex64;
use crate::dense::Matrix;
use crate::flops;
use std::fmt;

/// Error returned when a pivot is (numerically) zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix;

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

/// Packed LU factorization `P·A = L·U` of a square matrix.
#[derive(Debug)]
pub struct Lu {
    lu: Matrix,
    piv: Vec<usize>,
}

/// Column-panel width of the blocked factorization: matches the
/// substitution's [`SOLVE_BLOCK`] so both phases hand the packed GEMM
/// kernel the same rank-16 updates.
const FACTOR_BLOCK: usize = 16;

/// Factor `lu` in place with partial pivoting; `piv` must hold the
/// identity permutation on entry. The shared core of [`Lu::factor`] and
/// the workspace-pooled [`invert_ws`].
///
/// Blocked right-looking: each `FACTOR_BLOCK`-wide column panel is
/// factored with scalar rank-1 updates (pivot search over the full
/// remaining column height, row swaps across the full width — the same
/// pivots partial pivoting would pick unblocked), then the panel's `U12`
/// strip is completed by a small in-panel triangular solve and the
/// trailing submatrix takes one `A22 −= L21·U12` rank-`FACTOR_BLOCK`
/// update through the packed GEMM kernel, where the bulk of the `n³/3`
/// work lives.
fn factor_in_place(lu: &mut Matrix, piv: &mut [usize]) -> Result<(), SingularMatrix> {
    let n = lu.rows();
    // ~8/3 n^3 real flop for complex LU.
    flops::add_flops((8 * n as u64 * n as u64 * n as u64) / 3);
    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + FACTOR_BLOCK).min(n);
        // Panel factorization: rank-1 updates restricted to the panel's
        // own columns.
        for col in k0..k1 {
            let mut p = col;
            let mut best = lu[(col, col)].norm_sqr();
            for r in col + 1..n {
                let v = lu[(r, col)].norm_sqr();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best == 0.0 || !best.is_finite() {
                return Err(SingularMatrix);
            }
            if p != col {
                piv.swap(p, col);
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot_inv = lu[(col, col)].inv();
            for r in col + 1..n {
                let factor = lu[(r, col)] * pivot_inv;
                lu[(r, col)] = factor;
                if factor == Complex64::ZERO {
                    continue;
                }
                for j in col + 1..k1 {
                    let u = lu[(col, j)];
                    lu[(r, j)] = lu[(r, j)].mul_add(-factor, u);
                }
            }
        }
        if k1 < n {
            let s = lu.as_mut_slice();
            // U12 := L11⁻¹·A12 — unit-lower triangular solve over the
            // panel's rows, right-hand sides in columns k1..n.
            for col in k0..k1 - 1 {
                let (head, tail) = s.split_at_mut((col + 1) * n);
                let ucol = &head[col * n + k1..col * n + n];
                for row in tail.chunks_exact_mut(n).take(k1 - col - 1) {
                    let l = row[col];
                    if l == Complex64::ZERO {
                        continue;
                    }
                    for (o, &u) in row[k1..n].iter_mut().zip(ucol.iter()) {
                        *o = o.mul_add(-l, u);
                    }
                }
            }
            // Trailing update A22 −= L21·U12. L21 is copied into a pooled
            // contiguous panel: the GEMM reads it while writing A22, and
            // both live in the same rows of the factor buffer.
            let m2 = n - k1;
            let fbw = k1 - k0;
            let mut l21 = crate::workspace::take_scratch_empty(m2 * fbw);
            for i in 0..m2 {
                l21.extend_from_slice(&s[(k1 + i) * n + k0..(k1 + i) * n + k1]);
            }
            let (head, tail) = s.split_at_mut(k1 * n);
            crate::gemm::gemm_view_abc_scaled_acc_uninstrumented(
                m2,
                fbw,
                m2,
                &l21,
                fbw,
                &head[k0 * n + k1..],
                n,
                &mut tail[k1..],
                n,
                Complex64::real(-1.0),
            );
            crate::workspace::give_scratch(l21);
        }
        k0 = k1;
    }
    Ok(())
}

/// Row-block size of the blocked substitution: small enough that the
/// in-block triangular solves stay a minor fraction of the work, large
/// enough that the off-block updates are GEMM-shaped.
const SOLVE_BLOCK: usize = 16;

/// Forward/backward substitution of the packed factors into `x`, which on
/// entry holds the row-permuted right-hand side.
///
/// Blocked: the strictly-triangular bulk of both sweeps is expressed as
/// `X_block −= T_block · X_done` rank-`k` updates through the packed GEMM
/// kernel, so an `n`-rhs solve (the inverse computation RGF performs per
/// diagonal block) runs at GEMM rate instead of the scalar-loop rate; only
/// the `SOLVE_BLOCK`-wide in-block triangles remain scalar.
fn substitute_in_place(lu: &Matrix, x: &mut Matrix) {
    let n = lu.rows();
    let nrhs = x.cols();
    if n == 0 || nrhs == 0 {
        return;
    }
    let a = lu.as_slice();
    let xs = x.as_mut_slice();
    let neg = Complex64::real(-1.0);
    // Forward substitution with unit-diagonal L.
    let mut i0 = 0;
    while i0 < n {
        let ib = (n - i0).min(SOLVE_BLOCK);
        let (done, rest) = xs.split_at_mut(i0 * nrhs);
        let block = &mut rest[..ib * nrhs];
        if i0 > 0 {
            crate::gemm::gemm_view_a_scaled_acc_uninstrumented(
                ib,
                i0,
                nrhs,
                &a[i0 * n..],
                n,
                done,
                block,
                neg,
            );
        }
        for i in 1..ib {
            let (head, tail) = block.split_at_mut(i * nrhs);
            let xi = &mut tail[..nrhs];
            for k in 0..i {
                let l = a[(i0 + i) * n + i0 + k];
                if l == Complex64::ZERO {
                    continue;
                }
                let xk = &head[k * nrhs..(k + 1) * nrhs];
                for (o, &v) in xi.iter_mut().zip(xk.iter()) {
                    *o = o.mul_add(-l, v);
                }
            }
        }
        i0 += ib;
    }
    // Backward substitution with U.
    let mut i1 = n;
    while i1 > 0 {
        let ib = i1.min(SOLVE_BLOCK);
        let i0 = i1 - ib;
        let (head, tail) = xs.split_at_mut(i1 * nrhs);
        let block = &mut head[i0 * nrhs..];
        if i1 < n {
            crate::gemm::gemm_view_a_scaled_acc_uninstrumented(
                ib,
                n - i1,
                nrhs,
                &a[i0 * n + i1..],
                n,
                tail,
                block,
                neg,
            );
        }
        for i in (0..ib).rev() {
            let (bh, bt) = block.split_at_mut((i + 1) * nrhs);
            let xi = &mut bh[i * nrhs..];
            for k in i + 1..ib {
                let u = a[(i0 + i) * n + i0 + k];
                if u == Complex64::ZERO {
                    continue;
                }
                let xk = &bt[(k - i - 1) * nrhs..(k - i) * nrhs];
                for (o, &v) in xi.iter_mut().zip(xk.iter()) {
                    *o = o.mul_add(-u, v);
                }
            }
            let d = a[(i0 + i) * n + i0 + i].inv();
            for v in xi.iter_mut() {
                *v *= d;
            }
        }
        i1 = i0;
    }
}

impl Lu {
    /// Factor `a` (square) with partial pivoting.
    pub fn factor(a: &Matrix) -> Result<Lu, SingularMatrix> {
        assert!(a.is_square(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        factor_in_place(&mut lu, &mut piv)?;
        Ok(Lu { lu, piv })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A X = B` for a dense right-hand side; `b` is `n x nrhs`.
    pub fn solve(&self, b: &Matrix) -> Matrix {
        let n = self.order();
        assert_eq!(b.rows(), n, "rhs row count mismatch");
        let nrhs = b.cols();
        flops::add_flops(8 * (n * n * nrhs) as u64);
        // Apply the row permutation.
        let mut x = Matrix::from_fn(n, nrhs, |i, j| b[(self.piv[i], j)]);
        substitute_in_place(&self.lu, &mut x);
        x
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> Complex64 {
        let n = self.order();
        // Sign of the permutation.
        let mut seen = vec![false; n];
        let mut sign = 1.0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut i = start;
            while !seen[i] {
                seen[i] = true;
                i = self.piv[i];
                len += 1;
            }
            if len.is_multiple_of(2) {
                sign = -sign;
            }
        }
        let mut d = Complex64::real(sign);
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Invert a square matrix (`A^{-1}`), the operation the RGF forward pass
/// performs per diagonal block.
pub fn invert(a: &Matrix) -> Result<Matrix, SingularMatrix> {
    let lu = Lu::factor(a)?;
    Ok(lu.solve(&Matrix::identity(a.rows())))
}

/// Solve `A X = B` in one call.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, SingularMatrix> {
    Ok(Lu::factor(a)?.solve(b))
}

/// Invert a square matrix into a [`workspace`](crate::workspace)-pooled
/// result. The LU factors and pivot buffer are themselves checked out of
/// (and returned to) the calling thread's pool, so warm calls perform no
/// heap allocation. The caller owns the returned matrix and should
/// `workspace::give` it back once its contents are consumed. Numerics and
/// flop accounting are identical to [`invert`].
pub fn invert_ws(a: &Matrix) -> Result<Matrix, SingularMatrix> {
    assert!(a.is_square(), "LU requires a square matrix");
    let n = a.rows();
    let mut lu = crate::workspace::take_uninit(n, n);
    lu.copy_from(a);
    let mut piv = crate::workspace::take_idx(n);
    for (i, p) in piv.iter_mut().enumerate() {
        *p = i;
    }
    let out = factor_in_place(&mut lu, &mut piv).map(|()| {
        flops::add_flops(8 * (n * n * n) as u64);
        // Row-permuted identity as the right-hand side.
        let mut x = crate::workspace::take(n, n);
        for (i, &p) in piv.iter().enumerate() {
            x[(i, p)] = Complex64::ONE;
        }
        substitute_in_place(&lu, &mut x);
        x
    });
    crate::workspace::give(lu);
    crate::workspace::give_idx(piv);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn inverse_roundtrip() {
        let mut r = rng();
        for n in [1usize, 2, 3, 5, 8, 16, 31] {
            let a = Matrix::random(n, n, &mut r);
            let inv = invert(&a).expect("random matrices are a.s. nonsingular");
            let eye = a.matmul(&inv);
            assert!(eye.max_abs_diff(&Matrix::identity(n)) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn solve_matches_inverse_multiply() {
        let mut r = rng();
        let a = Matrix::random(12, 12, &mut r);
        let b = Matrix::random(12, 4, &mut r);
        let x = solve(&a, &b).unwrap();
        let resid = &a.matmul(&x) - &b;
        assert!(resid.max_abs() < 1e-10);
    }

    #[test]
    fn singular_detected() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = c64(1.0, 0.0);
        a[(1, 1)] = c64(2.0, 0.0);
        // third row/col zero -> singular
        assert_eq!(Lu::factor(&a).unwrap_err(), SingularMatrix);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // [[0, 1], [1, 0]] requires a row swap.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = Complex64::ONE;
        a[(1, 0)] = Complex64::ONE;
        let inv = invert(&a).unwrap();
        assert!(
            inv.max_abs_diff(&a) < 1e-14,
            "permutation is its own inverse"
        );
    }

    #[test]
    fn determinant_of_known_matrix() {
        // det([[1, 2], [3, 4]]) = -2
        let a = Matrix::from_vec(
            2,
            2,
            vec![c64(1.0, 0.0), c64(2.0, 0.0), c64(3.0, 0.0), c64(4.0, 0.0)],
        );
        let d = Lu::factor(&a).unwrap().det();
        assert!((d - c64(-2.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn det_multiplicative() {
        let mut r = rng();
        let a = Matrix::random(5, 5, &mut r);
        let b = Matrix::random(5, 5, &mut r);
        let dab = Lu::factor(&a.matmul(&b)).unwrap().det();
        let da = Lu::factor(&a).unwrap().det();
        let db = Lu::factor(&b).unwrap().det();
        assert!((dab - da * db).abs() / dab.abs().max(1.0) < 1e-9);
    }

    #[test]
    fn identity_inverse_is_identity() {
        let inv = invert(&Matrix::identity(7)).unwrap();
        assert!(inv.max_abs_diff(&Matrix::identity(7)) < 1e-14);
    }

    #[test]
    fn invert_ws_is_bit_identical_to_invert() {
        let mut r = rng();
        for n in [1usize, 3, 8, 17] {
            let a = Matrix::random(n, n, &mut r);
            let heap = invert(&a).unwrap();
            let pooled = invert_ws(&a).unwrap();
            assert_eq!(heap.as_slice(), pooled.as_slice(), "n={n}");
            crate::workspace::give(pooled);
        }
        // Singular input still reports the error (and returns its buffers).
        let z = Matrix::zeros(4, 4);
        assert_eq!(invert_ws(&z).unwrap_err(), SingularMatrix);
    }

    #[test]
    fn invert_ws_counts_the_same_flops_as_invert() {
        let mut r = rng();
        let a = Matrix::random(9, 9, &mut r);
        let (_, heap_flops) = flops::count_flops(|| invert(&a).unwrap());
        let (pooled, ws_flops) = flops::count_flops(|| invert_ws(&a).unwrap());
        assert_eq!(heap_flops, ws_flops);
        crate::workspace::give(pooled);
    }
}
