//! Data-centric transformed SSE kernels (Fig. 12).
//!
//! The Σ≷ kernel applies the full §4.2 pipeline:
//!
//! 1. **Redundancy removal** — `∇H·G` is computed once per `(a, b, i, kz, E)`
//!    instead of once per `(a, b, i, j, kz, E, qz, ω)`: the `(qz, ω)`
//!    dimensions only offset the `(kz, E)` indices, which already span the
//!    full grid (Fig. 10b). This halves the flop count (Table 3).
//! 2. **Data layout** — `G≷` is permuted to `[NA, Nkz, NE, Norb, Norb]` so
//!    the per-atom `(kz, E)` batch is contiguous (Fig. 10c).
//! 3. **Multiplication fusion** — the `Nkz·NE` small products collapse into
//!    one wide GEMM per `(a, b, i)` (Fig. 10d).
//! 4. **Batched GEMM over E** — flipping the `(E, ω)` loops makes every
//!    energy of a sideband multiply the *same* `D̃(qz, ω)` block, so each
//!    `(kz, qz, ω)` emits one shared-B batch over the whole contiguous
//!    energy run instead of `NE` windowed products (Fig. 11).
//! 5. **Map fusion over `(a, b)`** — all transients are per-`(a, b)` work
//!    buffers of rank 3, not global 7-D tensors (Fig. 12), checked out of
//!    the per-thread [`workspace`] pool so warm SCF iterations touch the
//!    allocator only for the escaping per-atom partial sums, and the outer
//!    atom loop parallelizes over the rayon pool.

use super::SseInputs;
use crate::gf::{ElectronSelfEnergy, PhononSelfEnergy};
use crate::params::N3D;
use qt_linalg::{c64, gemm, workspace, Complex64, Matrix};
use rayon::prelude::*;

/// Σ≷ via the transformed kernel.
pub fn sigma(inputs: &SseInputs<'_>) -> ElectronSelfEnergy {
    let p = inputs.p;
    let no = p.norb;
    let nn = no * no;
    let scale = c64(super::sigma_scale(p, inputs.grids), 0.0);
    // Data-layout transformation: G≷ -> [NA, Nkz, NE, No, No], staged in
    // pooled storage and recycled once the partials are in.
    let perm = [2usize, 0, 1, 3, 4];
    let g_l = inputs.g_lesser.permuted_pooled(&perm);
    let g_g = inputs.g_greater.permuted_pooled(&perm);
    let ke = p.nkz * p.ne;
    let qw = p.nqz * p.nw;

    // Per-atom partial results, joined at the end (atoms are independent).
    // The partials escape the worker, so they stay on the regular heap; the
    // rank-3 transients below are pooled.
    let partials: Vec<(Vec<Complex64>, Vec<Complex64>)> = (0..p.na)
        .into_par_iter()
        .map(|a| {
            let mut sig_l = vec![Complex64::ZERO; ke * nn];
            let mut sig_g = vec![Complex64::ZERO; ke * nn];
            // Rank-3 transients of the fused kernel (Fig. 12): one (kz, E)
            // batch plus emission/absorption (qz, ω) operand stacks per
            // direction, all from the calling thread's workspace pool.
            let mut dhg: Vec<Vec<Complex64>> =
                (0..N3D).map(|_| workspace::take_scratch(ke * nn)).collect();
            let mut dhd_em: Vec<Vec<Complex64>> =
                (0..N3D).map(|_| workspace::take_scratch(qw * nn)).collect();
            let mut dhd_abs: Vec<Vec<Complex64>> =
                (0..N3D).map(|_| workspace::take_scratch(qw * nn)).collect();
            for slot in 0..p.nb {
                let Some(f) = inputs.dev.neighbor(a, slot) else {
                    continue;
                };
                for (g_perm, d, d_other, sig) in [
                    (&g_l, inputs.d_lesser_pre, inputs.d_greater_pre, &mut sig_l),
                    (&g_g, inputs.d_greater_pre, inputs.d_lesser_pre, &mut sig_g),
                ] {
                    // (1 + 3) ∇H·G: one wide GEMM per direction over the
                    // contiguous (kz, E) batch of atom f.
                    let g_batch = g_perm.inner(&[f]); // [Nkz*NE*no, no]
                    for (i, dhg_i) in dhg.iter_mut().enumerate() {
                        let dh_i = inputs.dh.inner(&[a, slot, i]);
                        dhg_i.fill(Complex64::ZERO);
                        gemm::gemm_raw_acc(ke * no, no, no, g_batch, dh_i, dhg_i);
                    }
                    // ∇H·D̃ stacks in natural (qz, ω) order — the batched
                    // (E, ω) loop flip below removes the need for the old
                    // ω-reversed emission layout. Emission contracts D̃≶,
                    // absorption its bosonic image conj D̃≷ᵀ.
                    for i in 0..N3D {
                        let (em, ab) = (&mut dhd_em[i], &mut dhd_abs[i]);
                        em.fill(Complex64::ZERO);
                        ab.fill(Complex64::ZERO);
                        for q in 0..p.nqz {
                            for w in 0..p.nw {
                                let base = (q * p.nw + w) * nn;
                                for j in 0..N3D {
                                    let dval = d.get(&[q, w, a, slot, i, j]);
                                    let dval_abs = d_other.get(&[q, w, a, slot, j, i]).conj();
                                    let dh_j = inputs.dh.inner(&[a, slot, j]);
                                    if dval != Complex64::ZERO {
                                        for (t, &s) in em[base..base + nn].iter_mut().zip(dh_j) {
                                            *t += s * dval;
                                        }
                                    }
                                    if dval_abs != Complex64::ZERO {
                                        for (t, &s) in ab[base..base + nn].iter_mut().zip(dh_j) {
                                            *t += s * dval_abs;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // (4) Batched-GEMM schedule (Fig. 11): for every
                    // (kz, qz, ω) the whole energy run multiplies one
                    // shared D̃ block —
                    //   emission    Σ[k, E] += dHG[k−q, E−ω−1] · D̃(q, ω)
                    //               for E ∈ ω+1..NE,
                    //   absorption  Σ[k, E] += dHG[k−q, E+ω+1] · D̃*(q, ω)
                    //               for E ∈ 0..NE−ω−1,
                    // each a contiguous `cnt`-item shared-B batch.
                    for k in 0..p.nkz {
                        for q in 0..p.nqz {
                            let kq = inputs.grids.k_minus_q(k, q);
                            for w in 0..p.nw {
                                let cnt = p.ne.saturating_sub(w + 1);
                                if cnt == 0 {
                                    continue;
                                }
                                let bbase = (q * p.nw + w) * nn;
                                for (dhg_i, dhd_i) in dhg.iter().zip(&dhd_em) {
                                    let a_off = kq * p.ne * nn;
                                    let o_off = (k * p.ne + w + 1) * nn;
                                    gemm::batched_gemm_shared_b_scaled_acc(
                                        no,
                                        no,
                                        no,
                                        cnt,
                                        &dhg_i[a_off..a_off + cnt * nn],
                                        &dhd_i[bbase..bbase + nn],
                                        &mut sig[o_off..o_off + cnt * nn],
                                        scale,
                                    );
                                }
                                for (dhg_i, dhd_i) in dhg.iter().zip(&dhd_abs) {
                                    let a_off = (kq * p.ne + w + 1) * nn;
                                    let o_off = k * p.ne * nn;
                                    gemm::batched_gemm_shared_b_scaled_acc(
                                        no,
                                        no,
                                        no,
                                        cnt,
                                        &dhg_i[a_off..a_off + cnt * nn],
                                        &dhd_i[bbase..bbase + nn],
                                        &mut sig[o_off..o_off + cnt * nn],
                                        scale,
                                    );
                                }
                            }
                        }
                    }
                }
            }
            for buf in dhg.into_iter().chain(dhd_em).chain(dhd_abs) {
                workspace::give_scratch(buf);
            }
            (sig_l, sig_g)
        })
        .collect();
    g_l.recycle();
    g_g.recycle();
    // Scatter per-atom results into the output tensors.
    let mut out = ElectronSelfEnergy::zeros(p);
    for (a, (sl, sg)) in partials.into_iter().enumerate() {
        for k in 0..p.nkz {
            for e in 0..p.ne {
                let src = (k * p.ne + e) * nn;
                out.lesser
                    .inner_mut(&[k, e, a])
                    .copy_from_slice(&sl[src..src + nn]);
                out.greater
                    .inner_mut(&[k, e, a])
                    .copy_from_slice(&sg[src..src + nn]);
            }
        }
    }
    out
}

/// Π≷ via the transformed kernel: same contraction as
/// [`super::reference::pi`], rescheduled through batched GEMM. By the
/// cyclic trace identity
/// `tr(∇H_ba,i·G1·∇H_ab,j·G2) = tr((G1·∇H_ab,j)·(G2·∇H_ba,i))`
/// both factors become *shared-B* products, so the per-point `(i, j)`
/// matmuls hoist into 12 wide batched GEMMs per `(a, slot)` — one per
/// direction, operand side and lesser/greater — over the contiguous
/// permuted `(kz, E)` batch; the inner loops reduce to trace dots.
pub fn pi(inputs: &SseInputs<'_>) -> PhononSelfEnergy {
    let p = inputs.p;
    let no = p.norb;
    let nn = no * no;
    let ke = p.nkz * p.ne;
    let scale = c64(super::pi_scale(p, inputs.grids), 0.0);
    // Same data-layout transformation as Σ: G≷ -> [NA, Nkz, NE, No, No].
    let perm = [2usize, 0, 1, 3, 4];
    let g_l = inputs.g_lesser.permuted_pooled(&perm);
    let g_g = inputs.g_greater.permuted_pooled(&perm);
    let mut out = PhononSelfEnergy::zeros(p);
    // Per (a, slot) pair, computed in parallel and scattered.
    let pairs: Vec<(usize, usize)> = (0..p.na)
        .flat_map(|a| (0..p.nb).map(move |s| (a, s)))
        .collect();
    let results: Vec<Option<(usize, usize, Matrix, Matrix)>> = pairs
        .par_iter()
        .map(|&(a, slot)| {
            let b = inputs.dev.neighbor(a, slot)?;
            // ∇H_ba,i once per pair (tiny, escapes nothing).
            let dh_ba: Vec<Matrix> = (0..N3D)
                .map(|i| super::reference::dh_reverse(inputs, a, slot, b, i))
                .collect();
            let mut t_l = Matrix::zeros(N3D * p.nqz, N3D * p.nw); // (i·q, j·w) layout
            let mut t_g = Matrix::zeros(N3D * p.nqz, N3D * p.nw);
            // Pooled hoisted products: U_j[k,e] = G_hi[k,e,a]·∇H_ab,j and
            // V_i[k,e] = G_lo[k,e,b]·∇H_ba,i over the full grid.
            let mut u: Vec<Vec<Complex64>> =
                (0..N3D).map(|_| workspace::take_scratch(ke * nn)).collect();
            let mut v: Vec<Vec<Complex64>> =
                (0..N3D).map(|_| workspace::take_scratch(ke * nn)).collect();
            for (g_hi, g_lo, t_out) in [(&g_l, &g_g, &mut t_l), (&g_g, &g_l, &mut t_g)] {
                let g_hi_batch = g_hi.inner(&[a]);
                let g_lo_batch = g_lo.inner(&[b]);
                for (j, u_j) in u.iter_mut().enumerate() {
                    u_j.fill(Complex64::ZERO);
                    gemm::batched_gemm_shared_b_acc(
                        no,
                        no,
                        no,
                        ke,
                        g_hi_batch,
                        inputs.dh.inner(&[a, slot, j]),
                        u_j,
                    );
                }
                for (i, v_i) in v.iter_mut().enumerate() {
                    v_i.fill(Complex64::ZERO);
                    gemm::batched_gemm_shared_b_acc(
                        no,
                        no,
                        no,
                        ke,
                        g_lo_batch,
                        dh_ba[i].as_slice(),
                        v_i,
                    );
                }
                for q in 0..p.nqz {
                    for w in 0..p.nw {
                        for k in 0..p.nkz {
                            let kq = inputs.grids.k_plus_q(k, q);
                            for e in 0..p.ne {
                                let Some(ep) = inputs.grids.e_plus_w(e, w) else {
                                    continue;
                                };
                                let u_off = (kq * p.ne + ep) * nn;
                                let v_off = (k * p.ne + e) * nn;
                                for (i, v_i) in v.iter().enumerate() {
                                    let vb = &v_i[v_off..v_off + nn];
                                    for (j, u_j) in u.iter().enumerate() {
                                        let ub = &u_j[u_off..u_off + nn];
                                        // tr(U·V) without forming U·V.
                                        let mut tr = Complex64::ZERO;
                                        for m in 0..no {
                                            for n in 0..no {
                                                tr = tr.mul_add(ub[m * no + n], vb[n * no + m]);
                                            }
                                        }
                                        qt_linalg::add_flops(8 * nn as u64);
                                        t_out[(i * p.nqz + q, j * p.nw + w)] += tr;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            for buf in u.into_iter().chain(v) {
                workspace::give_scratch(buf);
            }
            for z in t_l.as_mut_slice() {
                *z *= scale;
            }
            for z in t_g.as_mut_slice() {
                *z *= scale;
            }
            Some((a, slot, t_l, t_g))
        })
        .collect();
    g_l.recycle();
    g_g.recycle();
    for r in results.into_iter().flatten() {
        let (a, slot, t_l, t_g) = r;
        for (t, tensor_pair) in [(&t_l, &mut out.lesser), (&t_g, &mut out.greater)] {
            for q in 0..p.nqz {
                for w in 0..p.nw {
                    for i in 0..N3D {
                        for j in 0..N3D {
                            let v = t[(i * p.nqz + q, j * p.nw + w)];
                            tensor_pair.add_assign_at(&[q, w, a, slot, i, j], v);
                            let nbslot = p.nb;
                            tensor_pair.add_assign_at(&[q, w, a, nbslot, i, j], -v);
                        }
                    }
                }
            }
        }
    }
    out
}
