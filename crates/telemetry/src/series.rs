//! Metrics time-series: periodic counter snapshots in a bounded ring.
//!
//! The counters answer "how much in total"; the series answers "when".
//! [`sample_now`] snapshots every metric in
//! [`crate::names::SERIES_METRICS`] into one [`Sample`]; the SCF loop
//! takes one per iteration and hot loops may call [`maybe_sample`] with a
//! minimum spacing for wall-clock-paced coverage. Samples live in a
//! global bounded ring (newest kept, drops accounted) and are exported
//! two ways: the report's `series` block and a Prometheus-style text
//! rendering (`reproduce profile --metrics-out`) that gives a future
//! scrape endpoint its surface for free.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::counters;
use crate::json::Json;
use crate::names;

/// Default capacity of the sample ring.
pub const DEFAULT_SERIES_CAPACITY: usize = 1024;

/// One snapshot of every tracked counter total.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Microseconds since the series epoch.
    pub ts_us: f64,
    /// SCF iteration the sample was taken in, or −1 outside the loop.
    pub iteration: i64,
    /// Counter totals, indexed like [`names::SERIES_METRICS`].
    pub values: [u64; names::N_SERIES_METRICS],
}

struct SeriesRing {
    buf: Vec<Sample>,
    head: usize,
    dropped: u64,
    capacity: usize,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static LAST_SAMPLE_MS: AtomicU64 = AtomicU64::new(0);
static ITERATION: AtomicI64 = AtomicI64::new(-1);
static RING: Mutex<Option<SeriesRing>> = Mutex::new(None);

/// Turn series sampling on or off. Turning it on pins the epoch and
/// preallocates the ring.
pub fn set_series_enabled(on: bool) {
    if on {
        let _ = EPOCH.set(Instant::now());
        let mut g = RING.lock().unwrap();
        if g.is_none() {
            *g = Some(SeriesRing {
                buf: Vec::with_capacity(DEFAULT_SERIES_CAPACITY),
                head: 0,
                dropped: 0,
                capacity: DEFAULT_SERIES_CAPACITY,
            });
        }
    }
    ENABLED.store(on, Relaxed);
}

/// Is series sampling enabled? One relaxed load when disabled.
#[inline]
pub fn series_enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Resize the sample ring (clearing it). Test hook; not a warm path.
pub fn set_series_capacity(cap: usize) {
    let cap = cap.max(1);
    let mut g = RING.lock().unwrap();
    *g = Some(SeriesRing {
        buf: Vec::with_capacity(cap),
        head: 0,
        dropped: 0,
        capacity: cap,
    });
}

/// Set the iteration tag applied to subsequent samples (−1 clears).
pub fn set_series_iteration(iteration: i64) {
    ITERATION.store(iteration, Relaxed);
}

/// Snapshot every tracked counter total right now. No-op while sampling
/// is disabled.
pub fn sample_now() {
    if !series_enabled() {
        return;
    }
    let ts_us = EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as f64 / 1e3;
    LAST_SAMPLE_MS.store((ts_us / 1e3) as u64, Relaxed);
    let values = snapshot_values();
    let sample = Sample {
        ts_us,
        iteration: ITERATION.load(Relaxed),
        values,
    };
    let mut g = RING.lock().unwrap();
    let Some(ring) = g.as_mut() else { return };
    if ring.buf.len() < ring.capacity {
        ring.buf.push(sample);
    } else {
        ring.buf[ring.head] = sample;
        ring.head = (ring.head + 1) % ring.capacity;
        ring.dropped += 1;
    }
}

/// Take a sample only if at least `min_interval_ms` elapsed since the
/// previous one — wall-clock-paced coverage for long phases between
/// iteration boundaries. Disabled cost: one relaxed load.
#[inline]
pub fn maybe_sample(min_interval_ms: u64) {
    if !series_enabled() {
        return;
    }
    let now_ms = (EPOCH.get_or_init(Instant::now).elapsed().as_nanos() / 1_000_000) as u64;
    let last = LAST_SAMPLE_MS.load(Relaxed);
    if now_ms.saturating_sub(last) >= min_interval_ms
        && LAST_SAMPLE_MS
            .compare_exchange(last, now_ms, Relaxed, Relaxed)
            .is_ok()
    {
        sample_now();
    }
}

fn snapshot_values() -> [u64; names::N_SERIES_METRICS] {
    [
        counters::total_flops(),
        counters::total_bytes(),
        counters::total_alloc_bytes(),
        counters::total_alloc_count(),
        counters::total_ws_fresh(),
        counters::total_boundary_hits(),
        counters::total_boundary_misses(),
        counters::total_quarantined_points(),
        counters::total_eta_retries(),
        counters::total_mixing_backoffs(),
        counters::total_comm_retries(),
        counters::total_checkpoint_writes(),
        counters::total_rank_deaths(),
        counters::total_heartbeat_timeouts(),
        counters::total_retile_events(),
        counters::total_migrated_tiles(),
        counters::total_steal_requests(),
        counters::total_stolen_units(),
        counters::total_rebalance_events(),
        counters::total_rebalance_moved_units(),
        counters::total_kernel_sparse_selected(),
        counters::total_kernel_dense_selected(),
        counters::total_kernel_switches(),
        counters::total_kernel_sparse_flops(),
        counters::total_kernel_sparse_bytes(),
        counters::total_kernel_dense_flops(),
        counters::total_service_admitted(),
        counters::total_service_rejected(),
        counters::total_service_completed(),
        counters::total_service_failed(),
        counters::total_service_deadline_cancels(),
        counters::total_service_warm_starts(),
        counters::total_service_warm_fallbacks(),
        counters::total_service_retries(),
        counters::total_service_breaker_opens(),
        counters::total_service_drained(),
        counters::total_service_warm_evicted(),
        counters::total_corpus_scenarios_built(),
        counters::total_corpus_scenarios_rejected(),
        counters::total_corpus_scenarios_run(),
        counters::total_corpus_matched(),
        counters::total_corpus_mismatched(),
        counters::total_corpus_chaos_reruns(),
    ]
}

/// Samples in chronological order, plus the count of samples lost to
/// ring overflow.
pub fn snapshot() -> (Vec<Sample>, u64) {
    let g = RING.lock().unwrap();
    let Some(ring) = g.as_ref() else {
        return (Vec::new(), 0);
    };
    let mut out = Vec::with_capacity(ring.buf.len());
    out.extend_from_slice(&ring.buf[ring.head..]);
    out.extend_from_slice(&ring.buf[..ring.head]);
    (out, ring.dropped)
}

/// Clear the ring and the pacing state. Part of
/// `qt_telemetry::reset_all`.
pub fn reset_series() {
    let mut g = RING.lock().unwrap();
    if let Some(ring) = g.as_mut() {
        ring.buf.clear();
        ring.head = 0;
        ring.dropped = 0;
    }
    LAST_SAMPLE_MS.store(0, Relaxed);
    ITERATION.store(-1, Relaxed);
}

impl Sample {
    /// Encode with metric values keyed by their [`names`] strings.
    pub fn to_json(&self) -> Json {
        let values = names::SERIES_METRICS
            .iter()
            .zip(self.values.iter())
            .map(|(name, &v)| (name.to_string(), Json::Num(v as f64)))
            .collect();
        Json::Obj(vec![
            ("ts_us".to_string(), Json::Num(self.ts_us)),
            ("iteration".to_string(), Json::Num(self.iteration as f64)),
            ("values".to_string(), Json::Obj(values)),
        ])
    }

    /// Decode a sample encoded by [`Sample::to_json`]. Unknown metric
    /// keys are an error (they indicate a typo-forked name).
    pub fn from_json(v: &Json) -> Result<Sample, String> {
        let ts_us = v
            .get("ts_us")
            .and_then(Json::as_f64)
            .ok_or("sample lacks ts_us")?;
        let iteration = v
            .get("iteration")
            .and_then(Json::as_f64)
            .ok_or("sample lacks iteration")? as i64;
        let obj = v.get("values").ok_or("sample lacks values")?;
        let Json::Obj(fields) = obj else {
            return Err("sample values is not an object".into());
        };
        let mut values = [0u64; names::N_SERIES_METRICS];
        for (k, val) in fields {
            let idx = names::SERIES_METRICS
                .iter()
                .position(|m| m == k)
                .ok_or(format!("sample has unregistered metric {k:?}"))?;
            values[idx] = val.as_u64().ok_or(format!("bad value for metric {k:?}"))?;
        }
        Ok(Sample {
            ts_us,
            iteration,
            values,
        })
    }
}

/// Render the latest counter totals as Prometheus text exposition
/// (counter metrics, `qt_` prefix, `.` mapped to `_`). Always reflects
/// the live counters, so it is a valid scrape body even before any
/// sample was taken.
pub fn render_prometheus() -> String {
    let values = snapshot_values();
    let mut out = String::new();
    for (name, &v) in names::SERIES_METRICS.iter().zip(values.iter()) {
        let prom = format!("qt_{}", name.replace('.', "_"));
        out.push_str(&format!("# TYPE {prom} counter\n{prom} {v}\n"));
    }
    let dropped = format!("qt_{}", names::JOURNAL_DROPPED.replace('.', "_"));
    out.push_str(&format!(
        "# TYPE {dropped} counter\n{dropped} {}\n",
        counters::total_journal_dropped()
    ));
    let events = format!("qt_{}", names::JOURNAL_EVENTS.replace('.', "_"));
    out.push_str(&format!(
        "# TYPE {events} gauge\n{events} {}\n",
        crate::journal::event_count()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn sampling_is_inert_while_disabled() {
        let _g = lock();
        set_series_enabled(false);
        reset_series();
        sample_now();
        maybe_sample(0);
        assert_eq!(snapshot().0.len(), 0);
    }

    #[test]
    fn samples_accumulate_and_ring_drops_oldest() {
        let _g = lock();
        set_series_enabled(true);
        set_series_capacity(3);
        set_series_iteration(5);
        for _ in 0..5 {
            sample_now();
        }
        let (samples, dropped) = snapshot();
        assert_eq!(samples.len(), 3);
        assert_eq!(dropped, 2);
        assert!(samples.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert!(samples.iter().all(|s| s.iteration == 5));
        set_series_enabled(false);
        set_series_capacity(DEFAULT_SERIES_CAPACITY);
        set_series_iteration(-1);
    }

    #[test]
    fn samples_roundtrip_through_json() {
        let mut values = [0u64; names::N_SERIES_METRICS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = (i as u64 + 1) * 10;
        }
        let s = Sample {
            ts_us: 1234.5,
            iteration: 2,
            values,
        };
        let back = Sample::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // A forked metric name must be rejected, not silently dropped.
        let forged = Json::Obj(vec![
            ("ts_us".to_string(), Json::Num(0.0)),
            ("iteration".to_string(), Json::Num(0.0)),
            (
                "values".to_string(),
                Json::Obj(vec![("health.quarantine".to_string(), Json::Num(1.0))]),
            ),
        ]);
        assert!(Sample::from_json(&forged).is_err());
    }

    #[test]
    fn prometheus_rendering_covers_every_metric() {
        let text = render_prometheus();
        for name in names::SERIES_METRICS {
            let prom = format!("qt_{}", name.replace('.', "_"));
            assert!(text.contains(&prom), "missing {prom}");
        }
        assert!(text.contains("qt_journal_dropped"));
        for line in text.lines() {
            assert!(line.starts_with("# TYPE") || line.starts_with("qt_"));
        }
    }
}
