//! Recursive Green's Function solver (§2, ref. \[23\] Svizhenko et al.).
//!
//! Given the block tri-diagonal `A = z·S − H − Σᴿ` and block-diagonal
//! lesser self-energy `Σ<`, RGF computes the diagonal (and first
//! sub-diagonal) blocks of
//!
//! * `Gᴿ = A⁻¹`
//! * `G< = Gᴿ Σ< Gᴿ†`
//! * `G> = G< + Gᴿ − Gᴿ†`
//!
//! in `O(bnum · bs³)` instead of dense `O((bnum·bs)³)`. The recursions are
//! the standard left-connected forward pass plus the exact backward-pass
//! identities (derived and unit-verified against dense inversion):
//!
//! ```text
//! forward:  gᴿ_n = (A_nn − A_{n,n−1} gᴿ_{n−1} A_{n−1,n})⁻¹
//!           g<_n = gᴿ_n (Σ<_nn + A_{n,n−1} g<_{n−1} A_{n,n−1}†) gᴿ_n†
//! backward: Gᴿ_nn   = gᴿ_n + gᴿ_n A_{n,n+1} Gᴿ_{n+1,n+1} A_{n+1,n} gᴿ_n
//!           G<_nn   = g<_n + gᴿ_n A_{n,n+1} G<_{n+1,n+1} A_{n,n+1}† gᴿ_n†
//!                   + gᴿ_n A_{n,n+1} Gᴿ_{n+1,n+1} A_{n+1,n} g<_n
//!                   + g<_n A_{n+1,n}† Gᴿ_{n+1,n+1}† A_{n,n+1}† gᴿ_n†
//!           Gᴿ_{n+1,n} = −Gᴿ_{n+1,n+1} A_{n+1,n} gᴿ_n
//!           G<_{n+1,n} = −Gᴿ_{n+1,n+1} A_{n+1,n} g<_n − G<_{n+1,n+1} A_{n,n+1}† gᴿ_n†
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

use qt_linalg::gemm::{gemm_acc, gemm_bdagger_acc, gemm_bdagger_scaled_acc, gemm_scaled_acc};
use qt_linalg::{
    c64, invert, invert_ws, workspace, BlockTridiag, Complex64, CsrMatrix, Matrix, SingularMatrix,
};
use qt_telemetry::counters;

/// How the off-diagonal triple products of the forward pass are evaluated
/// (the Table 6 design space, §5.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum MultiplyStrategy {
    /// Densify everything and use plain GEMM (Table 6 "Dense-MM").
    #[default]
    Dense,
    /// Exploit the sparsity of the Hamiltonian coupling blocks:
    /// `CSR × dense` followed by `dense × CSR` (Table 6 "CSRMM", the
    /// paper's fastest route). Off-diagonal `A` blocks are converted to
    /// CSR once per solve; entries below `threshold` are dropped
    /// (structural zeros of the Hamiltonian, not numerical truncation,
    /// with the default of 0).
    Csrmm {
        /// Magnitude below which entries are treated as structural zeros.
        threshold: f64,
    },
    /// Per-coupling-block runtime selection between the CSR kernels and
    /// blocked dense GEMM. A coupling goes sparse when its structural
    /// density sits below the machine crossover `sparse_rate/dense_rate`
    /// (CSRMM beats GEMM exactly when `8·nnz·n / sparse_rate <
    /// 8·bs³/ dense_rate`, i.e. `density < sparse_rate/dense_rate`).
    /// Rates come from [`qt_model`-style] calibration; with a
    /// [`KernelSelector`] attached the decision is sticky across SCF
    /// iterations with a hysteresis `band` around the crossover.
    Auto {
        /// Calibrated dense GEMM throughput in flop/s (0 disables time
        /// prediction and forces the crossover to 1, i.e. all-sparse).
        dense_rate: f64,
        /// Calibrated CSR kernel throughput in flop/s *on the nonzeros*.
        sparse_rate: f64,
        /// Relative hysteresis half-width around the crossover density;
        /// a remembered choice only flips once the density leaves
        /// `[d*·(1−band), d*·(1+band)]`.
        band: f64,
    },
}

impl MultiplyStrategy {
    /// Crossover density below which the sparse kernels win, per the
    /// calibrated rates of an [`MultiplyStrategy::Auto`] value. `None`
    /// for the fixed strategies.
    pub fn crossover_density(&self) -> Option<f64> {
        match *self {
            MultiplyStrategy::Auto {
                dense_rate,
                sparse_rate,
                ..
            } => Some(if dense_rate > 0.0 {
                (sparse_rate / dense_rate).clamp(0.0, 1.0)
            } else {
                1.0
            }),
            _ => None,
        }
    }
}

const CHOICE_UNSET: u8 = 0;
const CHOICE_DENSE: u8 = 1;
const CHOICE_SPARSE: u8 = 2;

/// Sticky per-coupling-block kernel memory for [`MultiplyStrategy::Auto`].
///
/// One selector is shared by every RGF solve of a carrier (all `(kz, E)`
/// workers hit the same cells — the coupling structure is identical across
/// the spectral grid), so a choice made on the first SCF iteration holds on
/// later ones unless the measured density drifts out of the hysteresis
/// band. Flips and first-time choices are journalled as
/// [`qt_telemetry::EventKind::KernelChoice`] and counted under
/// `kernel.switches`.
#[derive(Debug, Default)]
pub struct KernelSelector {
    choices: Vec<AtomicU8>,
}

impl KernelSelector {
    /// A selector for `couplings` off-diagonal block pairs (`bnum − 1`).
    pub fn new(couplings: usize) -> Self {
        KernelSelector {
            choices: (0..couplings)
                .map(|_| AtomicU8::new(CHOICE_UNSET))
                .collect(),
        }
    }

    /// Number of coupling blocks this selector remembers.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// True when the selector tracks no couplings.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// The remembered route for a coupling: `Some(true)` sparse,
    /// `Some(false)` dense, `None` when the block has not been routed yet.
    pub fn choice(&self, block: usize) -> Option<bool> {
        match self.choices.get(block)?.load(Ordering::Relaxed) {
            CHOICE_SPARSE => Some(true),
            CHOICE_DENSE => Some(false),
            _ => None,
        }
    }

    /// Forget every remembered choice (a new bias point changes the
    /// operator structure enough to warrant re-deciding from scratch).
    pub fn reset(&self) {
        for c in &self.choices {
            c.store(CHOICE_UNSET, Ordering::Relaxed);
        }
    }

    /// Route one coupling block: sparse (`true`) or dense (`false`).
    ///
    /// A fresh block compares `density < crossover`; a remembered block
    /// keeps its route until the density exits the hysteresis band, which
    /// keeps the choice stable when a density hovers at the crossover
    /// across SCF iterations. Out-of-range blocks fall back to the
    /// stateless compare.
    pub fn choose(&self, block: usize, density: f64, crossover: f64, band: f64) -> bool {
        let Some(cell) = self.choices.get(block) else {
            return density < crossover;
        };
        let prev = cell.load(Ordering::Relaxed);
        let sparse = match prev {
            CHOICE_SPARSE => density < crossover * (1.0 + band),
            CHOICE_DENSE => density < crossover * (1.0 - band),
            _ => density < crossover,
        };
        let next = if sparse { CHOICE_SPARSE } else { CHOICE_DENSE };
        if prev != next {
            cell.store(next, Ordering::Relaxed);
            if prev != CHOICE_UNSET {
                counters::add_kernel_switch();
            }
            qt_telemetry::journal::emit(qt_telemetry::EventKind::KernelChoice {
                block: block as u64,
                sparse,
            });
        }
        sparse
    }
}

/// The per-coupling execution plan: either keep the pair of off-diagonal
/// blocks dense, or carry pooled CSR images of `A_{n+1,n}` / `A_{n,n+1}`.
enum CouplingKernel {
    Dense,
    Sparse { lo: CsrMatrix, up: CsrMatrix },
}

impl CouplingKernel {
    fn lo_sp(&self) -> Option<&CsrMatrix> {
        match self {
            CouplingKernel::Dense => None,
            CouplingKernel::Sparse { lo, .. } => Some(lo),
        }
    }

    fn up_sp(&self) -> Option<&CsrMatrix> {
        match self {
            CouplingKernel::Dense => None,
            CouplingKernel::Sparse { up, .. } => Some(up),
        }
    }
}

/// Timing context for [`MultiplyStrategy::Auto`]: measures every routed
/// coupling op and accumulates measured plus model-predicted nanoseconds
/// into the kernel-selection counters, so `KernelSelectionReport` can put
/// the machine model side by side with reality. Inert (plain call) for the
/// fixed strategies and while telemetry spans are disabled.
#[derive(Clone, Copy)]
struct AutoTiming {
    enabled: bool,
    dense_rate: f64,
    sparse_rate: f64,
}

impl AutoTiming {
    fn off() -> AutoTiming {
        AutoTiming {
            enabled: false,
            dense_rate: 0.0,
            sparse_rate: 0.0,
        }
    }

    #[inline]
    fn op(&self, sparse: bool, f: impl FnOnce()) {
        if !self.enabled {
            return f();
        }
        let flops0 = counters::local_flops();
        let t0 = Instant::now();
        f();
        let ns = t0.elapsed().as_nanos() as u64;
        let fl = counters::local_flops() - flops0;
        let rate = if sparse {
            self.sparse_rate
        } else {
            self.dense_rate
        };
        let pred = if rate > 0.0 {
            (fl as f64 / rate * 1e9) as u64
        } else {
            0
        };
        if sparse {
            counters::add_kernel_sparse_ns(ns);
            counters::add_kernel_sparse_pred_ns(pred);
        } else {
            counters::add_kernel_dense_flops(fl);
            counters::add_kernel_dense_ns(ns);
            counters::add_kernel_dense_pred_ns(pred);
        }
    }
}

/// `out += K·b` — coupling block times dense, CSRMM when routed sparse.
fn mul_coupling(
    sp: Option<&CsrMatrix>,
    timing: &AutoTiming,
    k: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
) {
    match sp {
        Some(s) => timing.op(true, || s.mul_dense_acc(b, out)),
        None => timing.op(false, || gemm_acc(k, b, out)),
    }
}

/// `out += z·(a·K)` — dense times coupling block.
fn rmul_coupling(
    sp: Option<&CsrMatrix>,
    timing: &AutoTiming,
    bs: usize,
    a: &Matrix,
    k: &Matrix,
    z: Complex64,
    out: &mut Matrix,
) {
    match sp {
        Some(s) => timing.op(true, || s.rmul_dense_scaled_acc(a, z, out)),
        None => timing.op(false, || {
            gemm_scaled_acc(
                bs,
                bs,
                bs,
                a.as_slice(),
                k.as_slice(),
                out.as_mut_slice(),
                z,
            )
        }),
    }
}

/// `out += z·(a·K†)` — dense times the adjoint of a coupling block.
fn rmul_dagger_coupling(
    sp: Option<&CsrMatrix>,
    timing: &AutoTiming,
    bs: usize,
    a: &Matrix,
    k: &Matrix,
    z: Complex64,
    out: &mut Matrix,
) {
    match sp {
        Some(s) => timing.op(true, || s.rmul_dagger_scaled_acc(a, z, out)),
        None => timing.op(false, || {
            gemm_bdagger_scaled_acc(
                bs,
                bs,
                bs,
                a.as_slice(),
                k.as_slice(),
                out.as_mut_slice(),
                z,
            )
        }),
    }
}

/// Structural density of a coupling pair (`nnz / capacity` over both the
/// lower and upper block).
fn coupling_density(lo: &Matrix, up: &Matrix) -> f64 {
    let nnz = lo
        .as_slice()
        .iter()
        .chain(up.as_slice())
        .filter(|z| z.re != 0.0 || z.im != 0.0)
        .count();
    let cap = lo.as_slice().len() + up.as_slice().len();
    if cap == 0 {
        1.0
    } else {
        nnz as f64 / cap as f64
    }
}

/// Diagonal and first-subdiagonal Green's-function blocks.
#[derive(Clone, Debug)]
pub struct RgfOutput {
    /// `Gᴿ_nn` for every block.
    pub gr_diag: Vec<Matrix>,
    /// `G<_nn`.
    pub gl_diag: Vec<Matrix>,
    /// `G>_nn`.
    pub gg_diag: Vec<Matrix>,
    /// `Gᴿ_{n+1,n}` (length `bnum − 1`).
    pub gr_lower: Vec<Matrix>,
    /// `Gᴿ_{n,n+1}`.
    pub gr_upper: Vec<Matrix>,
    /// `G<_{n+1,n}`.
    pub gl_lower: Vec<Matrix>,
}

impl RgfOutput {
    /// `G<_{n,n+1}` from anti-Hermiticity: `G<_{n,n+1} = −(G<_{n+1,n})†`.
    pub fn gl_upper(&self, n: usize) -> Matrix {
        self.gl_lower[n].dagger().scale(qt_linalg::c64(-1.0, 0.0))
    }

    /// `G>_{n+1,n} = G<_{n+1,n} + Gᴿ_{n+1,n} − (Gᴿ_{n,n+1})†`.
    pub fn gg_lower(&self, n: usize) -> Matrix {
        let mut gg = self.gl_lower[n].clone();
        gg += &self.gr_lower[n];
        gg -= &self.gr_upper[n].dagger();
        gg
    }

    /// True when every output block is finite (no NaN, no ±Inf) — the
    /// phase-boundary health check the GF phases run before letting RGF
    /// output flow into the SSE convolutions.
    pub fn is_finite(&self) -> bool {
        [
            &self.gr_diag,
            &self.gl_diag,
            &self.gg_diag,
            &self.gr_lower,
            &self.gr_upper,
            &self.gl_lower,
        ]
        .into_iter()
        .flatten()
        .all(|m| {
            m.as_slice()
                .iter()
                .all(|z| z.re.is_finite() && z.im.is_finite())
        })
    }

    /// Return every block to the calling thread's workspace pool. The
    /// Green's-function phases call this once a point's output has been
    /// consumed, so the next (E, kz) point on this worker re-uses the same
    /// buffers instead of round-tripping through the global allocator.
    pub fn recycle(self) {
        for m in self
            .gr_diag
            .into_iter()
            .chain(self.gl_diag)
            .chain(self.gg_diag)
            .chain(self.gr_lower)
            .chain(self.gr_upper)
            .chain(self.gl_lower)
        {
            workspace::give(m);
        }
    }
}

/// Run RGF with the default dense multiply strategy. `a` is the full
/// `z·S − H − Σᴿ` block tri-diagonal; `sigma_lesser[n]` the lesser
/// self-energy of block `n` (boundary + scattering contributions already
/// summed).
pub fn rgf(a: &BlockTridiag, sigma_lesser: &[Matrix]) -> Result<RgfOutput, SingularMatrix> {
    rgf_with_strategy(a, sigma_lesser, MultiplyStrategy::Dense)
}

/// Run RGF with an explicit off-diagonal multiply strategy (Table 6).
pub fn rgf_with_strategy(
    a: &BlockTridiag,
    sigma_lesser: &[Matrix],
    strategy: MultiplyStrategy,
) -> Result<RgfOutput, SingularMatrix> {
    rgf_with_selector(a, sigma_lesser, strategy, None)
}

/// Run RGF with a multiply strategy and an optional sticky
/// [`KernelSelector`]. The selector only matters for
/// [`MultiplyStrategy::Auto`]; without one, Auto falls back to a
/// stateless per-solve density-vs-crossover compare.
pub fn rgf_with_selector(
    a: &BlockTridiag,
    sigma_lesser: &[Matrix],
    strategy: MultiplyStrategy,
    selector: Option<&KernelSelector>,
) -> Result<RgfOutput, SingularMatrix> {
    // Thread-local attribution: RGF runs inside the per-(kz, E) rayon
    // workers, so the phase aggregates busy time across workers.
    let _span = qt_telemetry::Span::enter("rgf");
    let nb = a.num_blocks();
    assert_eq!(sigma_lesser.len(), nb, "one Σ< block per RGF block");
    let bs = a.block_size();
    // Per-coupling execution plan. The sparse routes carry pooled CSR
    // images of the coupling blocks, built once per solve and recycled at
    // the end, so warm iterations never touch the global allocator.
    let (plan, timing): (Vec<CouplingKernel>, AutoTiming) = match strategy {
        MultiplyStrategy::Dense => (
            (0..nb.saturating_sub(1))
                .map(|_| CouplingKernel::Dense)
                .collect(),
            AutoTiming::off(),
        ),
        MultiplyStrategy::Csrmm { threshold } => (
            (0..nb - 1)
                .map(|n| CouplingKernel::Sparse {
                    lo: CsrMatrix::from_dense_pooled(a.lower(n), threshold),
                    up: CsrMatrix::from_dense_pooled(a.upper(n), threshold),
                })
                .collect(),
            AutoTiming::off(),
        ),
        MultiplyStrategy::Auto {
            dense_rate,
            sparse_rate,
            band,
        } => {
            let crossover = strategy.crossover_density().unwrap_or(1.0);
            let plan = (0..nb - 1)
                .map(|n| {
                    let density = coupling_density(a.lower(n), a.upper(n));
                    let sparse = match selector {
                        Some(s) => s.choose(n, density, crossover, band),
                        None => density < crossover,
                    };
                    if sparse {
                        counters::add_kernel_sparse_selected();
                        CouplingKernel::Sparse {
                            lo: CsrMatrix::from_dense_pooled(a.lower(n), 0.0),
                            up: CsrMatrix::from_dense_pooled(a.upper(n), 0.0),
                        }
                    } else {
                        counters::add_kernel_dense_selected();
                        CouplingKernel::Dense
                    }
                })
                .collect();
            (
                plan,
                AutoTiming {
                    enabled: qt_telemetry::enabled(),
                    dense_rate,
                    sparse_rate,
                },
            )
        }
    };
    let neg = c64(-1.0, 0.0);
    let one = c64(1.0, 0.0);
    // Forward pass: left-connected g's. Every temporary (and the retained
    // g's themselves) is checked out of the per-thread workspace pool, so a
    // warm SCF iteration performs zero heap allocations here.
    let mut g_r: Vec<Matrix> = Vec::with_capacity(nb);
    let mut g_l: Vec<Matrix> = Vec::with_capacity(nb);
    for n in 0..nb {
        let mut m = workspace::take_uninit(bs, bs);
        m.copy_from(a.diag(n));
        let mut sig = workspace::take_uninit(bs, bs);
        sig.copy_from(&sigma_lesser[n]);
        if n > 0 {
            // A_{n,n−1} couples block n−1 into n; the triple product
            // `A_{n,n−1} · gᴿ_{n−1} · A_{n−1,n}` is the Table 6 operation.
            let kern = &plan[n - 1];
            let tau = a.lower(n - 1);
            let mut tg = workspace::take(bs, bs);
            mul_coupling(kern.lo_sp(), &timing, tau, &g_r[n - 1], &mut tg);
            rmul_coupling(kern.up_sp(), &timing, bs, &tg, a.upper(n - 1), neg, &mut m);
            let mut tl = workspace::take(bs, bs);
            mul_coupling(kern.lo_sp(), &timing, tau, &g_l[n - 1], &mut tl);
            rmul_dagger_coupling(kern.lo_sp(), &timing, bs, &tl, tau, one, &mut sig);
            workspace::give(tg);
            workspace::give(tl);
        }
        let gr = invert_ws(&m)?;
        workspace::give(m);
        let mut t = workspace::take(bs, bs);
        gemm_acc(&gr, &sig, &mut t);
        let mut gl = workspace::take(bs, bs);
        gemm_bdagger_acc(bs, bs, bs, t.as_slice(), gr.as_slice(), gl.as_mut_slice());
        workspace::give(t);
        workspace::give(sig);
        g_r.push(gr);
        g_l.push(gl);
    }
    // Backward pass. Blocks are produced highest-index first and the
    // vectors reversed at the end — no `Matrix::zeros(0, 0)` placeholders.
    let mut gr_diag: Vec<Matrix> = Vec::with_capacity(nb);
    let mut gl_diag: Vec<Matrix> = Vec::with_capacity(nb);
    let mut gr_lower: Vec<Matrix> = Vec::with_capacity(nb - 1);
    let mut gr_upper: Vec<Matrix> = Vec::with_capacity(nb - 1);
    let mut gl_lower: Vec<Matrix> = Vec::with_capacity(nb - 1);
    let mut last_gr = workspace::take_uninit(bs, bs);
    last_gr.copy_from(&g_r[nb - 1]);
    gr_diag.push(last_gr);
    let mut last_gl = workspace::take_uninit(bs, bs);
    last_gl.copy_from(&g_l[nb - 1]);
    gl_diag.push(last_gl);
    for n in (0..nb - 1).rev() {
        let up = a.upper(n); // A_{n,n+1}
        let lo = a.lower(n); // A_{n+1,n}
        let kern = &plan[n];
        // The previous iteration's diagonal blocks are read-only here and
        // pushed-to only after their last use, so borrow them in place —
        // no pooled copies.
        let gr_next = &gr_diag[gr_diag.len() - 1];
        let gl_next = &gl_diag[gl_diag.len() - 1];
        let gr_n = &g_r[n];
        let gl_n = &g_l[n];
        // Shared prefixes: t1 = gᴿ_n A_{n,n+1}, t1g = t1 Gᴿ_{n+1,n+1},
        // t2 = t1g A_{n+1,n}.
        let mut t1 = workspace::take(bs, bs);
        rmul_coupling(kern.up_sp(), &timing, bs, gr_n, up, one, &mut t1);
        let mut t1g = workspace::take(bs, bs);
        gemm_acc(&t1, gr_next, &mut t1g);
        let mut t2 = workspace::take(bs, bs);
        rmul_coupling(kern.lo_sp(), &timing, bs, &t1g, lo, one, &mut t2);
        // Gᴿ_nn = gᴿ_n + t2 gᴿ_n
        let mut grd = workspace::take_uninit(bs, bs);
        grd.copy_from(gr_n);
        gemm_acc(&t2, gr_n, &mut grd);
        // G<_nn — four terms, sharing t1/t2 instead of recomputing the
        // triple products.
        let mut gld = workspace::take_uninit(bs, bs);
        gld.copy_from(gl_n);
        let mut t3 = workspace::take(bs, bs);
        gemm_acc(&t1, gl_next, &mut t3);
        let mut t4 = workspace::take(bs, bs);
        rmul_dagger_coupling(kern.up_sp(), &timing, bs, &t3, up, one, &mut t4);
        gemm_acc(&t2, gl_n, &mut gld);
        let mut v1 = workspace::take(bs, bs);
        rmul_dagger_coupling(kern.lo_sp(), &timing, bs, gl_n, lo, one, &mut v1);
        let mut v2 = workspace::take(bs, bs);
        gemm_bdagger_acc(
            bs,
            bs,
            bs,
            v1.as_slice(),
            gr_next.as_slice(),
            v2.as_mut_slice(),
        );
        let mut v3 = workspace::take(bs, bs);
        rmul_dagger_coupling(kern.up_sp(), &timing, bs, &v2, up, one, &mut v3);
        // The t4 and v3 contributions to G<_nn share the right operand
        // `gᴿ_n†`; summing them first folds two GEMM units into one.
        t4 += &v3;
        gemm_bdagger_acc(
            bs,
            bs,
            bs,
            t4.as_slice(),
            gr_n.as_slice(),
            gld.as_mut_slice(),
        );
        // Off-diagonal blocks. w1 = Gᴿ_{n+1,n+1} A_{n+1,n} feeds both
        // Gᴿ_{n+1,n} and G<_{n+1,n}; Gᴿ_{n,n+1} = −t1g re-uses its buffer.
        let mut w1 = workspace::take(bs, bs);
        rmul_coupling(kern.lo_sp(), &timing, bs, gr_next, lo, one, &mut w1);
        let mut grl = workspace::take(bs, bs);
        gemm_scaled_acc(
            bs,
            bs,
            bs,
            w1.as_slice(),
            gr_n.as_slice(),
            grl.as_mut_slice(),
            neg,
        );
        let mut gru = t1g;
        for z in gru.as_mut_slice() {
            *z = -*z;
        }
        let mut gll = workspace::take(bs, bs);
        gemm_scaled_acc(
            bs,
            bs,
            bs,
            w1.as_slice(),
            gl_n.as_slice(),
            gll.as_mut_slice(),
            neg,
        );
        let mut x1 = workspace::take(bs, bs);
        rmul_dagger_coupling(kern.up_sp(), &timing, bs, gl_next, up, one, &mut x1);
        gemm_bdagger_scaled_acc(
            bs,
            bs,
            bs,
            x1.as_slice(),
            gr_n.as_slice(),
            gll.as_mut_slice(),
            neg,
        );
        for tmp in [t1, t2, t3, t4, v1, v2, v3, w1, x1] {
            workspace::give(tmp);
        }
        gr_diag.push(grd);
        gl_diag.push(gld);
        gr_lower.push(grl);
        gr_upper.push(gru);
        gl_lower.push(gll);
    }
    gr_diag.reverse();
    gl_diag.reverse();
    gr_lower.reverse();
    gr_upper.reverse();
    gl_lower.reverse();
    // G> from the exact identity G> = G< + Gᴿ − Gᴬ.
    let mut gg_diag: Vec<Matrix> = Vec::with_capacity(nb);
    for (gr, gl) in gr_diag.iter().zip(&gl_diag) {
        let mut gg = workspace::take_uninit(bs, bs);
        gg.copy_from(gl);
        gg += gr;
        gg.sub_dagger_assign(gr);
        gg_diag.push(gg);
    }
    for m in g_r.into_iter().chain(g_l) {
        workspace::give(m);
    }
    for kern in plan {
        if let CouplingKernel::Sparse { lo, up } = kern {
            lo.recycle();
            up.recycle();
        }
    }
    Ok(RgfOutput {
        gr_diag,
        gl_diag,
        gg_diag,
        gr_lower,
        gr_upper,
        gl_lower,
    })
}

/// Dense reference: assemble, invert, and form `G< = Gᴿ Σ< Gᴿ†` exactly.
/// For validation and small problems only (`O(n³)` in the full order).
pub fn dense_reference(
    a: &BlockTridiag,
    sigma_lesser: &[Matrix],
) -> Result<(Matrix, Matrix), SingularMatrix> {
    let bs = a.block_size();
    let full = a.to_dense();
    let gr = invert(&full)?;
    let mut sig = Matrix::zeros(full.rows(), full.cols());
    for (n, s) in sigma_lesser.iter().enumerate() {
        sig.set_submatrix(n * bs, n * bs, s);
    }
    let gl = gr.matmul(&sig).matmul_dagger(&gr);
    Ok((gr, gl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_linalg::{c64, Complex64};
    use rand::{Rng as _, SeedableRng};

    /// Random non-Hermitian block tridiagonal `A` (as `E·S − H − Σᴿ` is)
    /// plus random anti-Hermitian Σ< blocks.
    fn random_problem(nb: usize, bs: usize, seed: u64) -> (BlockTridiag, Vec<Matrix>) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a = BlockTridiag::zeros(nb, bs);
        for n in 0..nb {
            let mut d = Matrix::random(bs, bs, &mut r);
            // Diagonal dominance for well-conditioned inversion, with a
            // lossy imaginary part like a retarded operator has.
            for i in 0..bs {
                d[(i, i)] += c64(4.0, 1.0);
            }
            *a.diag_mut(n) = d;
        }
        for n in 0..nb - 1 {
            *a.upper_mut(n) = Matrix::random(bs, bs, &mut r);
            *a.lower_mut(n) = Matrix::random(bs, bs, &mut r);
        }
        let sig: Vec<Matrix> = (0..nb)
            .map(|_| {
                // Anti-Hermitian lesser self-energy: i·(positive Hermitian).
                let h = Matrix::random_hermitian(bs, &mut r);
                h.scale(Complex64::I)
            })
            .collect();
        (a, sig)
    }

    #[test]
    fn rgf_matches_dense_reference() {
        for (nb, bs, seed) in [(2, 3, 1), (4, 4, 2), (6, 5, 3), (3, 8, 4)] {
            let (a, sig) = random_problem(nb, bs, seed);
            let out = rgf(&a, &sig).unwrap();
            let (gr_dense, gl_dense) = dense_reference(&a, &sig).unwrap();
            for n in 0..nb {
                let gr_blk = gr_dense.submatrix(n * bs, n * bs, bs, bs);
                let gl_blk = gl_dense.submatrix(n * bs, n * bs, bs, bs);
                assert!(
                    out.gr_diag[n].max_abs_diff(&gr_blk) < 1e-10,
                    "GR block {n} mismatch (nb={nb}, bs={bs})"
                );
                assert!(
                    out.gl_diag[n].max_abs_diff(&gl_blk) < 1e-10,
                    "G< block {n} mismatch (nb={nb}, bs={bs})"
                );
            }
            for n in 0..nb - 1 {
                let gr_off = gr_dense.submatrix((n + 1) * bs, n * bs, bs, bs);
                let gr_up = gr_dense.submatrix(n * bs, (n + 1) * bs, bs, bs);
                let gl_off = gl_dense.submatrix((n + 1) * bs, n * bs, bs, bs);
                let gl_up = gl_dense.submatrix(n * bs, (n + 1) * bs, bs, bs);
                assert!(
                    out.gr_upper[n].max_abs_diff(&gr_up) < 1e-10,
                    "GR_{{n,n+1}} block {n} mismatch"
                );
                assert!(
                    out.gl_upper(n).max_abs_diff(&gl_up) < 1e-10,
                    "G<_{{n,n+1}} block {n} mismatch"
                );
                assert!(
                    out.gr_lower[n].max_abs_diff(&gr_off) < 1e-10,
                    "GR_{{n+1,n}} block {n} mismatch"
                );
                assert!(
                    out.gl_lower[n].max_abs_diff(&gl_off) < 1e-10,
                    "G<_{{n+1,n}} block {n} mismatch"
                );
            }
        }
    }

    #[test]
    fn greater_identity_holds() {
        let (a, sig) = random_problem(4, 4, 7);
        let out = rgf(&a, &sig).unwrap();
        for n in 0..4 {
            let mut rhs = out.gl_diag[n].clone();
            rhs += &out.gr_diag[n];
            rhs -= &out.gr_diag[n].dagger();
            assert!(out.gg_diag[n].max_abs_diff(&rhs) < 1e-12);
        }
    }

    #[test]
    fn lesser_blocks_anti_hermitian() {
        // G< must be anti-Hermitian when Σ< is.
        let (a, sig) = random_problem(5, 3, 9);
        let out = rgf(&a, &sig).unwrap();
        for gl in &out.gl_diag {
            let mut sum = gl.clone();
            sum += &gl.dagger();
            assert!(sum.max_abs() < 1e-10, "G< + G<† must vanish");
        }
    }

    #[test]
    fn single_coupling_limit() {
        // With zero couplings the blocks decouple: GR_nn = A_nn^{-1}.
        let mut r = rand::rngs::StdRng::seed_from_u64(11);
        let mut a = BlockTridiag::zeros(3, 3);
        for n in 0..3 {
            let mut d = Matrix::random(3, 3, &mut r);
            for i in 0..3 {
                d[(i, i)] += c64(3.0, 0.5);
            }
            *a.diag_mut(n) = d;
        }
        let sig: Vec<Matrix> = (0..3).map(|_| Matrix::zeros(3, 3)).collect();
        let out = rgf(&a, &sig).unwrap();
        for n in 0..3 {
            let expect = invert(a.diag(n)).unwrap();
            assert!(out.gr_diag[n].max_abs_diff(&expect) < 1e-12);
            assert!(out.gl_diag[n].max_abs() < 1e-14, "no Σ< -> no G<");
            assert!(out.gr_lower[n.min(1)].max_abs() < 1e-14);
        }
    }

    #[test]
    fn csrmm_strategy_matches_dense() {
        // Build an A whose couplings are genuinely sparse (like Hamiltonian
        // blocks) and check both strategies produce identical results while
        // the sparse route performs fewer flop.
        let mut r = rand::rngs::StdRng::seed_from_u64(31);
        let (nb, bs) = (5usize, 12usize);
        let mut a = BlockTridiag::zeros(nb, bs);
        for n in 0..nb {
            let mut d = Matrix::random(bs, bs, &mut r);
            for i in 0..bs {
                d[(i, i)] += c64(4.0, 1.0);
            }
            *a.diag_mut(n) = d;
        }
        for n in 0..nb - 1 {
            let sparse_block = |r: &mut rand::rngs::StdRng| {
                Matrix::from_fn(bs, bs, |_, _| {
                    if r.random_range(0.0..1.0) < 0.15 {
                        c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0))
                    } else {
                        Complex64::ZERO
                    }
                })
            };
            *a.upper_mut(n) = sparse_block(&mut r);
            *a.lower_mut(n) = sparse_block(&mut r);
        }
        let sig: Vec<Matrix> = (0..nb)
            .map(|_| Matrix::random_hermitian(bs, &mut r).scale(Complex64::I))
            .collect();
        let (dense, f_dense) = qt_linalg::count_flops(|| {
            rgf_with_strategy(&a, &sig, MultiplyStrategy::Dense).unwrap()
        });
        let (sparse, f_sparse) = qt_linalg::count_flops(|| {
            rgf_with_strategy(&a, &sig, MultiplyStrategy::Csrmm { threshold: 0.0 }).unwrap()
        });
        for n in 0..nb {
            assert!(dense.gr_diag[n].max_abs_diff(&sparse.gr_diag[n]) < 1e-10);
            assert!(dense.gl_diag[n].max_abs_diff(&sparse.gl_diag[n]) < 1e-10);
        }
        assert!(
            f_sparse < f_dense,
            "CSRMM must do less work on sparse couplings: {f_sparse} vs {f_dense}"
        );
    }

    #[test]
    fn warm_rgf_reuses_workspace_buffers() {
        // After one solve + recycle the thread pool holds the full working
        // set; a second identical solve must not miss the pool once.
        let (a, sig) = random_problem(4, 4, 13);
        rgf(&a, &sig).unwrap().recycle();
        let before = qt_linalg::workspace::fresh_here();
        rgf(&a, &sig).unwrap().recycle();
        assert_eq!(
            qt_linalg::workspace::fresh_here(),
            before,
            "warm RGF must be allocation-free"
        );
    }

    #[test]
    fn selector_hysteresis_is_sticky() {
        let s = KernelSelector::new(2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.choice(0), None);
        // Fresh block: plain compare against the crossover (0.2).
        assert!(s.choose(0, 0.15, 0.2, 0.5));
        assert_eq!(s.choice(0), Some(true));
        // Density drifts above the crossover but stays inside the band
        // (0.2·1.5 = 0.3): the sparse choice is sticky.
        assert!(s.choose(0, 0.25, 0.2, 0.5));
        assert_eq!(s.choice(0), Some(true));
        // Leaves the band: flips to dense.
        assert!(!s.choose(0, 0.35, 0.2, 0.5));
        assert_eq!(s.choice(0), Some(false));
        // Back below the crossover but above 0.2·0.5 = 0.1: still dense.
        assert!(!s.choose(0, 0.15, 0.2, 0.5));
        // Below the lower band edge: flips back to sparse.
        assert!(s.choose(0, 0.05, 0.2, 0.5));
        // Out-of-range block index degrades to the stateless compare.
        assert!(s.choose(7, 0.1, 0.2, 0.5));
        assert!(!s.choose(7, 0.5, 0.2, 0.5));
        s.reset();
        assert_eq!(s.choice(0), None);
    }

    #[test]
    fn auto_selector_routes_by_density_and_matches_dense() {
        // Couplings 0 and 1 are genuinely sparse (~8%), the rest fully
        // dense. With a crossover at 0.3 the selector must route exactly
        // the sparse pair to CSR — and the mixed-plan output must agree
        // with the all-dense solve to observable accuracy.
        let mut r = rand::rngs::StdRng::seed_from_u64(47);
        let (nb, bs) = (6usize, 16usize);
        let mut a = BlockTridiag::zeros(nb, bs);
        for n in 0..nb {
            let mut d = Matrix::random(bs, bs, &mut r);
            for i in 0..bs {
                d[(i, i)] += c64(4.0, 1.0);
            }
            *a.diag_mut(n) = d;
        }
        for n in 0..nb - 1 {
            let density = if n < 2 { 0.08 } else { 1.0 };
            let blk = |r: &mut rand::rngs::StdRng| {
                Matrix::from_fn(bs, bs, |_, _| {
                    if r.random_range(0.0..1.0) < density {
                        c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0))
                    } else {
                        Complex64::ZERO
                    }
                })
            };
            *a.upper_mut(n) = blk(&mut r);
            *a.lower_mut(n) = blk(&mut r);
        }
        let sig: Vec<Matrix> = (0..nb)
            .map(|_| Matrix::random_hermitian(bs, &mut r).scale(Complex64::I))
            .collect();
        let dense = rgf_with_strategy(&a, &sig, MultiplyStrategy::Dense).unwrap();
        let strat = MultiplyStrategy::Auto {
            dense_rate: 1e9,
            sparse_rate: 3e8,
            band: 0.1,
        };
        assert!((strat.crossover_density().unwrap() - 0.3).abs() < 1e-15);
        let sel = KernelSelector::new(nb - 1);
        let auto = rgf_with_selector(&a, &sig, strat, Some(&sel)).unwrap();
        for n in 0..nb {
            assert!(dense.gr_diag[n].max_abs_diff(&auto.gr_diag[n]) < 1e-10);
            assert!(dense.gl_diag[n].max_abs_diff(&auto.gl_diag[n]) < 1e-10);
            assert!(dense.gg_diag[n].max_abs_diff(&auto.gg_diag[n]) < 1e-10);
        }
        for n in 0..nb - 1 {
            assert!(dense.gr_lower[n].max_abs_diff(&auto.gr_lower[n]) < 1e-10);
            assert!(dense.gr_upper[n].max_abs_diff(&auto.gr_upper[n]) < 1e-10);
            assert!(dense.gl_lower[n].max_abs_diff(&auto.gl_lower[n]) < 1e-10);
        }
        assert_eq!(sel.choice(0), Some(true), "8% coupling must go sparse");
        assert_eq!(sel.choice(1), Some(true));
        for n in 2..nb - 1 {
            assert_eq!(
                sel.choice(n),
                Some(false),
                "dense coupling {n} must stay dense"
            );
        }
        // A second solve re-uses the remembered choices without flips.
        let again = rgf_with_selector(&a, &sig, strat, Some(&sel)).unwrap();
        assert!(dense.gr_diag[0].max_abs_diff(&again.gr_diag[0]) < 1e-10);
        assert_eq!(sel.choice(0), Some(true));
        again.recycle();
        auto.recycle();
        dense.recycle();
    }

    #[test]
    fn auto_without_selector_is_stateless_and_counted() {
        let (a, sig) = random_problem(4, 6, 33);
        let before = qt_telemetry::counters::total_kernel_dense_selected();
        // Fully dense random couplings with a low crossover: every
        // coupling routes dense, even without a selector attached.
        let strat = MultiplyStrategy::Auto {
            dense_rate: 1e9,
            sparse_rate: 1e8,
            band: 0.05,
        };
        let out = rgf_with_selector(&a, &sig, strat, None).unwrap();
        let (ref_gr, _) = dense_reference(&a, &sig).unwrap();
        let blk = ref_gr.submatrix(0, 0, 6, 6);
        assert!(out.gr_diag[0].max_abs_diff(&blk) < 1e-10);
        assert!(
            qt_telemetry::counters::total_kernel_dense_selected() >= before + 3,
            "each coupling decision must be counted"
        );
        out.recycle();
    }

    #[test]
    fn warm_sparse_rgf_reuses_workspace_buffers() {
        // The pooled CSR images (and the sparse temporaries) must come out
        // of the thread workspace pool on a warm solve, exactly like the
        // dense route.
        let mut r = rand::rngs::StdRng::seed_from_u64(59);
        let (nb, bs) = (4usize, 10usize);
        let mut a = BlockTridiag::zeros(nb, bs);
        for n in 0..nb {
            let mut d = Matrix::random(bs, bs, &mut r);
            for i in 0..bs {
                d[(i, i)] += c64(4.0, 1.0);
            }
            *a.diag_mut(n) = d;
        }
        for n in 0..nb - 1 {
            let blk = |r: &mut rand::rngs::StdRng| {
                Matrix::from_fn(bs, bs, |_, _| {
                    if r.random_range(0.0..1.0) < 0.2 {
                        c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0))
                    } else {
                        Complex64::ZERO
                    }
                })
            };
            *a.upper_mut(n) = blk(&mut r);
            *a.lower_mut(n) = blk(&mut r);
        }
        let sig: Vec<Matrix> = (0..nb)
            .map(|_| Matrix::random_hermitian(bs, &mut r).scale(Complex64::I))
            .collect();
        let strat = MultiplyStrategy::Csrmm { threshold: 0.0 };
        rgf_with_strategy(&a, &sig, strat).unwrap().recycle();
        let before = qt_linalg::workspace::fresh_here();
        rgf_with_strategy(&a, &sig, strat).unwrap().recycle();
        assert_eq!(
            qt_linalg::workspace::fresh_here(),
            before,
            "warm sparse RGF must be allocation-free"
        );
        // And the Auto route pools the same way once its choices settle.
        let sel = KernelSelector::new(nb - 1);
        let auto = MultiplyStrategy::Auto {
            dense_rate: 1e9,
            sparse_rate: 5e8,
            band: 0.1,
        };
        rgf_with_selector(&a, &sig, auto, Some(&sel))
            .unwrap()
            .recycle();
        let before = qt_linalg::workspace::fresh_here();
        rgf_with_selector(&a, &sig, auto, Some(&sel))
            .unwrap()
            .recycle();
        assert_eq!(
            qt_linalg::workspace::fresh_here(),
            before,
            "warm auto-selected RGF must be allocation-free"
        );
    }

    #[test]
    fn flop_scaling_is_linear_in_blocks() {
        // RGF cost grows linearly with bnum (vs cubic dense growth).
        let (a4, s4) = random_problem(4, 6, 21);
        let (a8, s8) = random_problem(8, 6, 22);
        let (_, f4) = qt_linalg::count_flops(|| rgf(&a4, &s4).unwrap());
        let (_, f8) = qt_linalg::count_flops(|| rgf(&a8, &s8).unwrap());
        let ratio = f8 as f64 / f4 as f64;
        assert!(
            ratio > 1.7 && ratio < 2.4,
            "doubling blocks should ~double flops, got {ratio}"
        );
    }
}
