//! Offline stand-in for `proptest` 1.
//!
//! The build environment has no registry access, so the workspace patches
//! `proptest` to this crate. The `proptest!` macro expands each property
//! into a plain `#[test]` that runs `ProptestConfig::cases` deterministic
//! seeded cases (seed = a hash of the case index), sampling each argument
//! from its strategy. No shrinking — a failing case panics with the
//! sampled arguments available via the assert message. Strategies cover
//! the forms this workspace uses: primitive ranges, `any::<T>()`, `Just`,
//! and `collection::vec`.

use std::ops::{Range, RangeInclusive};

/// Per-property configuration (`with_cases` subset).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 stream for case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_case(case: u64) -> Self {
        TestRng {
            state: case
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x2545_F491_4F6C_DD1D),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value source sampled once per case.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty strategy range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (a as i128 + off as i128) as $t
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty strategy range");
        a + rng.unit_f64() * (b - a)
    }
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.len, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::from_case(__case as u64);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_any_sample_in_bounds(
            a in 3usize..10,
            b in 0.25f64..=0.75,
            s in any::<u64>(),
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.25..=0.75).contains(&b));
            let _ = s;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in crate::collection::vec(0u32..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::from_case(3);
        let mut b = TestRng::from_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
