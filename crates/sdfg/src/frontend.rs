//! High-level frontend: parse Fig. 5-style programs into scope trees.
//!
//! The paper's workflow starts from Python: "the domain scientist designs an
//! algorithm and implements it as linear algebra operations … this
//! implementation is then parsed into an SDFG" (§3). This module is that
//! frontend for a small, line-oriented DSL mirroring the `dace.map` syntax
//! of Fig. 5:
//!
//! ```text
//! program sse_sigma
//! array G[Nkz, NE, NA, Norb, Norb]
//! array dH[NA, NB, N3D, Norb, Norb]
//! array D[Nqz, Nw, NA, NB, N3D, N3D]
//! array Sigma[Nkz, NE, NA, Norb, Norb]
//! transient dHG[Nkz, NE, Nqz, Nw, N3D, NA, NB, Norb, Norb]
//! transient dHD[Nqz, Nw, N3D, NA, NB, Norb, Norb]
//! indirection f
//!
//! map k=0:Nkz, E=0:NE, q=0:Nqz, w=0:Nw, i=0:N3D, j=0:N3D, a=0:NA, b=0:NB {
//!     dHG[k, E, q, w, i, a, b, :, :] = G[k - q, E - w, f(a, b), :, :] @ dH[a, b, i, :, :]
//!     dHD[q, w, i, a, b, :, :] += dH[a, b, j, :, :] * D[q, w, a, b, i, j]
//!     Sigma[k, E, a, :, :] += dHG[k, E, q, w, i, a, b, :, :] @ dHD[q, w, i, a, b, :, :]
//! }
//! ```
//!
//! Grammar (line-oriented):
//! * `program NAME`
//! * `array NAME[dim, …]` / `transient NAME[dim, …]` — complex128 containers
//! * `indirection NAME` — registers a lookup table usable as `NAME(args…)`
//! * `map p=lo:hi, … {` … `}` — map scopes (nestable)
//! * `OUT[subset] = A[subset] @ B[subset]` — matrix multiply
//! * `OUT[subset] (+)= A[subset] * B[subset]` — scalar × matrix
//! * `OUT[subset] (+)= A[subset]` — copy/accumulate tasklet
//! * index entries: affine expressions over symbols and integers, `:`
//!   (full range inferred from the array), `lo:hi` ranges, or
//!   `table(arg, …)` indirections.
//!
//! Matrix-shaped operands contribute `8·Norb³`-style flop counts derived
//! from their trailing range dimensions, matching the hand-built library
//! trees (the equivalence is unit-tested).

use crate::propagate::ParamRange;
use crate::stree::{Access, ArrayDesc, Dtype, Node, OpKind, ScopeTree};
use crate::subset::{Dim, Range, Subset};
use crate::symexpr::SymExpr;

/// Parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

// ---------------- symbolic expression parsing ----------------

/// Recursive-descent parser for affine expressions: `+`, `-`, `*`, parens,
/// integers, identifiers.
struct ExprParser<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> ExprParser<'a> {
    fn new(src: &'a str, line: usize) -> Self {
        ExprParser { src, pos: 0, line }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn parse_expr(&mut self) -> Result<SymExpr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('+') => {
                    self.pos += 1;
                    lhs = lhs + self.parse_term()?;
                }
                Some('-') => {
                    self.pos += 1;
                    lhs = lhs - self.parse_term()?;
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_term(&mut self) -> Result<SymExpr, ParseError> {
        let mut lhs = self.parse_atom()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('*') {
                self.pos += 1;
                lhs = lhs * self.parse_atom()?;
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_atom(&mut self) -> Result<SymExpr, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let e = self.parse_expr()?;
                if !self.eat(')') {
                    return err(self.line, "expected `)`");
                }
                Ok(e)
            }
            Some('-') => {
                self.pos += 1;
                Ok(-self.parse_atom()?)
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
                let v: i64 = self.src[start..self.pos].parse().map_err(|_| ParseError {
                    line: self.line,
                    message: "bad integer".into(),
                })?;
                Ok(SymExpr::int(v))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
                    self.pos += 1;
                }
                Ok(SymExpr::sym(&self.src[start..self.pos]))
            }
            other => err(
                self.line,
                format!("unexpected token {other:?} in expression"),
            ),
        }
    }

    fn finished(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }
}

/// Parse one expression occupying the entire string.
fn parse_expr_all(src: &str, line: usize) -> Result<SymExpr, ParseError> {
    let mut p = ExprParser::new(src, line);
    let e = p.parse_expr()?;
    if !p.finished() {
        return err(line, format!("trailing input in expression `{src}`"));
    }
    Ok(e)
}

// ---------------- access parsing ----------------

/// Split a top-level comma list, respecting parentheses.
fn split_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() || !out.is_empty() {
        out.push(last);
    }
    out
}

/// One operand: `NAME[dim, dim, …]`.
struct ParsedAccess {
    array: String,
    subset: Subset,
}

fn parse_access(
    src: &str,
    line: usize,
    arrays: &std::collections::BTreeMap<String, ArrayDesc>,
    indirections: &[String],
) -> Result<ParsedAccess, ParseError> {
    let src = src.trim();
    let open = src.find('[').ok_or(ParseError {
        line,
        message: format!("expected `name[...]`, got `{src}`"),
    })?;
    if !src.ends_with(']') {
        return err(line, format!("unterminated subset in `{src}`"));
    }
    let name = src[..open].trim().to_string();
    let desc = arrays.get(&name).ok_or(ParseError {
        line,
        message: format!("unknown array `{name}`"),
    })?;
    let inner = &src[open + 1..src.len() - 1];
    let entries = split_commas(inner);
    if entries.len() != desc.shape.len() {
        return err(
            line,
            format!(
                "array `{name}` has {} dims, subset has {}",
                desc.shape.len(),
                entries.len()
            ),
        );
    }
    let mut dims = Vec::with_capacity(entries.len());
    for (d, entry) in entries.iter().enumerate() {
        let entry = entry.trim();
        if entry == ":" {
            dims.push(Dim::Range(Range::full(desc.shape[d].clone())));
            continue;
        }
        // Indirection call `table(args…)`?
        if let Some(paren) = entry.find('(') {
            let head = entry[..paren].trim();
            if indirections.iter().any(|t| t == head) && entry.ends_with(')') {
                let args = split_commas(&entry[paren + 1..entry.len() - 1])
                    .into_iter()
                    .map(|a| parse_expr_all(a, line))
                    .collect::<Result<Vec<_>, _>>()?;
                dims.push(Dim::Indirect {
                    table: head.to_string(),
                    args,
                });
                continue;
            }
        }
        // Range `lo:hi`?
        if let Some(colon) = top_level_colon(entry) {
            let lo = parse_expr_all(&entry[..colon], line)?;
            let hi = parse_expr_all(&entry[colon + 1..], line)?;
            dims.push(Dim::Range(Range::new(lo, hi)));
            continue;
        }
        dims.push(Dim::Index(parse_expr_all(entry, line)?.simplified()));
    }
    Ok(ParsedAccess {
        array: name,
        subset: Subset::new(dims),
    })
}

/// Position of a `:` outside parentheses, if any.
fn top_level_colon(s: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ':' if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Number of matrix-range dimensions at the end of a subset (0, 1 or 2) —
/// determines the flop model of a statement.
fn trailing_ranges(subset: &Subset) -> usize {
    subset
        .0
        .iter()
        .rev()
        .take_while(|d| matches!(d, Dim::Range(_)))
        .count()
        .min(2)
}

/// Length of the last range dimension (the matrix order `Norb`).
fn last_range_len(subset: &Subset) -> Option<SymExpr> {
    subset.0.iter().rev().find_map(|d| match d {
        Dim::Range(r) => Some(r.length()),
        _ => None,
    })
}

// ---------------- program parsing ----------------

/// Parse a full program into a [`ScopeTree`].
pub fn parse_program(src: &str) -> Result<ScopeTree, ParseError> {
    let mut tree = ScopeTree::new("program");
    let mut indirections: Vec<String> = Vec::new();
    // Stack of open map scopes: (label, params, body).
    let mut stack: Vec<(String, Vec<ParamRange>, Vec<Node>)> = Vec::new();
    let mut stmt_counter = 0usize;
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(name) = text.strip_prefix("program ") {
            tree.name = name.trim().to_string();
        } else if let Some(rest) = text
            .strip_prefix("array ")
            .map(|r| (r, false))
            .or_else(|| text.strip_prefix("transient ").map(|r| (r, true)))
        {
            let (decl, transient) = rest;
            let open = decl.find('[').ok_or(ParseError {
                line,
                message: "array declaration needs `[dims]`".into(),
            })?;
            if !decl.trim_end().ends_with(']') {
                return err(line, "unterminated array declaration");
            }
            let name = decl[..open].trim().to_string();
            let dims = split_commas(&decl.trim_end()[open + 1..decl.trim_end().len() - 1])
                .into_iter()
                .map(|d| parse_expr_all(d, line))
                .collect::<Result<Vec<_>, _>>()?;
            tree.add_array(name, ArrayDesc::new(dims, Dtype::Complex128, transient));
        } else if let Some(table) = text.strip_prefix("indirection ") {
            indirections.push(table.trim().to_string());
            tree.indirection_tables.push(table.trim().to_string());
        } else if let Some(rest) = text.strip_prefix("map ") {
            let rest = rest.trim_end();
            let rest = rest.strip_suffix('{').ok_or(ParseError {
                line,
                message: "map line must end with `{`".into(),
            })?;
            let mut params = Vec::new();
            for part in split_commas(rest) {
                let eq = part.find('=').ok_or(ParseError {
                    line,
                    message: format!("map parameter `{part}` needs `name=lo:hi`"),
                })?;
                let name = part[..eq].trim();
                let range = &part[eq + 1..];
                let colon = top_level_colon(range).ok_or(ParseError {
                    line,
                    message: format!("map range `{range}` needs `lo:hi`"),
                })?;
                params.push(ParamRange::new(
                    name,
                    parse_expr_all(&range[..colon], line)?,
                    parse_expr_all(&range[colon + 1..], line)?,
                ));
            }
            let label = format!("map{}", stack.len());
            stack.push((label, params, Vec::new()));
        } else if text == "}" {
            let (label, params, body) = stack.pop().ok_or(ParseError {
                line,
                message: "unmatched `}`".into(),
            })?;
            let node = Node::map(label, params, body);
            match stack.last_mut() {
                Some((_, _, parent)) => parent.push(node),
                None => tree.roots.push(node),
            }
        } else {
            // Statement: OUT (+)= A [op B]
            let (lhs, rhs, accumulate) = if let Some(pos) = text.find("+=") {
                (&text[..pos], &text[pos + 2..], true)
            } else if let Some(pos) = text.find('=') {
                (&text[..pos], &text[pos + 1..], false)
            } else {
                return err(line, format!("unrecognized statement `{text}`"));
            };
            let out = parse_access(lhs, line, &tree.arrays, &indirections)?;
            // Operator: top-level `@` or `*` splits the rhs.
            let (op, parts) = if let Some(pos) = top_level_op(rhs, '@') {
                (OpKind::MatMul, vec![&rhs[..pos], &rhs[pos + 1..]])
            } else if let Some(pos) = top_level_op(rhs, '*') {
                (OpKind::ScalarMul, vec![&rhs[..pos], &rhs[pos + 1..]])
            } else {
                (OpKind::Tasklet, vec![rhs])
            };
            let inputs = parts
                .into_iter()
                .map(|p| parse_access(p, line, &tree.arrays, &indirections))
                .collect::<Result<Vec<_>, _>>()?;
            // Flop model from the matrix structure of the output/input.
            let n = last_range_len(&out.subset)
                .or_else(|| inputs.iter().find_map(|a| last_range_len(&a.subset)))
                .unwrap_or(SymExpr::int(1));
            let flops = match (&op, trailing_ranges(&out.subset)) {
                (OpKind::MatMul, _) => SymExpr::int(8) * n.clone() * n.clone() * n,
                (OpKind::ScalarMul, 2) => SymExpr::int(8) * n.clone() * n,
                (OpKind::ScalarMul, _) => SymExpr::int(8) * n,
                (_, 2) => SymExpr::int(2) * n.clone() * n,
                (_, 1) => SymExpr::int(2) * n,
                _ => SymExpr::int(2),
            };
            stmt_counter += 1;
            let node = Node::compute(
                format!("stmt{stmt_counter}"),
                op,
                inputs
                    .into_iter()
                    .map(|a| Access::read(a.array, a.subset))
                    .collect(),
                vec![if accumulate {
                    Access::accumulate(out.array, out.subset)
                } else {
                    Access::write(out.array, out.subset)
                }],
                flops,
            );
            match stack.last_mut() {
                Some((_, _, body)) => body.push(node),
                None => tree.roots.push(node),
            }
        }
    }
    if !stack.is_empty() {
        return err(src.lines().count(), "unclosed map scope");
    }
    tree.validate().map_err(|m| ParseError {
        line: 0,
        message: format!("validation: {m}"),
    })?;
    Ok(tree)
}

/// Position of a single-char operator at paren/bracket depth 0.
fn top_level_op(s: &str, op: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth = depth.saturating_sub(1),
            c if c == op && depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// The Fig. 5 program in the DSL (used by tests and examples).
pub const FIG5_SSE_SIGMA: &str = r#"
program sse_sigma
array G[Nkz, NE, NA, Norb, Norb]
array dH[NA, NB, N3D, Norb, Norb]
array D[Nqz, Nw, NA, NB, N3D, N3D]
array Sigma[Nkz, NE, NA, Norb, Norb]
transient dHG[Nkz, NE, Nqz, Nw, N3D, NA, NB, Norb, Norb]
transient dHD[Nqz, Nw, N3D, NA, NB, Norb, Norb]
indirection f

map kz=0:Nkz, E=0:NE, qz=0:Nqz, w=0:Nw, i=0:N3D, j=0:N3D, a=0:NA, b=0:NB {
    dHG[kz, E, qz, w, i, a, b, :, :] = G[kz - qz, E - w, f(a, b), :, :] @ dH[a, b, i, :, :]
    dHD[qz, w, i, a, b, :, :] += dH[a, b, j, :, :] * D[qz, w, a, b, i, j]
    Sigma[kz, E, a, :, :] += dHG[kz, E, qz, w, i, a, b, :, :] @ dHD[qz, w, i, a, b, :, :]
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::symexpr::Bindings;

    fn bindings() -> Bindings {
        [
            ("Nkz", 2i64),
            ("NE", 8),
            ("Nqz", 2),
            ("Nw", 2),
            ("N3D", 3),
            ("NA", 8),
            ("NB", 3),
            ("Norb", 2),
            ("M", 4),
            ("N", 5),
            ("K", 6),
        ]
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect()
    }

    #[test]
    fn expression_parser() {
        let b = bindings();
        for (src, expect) in [
            ("3", 3i64),
            ("Nkz + 1", 3),
            ("2 * Nkz - 1", 3),
            ("(Nkz + NE) * 2", 20),
            ("-Nkz", -2),
            ("NE - Nw - 1", 5),
        ] {
            let e = parse_expr_all(src, 1).unwrap();
            assert_eq!(e.eval(&b).unwrap(), expect, "{src}");
        }
        assert!(parse_expr_all("1 +", 1).is_err());
        assert!(parse_expr_all("(1", 1).is_err());
        assert!(parse_expr_all("1 2", 1).is_err());
    }

    #[test]
    fn fig5_program_parses_and_validates() {
        let tree = parse_program(FIG5_SSE_SIGMA).expect("parse");
        assert_eq!(tree.name, "sse_sigma");
        assert_eq!(tree.num_maps(), 1);
        assert_eq!(tree.arrays.len(), 6);
        assert!(tree.arrays["dHG"].transient);
        assert!(!tree.arrays["G"].transient);
    }

    /// The parsed Fig. 5 program has *identical* movement and flop
    /// statistics to the hand-built library tree — the frontend and the
    /// builder agree on the SDFG.
    #[test]
    fn parsed_fig5_matches_library_tree() {
        let b = bindings();
        let models = [library::neighbor_model()];
        let parsed = parse_program(FIG5_SSE_SIGMA).unwrap();
        let built = library::sse_sigma_tree();
        let sp = parsed.stats(&b, &models);
        let sb = built.stats(&b, &models);
        assert_eq!(sp.accesses, sb.accesses);
        assert_eq!(sp.unique, sb.unique);
        assert_eq!(sp.flops, sb.flops);
        assert_eq!(sp.transient_bytes, sb.transient_bytes);
    }

    /// The parsed program admits the same transformation pipeline.
    #[test]
    fn parsed_fig5_transforms() {
        let b = bindings();
        let mut tree = parse_program(FIG5_SSE_SIGMA).unwrap();
        // The library pipeline expects its own node labels; apply the
        // transformations directly instead.
        crate::transforms::map_fission(&mut tree, "map0").unwrap();
        crate::transforms::redundancy_removal(
            &mut tree,
            "map_stmt1",
            &[("kz".into(), "qz".into()), ("E".into(), "w".into())],
        )
        .unwrap();
        assert!(tree.validate().is_ok());
        let stats = tree.stats(&b, &[library::neighbor_model()]);
        let before = parse_program(FIG5_SSE_SIGMA)
            .unwrap()
            .stats(&b, &[library::neighbor_model()]);
        assert!(stats.flops < before.flops);
    }

    #[test]
    fn matmul_program_matches_library() {
        let src = r#"
program matmul
array A[M, K]
array B[K, N]
array C[M, N]
map i=0:M, j=0:N, k=0:K {
    C[i, j] += A[i, k] * B[k, j]
}
"#;
        let tree = parse_program(src).unwrap();
        let b = bindings();
        let built = library::matmul_tree();
        let sp = tree.stats(&b, &[]);
        let sb = built.stats(&b, &[]);
        assert_eq!(sp.accesses, sb.accesses);
        assert_eq!(sp.unique, sb.unique);
    }

    #[test]
    fn nested_maps_parse() {
        let src = r#"
program nested
array X[M, N]
array Y[M, N]
map i=0:M {
    map j=0:N {
        Y[i, j] = X[i, j]
    }
}
"#;
        let tree = parse_program(src).unwrap();
        assert_eq!(tree.num_maps(), 2);
        let b = bindings();
        let stats = tree.stats(&b, &[]);
        assert_eq!(stats.accesses["X"], 4 * 5);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let bad = "program p\narray A[M\n";
        let e = parse_program(bad).unwrap_err();
        assert_eq!(e.line, 2);
        let bad = "map i=0:M {\n";
        assert!(parse_program(bad).is_err());
        let bad = "program p\narray A[M]\nmap i=0:M {\n  B[i] = A[i]\n}\n";
        let e = parse_program(bad).unwrap_err();
        assert!(e.message.contains("unknown array"));
        let bad = "program p\narray A[M, N]\nmap i=0:M {\n  A[i] = A[i]\n}\n";
        let e = parse_program(bad).unwrap_err();
        assert!(e.message.contains("dims"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "
# a comment
program p

array A[M]   # trailing comment
array B[M]
map i=0:M {
    B[i] = A[i]  # copy
}
";
        assert!(parse_program(src).is_ok());
    }
}
