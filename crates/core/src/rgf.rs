//! Recursive Green's Function solver (§2, ref. \[23\] Svizhenko et al.).
//!
//! Given the block tri-diagonal `A = z·S − H − Σᴿ` and block-diagonal
//! lesser self-energy `Σ<`, RGF computes the diagonal (and first
//! sub-diagonal) blocks of
//!
//! * `Gᴿ = A⁻¹`
//! * `G< = Gᴿ Σ< Gᴿ†`
//! * `G> = G< + Gᴿ − Gᴿ†`
//!
//! in `O(bnum · bs³)` instead of dense `O((bnum·bs)³)`. The recursions are
//! the standard left-connected forward pass plus the exact backward-pass
//! identities (derived and unit-verified against dense inversion):
//!
//! ```text
//! forward:  gᴿ_n = (A_nn − A_{n,n−1} gᴿ_{n−1} A_{n−1,n})⁻¹
//!           g<_n = gᴿ_n (Σ<_nn + A_{n,n−1} g<_{n−1} A_{n,n−1}†) gᴿ_n†
//! backward: Gᴿ_nn   = gᴿ_n + gᴿ_n A_{n,n+1} Gᴿ_{n+1,n+1} A_{n+1,n} gᴿ_n
//!           G<_nn   = g<_n + gᴿ_n A_{n,n+1} G<_{n+1,n+1} A_{n,n+1}† gᴿ_n†
//!                   + gᴿ_n A_{n,n+1} Gᴿ_{n+1,n+1} A_{n+1,n} g<_n
//!                   + g<_n A_{n+1,n}† Gᴿ_{n+1,n+1}† A_{n,n+1}† gᴿ_n†
//!           Gᴿ_{n+1,n} = −Gᴿ_{n+1,n+1} A_{n+1,n} gᴿ_n
//!           G<_{n+1,n} = −Gᴿ_{n+1,n+1} A_{n+1,n} g<_n − G<_{n+1,n+1} A_{n,n+1}† gᴿ_n†
//! ```

use qt_linalg::{invert, BlockTridiag, CsrMatrix, Matrix, SingularMatrix};

/// How the off-diagonal triple products of the forward pass are evaluated
/// (the Table 6 design space, §5.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum MultiplyStrategy {
    /// Densify everything and use plain GEMM (Table 6 "Dense-MM").
    #[default]
    Dense,
    /// Exploit the sparsity of the Hamiltonian coupling blocks:
    /// `CSR × dense` followed by `dense × CSR` (Table 6 "CSRMM", the
    /// paper's fastest route). Off-diagonal `A` blocks are converted to
    /// CSR once per solve; entries below `threshold` are dropped
    /// (structural zeros of the Hamiltonian, not numerical truncation,
    /// with the default of 0).
    Csrmm {
        /// Magnitude below which entries are treated as structural zeros.
        threshold: f64,
    },
}

/// Diagonal and first-subdiagonal Green's-function blocks.
#[derive(Clone, Debug)]
pub struct RgfOutput {
    /// `Gᴿ_nn` for every block.
    pub gr_diag: Vec<Matrix>,
    /// `G<_nn`.
    pub gl_diag: Vec<Matrix>,
    /// `G>_nn`.
    pub gg_diag: Vec<Matrix>,
    /// `Gᴿ_{n+1,n}` (length `bnum − 1`).
    pub gr_lower: Vec<Matrix>,
    /// `Gᴿ_{n,n+1}`.
    pub gr_upper: Vec<Matrix>,
    /// `G<_{n+1,n}`.
    pub gl_lower: Vec<Matrix>,
}

impl RgfOutput {
    /// `G<_{n,n+1}` from anti-Hermiticity: `G<_{n,n+1} = −(G<_{n+1,n})†`.
    pub fn gl_upper(&self, n: usize) -> Matrix {
        self.gl_lower[n].dagger().scale(qt_linalg::c64(-1.0, 0.0))
    }

    /// `G>_{n+1,n} = G<_{n+1,n} + Gᴿ_{n+1,n} − (Gᴿ_{n,n+1})†`.
    pub fn gg_lower(&self, n: usize) -> Matrix {
        let mut gg = self.gl_lower[n].clone();
        gg += &self.gr_lower[n];
        gg -= &self.gr_upper[n].dagger();
        gg
    }
}

/// Run RGF with the default dense multiply strategy. `a` is the full
/// `z·S − H − Σᴿ` block tri-diagonal; `sigma_lesser[n]` the lesser
/// self-energy of block `n` (boundary + scattering contributions already
/// summed).
pub fn rgf(a: &BlockTridiag, sigma_lesser: &[Matrix]) -> Result<RgfOutput, SingularMatrix> {
    rgf_with_strategy(a, sigma_lesser, MultiplyStrategy::Dense)
}

/// Run RGF with an explicit off-diagonal multiply strategy (Table 6).
pub fn rgf_with_strategy(
    a: &BlockTridiag,
    sigma_lesser: &[Matrix],
    strategy: MultiplyStrategy,
) -> Result<RgfOutput, SingularMatrix> {
    // Thread-local attribution: RGF runs inside the per-(kz, E) rayon
    // workers, so the phase aggregates busy time across workers.
    let _span = qt_telemetry::Span::enter("rgf");
    let nb = a.num_blocks();
    assert_eq!(sigma_lesser.len(), nb, "one Σ< block per RGF block");
    // CSR images of the coupling blocks for the CSRMM route.
    let sparse_couplings: Option<(Vec<CsrMatrix>, Vec<CsrMatrix>)> = match strategy {
        MultiplyStrategy::Dense => None,
        MultiplyStrategy::Csrmm { threshold } => Some((
            (0..nb - 1)
                .map(|n| CsrMatrix::from_dense(a.lower(n), threshold))
                .collect(),
            (0..nb - 1)
                .map(|n| CsrMatrix::from_dense(a.upper(n), threshold))
                .collect(),
        )),
    };
    // Forward pass: left-connected g's.
    let mut g_r: Vec<Matrix> = Vec::with_capacity(nb);
    let mut g_l: Vec<Matrix> = Vec::with_capacity(nb);
    for n in 0..nb {
        let (m, sig_eff) = if n == 0 {
            (a.diag(0).clone(), sigma_lesser[0].clone())
        } else {
            // A_{n,n−1} couples block n−1 into n; the triple product
            // `A_{n,n−1} · gᴿ_{n−1} · A_{n−1,n}` is the Table 6 operation.
            let tau = a.lower(n - 1);
            let mut m = a.diag(n).clone();
            let mut sig = sigma_lesser[n].clone();
            match &sparse_couplings {
                None => {
                    m -= &tau.matmul(&g_r[n - 1]).matmul(a.upper(n - 1));
                    sig += &tau.matmul(&g_l[n - 1]).matmul_dagger(tau);
                }
                Some((lowers, uppers)) => {
                    // CSRMM: sparse × dense, then dense × sparse.
                    let lo_sp = &lowers[n - 1];
                    let up_sp = &uppers[n - 1];
                    let tg = lo_sp.mul_dense(&g_r[n - 1]);
                    m -= &up_sp.rmul_dense(&tg);
                    let tl = lo_sp.mul_dense(&g_l[n - 1]);
                    sig += &tl.matmul_dagger(tau);
                }
            }
            (m, sig)
        };
        let gr = invert(&m)?;
        let gl = gr.matmul(&sig_eff).matmul_dagger(&gr);
        g_r.push(gr);
        g_l.push(gl);
    }
    // Backward pass.
    let mut gr_diag = vec![Matrix::zeros(0, 0); nb];
    let mut gl_diag = vec![Matrix::zeros(0, 0); nb];
    let mut gr_lower = vec![Matrix::zeros(0, 0); nb.saturating_sub(1)];
    let mut gr_upper = vec![Matrix::zeros(0, 0); nb.saturating_sub(1)];
    let mut gl_lower = vec![Matrix::zeros(0, 0); nb.saturating_sub(1)];
    gr_diag[nb - 1] = g_r[nb - 1].clone();
    gl_diag[nb - 1] = g_l[nb - 1].clone();
    for n in (0..nb - 1).rev() {
        let up = a.upper(n); // A_{n,n+1}
        let lo = a.lower(n); // A_{n+1,n}
        let gr_next = gr_diag[n + 1].clone();
        let gl_next = gl_diag[n + 1].clone();
        let gr_n = &g_r[n];
        let gl_n = &g_l[n];
        let gr_n_dag = gr_n.dagger();
        // Gᴿ_nn
        let t1 = gr_n.matmul(up); // gᴿ_n A_{n,n+1}
        let mut grd = gr_n.clone();
        grd += &t1.matmul(&gr_next).matmul(lo).matmul(gr_n);
        // G<_nn — four terms.
        let mut gld = gl_n.clone();
        gld += &t1.matmul(&gl_next).matmul_dagger(up).matmul(&gr_n_dag);
        let t2 = t1.matmul(&gr_next).matmul(lo).matmul(gl_n);
        gld += &t2;
        gld += &gl_n
            .matmul_dagger(lo)
            .matmul_dagger(&gr_next)
            .matmul_dagger(up)
            .matmul(&gr_n_dag);
        // Off-diagonal blocks.
        let mut grl = gr_next.matmul(lo).matmul(gr_n);
        grl = grl.scale(qt_linalg::c64(-1.0, 0.0));
        let gru = gr_n
            .matmul(up)
            .matmul(&gr_next)
            .scale(qt_linalg::c64(-1.0, 0.0));
        let mut gll = gr_next.matmul(lo).matmul(gl_n);
        gll += &gl_next.matmul_dagger(up).matmul(&gr_n_dag);
        gll = gll.scale(qt_linalg::c64(-1.0, 0.0));
        gr_diag[n] = grd;
        gl_diag[n] = gld;
        gr_lower[n] = grl;
        gr_upper[n] = gru;
        gl_lower[n] = gll;
    }
    // G> from the exact identity G> = G< + Gᴿ − Gᴬ.
    let gg_diag: Vec<Matrix> = gr_diag
        .iter()
        .zip(&gl_diag)
        .map(|(gr, gl)| {
            let mut gg = gl.clone();
            gg += gr;
            gg -= &gr.dagger();
            gg
        })
        .collect();
    Ok(RgfOutput {
        gr_diag,
        gl_diag,
        gg_diag,
        gr_lower,
        gr_upper,
        gl_lower,
    })
}

/// Dense reference: assemble, invert, and form `G< = Gᴿ Σ< Gᴿ†` exactly.
/// For validation and small problems only (`O(n³)` in the full order).
pub fn dense_reference(
    a: &BlockTridiag,
    sigma_lesser: &[Matrix],
) -> Result<(Matrix, Matrix), SingularMatrix> {
    let bs = a.block_size();
    let full = a.to_dense();
    let gr = invert(&full)?;
    let mut sig = Matrix::zeros(full.rows(), full.cols());
    for (n, s) in sigma_lesser.iter().enumerate() {
        sig.set_submatrix(n * bs, n * bs, s);
    }
    let gl = gr.matmul(&sig).matmul_dagger(&gr);
    Ok((gr, gl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_linalg::{c64, Complex64};
    use rand::{Rng as _, SeedableRng};

    /// Random non-Hermitian block tridiagonal `A` (as `E·S − H − Σᴿ` is)
    /// plus random anti-Hermitian Σ< blocks.
    fn random_problem(nb: usize, bs: usize, seed: u64) -> (BlockTridiag, Vec<Matrix>) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a = BlockTridiag::zeros(nb, bs);
        for n in 0..nb {
            let mut d = Matrix::random(bs, bs, &mut r);
            // Diagonal dominance for well-conditioned inversion, with a
            // lossy imaginary part like a retarded operator has.
            for i in 0..bs {
                d[(i, i)] += c64(4.0, 1.0);
            }
            *a.diag_mut(n) = d;
        }
        for n in 0..nb - 1 {
            *a.upper_mut(n) = Matrix::random(bs, bs, &mut r);
            *a.lower_mut(n) = Matrix::random(bs, bs, &mut r);
        }
        let sig: Vec<Matrix> = (0..nb)
            .map(|_| {
                // Anti-Hermitian lesser self-energy: i·(positive Hermitian).
                let h = Matrix::random_hermitian(bs, &mut r);
                h.scale(Complex64::I)
            })
            .collect();
        (a, sig)
    }

    #[test]
    fn rgf_matches_dense_reference() {
        for (nb, bs, seed) in [(2, 3, 1), (4, 4, 2), (6, 5, 3), (3, 8, 4)] {
            let (a, sig) = random_problem(nb, bs, seed);
            let out = rgf(&a, &sig).unwrap();
            let (gr_dense, gl_dense) = dense_reference(&a, &sig).unwrap();
            for n in 0..nb {
                let gr_blk = gr_dense.submatrix(n * bs, n * bs, bs, bs);
                let gl_blk = gl_dense.submatrix(n * bs, n * bs, bs, bs);
                assert!(
                    out.gr_diag[n].max_abs_diff(&gr_blk) < 1e-10,
                    "GR block {n} mismatch (nb={nb}, bs={bs})"
                );
                assert!(
                    out.gl_diag[n].max_abs_diff(&gl_blk) < 1e-10,
                    "G< block {n} mismatch (nb={nb}, bs={bs})"
                );
            }
            for n in 0..nb - 1 {
                let gr_off = gr_dense.submatrix((n + 1) * bs, n * bs, bs, bs);
                let gr_up = gr_dense.submatrix(n * bs, (n + 1) * bs, bs, bs);
                let gl_off = gl_dense.submatrix((n + 1) * bs, n * bs, bs, bs);
                let gl_up = gl_dense.submatrix(n * bs, (n + 1) * bs, bs, bs);
                assert!(
                    out.gr_upper[n].max_abs_diff(&gr_up) < 1e-10,
                    "GR_{{n,n+1}} block {n} mismatch"
                );
                assert!(
                    out.gl_upper(n).max_abs_diff(&gl_up) < 1e-10,
                    "G<_{{n,n+1}} block {n} mismatch"
                );
                assert!(
                    out.gr_lower[n].max_abs_diff(&gr_off) < 1e-10,
                    "GR_{{n+1,n}} block {n} mismatch"
                );
                assert!(
                    out.gl_lower[n].max_abs_diff(&gl_off) < 1e-10,
                    "G<_{{n+1,n}} block {n} mismatch"
                );
            }
        }
    }

    #[test]
    fn greater_identity_holds() {
        let (a, sig) = random_problem(4, 4, 7);
        let out = rgf(&a, &sig).unwrap();
        for n in 0..4 {
            let mut rhs = out.gl_diag[n].clone();
            rhs += &out.gr_diag[n];
            rhs -= &out.gr_diag[n].dagger();
            assert!(out.gg_diag[n].max_abs_diff(&rhs) < 1e-12);
        }
    }

    #[test]
    fn lesser_blocks_anti_hermitian() {
        // G< must be anti-Hermitian when Σ< is.
        let (a, sig) = random_problem(5, 3, 9);
        let out = rgf(&a, &sig).unwrap();
        for gl in &out.gl_diag {
            let mut sum = gl.clone();
            sum += &gl.dagger();
            assert!(sum.max_abs() < 1e-10, "G< + G<† must vanish");
        }
    }

    #[test]
    fn single_coupling_limit() {
        // With zero couplings the blocks decouple: GR_nn = A_nn^{-1}.
        let mut r = rand::rngs::StdRng::seed_from_u64(11);
        let mut a = BlockTridiag::zeros(3, 3);
        for n in 0..3 {
            let mut d = Matrix::random(3, 3, &mut r);
            for i in 0..3 {
                d[(i, i)] += c64(3.0, 0.5);
            }
            *a.diag_mut(n) = d;
        }
        let sig: Vec<Matrix> = (0..3).map(|_| Matrix::zeros(3, 3)).collect();
        let out = rgf(&a, &sig).unwrap();
        for n in 0..3 {
            let expect = invert(a.diag(n)).unwrap();
            assert!(out.gr_diag[n].max_abs_diff(&expect) < 1e-12);
            assert!(out.gl_diag[n].max_abs() < 1e-14, "no Σ< -> no G<");
            assert!(out.gr_lower[n.min(1)].max_abs() < 1e-14);
        }
    }

    #[test]
    fn csrmm_strategy_matches_dense() {
        // Build an A whose couplings are genuinely sparse (like Hamiltonian
        // blocks) and check both strategies produce identical results while
        // the sparse route performs fewer flop.
        let mut r = rand::rngs::StdRng::seed_from_u64(31);
        let (nb, bs) = (5usize, 12usize);
        let mut a = BlockTridiag::zeros(nb, bs);
        for n in 0..nb {
            let mut d = Matrix::random(bs, bs, &mut r);
            for i in 0..bs {
                d[(i, i)] += c64(4.0, 1.0);
            }
            *a.diag_mut(n) = d;
        }
        for n in 0..nb - 1 {
            let sparse_block = |r: &mut rand::rngs::StdRng| {
                Matrix::from_fn(bs, bs, |_, _| {
                    if r.random_range(0.0..1.0) < 0.15 {
                        c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0))
                    } else {
                        Complex64::ZERO
                    }
                })
            };
            *a.upper_mut(n) = sparse_block(&mut r);
            *a.lower_mut(n) = sparse_block(&mut r);
        }
        let sig: Vec<Matrix> = (0..nb)
            .map(|_| Matrix::random_hermitian(bs, &mut r).scale(Complex64::I))
            .collect();
        let (dense, f_dense) = qt_linalg::count_flops(|| {
            rgf_with_strategy(&a, &sig, MultiplyStrategy::Dense).unwrap()
        });
        let (sparse, f_sparse) = qt_linalg::count_flops(|| {
            rgf_with_strategy(&a, &sig, MultiplyStrategy::Csrmm { threshold: 0.0 }).unwrap()
        });
        for n in 0..nb {
            assert!(dense.gr_diag[n].max_abs_diff(&sparse.gr_diag[n]) < 1e-10);
            assert!(dense.gl_diag[n].max_abs_diff(&sparse.gl_diag[n]) < 1e-10);
        }
        assert!(
            f_sparse < f_dense,
            "CSRMM must do less work on sparse couplings: {f_sparse} vs {f_dense}"
        );
    }

    #[test]
    fn flop_scaling_is_linear_in_blocks() {
        // RGF cost grows linearly with bnum (vs cubic dense growth).
        let (a4, s4) = random_problem(4, 6, 21);
        let (a8, s8) = random_problem(8, 6, 22);
        let (_, f4) = qt_linalg::count_flops(|| rgf(&a4, &s4).unwrap());
        let (_, f8) = qt_linalg::count_flops(|| rgf(&a8, &s8).unwrap());
        let ratio = f8 as f64 / f4 as f64;
        assert!(
            ratio > 1.7 && ratio < 2.4,
            "doubling blocks should ~double flops, got {ratio}"
        );
    }
}
