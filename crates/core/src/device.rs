//! Device geometry: the 2-D slice of a FinFET (Fig. 1).
//!
//! The fin's large height/width ratio lets the z-direction be folded into
//! momentum points, so the simulated structure is a 2-D lattice of atoms:
//! `bnum` slabs along transport (x), each `NA/bnum` atoms tall (y). Slabs
//! couple only to adjacent slabs, which is what gives `H`, `S`, `Φ` their
//! block tri-diagonal structure.
//!
//! Substitution note (DESIGN.md §4): production OMEN reads atom positions
//! and neighbor lists from DFT inputs; we generate a silicon-like lattice
//! with the same structural properties (fixed `NB` nearest neighbors, only
//! intra-slab/adjacent-slab couplings, a neighbor indirection table
//! `f(a, b)`).

use crate::params::SimParams;

/// Index of a missing neighbor slot.
pub const NO_NEIGHBOR: usize = usize::MAX;

/// The simulated nanostructure.
#[derive(Clone, Debug)]
pub struct Device {
    /// Total number of atoms.
    pub na: usize,
    /// Neighbor slots per atom.
    pub nb: usize,
    /// Number of transport slabs (RGF blocks).
    pub bnum: usize,
    /// Atoms per slab.
    pub atoms_per_slab: usize,
    /// Position of each atom in lattice units `(x = slab, y = row)`.
    pub positions: Vec<(f64, f64)>,
    /// `neighbors[a][s]` = index of atom `a`'s `s`-th neighbor, or
    /// [`NO_NEIGHBOR`] when the slot is empty (edge atoms).
    pub neighbors: Vec<Vec<usize>>,
}

impl Device {
    /// Build the 2-D slice for the given parameters.
    ///
    /// Atoms are laid out slab-major (`a = slab · atoms_per_slab + row`), on
    /// a slightly dimerized lattice (silicon-like two-atom basis along y).
    /// Neighbor slots are filled with the nearest atoms by Euclidean
    /// distance, restricted to the same or adjacent slabs.
    pub fn new(p: &SimParams) -> Self {
        Device::try_new(p).expect("invalid simulation parameters")
    }

    /// Fallible [`Device::new`]: the entry point for user-supplied
    /// parameters (scenario files, service variant registration), where
    /// invalid dimensions must surface as an error instead of a panic.
    pub fn try_new(p: &SimParams) -> Result<Self, String> {
        p.validate()?;
        let atoms_per_slab = p.atoms_per_block();
        let mut positions = Vec::with_capacity(p.na);
        for slab in 0..p.bnum {
            for row in 0..atoms_per_slab {
                // Dimerization: odd rows are offset along x, mimicking the
                // two-atom basis of the diamond lattice projected to 2-D.
                let x = slab as f64 + if row % 2 == 1 { 0.25 } else { 0.0 };
                let y = row as f64 * 0.5;
                positions.push((x, y));
            }
        }
        let slab_of = |a: usize| a / atoms_per_slab;
        let mut neighbors = vec![vec![NO_NEIGHBOR; p.nb]; p.na];
        for a in 0..p.na {
            let (ax, ay) = positions[a];
            // Candidates: atoms in slabs within ±1.
            let s = slab_of(a);
            let lo = s.saturating_sub(1) * atoms_per_slab;
            let hi = ((s + 2).min(p.bnum)) * atoms_per_slab;
            let mut cands: Vec<(f64, usize)> = (lo..hi)
                .filter(|&b| b != a)
                .map(|b| {
                    let (bx, by) = positions[b];
                    let d2 = (ax - bx).powi(2) + (ay - by).powi(2);
                    (d2, b)
                })
                .collect();
            cands.sort_by(|l, r| l.partial_cmp(r).unwrap());
            for (slot, &(_, b)) in cands.iter().take(p.nb).enumerate() {
                neighbors[a][slot] = b;
            }
        }
        Ok(Device {
            na: p.na,
            nb: p.nb,
            bnum: p.bnum,
            atoms_per_slab,
            positions,
            neighbors,
        })
    }

    /// Delete (vacate) lattice sites: every neighbor slot pointing at a
    /// deleted site is emptied, in both directions, so the site decouples
    /// from the lattice entirely. The atom index itself survives — tensor
    /// shapes stay `[NA, …]` — but the site carries no bonds, which is how
    /// a vacancy manifests in a tight-binding model. Indices `>= na` are
    /// ignored.
    ///
    /// Combined with [`crate::hamiltonian::Disorder`] (which pins the
    /// dangling level's on-site energy), this is the seeded-disorder
    /// substrate of the scenario layer.
    pub fn delete_sites(&mut self, sites: &[usize]) {
        let vacant = |a: usize| sites.contains(&a);
        for a in 0..self.na {
            for slot in 0..self.nb {
                let b = self.neighbors[a][slot];
                if b != NO_NEIGHBOR && (vacant(a) || vacant(b)) {
                    self.neighbors[a][slot] = NO_NEIGHBOR;
                }
            }
        }
    }

    /// Build a deliberately *load-skewed* variant of the 2-D slice: atoms
    /// in the first `heavy_slabs` transport slabs (the source-contact
    /// region, where a real device has its densest bonding environment)
    /// keep all `NB` neighbor slots, while every other atom is pruned to
    /// `light_nb` slots. The SSE work per atom is proportional to its
    /// filled slots, so the per-tile cost becomes strongly non-uniform
    /// along the atom axis — the scenario the adaptive tiling is measured
    /// on.
    ///
    /// Pruning only empties slots; it never invents couplings, so the
    /// block tri-diagonal structure is preserved. The neighbor relation
    /// becomes asymmetric (a heavy atom may keep a pruned light partner),
    /// which the kernels already tolerate: matrix assembly iterates the
    /// symmetrized [`Device::coupling_pairs`] and `∇H` reads fall back
    /// when the reverse slot is gone.
    pub fn skewed(p: &SimParams, heavy_slabs: usize, light_nb: usize) -> Self {
        let mut dev = Device::new(p);
        let heavy_slabs = heavy_slabs.min(p.bnum);
        for a in 0..dev.na {
            if dev.slab_of(a) >= heavy_slabs {
                for slot in light_nb.min(p.nb)..p.nb {
                    dev.neighbors[a][slot] = NO_NEIGHBOR;
                }
            }
        }
        dev
    }

    /// Slab (RGF block) containing atom `a`.
    #[inline]
    pub fn slab_of(&self, a: usize) -> usize {
        a / self.atoms_per_slab
    }

    /// The neighbor indirection `f(a, b)` of Eq. 3; `None` for empty slots.
    #[inline]
    pub fn neighbor(&self, a: usize, slot: usize) -> Option<usize> {
        let n = self.neighbors[a][slot];
        (n != NO_NEIGHBOR).then_some(n)
    }

    /// True if two atoms are in the same or adjacent slabs (may couple).
    pub fn may_couple(&self, a: usize, b: usize) -> bool {
        self.slab_of(a).abs_diff(self.slab_of(b)) <= 1
    }

    /// Largest index distance `|a − f(a, s)|` over all neighbor slots: the
    /// exact halo width an atom-tile needs so every neighbor lookup stays
    /// local (the paper approximates this with `NB/2`; slab-major ordering
    /// makes it `O(atoms_per_slab)` here).
    pub fn max_neighbor_index_distance(&self) -> usize {
        let mut max = 0;
        for a in 0..self.na {
            for s in 0..self.nb {
                if let Some(b) = self.neighbor(a, s) {
                    max = max.max(a.abs_diff(b));
                }
            }
        }
        max
    }

    /// Symmetric set of coupling pairs `(a, b)` with `a < b`: the union of
    /// the (possibly asymmetric) nearest-neighbor relation. Matrix assembly
    /// iterates this set so `H`, `S`, `Φ` are Hermitian by construction.
    pub fn coupling_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for a in 0..self.na {
            for s in 0..self.nb {
                if let Some(b) = self.neighbor(a, s) {
                    pairs.push((a.min(b), a.max(b)));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Euclidean distance between two atoms in lattice units.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.positions[a];
        let (bx, by) = self.positions[b];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Bond direction unit vector from `a` to `b`, with a pseudo z
    /// component derived from the dimerization (never zero, so bonds always
    /// have all three components). Antisymmetric:
    /// `bond_direction(b, a) = -bond_direction(a, b)`.
    pub fn bond_direction(&self, a: usize, b: usize) -> [f64; 3] {
        let (lo, hi) = (a.min(b), a.max(b));
        let (lx, ly) = self.positions[lo];
        let (hx, hy) = self.positions[hi];
        let dx = hx - lx;
        let dy = hy - ly;
        // Deterministic tilt in {−0.125, 0.125, 0.375}: never zero.
        let dz = 0.25 * (((lo + hi) % 3) as f64 - 1.0 + 0.5);
        let norm = (dx * dx + dy * dy + dz * dz).sqrt();
        let sign = if a < b { 1.0 } else { -1.0 };
        [sign * dx / norm, sign * dy / norm, sign * dz / norm]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(&SimParams::test_small())
    }

    #[test]
    fn layout_is_slab_major() {
        let d = dev();
        assert_eq!(d.na, 16);
        assert_eq!(d.bnum, 4);
        assert_eq!(d.atoms_per_slab, 4);
        assert_eq!(d.slab_of(0), 0);
        assert_eq!(d.slab_of(4), 1);
        assert_eq!(d.slab_of(15), 3);
    }

    #[test]
    fn neighbors_respect_block_tridiagonal_structure() {
        let d = dev();
        for a in 0..d.na {
            for s in 0..d.nb {
                if let Some(b) = d.neighbor(a, s) {
                    assert!(d.may_couple(a, b), "atom {a} neighbor {b} too far");
                    assert_ne!(a, b, "no self neighbors");
                }
            }
        }
    }

    #[test]
    fn neighbors_are_nearest_first() {
        let d = dev();
        for a in 0..d.na {
            let mut prev = 0.0;
            for s in 0..d.nb {
                if let Some(b) = d.neighbor(a, s) {
                    let dist = d.distance(a, b);
                    assert!(dist >= prev - 1e-12, "slots must be sorted by distance");
                    prev = dist;
                }
            }
        }
    }

    #[test]
    fn interior_atoms_have_full_slots() {
        let d = dev();
        // An atom in the middle of the device has all NB slots filled.
        let a = d.na / 2;
        for s in 0..d.nb {
            assert!(d.neighbor(a, s).is_some());
        }
    }

    #[test]
    fn bond_directions_are_unit() {
        let d = dev();
        for a in 0..d.na {
            for s in 0..d.nb {
                if let Some(b) = d.neighbor(a, s) {
                    let v = d.bond_direction(a, b);
                    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
                    assert!((n - 1.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn skewed_device_concentrates_pairs_in_the_contact() {
        let p = SimParams::test_small();
        let d = Device::skewed(&p, 1, 1);
        // Heavy slab 0 keeps its full slots; light atoms keep exactly one.
        for a in 0..d.na {
            let filled = (0..d.nb).filter(|&s| d.neighbor(a, s).is_some()).count();
            if d.slab_of(a) == 0 {
                assert!(filled >= 2, "heavy atom {a} lost slots");
            } else {
                assert!(filled <= 1, "light atom {a} kept {filled} slots");
            }
        }
        // Structure invariants survive pruning.
        for a in 0..d.na {
            for s in 0..d.nb {
                if let Some(b) = d.neighbor(a, s) {
                    assert!(d.may_couple(a, b));
                    assert_ne!(a, b);
                }
            }
        }
        // Strictly fewer pairs than the dense device.
        let dense = Device::new(&p);
        assert!(d.coupling_pairs().len() < dense.coupling_pairs().len());
    }

    #[test]
    fn invalid_parameters_are_errors_not_panics() {
        let mut p = SimParams::test_small();
        p.bnum = 3; // does not divide na = 16
        assert!(Device::try_new(&p).is_err());
        let mut p2 = SimParams::test_small();
        p2.na = 0;
        assert!(Device::try_new(&p2).is_err());
        assert!(Device::try_new(&SimParams::test_small()).is_ok());
    }

    #[test]
    fn deleted_sites_carry_no_bonds_in_either_direction() {
        let p = SimParams::test_small();
        let mut d = Device::new(&p);
        let victim = d.na / 2;
        d.delete_sites(&[victim]);
        for s in 0..d.nb {
            assert!(d.neighbor(victim, s).is_none(), "vacancy kept a bond");
        }
        for a in 0..d.na {
            for s in 0..d.nb {
                assert_ne!(
                    d.neighbor(a, s),
                    Some(victim),
                    "atom {a} still bonds the vacancy"
                );
            }
        }
        // The vacancy is absent from the symmetric pair set too.
        assert!(d
            .coupling_pairs()
            .iter()
            .all(|&(a, b)| a != victim && b != victim));
        // Out-of-range indices are ignored, not a panic.
        d.delete_sites(&[usize::MAX, d.na + 7]);
    }

    #[test]
    fn larger_device_scales() {
        let mut p = SimParams::test_small();
        p.na = 64;
        p.bnum = 8;
        p.nb = 6;
        let d = Device::new(&p);
        assert_eq!(d.na, 64);
        assert_eq!(d.atoms_per_slab, 8);
    }
}
