//! End-to-end integration: the full GF ↔ SSE pipeline through the public
//! facade, spanning qt-linalg, qt-core and qt-dist.

use dace_omen::core::sse::SseInputs;
use dace_omen::prelude::*;

fn params() -> SimParams {
    SimParams {
        nkz: 2,
        nqz: 2,
        ne: 12,
        nw: 2,
        na: 12,
        nb: 3,
        norb: 2,
        bnum: 4,
    }
}

#[test]
fn scf_converges_and_is_variant_independent() {
    let sim = Simulation::new(params(), -1.2, 1.2);
    let mut results = Vec::new();
    for variant in [SseVariant::Reference, SseVariant::Omen, SseVariant::Dace] {
        let cfg = ScfConfig {
            max_iterations: 35,
            tolerance: 1e-8,
            variant,
            ..Default::default()
        };
        let out = run_scf(&sim, &cfg).expect("solve");
        assert!(out.converged, "{variant:?} must converge");
        results.push(out);
    }
    let i_ref = results[0].current_history.last().unwrap();
    for r in &results[1..] {
        let i = r.current_history.last().unwrap();
        assert!(
            (i - i_ref).abs() / i_ref.abs().max(1e-30) < 1e-8,
            "converged current must not depend on the kernel variant"
        );
    }
}

#[test]
fn distributed_sse_agrees_with_serial_through_facade() {
    let p = params();
    let sim = Simulation::new(p, -1.2, 1.2);
    let cfg = GfConfig::default();
    let egf = electron_gf_phase(
        &sim.dev,
        &sim.em,
        &p,
        &sim.grids,
        &ElectronSelfEnergy::zeros(&p),
        &cfg,
    )
    .unwrap();
    let pgf = phonon_gf_phase(
        &sim.dev,
        &sim.pm,
        &p,
        &sim.grids,
        &PhononSelfEnergy::zeros(&p),
        &cfg,
    )
    .unwrap();
    let (dl, dg) = sse::preprocess_d(&sim.dev, &p, &pgf);
    let inputs = SseInputs {
        dev: &sim.dev,
        p: &p,
        grids: &sim.grids,
        dh: &sim.dh,
        g_lesser: &egf.g_lesser,
        g_greater: &egf.g_greater,
        d_lesser_pre: &dl,
        d_greater_pre: &dg,
    };
    let serial = sse::sigma(&inputs, SseVariant::Dace);
    let ctx = SseDistContext {
        p: &p,
        dev: &sim.dev,
        grids: &sim.grids,
        dh: &sim.dh,
        g_lesser: &egf.g_lesser,
        g_greater: &egf.g_greater,
        d_lesser_pre: &dl,
        d_greater_pre: &dg,
    };
    let (omen_sig, omen_pi, omen_stats) = omen_scheme(&ctx, 3);
    let (dace_sig, dace_pi, dace_stats) = dace_scheme(&ctx, 2, 2);
    let norm = serial.lesser.norm().max(1e-30);
    assert!(serial.lesser.max_abs_diff(&omen_sig.lesser) / norm < 1e-10);
    assert!(serial.lesser.max_abs_diff(&dace_sig.lesser) / norm < 1e-10);
    // Distributed Π agrees between the two schemes as well.
    let pnorm = omen_pi.lesser.norm().max(1e-30);
    assert!(omen_pi.lesser.max_abs_diff(&dace_pi.lesser) / pnorm < 1e-10);
    assert!(omen_stats.world_bytes > dace_stats.world_bytes);
}

#[test]
fn full_iteration_flop_accounting_is_consistent() {
    // One GF+SSE iteration measured by the global counter must sit within
    // an order of magnitude of the analytic per-iteration model (the model
    // uses paper-calibrated GF constants, so only magnitude is expected).
    let p = params();
    let sim = Simulation::new(p, -1.2, 1.2);
    let cfg = ScfConfig {
        max_iterations: 1,
        tolerance: 0.0,
        ..Default::default()
    };
    let (_, measured) = qt_linalg::count_flops(|| run_scf(&sim, &cfg).unwrap());
    assert!(measured > 0);
    let sse_model = dace_omen::core::flops::sse_dace_flops(&p);
    // The measured count includes GF, SSE and boundary work; the SSE model
    // alone must not exceed it wildly in either direction at this scale.
    let ratio = measured as f64 / sse_model;
    assert!(
        (0.05..200.0).contains(&ratio),
        "measured {measured} vs SSE model {sse_model:.0} (ratio {ratio:.2})"
    );
}

#[test]
fn observables_behave_physically() {
    let sim = Simulation::new(params(), -1.2, 1.2);
    let mut cfg = ScfConfig {
        max_iterations: 20,
        tolerance: 1e-6,
        ..Default::default()
    };
    cfg.gf.contacts = Contacts {
        mu_left: 0.3,
        mu_right: -0.3,
        temperature: 300.0,
        ..Contacts::default()
    };
    let out = run_scf(&sim, &cfg).unwrap();
    let power =
        observables::dissipated_power_per_atom(&sim.p, &sim.grids, &out.sigma, &out.electron);
    // Under bias, net dissipation is positive (Joule heating).
    let total: f64 = power.iter().sum();
    assert!(
        total > 0.0,
        "net dissipated power must be positive: {total}"
    );
    // Density non-negative and current positive along the bias.
    let dens = observables::electron_density(&sim.p, &sim.grids, &out.electron);
    assert!(dens.iter().all(|&d| d > -1e-9));
    assert!(*out.current_history.last().unwrap() > 0.0);
}

#[test]
fn current_is_odd_under_bias_reversal() {
    let sim = Simulation::new(params(), -1.2, 1.2);
    let run = |mu: f64| {
        let mut cfg = ScfConfig {
            max_iterations: 15,
            tolerance: 1e-6,
            ..Default::default()
        };
        cfg.gf.contacts = Contacts {
            mu_left: mu,
            mu_right: -mu,
            temperature: 300.0,
            ..Contacts::default()
        };
        *run_scf(&sim, &cfg).unwrap().current_history.last().unwrap()
    };
    let fwd = run(0.2);
    let rev = run(-0.2);
    assert!(fwd > 0.0 && rev < 0.0);
    // The synthetic device is not perfectly symmetric, but the magnitudes
    // should be comparable.
    assert!(
        (fwd.abs() / rev.abs()).ln().abs() < 0.7,
        "fwd {fwd} rev {rev}"
    );
}
