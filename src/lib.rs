//! # dace-omen — data-centric communication-avoiding quantum transport
//!
//! A from-scratch Rust reproduction of *"Optimizing the Data Movement in
//! Quantum Transport Simulations via Data-Centric Parallel Programming"*
//! (Ziogas et al., SC'19): a dissipative NEGF simulator (electrons +
//! phonons + scattering self-energies), the SDFG-style data-centric IR and
//! its transformations, the communication-avoiding distribution scheme, and
//! the performance/communication models behind the paper's evaluation.
//!
//! The crate is a facade: each subsystem lives in its own crate and is
//! re-exported here.
//!
//! ```
//! use dace_omen::prelude::*;
//!
//! let params = SimParams { nkz: 2, nqz: 2, ne: 10, nw: 2, na: 8, nb: 3, norb: 2, bnum: 4 };
//! let sim = Simulation::new(params, -1.2, 1.2);
//! let result = run_scf(&sim, &ScfConfig::default()).unwrap();
//! assert!(result.iterations >= 1);
//! ```

pub use qt_core as core;
pub use qt_dist as dist;
pub use qt_linalg as linalg;
pub use qt_model as model;
pub use qt_sdfg as sdfg;

/// The commonly-used surface of the whole workspace.
pub mod prelude {
    pub use qt_core::checkpoint::{CheckpointConfig, ScfCheckpoint};
    pub use qt_core::device::Device;
    pub use qt_core::gf::{
        electron_gf_phase, phonon_gf_phase, Contacts, ElectronSelfEnergy, GfConfig,
        PhononSelfEnergy,
    };
    pub use qt_core::grids::Grids;
    pub use qt_core::hamiltonian::{ElectronModel, PhononModel};
    pub use qt_core::health::{CoverageReport, HealthPolicy, NumericalError};
    pub use qt_core::observables;
    pub use qt_core::params::SimParams;
    pub use qt_core::scf::{
        run_scf, run_scf_resumable, run_scf_with, CancelToken, ScfConfig, ScfError, ScfOptions,
        ScfResult, Simulation, WarmStart,
    };
    pub use qt_core::sse::{self, SseVariant};
    pub use qt_dist::schemes::{dace_scheme, omen_scheme, SseDistContext};
    pub use qt_dist::volume;
    pub use qt_linalg::{c64, Complex64, Matrix, Tensor};
    pub use qt_model::{optimal_tiling, predict, Variant, PIZ_DAINT, SUMMIT};
    pub use qt_sdfg::library as sdfg_library;
}
