//! Flight-recorder integration: journaling must not perturb the physics,
//! the report must round-trip with every optional block populated at
//! once, and postmortem dumps must classify file corruption with typed
//! errors.
//!
//! Telemetry state is process-global, so every test takes `LOCK` (same
//! pattern as `telemetry.rs`).

use std::sync::Mutex;

use qt_core::params::SimParams;
use qt_core::scf::{run_scf, ScfConfig, Simulation};
use qt_telemetry::postmortem::{Postmortem, PostmortemError};
use qt_telemetry::report::{ConvergencePoint, ModelResidual, RankComm};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_params() -> SimParams {
    SimParams {
        nkz: 2,
        nqz: 2,
        ne: 8,
        nw: 2,
        na: 8,
        nb: 3,
        norb: 2,
        bnum: 4,
    }
}

/// The flight recorder and the metrics sampler observe the run without
/// touching it: every observable of an SCF with journaling and series
/// sampling enabled is bitwise identical to the disabled run.
#[test]
fn journaling_on_and_off_are_bitwise_identical() {
    let _g = lock();
    let sim = Simulation::new(small_params(), -1.2, 1.2);
    let cfg = ScfConfig {
        max_iterations: 2,
        ..Default::default()
    };

    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    qt_telemetry::set_journaling(false);
    qt_telemetry::set_series_enabled(false);
    let off = run_scf(&sim, &cfg).expect("SCF with journaling off");

    qt_telemetry::reset_all();
    qt_telemetry::set_journaling(true);
    qt_telemetry::set_series_enabled(true);
    let on = run_scf(&sim, &cfg).expect("SCF with journaling on");
    assert!(
        qt_telemetry::journal::event_count() > 0,
        "the journaled run must actually record events"
    );

    assert_eq!(on.iterations, off.iterations);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&on.current_history), bits(&off.current_history));
    assert_eq!(
        on.electron.g_lesser.as_slice(),
        off.electron.g_lesser.as_slice()
    );
    assert_eq!(
        on.electron.g_greater.as_slice(),
        off.electron.g_greater.as_slice()
    );
    assert_eq!(on.sigma.lesser.as_slice(), off.sigma.lesser.as_slice());
    assert_eq!(on.sigma.greater.as_slice(), off.sigma.greater.as_slice());

    qt_telemetry::set_journaling(false);
    qt_telemetry::set_series_enabled(false);
}

/// A report carrying every optional block at once — warmup, health,
/// elasticity, balance, series, journal — survives the JSON round trip
/// field-for-field and still validates.
#[test]
fn report_with_every_optional_block_roundtrips() {
    let _g = lock();
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    qt_telemetry::set_journaling(true);
    qt_telemetry::set_series_enabled(true);
    let sim = Simulation::new(small_params(), -1.2, 1.2);
    let cfg = ScfConfig {
        max_iterations: 3,
        ..Default::default()
    };
    let out = run_scf(&sim, &cfg).expect("SCF");

    let mut rep = qt_telemetry::TelemetryReport::from_current();
    for r in &out.trajectory {
        rep.convergence.push(ConvergencePoint {
            iteration: r.iteration,
            residual: r.residual,
            mixing: r.mixing,
            wall_ms: r.wall_seconds * 1e3,
            current: r.current,
            alloc_bytes: r.alloc_bytes,
        });
    }
    rep.warmup = qt_telemetry::report::WarmupStats::from_convergence(&rep.convergence);
    rep.residuals
        .push(ModelResidual::new("test_residual", 2.0, 2.0, true));
    rep.comm.push(RankComm {
        rank: 0,
        sent_bytes: 10,
        recv_bytes: 12,
    });
    rep.balance = Some(qt_telemetry::BalanceReport::from_busy_times(
        vec![1.0, 2.0, 1.5],
        1.4,
    ));

    assert!(rep.warmup.is_some(), "3 iterations give a warm sample");
    assert!(rep.health.is_some());
    assert!(rep.elasticity.is_some());
    assert!(rep.balance.is_some());
    assert!(
        rep.series.as_ref().is_some_and(|s| !s.samples.is_empty()),
        "series sampling was on: the block must carry samples"
    );
    assert!(
        rep.journal.as_ref().is_some_and(|j| j.events > 0),
        "journaling was on: the block must carry events"
    );

    rep.validate().expect("fully-populated report validates");
    let back = qt_telemetry::TelemetryReport::from_json(&rep.to_json()).expect("roundtrip");
    assert_eq!(back, rep);

    qt_telemetry::set_journaling(false);
    qt_telemetry::set_series_enabled(false);
}

/// `Postmortem::load` classifies on-disk corruption the same way the PR 5
/// checkpoint loader does: garbage and truncation are `NotJson`, wrong
/// shapes are `NotAPostmortem`, future versions are refused by number,
/// and a missing file surfaces the I/O error.
#[test]
fn postmortem_file_corruption_is_classified() {
    let _g = lock();
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    qt_telemetry::set_journaling(true);
    qt_telemetry::journal::emit(qt_telemetry::EventKind::RankDeath { rank: 1 });
    let pm = Postmortem::capture("rank_death", "integration test", None);
    qt_telemetry::set_journaling(false);

    let dir = std::env::temp_dir();
    let path = dir.join(format!("qt-pm-{}.json", std::process::id()));
    pm.save(&path).expect("save postmortem");
    let back = Postmortem::load(&path).expect("clean file loads");
    assert_eq!(back.reason, "rank_death");
    assert!(back
        .events
        .iter()
        .any(|e| matches!(e.kind, qt_telemetry::EventKind::RankDeath { rank: 1 })));
    assert!(back.timeline().contains("rank 1 declared dead"));

    // Truncation mid-record breaks the JSON layer, not the schema layer.
    let clean = std::fs::read_to_string(&path).expect("read back");
    std::fs::write(&path, &clean[..clean.len() / 2]).expect("truncate");
    assert!(matches!(
        Postmortem::load(&path),
        Err(PostmortemError::NotJson(_))
    ));

    std::fs::write(&path, "not a postmortem at all").expect("garbage");
    assert!(matches!(
        Postmortem::load(&path),
        Err(PostmortemError::NotJson(_))
    ));

    std::fs::write(&path, "{\"reason\": \"x\"}").expect("schema-less");
    assert!(matches!(
        Postmortem::load(&path),
        Err(PostmortemError::NotAPostmortem)
    ));

    std::fs::write(&path, "{\"version\": 99, \"reason\": \"x\"}").expect("future");
    assert!(matches!(
        Postmortem::load(&path),
        Err(PostmortemError::UnsupportedVersion { found: 99, .. })
    ));

    std::fs::remove_file(&path).expect("cleanup");
    assert!(matches!(
        Postmortem::load(&path),
        Err(PostmortemError::Io(_))
    ));
}
