//! Offline stand-in for `serde_derive` 1.
//!
//! Generates impls of the stand-in `serde::Serialize`/`serde::Deserialize`
//! traits (a [`serde::Value`] tree round trip) for non-generic structs and
//! enums with unit, tuple, and struct variants — the shapes this workspace
//! derives. The input is parsed directly from the `proc_macro` token
//! stream (no `syn`/`quote`, which are equally unavailable offline) and
//! the generated code is rendered as a string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() && is_punct(&toks[i], '#') {
            i += 2; // '#' + bracket group
            continue;
        }
        break;
    }
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past one type (or expression) until a top-level `,`, tracking
/// angle-bracket depth. Returns the index of the `,` or `toks.len()`.
fn skip_to_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Count top-level comma-separated items in a tuple field list.
fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        arity += 1;
        i = skip_to_comma(&toks, i) + 1;
    }
    arity
}

/// Field names of a `{ ... }` field list.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1; // name
        i += 1; // ':'
        i = skip_to_comma(&toks, i) + 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        i = skip_to_comma(&toks, i) + 1;
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Result<Parsed, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(toks.get(i), Some(t) if is_punct(t, '<')) {
        return Err(format!(
            "serde derive stand-in: generic type {name} unsupported"
        ));
    }
    let shape = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => return Err(format!("expected enum body, got {other:?}")),
        },
        other => return Err(format!("cannot derive for {other}")),
    };
    Ok(Parsed { name, shape })
}

fn tuple_bindings(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("__f{k}")).collect()
}

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Obj(vec![{}])", items.join(", "))
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds = tuple_bindings(*n);
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Obj(vec![{}]))]),",
                                fields.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n  fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}\n"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::UnitStruct => format!("let _ = v; Ok({name})"),
        Shape::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field_or_null(__obj, {f:?}))?,"
                    )
                })
                .collect();
            format!(
                "let __obj = v.as_obj().ok_or_else(|| format!(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                items.join("\n")
            )
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?,"))
                .collect();
            format!(
                "let __arr = v.as_arr().ok_or_else(|| format!(\"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{ return Err(format!(\"expected {n} elements for {name}\")); }}\n\
                 Ok({name}({}))",
                items.join(" ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!("{vn:?} => Ok({name}::{vn}),"));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?,"))
                            .collect();
                        tagged_arms.push(format!(
                            "{vn:?} => {{\n\
                             let __arr = __payload.as_arr().ok_or_else(|| format!(\"expected array payload for {name}::{vn}\"))?;\n\
                             if __arr.len() != {n} {{ return Err(format!(\"expected {n} elements for {name}::{vn}\")); }}\n\
                             Ok({name}::{vn}({}))\n}}",
                            items.join(" ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::field_or_null(__obj, {f:?}))?,"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "{vn:?} => {{\n\
                             let __obj = __payload.as_obj().ok_or_else(|| format!(\"expected object payload for {name}::{vn}\"))?;\n\
                             Ok({name}::{vn} {{ {} }})\n}}",
                            items.join("\n")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{}\n\
                 __other => Err(format!(\"unknown unit variant {{__other:?}} for {name}\")),\n}},\n\
                 ::serde::Value::Obj(__fields) if __fields.len() == 1 => {{\n\
                 let (__tag, __payload) = &__fields[0];\n\
                 match __tag.as_str() {{\n{}\n\
                 __other => Err(format!(\"unknown variant {{__other:?}} for {name}\")),\n}}\n}},\n\
                 __other => Err(format!(\"expected enum value for {name}, got {{__other:?}}\")),\n}}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n  fn from_value(v: &::serde::Value) -> Result<Self, String> {{\n{body}\n  }}\n}}\n"
    )
}

fn render(input: TokenStream, gen: fn(&Parsed) -> String) -> TokenStream {
    let code = match parse_input(input) {
        Ok(parsed) => gen(&parsed),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("generated impl parses")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    render(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    render(input, gen_deserialize)
}
