//! Runnable SSE communication schemes (§4.1), executed on the thread world.
//!
//! Both schemes compute the *same* Σ≷ as the serial kernels in
//! `qt_core::sse` (unit tests enforce it); they differ only in data
//! movement:
//!
//! * [`omen_scheme`] — `Nqz·Nω` rounds; each round broadcasts `D̃≷(qz, ω)`
//!   to every process and replicates the needed `G≷(E−ω, ·)` slices by
//!   point-to-point messages. The `G` traffic repeats every round — the
//!   `2·Nqz·Nω` replication factor of §4.1.
//! * [`dace_scheme`] — one all-to-all redistribution from the GF layout
//!   (energy-split) to the `(TE, TA)` energy×atom tiling with an `Nω`
//!   energy halo and a neighbor-window atom halo; the SSE is then entirely
//!   local.
//!
//! The measured byte counts follow the closed forms in [`crate::volume`].

use crate::comm::{run_elastic_world, run_world, CommError, LivenessConfig, ThreadComm};
use crate::decomp::{DaceDecomp, ElasticTiling, OmenDecomp};
use qt_core::device::Device;
use qt_core::gf::{ElectronSelfEnergy, PhononSelfEnergy};
use qt_core::grids::Grids;
use qt_core::params::{SimParams, N3D};
use qt_core::sse;
use qt_linalg::{c64, gemm, Complex64, Tensor};

/// Π≷ slices a rank owns round-robin: `((q, ω), lesser, greater)` buffers.
type PiOwned = Vec<((usize, usize), Vec<Complex64>, Vec<Complex64>)>;

/// Read-only global inputs; each rank touches only the slices its initial
/// data distribution owns (the world is simulated, the discipline is real).
pub struct SseDistContext<'a> {
    pub p: &'a SimParams,
    pub dev: &'a Device,
    pub grids: &'a Grids,
    pub dh: &'a Tensor,
    pub g_lesser: &'a Tensor,
    pub g_greater: &'a Tensor,
    pub d_lesser_pre: &'a Tensor,
    pub d_greater_pre: &'a Tensor,
}

/// Measured communication of a distributed run.
#[derive(Clone, Debug)]
pub struct CommStats {
    /// Total bytes moved across the network (sum over ranks of sends).
    pub world_bytes: u64,
    /// Largest per-rank receive volume.
    pub max_rank_recv: u64,
    /// Bytes sent by each rank during the SSE exchange (self-sends free).
    pub rank_sent: Vec<u64>,
    /// Bytes received by each rank during the SSE exchange.
    pub rank_recv: Vec<u64>,
    /// Per-rank compute-load measurements; `Some` for the elastic scheme
    /// (which times every work unit), `None` for the classic schemes.
    pub balance: Option<BalanceStats>,
}

/// Per-rank compute-load measurements of one elastic SSE exchange — the
/// raw input of the adaptive tiling layer.
#[derive(Clone, Debug, Default)]
pub struct BalanceStats {
    /// Wall seconds each survivor slot spent computing tiles, including
    /// any units it stole from stragglers.
    pub rank_busy_secs: Vec<f64>,
    /// Measured compute seconds per work unit (indexed by unit id, 0.0
    /// for abandoned units), attributed to the unit wherever it ran.
    pub unit_secs: Vec<f64>,
    /// Steal requests issued across the world this exchange.
    pub steal_requests: u64,
    /// Work units that actually moved to a thief this exchange.
    pub stolen_units: u64,
}

impl BalanceStats {
    /// Busy-time imbalance ratio `max / mean` across ranks; 1.0 for an
    /// empty or idle world (nothing to balance).
    pub fn imbalance_ratio(&self) -> f64 {
        if self.rank_busy_secs.is_empty() {
            return 1.0;
        }
        let sum: f64 = self.rank_busy_secs.iter().sum();
        let max = self.rank_busy_secs.iter().cloned().fold(0.0, f64::max);
        let mean = sum / self.rank_busy_secs.len() as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Pack `G[:, e, a_range, :, :]` (all kz) into a flat buffer.
fn pack_g_slice(
    g: &Tensor,
    nkz: usize,
    e: usize,
    atoms: std::ops::Range<usize>,
    nn: usize,
) -> Vec<Complex64> {
    let mut out = Vec::with_capacity(nkz * atoms.len() * nn);
    for k in 0..nkz {
        for a in atoms.clone() {
            out.extend_from_slice(g.inner(&[k, e, a]));
        }
    }
    out
}

/// The Σ contribution of one `(qz, ω)` round for one owned energy, shared by
/// the OMEN scheme. `g_slice` holds `G≷[:, e∓(ω+1), :, :]` packed as
/// `[kz][a][Norb²]`; output accumulates into `sig[k][a]` blocks.
/// `absorption` selects the `E + ħω` sideband, which weights with the
/// bosonic image `conj D̃≶ᵀ` (the caller passes the *other* D̃ tensor).
#[allow(clippy::too_many_arguments)]
fn sigma_round_increment(
    ctx: &SseDistContext<'_>,
    q: usize,
    _w: usize,
    g_slice: &[Complex64],
    d_slice: &[Complex64], // D̃[q, w, :, :, :, :] packed [a][slot][3][3]
    absorption: bool,
    k_out: usize,
    sig_out: &mut [Complex64], // [na][Norb²] for this (k, e)
    scale: Complex64,
) {
    let p = ctx.p;
    let no = p.norb;
    let nn = no * no;
    let kq = ctx.grids.k_minus_q(k_out, q);
    let mut dhg = vec![Complex64::ZERO; nn];
    let mut dhd = vec![Complex64::ZERO; nn];
    let mut prod = vec![Complex64::ZERO; nn];
    for a in 0..p.na {
        for slot in 0..p.nb {
            let Some(f) = ctx.dev.neighbor(a, slot) else {
                continue;
            };
            let gblk = &g_slice[(kq * p.na + f) * nn..(kq * p.na + f + 1) * nn];
            for i in 0..N3D {
                let dh_i = ctx.dh.inner(&[a, slot, i]);
                dhg.fill(Complex64::ZERO);
                gemm::gemm_raw_acc(no, no, no, gblk, dh_i, &mut dhg);
                dhd.fill(Complex64::ZERO);
                for j in 0..N3D {
                    let dval = if absorption {
                        d_slice[((a * p.nb + slot) * N3D + j) * N3D + i].conj()
                    } else {
                        d_slice[((a * p.nb + slot) * N3D + i) * N3D + j]
                    };
                    if dval == Complex64::ZERO {
                        continue;
                    }
                    let dh_j = ctx.dh.inner(&[a, slot, j]);
                    for (t, &s) in dhd.iter_mut().zip(dh_j) {
                        *t += s * dval;
                    }
                }
                prod.fill(Complex64::ZERO);
                gemm::gemm_raw_acc(no, no, no, &dhg, &dhd, &mut prod);
                let dst = &mut sig_out[a * nn..(a + 1) * nn];
                for (o, v) in dst.iter_mut().zip(prod.iter()) {
                    *o += *v * scale;
                }
            }
        }
    }
}

/// `∇H_ba,i` via the reverse neighbor slot, falling back to the
/// antisymmetry `∇H_ba = −(∇H_ab,i)†` (same convention as the serial
/// kernels).
fn dh_reverse(
    ctx: &SseDistContext<'_>,
    a: usize,
    slot: usize,
    b: usize,
    i: usize,
) -> Vec<Complex64> {
    let no = ctx.p.norb;
    match (0..ctx.p.nb).find(|&s| ctx.dev.neighbor(b, s) == Some(a)) {
        Some(s) => ctx.dh.inner(&[b, s, i]).to_vec(),
        None => {
            let m = qt_linalg::Matrix::from_vec(no, no, ctx.dh.inner(&[a, slot, i]).to_vec());
            m.dagger().scale(c64(-1.0, 0.0)).as_slice().to_vec()
        }
    }
}

/// Trace `tr(M1 · G1 · M2 · G2)` over `no × no` row-major blocks.
fn trace4(
    no: usize,
    m1: &[Complex64],
    g1: &[Complex64],
    m2: &[Complex64],
    g2: &[Complex64],
) -> Complex64 {
    // P = M1·G1, Q = M2·G2, tr(P·Q).
    let mut p_ = vec![Complex64::ZERO; no * no];
    let mut q_ = vec![Complex64::ZERO; no * no];
    gemm::gemm_raw_acc(no, no, no, m1, g1, &mut p_);
    gemm::gemm_raw_acc(no, no, no, m2, g2, &mut q_);
    let mut tr = Complex64::ZERO;
    for m in 0..no {
        for n in 0..no {
            tr = tr.mul_add(p_[m * no + n], q_[n * no + m]);
        }
    }
    tr
}

/// Accumulate one energy's contribution to the Π≷(q, ω) partial:
/// `T_ab,ij += Σ_k tr{∇H_ba,i · G≷_hi[k+q, E+ω, a] · ∇H_ab,j · G≶_lo[k, E, b]}`
/// with `+T` on the neighbor slot and `−T` on the diagonal slot (Eqs. 4–5).
/// `g_hi` is packed `[kz][a][Norb²]` for energy `E+ω+1`; `g_lo_at` fetches
/// the local `G≶[k, E, b]` block.
#[allow(clippy::too_many_arguments)]
fn pi_round_accumulate(
    ctx: &SseDistContext<'_>,
    q: usize,
    atoms: std::ops::Range<usize>,
    g_hi: &dyn Fn(usize, usize) -> Vec<Complex64>, // (kq, a) -> block
    g_lo: &dyn Fn(usize, usize) -> Vec<Complex64>, // (k, b) -> block
    out: &mut [Complex64],                         // [na][nb+1][9]
) {
    let p = ctx.p;
    let no = p.norb;
    let d_len = (p.nb + 1) * N3D * N3D;
    for k in 0..p.nkz {
        let kq = ctx.grids.k_plus_q(k, q);
        for a in atoms.clone() {
            let g1 = g_hi(kq, a);
            for slot in 0..p.nb {
                let Some(b) = ctx.dev.neighbor(a, slot) else {
                    continue;
                };
                let g2 = g_lo(k, b);
                for i in 0..N3D {
                    let m1 = dh_reverse(ctx, a, slot, b, i);
                    for j in 0..N3D {
                        let m2 = ctx.dh.inner(&[a, slot, j]);
                        let tr = trace4(no, &m1, &g1, m2, &g2);
                        out[a * d_len + (slot * N3D + i) * N3D + j] += tr;
                        out[a * d_len + (p.nb * N3D + i) * N3D + j] -= tr;
                    }
                }
            }
        }
    }
}

/// Run the OMEN communication scheme on `procs` ranks. Returns the
/// assembled Σ≷ (identical to the serial kernels) and the measured traffic.
pub fn omen_scheme(
    ctx: &SseDistContext<'_>,
    procs: usize,
) -> (ElectronSelfEnergy, PhononSelfEnergy, CommStats) {
    let _span = qt_telemetry::Span::enter_global("comm/omen_scheme");
    let p = ctx.p;
    let nn = p.norb * p.norb;
    let scale = c64(sse::sigma_scale(p, ctx.grids), 0.0);
    let results = run_world(procs, |comm: ThreadComm| {
        let rank = comm.rank();
        let dec = OmenDecomp::new(p, procs);
        let my_e = dec.energy.range(rank);
        let ne_local = my_e.len();
        // Local Σ accumulators: [tensor][k][e_local][a][nn].
        let mut sig = [
            vec![Complex64::ZERO; p.nkz * ne_local * p.na * nn],
            vec![Complex64::ZERO; p.nkz * ne_local * p.na * nn],
        ];
        // Owned Π≷(q, ω) slices (this rank is the round-robin owner of a
        // subset of phonon points): [owned slice idx][na·(nb+1)·9].
        let d_len = (p.nb + 1) * qt_core::params::N3D * qt_core::params::N3D;
        let mut pi_owned: PiOwned = Vec::new();
        let pi_scale = c64(sse::pi_scale(p, ctx.grids), 0.0);
        for q in 0..p.nqz {
            for w in 0..p.nw {
                let round = (q * p.nw + w) as u64;
                let owner = dec.d_owner(p, q, w);
                // Broadcast both D̃ tensors for this round.
                let d_slices: Vec<Vec<Complex64>> = [ctx.d_lesser_pre, ctx.d_greater_pre]
                    .iter()
                    .enumerate()
                    .map(|(t, d)| {
                        comm.bcast(
                            owner,
                            (rank == owner).then(|| d.inner(&[q, w]).to_vec()),
                            (1 << 40) | (round * 2 + t as u64),
                        )
                    })
                    .collect();
                // Send my G slices to whoever consumes them this round —
                // each consumer energy e needs the emission sideband
                // e − ω − 1 and the absorption sideband e + ω + 1 (the
                // "G≷(E ± ħω)" exchange of §4.1). Iterate in the consumer's
                // order so per-pair FIFO delivery matches the receive loop.
                for e_dst in 0..p.ne {
                    for side in 0u64..2 {
                        let e_src = if side == 0 {
                            e_dst.checked_sub(w + 1)
                        } else {
                            let up = e_dst + w + 1;
                            (up < p.ne).then_some(up)
                        };
                        let Some(e_src) = e_src else { continue };
                        if !my_e.contains(&e_src) {
                            continue;
                        }
                        let dst = dec.energy.owner(e_dst);
                        for (t, g) in [ctx.g_lesser, ctx.g_greater].iter().enumerate() {
                            let buf = pack_g_slice(g, p.nkz, e_src, 0..p.na, nn);
                            let tag =
                                ((round * p.ne as u64 + e_dst as u64) * 2 + side) * 2 + t as u64;
                            comm.send(dst, tag, buf);
                        }
                    }
                }
                // Receive and consume the slices for my energies; keep the
                // absorption-side (E+ω) slices — they double as the
                // G≷(E+ω, k+q) inputs of the Π kernel (Eqs. 4–5).
                let mut hi_slices: Vec<(usize, Vec<Complex64>, Vec<Complex64>)> = Vec::new();
                for e in my_e.clone() {
                    for side in 0u64..2 {
                        let e_src = if side == 0 {
                            e.checked_sub(w + 1)
                        } else {
                            let up = e + w + 1;
                            (up < p.ne).then_some(up)
                        };
                        let Some(e_src) = e_src else { continue };
                        let src = dec.energy.owner(e_src);
                        let tag = ((round * p.ne as u64 + e as u64) * 2 + side) * 2;
                        let gl = comm.recv(src, tag);
                        let gg = comm.recv(src, tag + 1);
                        if side == 1 {
                            hi_slices.push((e, gl.clone(), gg.clone()));
                        }
                        let e_local = e - my_e.start;
                        for (tensor, g_slice) in [(0usize, &gl), (1, &gg)] {
                            // Absorption weights with the other D̃ tensor.
                            let d_idx = if side == 0 { tensor } else { 1 - tensor };
                            for k in 0..p.nkz {
                                let off = (k * ne_local + e_local) * p.na * nn;
                                sigma_round_increment(
                                    ctx,
                                    q,
                                    w,
                                    g_slice,
                                    &d_slices[d_idx],
                                    side == 1,
                                    k,
                                    &mut sig[tensor][off..off + p.na * nn],
                                    scale,
                                );
                            }
                        }
                    }
                }
                // Partial Π≷(q, ω) over the rank's energies, reduced to the
                // round owner ("the partial phonon self-energies produced by
                // each process are reduced", §4.1).
                let mut part_l = vec![Complex64::ZERO; p.na * d_len];
                let mut part_g = vec![Complex64::ZERO; p.na * d_len];
                for (e, hi_l, hi_g) in &hi_slices {
                    let lo_block =
                        |g: &qt_linalg::Tensor, k: usize, b: usize| g.inner(&[k, *e, b]).to_vec();
                    let hi_block = |buf: &Vec<Complex64>, kq: usize, a: usize| {
                        buf[(kq * p.na + a) * nn..(kq * p.na + a + 1) * nn].to_vec()
                    };
                    // Π<: G<(E+ω) × G>(E); Π>: G>(E+ω) × G<(E).
                    pi_round_accumulate(
                        ctx,
                        q,
                        0..p.na,
                        &|kq, a| hi_block(hi_l, kq, a),
                        &|k, b| lo_block(ctx.g_greater, k, b),
                        &mut part_l,
                    );
                    pi_round_accumulate(
                        ctx,
                        q,
                        0..p.na,
                        &|kq, a| hi_block(hi_g, kq, a),
                        &|k, b| lo_block(ctx.g_lesser, k, b),
                        &mut part_g,
                    );
                }
                let tag = (1 << 45) | (round * 2);
                let red_l = comm.reduce_sum(owner, part_l, tag);
                let red_g = comm.reduce_sum(owner, part_g, tag + 1);
                if rank == owner {
                    let fin = |mut v: Vec<Complex64>| {
                        for z in v.iter_mut() {
                            *z *= pi_scale;
                        }
                        v
                    };
                    pi_owned.push(((q, w), fin(red_l.unwrap()), fin(red_g.unwrap())));
                }
            }
        }
        comm.barrier();
        // Capture SSE-phase traffic before the result gather adds its own
        // bytes; the second barrier keeps the snapshot consistent.
        let stats = (comm.bytes_sent(), comm.bytes_received());
        comm.barrier();
        // Gather Σ and Π to root.
        if rank == 0 {
            let mut out = ElectronSelfEnergy::zeros(p);
            for src in 0..procs {
                let src_e = dec.energy.range(src);
                let bufs = if src == 0 {
                    [sig[0].clone(), sig[1].clone()]
                } else {
                    [comm.recv(src, 1 << 50), comm.recv(src, (1 << 50) + 1)]
                };
                for (t, buf) in bufs.iter().enumerate() {
                    let tensor = if t == 0 {
                        &mut out.lesser
                    } else {
                        &mut out.greater
                    };
                    for k in 0..p.nkz {
                        for (e_local, e) in src_e.clone().enumerate() {
                            for a in 0..p.na {
                                let off = ((k * src_e.len() + e_local) * p.na + a) * nn;
                                tensor
                                    .inner_mut(&[k, e, a])
                                    .copy_from_slice(&buf[off..off + nn]);
                            }
                        }
                    }
                }
            }
            let mut pi_out = PhononSelfEnergy::zeros(p);
            let store =
                |pi_out: &mut PhononSelfEnergy,
                 (qw, l, g): ((usize, usize), Vec<Complex64>, Vec<Complex64>)| {
                    let (q, w) = qw;
                    pi_out.lesser.inner_mut(&[q, w]).copy_from_slice(&l);
                    pi_out.greater.inner_mut(&[q, w]).copy_from_slice(&g);
                };
            for entry in pi_owned {
                store(&mut pi_out, entry);
            }
            for src in 1..procs {
                let count = comm.recv(src, 1 << 52)[0].re as usize;
                for _ in 0..count {
                    let head = comm.recv(src, (1 << 52) + 1);
                    let (q, w) = (head[0].re as usize, head[1].re as usize);
                    let l = comm.recv(src, (1 << 52) + 2);
                    let g = comm.recv(src, (1 << 52) + 3);
                    store(&mut pi_out, ((q, w), l, g));
                }
            }
            (Some((out, pi_out)), stats)
        } else {
            comm.send(0, 1 << 50, sig[0].clone());
            comm.send(0, (1 << 50) + 1, sig[1].clone());
            comm.send(0, 1 << 52, vec![c64(pi_owned.len() as f64, 0.0)]);
            for ((q, w), l, g) in pi_owned {
                comm.send(
                    0,
                    (1 << 52) + 1,
                    vec![c64(q as f64, 0.0), c64(w as f64, 0.0)],
                );
                comm.send(0, (1 << 52) + 2, l);
                comm.send(0, (1 << 52) + 3, g);
            }
            (None, stats)
        }
    });
    collect_results(results)
}

/// Run the DaCe communication-avoiding scheme on a `(TE, TA)` grid.
pub fn dace_scheme(
    ctx: &SseDistContext<'_>,
    te: usize,
    ta: usize,
) -> (ElectronSelfEnergy, PhononSelfEnergy, CommStats) {
    let _span = qt_telemetry::Span::enter_global("comm/dace_scheme");
    let results = run_world(te * ta, |comm: ThreadComm| {
        dace_rank_body(ctx, te, ta, comm)
    });
    collect_results(results)
}

/// [`dace_scheme`] on a world carrying a deterministic fault plan: the
/// same per-rank protocol, but every remote transmission goes through the
/// reliable-delivery layer of [`crate::comm`].
#[cfg(feature = "fault-inject")]
pub fn dace_scheme_with_faults(
    ctx: &SseDistContext<'_>,
    te: usize,
    ta: usize,
    plan: crate::fault::FaultPlan,
) -> (ElectronSelfEnergy, PhononSelfEnergy, CommStats) {
    let _span = qt_telemetry::Span::enter_global("comm/dace_scheme_faulty");
    let results = crate::comm::run_world_with_faults(te * ta, plan, |comm: ThreadComm| {
        dace_rank_body(ctx, te, ta, comm)
    });
    collect_results(results)
}

/// One rank's share of the DaCe scheme: the two all-to-alls, the local
/// SSE, the Π reduction, and the gather to root.
fn dace_rank_body(ctx: &SseDistContext<'_>, te: usize, ta: usize, comm: ThreadComm) -> RankResult {
    let p = ctx.p;
    let nn = p.norb * p.norb;
    let scale = c64(sse::sigma_scale(p, ctx.grids), 0.0);
    let procs = te * ta;
    let halo = ctx.dev.max_neighbor_index_distance();
    {
        let rank = comm.rank();
        let dec = DaceDecomp::new(p, te, ta);
        let gf_dec = OmenDecomp::new(p, procs); // initial GF-phase layout
        let my_gf_e = gf_dec.energy.range(rank);
        let geom = tile_geom(&dec, p, halo, rank);
        // ---- All-to-all #1: G≷ tiles with halos. ----
        let mut sendbufs: Vec<Vec<Complex64>> = Vec::with_capacity(procs);
        for dst in 0..procs {
            let dst_geom = tile_geom(&dec, p, halo, dst);
            sendbufs.push(pack_g_halo(ctx, my_gf_e.clone(), &dst_geom, nn));
        }
        let recvd = comm.alltoallv(sendbufs, 1);
        // Assemble local halo arrays [tensor][k][e_halo][a_win][nn].
        let aw_len = geom.a_win.len();
        let mut g_local = [
            vec![Complex64::ZERO; p.nkz * geom.e_halo.len() * aw_len * nn],
            vec![Complex64::ZERO; p.nkz * geom.e_halo.len() * aw_len * nn],
        ];
        for (src, buf) in recvd.iter().enumerate() {
            unpack_g_halo(p, gf_dec.energy.range(src), &geom, buf, &mut g_local, nn);
        }
        // ---- All-to-all #2: D̃≷ for my atom window. ----
        let mut sendbufs: Vec<Vec<Complex64>> = Vec::with_capacity(procs);
        for dst in 0..procs {
            let (_, dj) = dec.coords(dst);
            let dst_a = atom_window_exact(&dec, dj, halo, p.na);
            let mut buf = Vec::new();
            for d in [ctx.d_lesser_pre, ctx.d_greater_pre] {
                for q in 0..p.nqz {
                    for w in 0..p.nw {
                        if gf_dec.d_owner(p, q, w) != rank {
                            continue;
                        }
                        for a in dst_a.clone() {
                            buf.extend_from_slice(d.inner(&[q, w, a]));
                        }
                    }
                }
            }
            sendbufs.push(buf);
        }
        let recvd = comm.alltoallv(sendbufs, 2);
        let d_len = p.nb * N3D * N3D;
        let mut d_local = [
            vec![Complex64::ZERO; p.nqz * p.nw * aw_len * d_len],
            vec![Complex64::ZERO; p.nqz * p.nw * aw_len * d_len],
        ];
        for (src, buf) in recvd.iter().enumerate() {
            let mut pos = 0;
            for tensor in &mut d_local {
                for q in 0..p.nqz {
                    for w in 0..p.nw {
                        if gf_dec.d_owner(p, q, w) != src {
                            continue;
                        }
                        for al in 0..aw_len {
                            let off = ((q * p.nw + w) * aw_len + al) * d_len;
                            tensor[off..off + d_len].copy_from_slice(&buf[pos..pos + d_len]);
                            pos += d_len;
                        }
                    }
                }
            }
            assert_eq!(pos, buf.len());
        }
        // ---- Local SSE over my (energy tile × atom tile). ----
        let sig = local_sse_tile(ctx, &geom, &g_local, &d_local, scale, &|| {});
        // Partial Π≷ over this rank's (energy tile × atom tile), reduced to
        // the (q, ω) owners. All inputs are already local: the E+ω reads sit
        // in the upper energy halo and the neighbor atoms in the window.
        let d_len = (p.nb + 1) * N3D * N3D;
        let pi_scale = c64(sse::pi_scale(p, ctx.grids), 0.0);
        let my_a = geom.my_a.clone();
        let mut pi_owned: PiOwned = Vec::new();
        for q in 0..p.nqz {
            for w in 0..p.nw {
                // Tile-local partials: contributions exist only for the
                // rank's own atom tile, so only that slice travels — the
                // (NA/TA + NB)·NB·N3D² term of §4.1's DaCe formula.
                let (part_l, part_g) = pi_tile_partials(ctx, &geom, &g_local, q, w, &|| {});
                let owner = gf_dec.d_owner(p, q, w);
                let tag = (1 << 45) | ((q * p.nw + w) as u64 * 2);
                // Send only the tile slice to the owner.
                let slice = |buf: &[Complex64]| buf[my_a.start * d_len..my_a.end * d_len].to_vec();
                comm.send(owner, tag, slice(&part_l));
                comm.send(owner, tag + 1, slice(&part_g));
                if rank == owner {
                    let mut tot_l = vec![Complex64::ZERO; p.na * d_len];
                    let mut tot_g = vec![Complex64::ZERO; p.na * d_len];
                    for src in 0..dec.procs() {
                        let (_, sj) = dec.coords(src);
                        let src_a = dec.atoms.range(sj);
                        let rl = comm.recv(src, tag);
                        let rg = comm.recv(src, tag + 1);
                        for (dst, part) in [(&mut tot_l, rl), (&mut tot_g, rg)] {
                            for (o, v) in dst[src_a.start * d_len..src_a.end * d_len]
                                .iter_mut()
                                .zip(part)
                            {
                                *o += v;
                            }
                        }
                    }
                    let fin = |mut v: Vec<Complex64>| {
                        for z in v.iter_mut() {
                            *z *= pi_scale;
                        }
                        v
                    };
                    pi_owned.push(((q, w), fin(tot_l), fin(tot_g)));
                }
            }
        }
        comm.barrier();
        // Capture SSE-phase traffic before the result gather adds its own
        // bytes; the second barrier keeps the snapshot consistent.
        let stats = (comm.bytes_sent(), comm.bytes_received());
        comm.barrier();
        // Gather tiles to root.
        if rank == 0 {
            let mut out = ElectronSelfEnergy::zeros(p);
            for src in 0..procs {
                let (si, sj) = dec.coords(src);
                let src_e = dec.energy.range(si);
                let src_a = dec.atoms.range(sj);
                let bufs = if src == 0 {
                    [sig[0].clone(), sig[1].clone()]
                } else {
                    [comm.recv(src, 1 << 50), comm.recv(src, (1 << 50) + 1)]
                };
                for (t, buf) in bufs.iter().enumerate() {
                    let tensor = if t == 0 {
                        &mut out.lesser
                    } else {
                        &mut out.greater
                    };
                    for k in 0..p.nkz {
                        for (el, e) in src_e.clone().enumerate() {
                            for (al, a) in src_a.clone().enumerate() {
                                let off = ((k * src_e.len() + el) * src_a.len() + al) * nn;
                                tensor
                                    .inner_mut(&[k, e, a])
                                    .copy_from_slice(&buf[off..off + nn]);
                            }
                        }
                    }
                }
            }
            let mut pi_out = PhononSelfEnergy::zeros(p);
            let store =
                |pi_out: &mut PhononSelfEnergy,
                 (qw, l, g): ((usize, usize), Vec<Complex64>, Vec<Complex64>)| {
                    let (q, w) = qw;
                    pi_out.lesser.inner_mut(&[q, w]).copy_from_slice(&l);
                    pi_out.greater.inner_mut(&[q, w]).copy_from_slice(&g);
                };
            for entry in pi_owned {
                store(&mut pi_out, entry);
            }
            for src in 1..procs {
                let count = comm.recv(src, 1 << 52)[0].re as usize;
                for _ in 0..count {
                    let head = comm.recv(src, (1 << 52) + 1);
                    let (q, w) = (head[0].re as usize, head[1].re as usize);
                    let l = comm.recv(src, (1 << 52) + 2);
                    let g = comm.recv(src, (1 << 52) + 3);
                    store(&mut pi_out, ((q, w), l, g));
                }
            }
            (Some((out, pi_out)), stats)
        } else {
            comm.send(0, 1 << 50, sig[0].clone());
            comm.send(0, (1 << 50) + 1, sig[1].clone());
            comm.send(0, 1 << 52, vec![c64(pi_owned.len() as f64, 0.0)]);
            for ((q, w), l, g) in pi_owned {
                comm.send(
                    0,
                    (1 << 52) + 1,
                    vec![c64(q as f64, 0.0), c64(w as f64, 0.0)],
                );
                comm.send(0, (1 << 52) + 2, l);
                comm.send(0, (1 << 52) + 3, g);
            }
            (None, stats)
        }
    }
}

/// Atom window using the device's exact neighbor-index halo.
fn atom_window_exact(dec: &DaceDecomp, j: usize, halo: usize, na: usize) -> std::ops::Range<usize> {
    let r = dec.atoms.range(j);
    r.start.saturating_sub(halo)..(r.end + halo).min(na)
}

/// The geometry of one `(TE, TA)` tile — the shared vocabulary of the
/// classic and elastic DaCe paths, so both compute bitwise-identical tiles.
#[derive(Clone)]
struct TileGeom {
    /// Energy rows including the ±Nω sideband halo.
    e_halo: std::ops::Range<usize>,
    /// Atom columns including the neighbor-index window.
    a_win: std::ops::Range<usize>,
    /// Owned energy rows (no halo).
    my_e: std::ops::Range<usize>,
    /// Owned atom columns (no halo).
    my_a: std::ops::Range<usize>,
}

fn tile_geom(dec: &DaceDecomp, p: &SimParams, halo: usize, unit: usize) -> TileGeom {
    let (ti, tj) = dec.coords(unit);
    TileGeom {
        e_halo: dec.energy_halo(ti, p.nw),
        a_win: atom_window_exact(dec, tj, halo, p.na),
        my_e: dec.energy.range(ti),
        my_a: dec.atoms.range(tj),
    }
}

/// Pack the part of a GF-layout energy chunk that falls inside a tile's
/// energy halo, over the tile's atom window: `[tensor][e][kz][a][nn]`.
fn pack_g_halo(
    ctx: &SseDistContext<'_>,
    chunk: std::ops::Range<usize>,
    dst: &TileGeom,
    nn: usize,
) -> Vec<Complex64> {
    let mut buf = Vec::new();
    for g in [ctx.g_lesser, ctx.g_greater] {
        for e in chunk.clone() {
            if !dst.e_halo.contains(&e) {
                continue;
            }
            buf.extend(pack_g_slice(g, ctx.p.nkz, e, dst.a_win.clone(), nn));
        }
    }
    buf
}

/// Unpack one [`pack_g_halo`] message into the tile's halo arrays
/// `[tensor][k][e_halo][a_win][nn]`.
fn unpack_g_halo(
    p: &SimParams,
    chunk: std::ops::Range<usize>,
    geom: &TileGeom,
    buf: &[Complex64],
    g_local: &mut [Vec<Complex64>; 2],
    nn: usize,
) {
    let eh_len = geom.e_halo.len();
    let aw_len = geom.a_win.len();
    let es: Vec<usize> = chunk.filter(|e| geom.e_halo.contains(e)).collect();
    let mut pos = 0;
    for tensor in g_local.iter_mut() {
        for &e in &es {
            let el = e - geom.e_halo.start;
            for k in 0..p.nkz {
                for al in 0..aw_len {
                    let off = ((k * eh_len + el) * aw_len + al) * nn;
                    tensor[off..off + nn].copy_from_slice(&buf[pos..pos + nn]);
                    pos += nn;
                }
            }
        }
    }
    assert_eq!(pos, buf.len(), "unpack must consume the message");
}

/// The local SSE over one tile once its halos are resident: reads
/// `g_local`/`d_local` in the tile's window layout and returns
/// `sig[tensor][k][e_local][a_local][nn]`. `hb` is invoked per outer
/// iteration so a long compute keeps announcing liveness to the failure
/// detector (the classic path passes a no-op).
fn local_sse_tile(
    ctx: &SseDistContext<'_>,
    geom: &TileGeom,
    g_local: &[Vec<Complex64>; 2],
    d_local: &[Vec<Complex64>; 2],
    scale: Complex64,
    hb: &dyn Fn(),
) -> [Vec<Complex64>; 2] {
    let p = ctx.p;
    let nn = p.norb * p.norb;
    let d_len = p.nb * N3D * N3D;
    let (e_halo, a_win) = (&geom.e_halo, &geom.a_win);
    let (my_e, my_a) = (&geom.my_e, &geom.my_a);
    let (eh_len, aw_len) = (e_halo.len(), a_win.len());
    let mut sig = [
        vec![Complex64::ZERO; p.nkz * my_e.len() * my_a.len() * nn],
        vec![Complex64::ZERO; p.nkz * my_e.len() * my_a.len() * nn],
    ];
    let no = p.norb;
    let mut dhg = vec![Complex64::ZERO; nn];
    let mut dhd = vec![Complex64::ZERO; nn];
    let mut prod = vec![Complex64::ZERO; nn];
    for tensor in 0..2 {
        let g_loc = &g_local[tensor];
        let d_em = &d_local[tensor];
        let d_ab = &d_local[1 - tensor]; // bosonic image for absorption
        for k in 0..p.nkz {
            for q in 0..p.nqz {
                hb();
                let kq = ctx.grids.k_minus_q(k, q);
                for (el_out, e) in my_e.clone().enumerate() {
                    for w in 0..p.nw {
                        // Emission (E − ω − 1) and absorption (E + ω + 1).
                        let sidebands = [
                            e.checked_sub(w + 1),
                            (e + w + 1 < p.ne).then_some(e + w + 1),
                        ];
                        for (side, es) in sidebands.iter().enumerate() {
                            let Some(es) = *es else { continue };
                            debug_assert!(e_halo.contains(&es));
                            let ehl = es - e_halo.start;
                            for (al_out, a) in my_a.clone().enumerate() {
                                let awl_a = a - a_win.start;
                                for slot in 0..p.nb {
                                    let Some(f) = ctx.dev.neighbor(a, slot) else {
                                        continue;
                                    };
                                    debug_assert!(a_win.contains(&f));
                                    let fl = f - a_win.start;
                                    let goff = ((kq * eh_len + ehl) * aw_len + fl) * nn;
                                    let gblk = &g_loc[goff..goff + nn];
                                    for i in 0..N3D {
                                        let dh_i = ctx.dh.inner(&[a, slot, i]);
                                        dhg.fill(Complex64::ZERO);
                                        gemm::gemm_raw_acc(no, no, no, gblk, dh_i, &mut dhg);
                                        dhd.fill(Complex64::ZERO);
                                        for j in 0..N3D {
                                            let dval = if side == 0 {
                                                let doff = ((q * p.nw + w) * aw_len + awl_a)
                                                    * d_len
                                                    + (slot * N3D + i) * N3D
                                                    + j;
                                                d_em[doff]
                                            } else {
                                                let doff = ((q * p.nw + w) * aw_len + awl_a)
                                                    * d_len
                                                    + (slot * N3D + j) * N3D
                                                    + i;
                                                d_ab[doff].conj()
                                            };
                                            if dval == Complex64::ZERO {
                                                continue;
                                            }
                                            let dh_j = ctx.dh.inner(&[a, slot, j]);
                                            for (t, &s) in dhd.iter_mut().zip(dh_j) {
                                                *t += s * dval;
                                            }
                                        }
                                        prod.fill(Complex64::ZERO);
                                        gemm::gemm_raw_acc(no, no, no, &dhg, &dhd, &mut prod);
                                        let soff =
                                            ((k * my_e.len() + el_out) * my_a.len() + al_out) * nn;
                                        let dst = &mut sig[tensor][soff..soff + nn];
                                        for (o, v) in dst.iter_mut().zip(prod.iter()) {
                                            *o += *v * scale;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    sig
}

/// Tile-local Π≷(q, ω) partials over one tile's energies and atoms, sized
/// `[na][(nb+1)·9]`; contributions exist only inside `geom.my_a`, so only
/// that slice needs to travel to the round owner.
fn pi_tile_partials(
    ctx: &SseDistContext<'_>,
    geom: &TileGeom,
    g_local: &[Vec<Complex64>; 2],
    q: usize,
    w: usize,
    hb: &dyn Fn(),
) -> (Vec<Complex64>, Vec<Complex64>) {
    let p = ctx.p;
    let nn = p.norb * p.norb;
    let d_len = (p.nb + 1) * N3D * N3D;
    let (e_halo, a_win) = (&geom.e_halo, &geom.a_win);
    let (eh_len, aw_len) = (e_halo.len(), a_win.len());
    let mut part_l = vec![Complex64::ZERO; p.na * d_len];
    let mut part_g = vec![Complex64::ZERO; p.na * d_len];
    for e in geom.my_e.clone() {
        let Some(ep) = (e + w + 1 < p.ne).then_some(e + w + 1) else {
            continue;
        };
        hb();
        debug_assert!(e_halo.contains(&ep));
        let (ehl, el) = (ep - e_halo.start, e - e_halo.start);
        let g_local_ref = &g_local;
        let a_win_ref = &a_win;
        let hi = move |tensor: usize| {
            move |kq: usize, a: usize| -> Vec<Complex64> {
                debug_assert!(a_win_ref.contains(&a));
                let al = a - a_win_ref.start;
                let off = ((kq * eh_len + ehl) * aw_len + al) * nn;
                g_local_ref[tensor][off..off + nn].to_vec()
            }
        };
        let lo = move |tensor: usize| {
            move |k: usize, b: usize| -> Vec<Complex64> {
                debug_assert!(a_win_ref.contains(&b));
                let bl = b - a_win_ref.start;
                let off = ((k * eh_len + el) * aw_len + bl) * nn;
                g_local_ref[tensor][off..off + nn].to_vec()
            }
        };
        // Π<: G<(E+ω) × G>(E); Π>: G>(E+ω) × G<(E).
        pi_round_accumulate(ctx, q, geom.my_a.clone(), &hi(0), &lo(1), &mut part_l);
        pi_round_accumulate(ctx, q, geom.my_a.clone(), &hi(1), &lo(0), &mut part_g);
    }
    (part_l, part_g)
}

// ---------------------------------------------------------------------------
// Elastic DaCe scheme: the CA tiling over an arbitrary survivor set.
// ---------------------------------------------------------------------------

/// Message tags for the unrolled elastic collectives. Each logical channel
/// gets its own tag namespace so the strict tag-equality assert in
/// [`crate::comm`] doubles as a protocol-order checker.
fn tag_a2a1(procs: usize, u_src: usize, u_dst: usize) -> u64 {
    (1 << 34) | (u_src * procs + u_dst) as u64
}
fn tag_a2a2(u_dst: usize) -> u64 {
    (1 << 35) | u_dst as u64
}
fn tag_pi(procs: usize, qw: usize, u: usize) -> u64 {
    (1 << 45) | ((qw * procs + u) as u64 * 2)
}
fn tag_gather(u: usize) -> u64 {
    (1 << 50) | (u as u64 * 2)
}

/// Tag of the intra-iteration steal protocol. Every steal message between
/// a given pair of ranks rides this one tag with the message kind in the
/// payload head, so per-pair FIFO plus the strict tag assert verify that
/// no steal frame leaks past the protocol window (each rank's `FIN` is
/// the last steal message on each of its channels).
const TAG_STEAL: u64 = 1 << 54;

const STEAL_REQ: f64 = 0.0;
const STEAL_DENY: f64 = 1.0;
const STEAL_GRANT: f64 = 2.0;
const STEAL_RESULT: f64 = 3.0;
const STEAL_FIN: f64 = 4.0;

/// Discriminator words keeping the steal protocol's trace flow ids
/// disjoint from the transport-level `comm/msg` ids riding the same
/// world salt.
const FLOW_STEAL_REQ: u64 = 0x5_0001;
const FLOW_STEAL_GRANT: u64 = 0x5_0002;
const FLOW_STEAL_RESULT: u64 = 0x5_0003;

/// Record one half of a steal-protocol flow arc. Both endpoints derive
/// the id from (world salt, protocol word, thief slot, victim slot,
/// per-pair ordinal); per-pair FIFO keeps the ordinals in agreement.
fn note_steal_flow(
    comm: &ThreadComm,
    word: u64,
    thief: usize,
    victim: usize,
    seq: u64,
    start: bool,
    name: &'static str,
) {
    if !qt_telemetry::tracing_enabled() {
        return;
    }
    let id =
        qt_telemetry::trace::flow_id(&[comm.world_salt(), word, thief as u64, victim as u64, seq]);
    if start {
        qt_telemetry::trace::record_flow_start(name, comm.identity(), id);
    } else {
        qt_telemetry::trace::record_flow_finish(name, comm.identity(), id);
    }
}

/// Everything one work unit's compute produces: the Σ≷ tile plus the Π≷
/// partial slices for every `(q, ω)` round, and the measured wall time.
struct UnitOut {
    sig: [Vec<Complex64>; 2],
    /// Per `q·Nω + ω`, ascending: the `my_a` rows the round's Π owner
    /// accumulates; empty for rounds whose owner unit was abandoned.
    pi_slices: Vec<(Vec<Complex64>, Vec<Complex64>)>,
    secs: f64,
}

/// One survivor's return from the elastic rank body.
struct ElasticRankOut {
    assembled: Option<(ElectronSelfEnergy, PhononSelfEnergy)>,
    /// (bytes sent, bytes received) during the SSE exchange proper.
    bytes: (u64, u64),
    /// Wall seconds spent computing tiles (own and stolen).
    busy_secs: f64,
    /// `(unit, measured seconds)` for every unit this rank *owned*,
    /// including ones computed remotely by a thief.
    unit_secs: Vec<(usize, f64)>,
    steal_requests: u64,
    stolen_units: u64,
}

/// Compute one tile end to end: Σ≷ via [`local_sse_tile`] plus the Π≷
/// partial slices of every live `(q, ω)` round, timed and traced on the
/// computing rank's trace lane. Pure in its inputs, so a stolen unit
/// reproduces the victim's results bitwise.
#[allow(clippy::too_many_arguments)]
fn compute_unit_tile(
    ctx: &SseDistContext<'_>,
    tiling: &ElasticTiling,
    geom: &TileGeom,
    g: &[Vec<Complex64>; 2],
    d: &[Vec<Complex64>; 2],
    scale: Complex64,
    unit: usize,
    track_rank: usize,
    hb: &dyn Fn(),
) -> UnitOut {
    let p = ctx.p;
    let procs = tiling.procs();
    let pi_len = (p.nb + 1) * N3D * N3D;
    // Unit attribution for journal events emitted while this tile
    // computes (heartbeat timeouts, quarantines, steals of this unit).
    qt_telemetry::journal::set_thread_unit(unit as i64);
    let t0 = std::time::Instant::now();
    let cpu0 = qt_telemetry::cputime::thread_cpu_secs();
    let sig = local_sse_tile(ctx, geom, g, d, scale, hb);
    let my_a = geom.my_a.clone();
    let mut pi_slices = Vec::with_capacity(p.nqz * p.nw);
    for q in 0..p.nqz {
        for w in 0..p.nw {
            let owner_id = tiling.owner[(q * p.nw + w) % procs];
            if !tiling.is_survivor(owner_id) {
                pi_slices.push((Vec::new(), Vec::new()));
                continue;
            }
            let (part_l, part_g) = pi_tile_partials(ctx, geom, g, q, w, hb);
            let sl = |buf: &[Complex64]| buf[my_a.start * pi_len..my_a.end * pi_len].to_vec();
            pi_slices.push((sl(&part_l), sl(&part_g)));
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    // Cost in thread CPU time: immune to preemption on oversubscribed
    // hosts, so the cost model and the imbalance metric stay honest even
    // when the thread world time-slices on few cores. The trace keeps the
    // wall span (that is what a trace viewer lays out).
    let secs = qt_telemetry::cputime::thread_cpu_since(cpu0, wall);
    qt_telemetry::trace::record_rank_event(
        format!("sse/unit/{unit}"),
        track_rank,
        t0,
        (wall * 1e9) as u64,
    );
    qt_telemetry::journal::set_thread_unit(-1);
    UnitOut {
        sig,
        pi_slices,
        secs,
    }
}

/// Borrowed inputs of the steal-protocol message handler.
struct StealEnv<'a> {
    ctx: &'a SseDistContext<'a>,
    tiling: &'a ElasticTiling,
    my_units: &'a [usize],
    geoms: &'a [TileGeom],
    g_local: &'a [[Vec<Complex64>; 2]],
    d_local: &'a [[Vec<Complex64>; 2]],
    scale: Complex64,
}

impl StealEnv<'_> {
    fn g_len(&self, u: usize) -> usize {
        let p = self.ctx.p;
        p.nkz * self.geoms[u].e_halo.len() * self.geoms[u].a_win.len() * p.norb * p.norb
    }
    fn d_len(&self, u: usize) -> usize {
        let p = self.ctx.p;
        p.nqz * p.nw * self.geoms[u].a_win.len() * (p.nb * N3D * N3D)
    }
    fn sig_len(&self, u: usize) -> usize {
        let p = self.ctx.p;
        p.nkz * self.geoms[u].my_e.len() * self.geoms[u].my_a.len() * p.norb * p.norb
    }
}

/// The reply a thief's outstanding request resolved to.
enum StealReply {
    Deny,
    Granted,
}

/// Mutable per-rank state of the steal protocol.
struct StealCore {
    /// Local indices (into `my_units`) not yet started; the back is what
    /// gets granted away.
    queue: std::collections::VecDeque<usize>,
    /// Finished outputs per local unit index (own or thief-returned).
    outs: Vec<Option<UnitOut>>,
    fin_rcvd: Vec<bool>,
    /// Peers that can no longer grant (denied us, or finished).
    dry: Vec<bool>,
    fin_sent: bool,
    /// Units granted away whose `RESULT` has not come back yet.
    lent_out: usize,
    reply: Option<StealReply>,
    busy_secs: f64,
    steal_requests: u64,
    stolen_units: u64,
    /// Per-peer flow ordinals for trace correlation: REQs sent to /
    /// received from each slot, GRANTs sent/received, RESULTs
    /// sent/received. Per-pair FIFO keeps both endpoints in agreement.
    req_out: Vec<u64>,
    req_in: Vec<u64>,
    grant_out: Vec<u64>,
    grant_in: Vec<u64>,
    result_out: Vec<u64>,
    result_in: Vec<u64>,
}

/// Dispatch one incoming steal message from slot `from`. `REQ` grants an
/// unstarted unit (with its input buffers) when at least two remain
/// queued, else denies — unless this rank already sent `FIN`, in which
/// case the request is dropped and the `FIN` on the wire doubles as the
/// denial. A `GRANT` reply computes the stolen tile on the spot and
/// returns its results; a `RESULT` stores a lent-out unit's output under
/// its local slot.
fn handle_steal_msg(
    core: &mut StealCore,
    env: &StealEnv<'_>,
    comm: &ThreadComm,
    from: usize,
    msg: Vec<Complex64>,
) -> Result<(), CommError> {
    let kind = msg[0].re;
    if kind == STEAL_REQ {
        let seq = core.req_in[from];
        core.req_in[from] += 1;
        note_steal_flow(
            comm,
            FLOW_STEAL_REQ,
            from,
            comm.rank(),
            seq,
            false,
            "steal/req",
        );
        if core.fin_sent {
            return Ok(()); // our FIN (already on the wire) is the denial
        }
        if core.queue.len() >= 2 {
            let mi = core.queue.pop_back().expect("non-empty");
            let u = env.my_units[mi];
            let mut buf = Vec::with_capacity(2 + 2 * (env.g_len(u) + env.d_len(u)));
            buf.push(c64(STEAL_GRANT, 0.0));
            buf.push(c64(u as f64, 0.0));
            for t in env.g_local[mi].iter().chain(env.d_local[mi].iter()) {
                buf.extend_from_slice(t);
            }
            core.lent_out += 1;
            let gseq = core.grant_out[from];
            core.grant_out[from] += 1;
            note_steal_flow(
                comm,
                FLOW_STEAL_GRANT,
                from,
                comm.rank(),
                gseq,
                true,
                "steal/grant",
            );
            qt_telemetry::journal::emit(qt_telemetry::EventKind::StealGrant {
                thief: comm.identity_of(from) as u64,
                unit: u as u64,
            });
            comm.try_send(from, TAG_STEAL, buf)?;
        } else {
            qt_telemetry::journal::emit(qt_telemetry::EventKind::StealDeny {
                thief: comm.identity_of(from) as u64,
            });
            comm.try_send(from, TAG_STEAL, vec![c64(STEAL_DENY, 0.0)])?;
        }
    } else if kind == STEAL_DENY {
        core.reply = Some(StealReply::Deny);
    } else if kind == STEAL_GRANT {
        let gseq = core.grant_in[from];
        core.grant_in[from] += 1;
        note_steal_flow(
            comm,
            FLOW_STEAL_GRANT,
            comm.rank(),
            from,
            gseq,
            false,
            "steal/grant",
        );
        let u = msg[1].re as usize;
        let (gl, dl) = (env.g_len(u), env.d_len(u));
        assert_eq!(msg.len(), 2 + 2 * gl + 2 * dl, "GRANT frame size");
        let g = [msg[2..2 + gl].to_vec(), msg[2 + gl..2 + 2 * gl].to_vec()];
        let base = 2 + 2 * gl;
        let d = [
            msg[base..base + dl].to_vec(),
            msg[base + dl..base + 2 * dl].to_vec(),
        ];
        let hb = || comm.heartbeat();
        let out = compute_unit_tile(
            env.ctx,
            env.tiling,
            &env.geoms[u],
            &g,
            &d,
            env.scale,
            u,
            comm.identity(),
            &hb,
        );
        core.busy_secs += out.secs;
        core.stolen_units += 1;
        qt_telemetry::counters::add_stolen_units(1);
        let mut buf = Vec::with_capacity(3 + env.sig_len(u) * 2);
        buf.push(c64(STEAL_RESULT, 0.0));
        buf.push(c64(u as f64, 0.0));
        buf.push(c64(out.secs, 0.0));
        buf.extend_from_slice(&out.sig[0]);
        buf.extend_from_slice(&out.sig[1]);
        for (l, g) in &out.pi_slices {
            buf.extend_from_slice(l);
            buf.extend_from_slice(g);
        }
        let rseq = core.result_out[from];
        core.result_out[from] += 1;
        note_steal_flow(
            comm,
            FLOW_STEAL_RESULT,
            comm.rank(),
            from,
            rseq,
            true,
            "steal/result",
        );
        comm.try_send(from, TAG_STEAL, buf)?;
        core.reply = Some(StealReply::Granted);
    } else if kind == STEAL_RESULT {
        let rseq = core.result_in[from];
        core.result_in[from] += 1;
        note_steal_flow(
            comm,
            FLOW_STEAL_RESULT,
            from,
            comm.rank(),
            rseq,
            false,
            "steal/result",
        );
        let u = msg[1].re as usize;
        let secs = msg[2].re;
        let mi = env
            .my_units
            .iter()
            .position(|&x| x == u)
            .expect("RESULT for a unit we own");
        let p = env.ctx.p;
        let pi_len = (p.nb + 1) * N3D * N3D;
        let my_a_len = env.geoms[u].my_a.len();
        let sl = env.sig_len(u);
        let mut pos = 3;
        let sig = [
            msg[pos..pos + sl].to_vec(),
            msg[pos + sl..pos + 2 * sl].to_vec(),
        ];
        pos += 2 * sl;
        let procs = env.tiling.procs();
        let mut pi_slices = Vec::with_capacity(p.nqz * p.nw);
        for qw in 0..p.nqz * p.nw {
            let owner_id = env.tiling.owner[qw % procs];
            if !env.tiling.is_survivor(owner_id) {
                pi_slices.push((Vec::new(), Vec::new()));
                continue;
            }
            let n = my_a_len * pi_len;
            let l = msg[pos..pos + n].to_vec();
            let g = msg[pos + n..pos + 2 * n].to_vec();
            pos += 2 * n;
            pi_slices.push((l, g));
        }
        assert_eq!(pos, msg.len(), "RESULT frame size");
        core.outs[mi] = Some(UnitOut {
            sig,
            pi_slices,
            secs,
        });
        core.lent_out -= 1;
    } else if kind == STEAL_FIN {
        core.fin_rcvd[from] = true;
        core.dry[from] = true;
    } else {
        panic!("unknown steal message kind {kind}");
    }
    Ok(())
}

/// Drain every pending steal message (all live peers, non-blocking).
/// Stops reading a peer's channel at its `FIN` — anything behind it
/// belongs to the next protocol phase.
fn poll_steal(
    core: &mut StealCore,
    env: &StealEnv<'_>,
    comm: &ThreadComm,
) -> Result<(), CommError> {
    for s in 0..comm.size() {
        if s == comm.rank() || core.fin_rcvd[s] {
            continue;
        }
        while let Some(msg) = comm.poll_recv(s, TAG_STEAL) {
            handle_steal_msg(core, env, comm, s, msg)?;
            if core.fin_rcvd[s] {
                break;
            }
        }
    }
    Ok(())
}

/// The compute phase with intra-iteration work stealing: process the own
/// queue front-to-back while serving thieves between units; once idle,
/// request units from stragglers until every peer is dry; then announce
/// `FIN` and drain each peer's channel to its `FIN` (collecting any
/// late `RESULT`s for lent-out units on the way). Termination: queues
/// only shrink, every request resolves to a grant, a denial, or the
/// victim's `FIN` (an implicit denial), and a peer that dies mid-protocol
/// surfaces as a typed [`CommError`] for the supervisor's elastic path.
#[allow(clippy::too_many_arguments)]
fn steal_compute_phase(
    env: &StealEnv<'_>,
    comm: &ThreadComm,
    live: &LivenessConfig,
) -> Result<(Vec<UnitOut>, f64, u64, u64), CommError> {
    let n = comm.size();
    let me_slot = comm.rank();
    let mut core = StealCore {
        queue: (0..env.my_units.len()).collect(),
        outs: (0..env.my_units.len()).map(|_| None).collect(),
        fin_rcvd: vec![false; n],
        dry: (0..n).map(|s| s == me_slot).collect(),
        fin_sent: false,
        lent_out: 0,
        reply: None,
        busy_secs: 0.0,
        steal_requests: 0,
        stolen_units: 0,
        req_out: vec![0; n],
        req_in: vec![0; n],
        grant_out: vec![0; n],
        grant_in: vec![0; n],
        result_out: vec![0; n],
        result_in: vec![0; n],
    };
    // Own work, serving thieves between units.
    loop {
        poll_steal(&mut core, env, comm)?;
        let Some(mi) = core.queue.pop_front() else {
            break;
        };
        let u = env.my_units[mi];
        let hb = || comm.heartbeat();
        let out = compute_unit_tile(
            env.ctx,
            env.tiling,
            &env.geoms[u],
            &env.g_local[mi],
            &env.d_local[mi],
            env.scale,
            u,
            comm.identity(),
            &hb,
        );
        core.busy_secs += out.secs;
        core.outs[mi] = Some(out);
    }
    // Idle: steal from stragglers until everyone is dry.
    while let Some(v) = (1..n)
        .map(|off| (me_slot + off) % n)
        .find(|&s| !core.dry[s])
    {
        let rseq = core.req_out[v];
        core.req_out[v] += 1;
        note_steal_flow(comm, FLOW_STEAL_REQ, me_slot, v, rseq, true, "steal/req");
        qt_telemetry::journal::emit(qt_telemetry::EventKind::StealRequest {
            victim: comm.identity_of(v) as u64,
        });
        comm.try_send(v, TAG_STEAL, vec![c64(STEAL_REQ, 0.0)])?;
        core.steal_requests += 1;
        qt_telemetry::counters::add_steal_request();
        core.reply = None;
        let mut watch = (comm.epoch_of(v), std::time::Instant::now());
        loop {
            poll_steal(&mut core, env, comm)?;
            if core.reply.is_some() || core.fin_rcvd[v] {
                break;
            }
            std::thread::sleep(live.poll);
            comm.heartbeat();
            if let Some(s) = comm.first_dead_excluding(me_slot) {
                return Err(CommError::RankDeath {
                    rank: comm.identity_of(s),
                    epoch: comm.epoch_of(s),
                });
            }
            let e = comm.epoch_of(v);
            if e != watch.0 {
                watch = (e, std::time::Instant::now());
            } else if watch.1.elapsed() >= live.deadline {
                comm.declare_dead(v);
                return Err(CommError::RankDeath {
                    rank: comm.identity_of(v),
                    epoch: e,
                });
            }
        }
        match core.reply.take() {
            Some(StealReply::Deny) | None => core.dry[v] = true, // FIN implies deny
            Some(StealReply::Granted) => {}                      // same victim may have more
        }
    }
    // Announce we are done; FIN is the last steal frame on each channel.
    core.fin_sent = true;
    for s in 0..n {
        if s != me_slot {
            comm.try_send(s, TAG_STEAL, vec![c64(STEAL_FIN, 0.0)])?;
        }
    }
    // Drain each peer to its FIN, collecting late RESULTs.
    for s in 0..n {
        if s == me_slot {
            continue;
        }
        while !core.fin_rcvd[s] {
            let msg = comm.try_recv(s, TAG_STEAL, live)?;
            handle_steal_msg(&mut core, env, comm, s, msg)?;
        }
    }
    assert_eq!(core.lent_out, 0, "every lent unit must have reported back");
    let outs = core
        .outs
        .into_iter()
        .map(|o| o.expect("every owned unit computed"))
        .collect();
    Ok((outs, core.busy_secs, core.steal_requests, core.stolen_units))
}

/// Success: the assembled Σ≷/Π≷ plus the survivor world's measured traffic
/// (indexed by survivor slot). Failure: the *original* ids of ranks newly
/// confirmed dead — the supervisor re-tiles around them and retries. The
/// list can be empty when every accusation was exonerated (survivors that
/// exited early after detecting a death look dead to peers mid-send); the
/// supervisor then simply retries on the unchanged tiling.
pub type ElasticExchange = Result<(ElectronSelfEnergy, PhononSelfEnergy, CommStats), Vec<usize>>;

/// Run the DaCe CA scheme over the survivors of `tiling`. With the full
/// tiling this produces *bitwise identical* Σ≷/Π≷ to [`dace_scheme`]; after
/// deaths, each survivor executes every work unit the tiling assigns to it,
/// so the answer stays bitwise stable across any survivor set.
pub fn elastic_sse_exchange(
    ctx: &SseDistContext<'_>,
    tiling: &ElasticTiling,
    live: &LivenessConfig,
) -> ElasticExchange {
    elastic_sse_exchange_opts(ctx, tiling, live, false)
}

/// [`elastic_sse_exchange`] with intra-iteration work stealing switchable.
/// With `steal` on, idle survivors request unstarted units from stragglers
/// over the comm world; the Σ≷/Π≷ observables stay bitwise identical (the
/// stolen tile is computed by the same kernel on the same buffers and its
/// results are forwarded under the victim's slot), but the measured byte
/// counts gain the steal traffic, so the exact volume models only apply
/// with stealing off.
pub fn elastic_sse_exchange_opts(
    ctx: &SseDistContext<'_>,
    tiling: &ElasticTiling,
    live: &LivenessConfig,
    steal: bool,
) -> ElasticExchange {
    let _span = qt_telemetry::Span::enter_global("comm/elastic_scheme");
    let results = run_elastic_world(tiling.survivors.clone(), |comm: ThreadComm| {
        elastic_rank_body(ctx, tiling, live, steal, comm)
    });
    collect_elastic(tiling, results)
}

/// [`elastic_sse_exchange`] on a world carrying a deterministic fault plan
/// (drops/corruption/delays *and* kill schedules).
#[cfg(feature = "fault-inject")]
pub fn elastic_sse_exchange_with_faults(
    ctx: &SseDistContext<'_>,
    tiling: &ElasticTiling,
    live: &LivenessConfig,
    plan: crate::fault::FaultPlan,
) -> ElasticExchange {
    elastic_sse_exchange_with_faults_opts(ctx, tiling, live, plan, false)
}

/// [`elastic_sse_exchange_with_faults`] with work stealing switchable; a
/// victim or thief killed mid-protocol surfaces as a typed death and the
/// supervisor degrades to the elastic re-tiling path.
#[cfg(feature = "fault-inject")]
pub fn elastic_sse_exchange_with_faults_opts(
    ctx: &SseDistContext<'_>,
    tiling: &ElasticTiling,
    live: &LivenessConfig,
    plan: crate::fault::FaultPlan,
    steal: bool,
) -> ElasticExchange {
    let _span = qt_telemetry::Span::enter_global("comm/elastic_scheme_faulty");
    let results =
        crate::comm::run_elastic_world_with_faults(tiling.survivors.clone(), plan, |comm| {
            elastic_rank_body(ctx, tiling, live, steal, comm)
        });
    collect_elastic(tiling, results)
}

fn collect_elastic(
    tiling: &ElasticTiling,
    results: Vec<Result<ElasticRankOut, CommError>>,
) -> ElasticExchange {
    let survivors = &tiling.survivors;
    if results.iter().all(|r| r.is_ok()) {
        let ok: Vec<ElasticRankOut> = results.into_iter().map(|r| r.expect("no errors")).collect();
        let rank_sent: Vec<u64> = ok.iter().map(|r| r.bytes.0).collect();
        let rank_recv: Vec<u64> = ok.iter().map(|r| r.bytes.1).collect();
        let mut unit_secs = vec![0.0; tiling.procs()];
        for r in &ok {
            for &(u, s) in &r.unit_secs {
                unit_secs[u] = s;
            }
        }
        let balance = BalanceStats {
            rank_busy_secs: ok.iter().map(|r| r.busy_secs).collect(),
            unit_secs,
            steal_requests: ok.iter().map(|r| r.steal_requests).sum(),
            stolen_units: ok.iter().map(|r| r.stolen_units).sum(),
        };
        let world_bytes = rank_sent.iter().sum();
        let max_rank_recv = rank_recv.iter().copied().max().unwrap_or(0);
        let (sigma, pi) = ok
            .into_iter()
            .find_map(|r| r.assembled)
            .expect("root produced the assembled Σ and Π");
        return Ok((
            sigma,
            pi,
            CommStats {
                world_bytes,
                max_rank_recv,
                rank_sent,
                rank_recv,
                balance: Some(balance),
            },
        ));
    }
    // Cross-check the accusations against who actually reported back. A
    // slot that returned at all — Ok or a typed detection error — is
    // alive: its endpoint may have vanished because it *exited early*
    // after detecting a death, and peers' failed sends to it must not
    // convict it. Only a rank silenced by the fault schedule (`Killed`)
    // is really gone. An all-exonerated round yields an empty suspect
    // list: the supervisor retries on the unchanged tiling (bounded by
    // its retile budget).
    let exonerated: Vec<usize> = survivors
        .iter()
        .zip(&results)
        .filter(|(_, r)| !matches!(r, Err(CommError::Killed { .. })))
        .map(|(&id, _)| id)
        .collect();
    let mut suspects: Vec<usize> = results
        .iter()
        .filter_map(|r| r.as_ref().err().map(|e| e.suspect()))
        .filter(|s| !exonerated.contains(s))
        .collect();
    suspects.sort_unstable();
    suspects.dedup();
    Err(suspects)
}

/// One survivor's share of the elastic DaCe scheme. The rank executes every
/// work unit `tiling` assigns to its original identity, replaying the
/// classic per-tile protocol per unit; the collectives are unrolled into
/// explicit point-to-point messages walked in one canonical global order
/// (lexicographic in the unit ids), so any subset of survivors agrees on
/// per-pair FIFO delivery and the strict tag asserts hold. Every wait goes
/// through the `try_*` primitives: a dead peer surfaces as a typed
/// [`CommError`] instead of a hang.
fn elastic_rank_body(
    ctx: &SseDistContext<'_>,
    tiling: &ElasticTiling,
    live: &LivenessConfig,
    steal: bool,
    comm: ThreadComm,
) -> Result<ElasticRankOut, CommError> {
    let p = ctx.p;
    let nn = p.norb * p.norb;
    let scale = c64(sse::sigma_scale(p, ctx.grids), 0.0);
    let dec = &tiling.dec;
    let procs = tiling.procs();
    let halo = ctx.dev.max_neighbor_index_distance();
    let gf_dec = OmenDecomp::new(p, procs); // initial GF-phase layout (per unit)
    let me = comm.identity();
    let my_units = tiling.units_of(me);
    let slot = |u: usize| tiling.owner_slot(u);
    let geoms: Vec<TileGeom> = (0..procs).map(|u| tile_geom(dec, p, halo, u)).collect();
    let hb = || comm.heartbeat();
    // ---- Exchange #1 (unrolled all-to-all): G≷ halos per (src GF chunk,
    // dst tile) pair. Self-sends ride the self-channel for free, exactly
    // like the classic alltoallv.
    for &u_src in &my_units {
        let chunk = gf_dec.energy.range(u_src);
        for (u_dst, geom) in geoms.iter().enumerate() {
            if !tiling.is_live_unit(u_dst) {
                continue; // degraded mode: the tile is abandoned
            }
            let buf = pack_g_halo(ctx, chunk.clone(), geom, nn);
            comm.try_send(slot(u_dst), tag_a2a1(procs, u_src, u_dst), buf)?;
        }
    }
    let mut g_local: Vec<[Vec<Complex64>; 2]> = my_units
        .iter()
        .map(|&u| {
            let len = p.nkz * geoms[u].e_halo.len() * geoms[u].a_win.len() * nn;
            [vec![Complex64::ZERO; len], vec![Complex64::ZERO; len]]
        })
        .collect();
    for u_src in 0..procs {
        if !tiling.is_live_unit(u_src) {
            continue; // its GF chunk died with its owner: halo stays zero
        }
        let chunk = gf_dec.energy.range(u_src);
        for (mi, &u_dst) in my_units.iter().enumerate() {
            let buf = comm.try_recv(slot(u_src), tag_a2a1(procs, u_src, u_dst), live)?;
            unpack_g_halo(p, chunk.clone(), &geoms[u_dst], &buf, &mut g_local[mi], nn);
        }
    }
    // ---- Exchange #2: D̃≷ windows. One message per (src slot, dst tile):
    // all the (q, ω) points whose owning unit belongs to the source, over
    // the destination tile's atom window, in ascending (q, ω) order.
    let d_len = p.nb * N3D * N3D;
    let my_qw: Vec<(usize, usize)> = (0..p.nqz)
        .flat_map(|q| (0..p.nw).map(move |w| (q, w)))
        .filter(|&(q, w)| tiling.owner[(q * p.nw + w) % procs] == me)
        .collect();
    for (u_dst, geom) in geoms.iter().enumerate() {
        if !tiling.is_live_unit(u_dst) {
            continue;
        }
        let aw = geom.a_win.clone();
        let mut buf = Vec::new();
        for d in [ctx.d_lesser_pre, ctx.d_greater_pre] {
            for &(q, w) in &my_qw {
                for a in aw.clone() {
                    buf.extend_from_slice(d.inner(&[q, w, a]));
                }
            }
        }
        comm.try_send(slot(u_dst), tag_a2a2(u_dst), buf)?;
    }
    let mut d_local: Vec<[Vec<Complex64>; 2]> = my_units
        .iter()
        .map(|&u| {
            let len = p.nqz * p.nw * geoms[u].a_win.len() * d_len;
            [vec![Complex64::ZERO; len], vec![Complex64::ZERO; len]]
        })
        .collect();
    for (mi, &u_dst) in my_units.iter().enumerate() {
        let aw_len = geoms[u_dst].a_win.len();
        for src_slot in 0..comm.size() {
            let buf = comm.try_recv(src_slot, tag_a2a2(u_dst), live)?;
            let src_id = comm.identity_of(src_slot);
            let mut pos = 0;
            for tensor in d_local[mi].iter_mut() {
                for q in 0..p.nqz {
                    for w in 0..p.nw {
                        if tiling.owner[(q * p.nw + w) % procs] != src_id {
                            continue;
                        }
                        for al in 0..aw_len {
                            let off = ((q * p.nw + w) * aw_len + al) * d_len;
                            tensor[off..off + d_len].copy_from_slice(&buf[pos..pos + d_len]);
                            pos += d_len;
                        }
                    }
                }
            }
            assert_eq!(pos, buf.len());
        }
    }
    // ---- Compute phase: Σ≷ tile + Π≷ partial slices per owned unit,
    // timed per unit. With stealing on, idle ranks pull unstarted units
    // from stragglers; the tile kernels are pure in their buffers, so the
    // results are bitwise identical either way. ----
    let env = StealEnv {
        ctx,
        tiling,
        my_units: &my_units,
        geoms: &geoms,
        g_local: &g_local,
        d_local: &d_local,
        scale,
    };
    let (outs, busy_secs, steal_requests, stolen_units) = if steal && comm.size() > 1 {
        steal_compute_phase(&env, &comm, live)?
    } else {
        let mut outs = Vec::with_capacity(my_units.len());
        let mut busy = 0.0;
        for (mi, &u) in my_units.iter().enumerate() {
            let out = compute_unit_tile(
                ctx,
                tiling,
                &geoms[u],
                &g_local[mi],
                &d_local[mi],
                scale,
                u,
                me,
                &hb,
            );
            busy += out.secs;
            outs.push(out);
        }
        (outs, busy, 0, 0)
    };
    let unit_secs: Vec<(usize, f64)> = my_units
        .iter()
        .zip(&outs)
        .map(|(&u, o)| (u, o.secs))
        .collect();
    // ---- Π≷ partials, reduced to each (q, ω) owner. The owner accumulates
    // in ascending *unit* order — the same order the classic scheme uses
    // for its ascending ranks, so the totals are bitwise identical. ----
    let pi_len = (p.nb + 1) * N3D * N3D;
    let pi_scale = c64(sse::pi_scale(p, ctx.grids), 0.0);
    let mut pi_owned: PiOwned = Vec::new();
    for q in 0..p.nqz {
        for w in 0..p.nw {
            let qw = q * p.nw + w;
            let owner_id = tiling.owner[qw % procs];
            if !tiling.is_survivor(owner_id) {
                continue; // the round's owner unit was abandoned: Π≷ stays zero
            }
            for (mi, &u) in my_units.iter().enumerate() {
                let (sl_l, sl_g) = &outs[mi].pi_slices[qw];
                let tag = tag_pi(procs, qw, u);
                comm.try_send(tiling.slot_of(owner_id), tag, sl_l.clone())?;
                comm.try_send(tiling.slot_of(owner_id), tag + 1, sl_g.clone())?;
            }
            if owner_id == me {
                let mut tot_l = vec![Complex64::ZERO; p.na * pi_len];
                let mut tot_g = vec![Complex64::ZERO; p.na * pi_len];
                for u in 0..procs {
                    if !tiling.is_live_unit(u) {
                        continue; // an abandoned tile contributes nothing
                    }
                    let src_a = dec.atoms.range(dec.coords(u).1);
                    let tag = tag_pi(procs, qw, u);
                    let rl = comm.try_recv(slot(u), tag, live)?;
                    let rg = comm.try_recv(slot(u), tag + 1, live)?;
                    for (dst, part) in [(&mut tot_l, rl), (&mut tot_g, rg)] {
                        for (o, v) in dst[src_a.start * pi_len..src_a.end * pi_len]
                            .iter_mut()
                            .zip(part)
                        {
                            *o += v;
                        }
                    }
                }
                let fin = |mut v: Vec<Complex64>| {
                    for z in v.iter_mut() {
                        *z *= pi_scale;
                    }
                    v
                };
                pi_owned.push(((q, w), fin(tot_l), fin(tot_g)));
            }
        }
    }
    comm.try_barrier(live)?;
    // Capture SSE-phase traffic before the result gather adds its own
    // bytes; the second barrier keeps the snapshot consistent.
    let stats = (comm.bytes_sent(), comm.bytes_received());
    comm.try_barrier(live)?;
    // ---- Gather tiles to the root (survivor slot 0). ----
    for (mi, &u) in my_units.iter().enumerate() {
        comm.try_send(0, tag_gather(u), outs[mi].sig[0].clone())?;
        comm.try_send(0, tag_gather(u) + 1, outs[mi].sig[1].clone())?;
    }
    if comm.rank() == 0 {
        let mut out = ElectronSelfEnergy::zeros(p);
        for (u, geom) in geoms.iter().enumerate() {
            if !tiling.is_live_unit(u) {
                continue; // abandoned tile: its Σ≷ slice stays zero
            }
            let bufs = [
                comm.try_recv(slot(u), tag_gather(u), live)?,
                comm.try_recv(slot(u), tag_gather(u) + 1, live)?,
            ];
            for (t, buf) in bufs.iter().enumerate() {
                let tensor = if t == 0 {
                    &mut out.lesser
                } else {
                    &mut out.greater
                };
                for k in 0..p.nkz {
                    for (el, e) in geom.my_e.clone().enumerate() {
                        for (al, a) in geom.my_a.clone().enumerate() {
                            let off = ((k * geom.my_e.len() + el) * geom.my_a.len() + al) * nn;
                            tensor
                                .inner_mut(&[k, e, a])
                                .copy_from_slice(&buf[off..off + nn]);
                        }
                    }
                }
            }
        }
        let mut pi_out = PhononSelfEnergy::zeros(p);
        let mut store = |(q, w): (usize, usize), l: Vec<Complex64>, g: Vec<Complex64>| {
            pi_out.lesser.inner_mut(&[q, w]).copy_from_slice(&l);
            pi_out.greater.inner_mut(&[q, w]).copy_from_slice(&g);
        };
        for ((q, w), l, g) in pi_owned {
            store((q, w), l, g);
        }
        for src in 1..comm.size() {
            let count = comm.try_recv(src, 1 << 52, live)?[0].re as usize;
            for _ in 0..count {
                let head = comm.try_recv(src, (1 << 52) + 1, live)?;
                let (q, w) = (head[0].re as usize, head[1].re as usize);
                let l = comm.try_recv(src, (1 << 52) + 2, live)?;
                let g = comm.try_recv(src, (1 << 52) + 3, live)?;
                store((q, w), l, g);
            }
        }
        Ok(ElasticRankOut {
            assembled: Some((out, pi_out)),
            bytes: stats,
            busy_secs,
            unit_secs,
            steal_requests,
            stolen_units,
        })
    } else {
        comm.try_send(0, 1 << 52, vec![c64(pi_owned.len() as f64, 0.0)])?;
        for ((q, w), l, g) in pi_owned {
            comm.try_send(
                0,
                (1 << 52) + 1,
                vec![c64(q as f64, 0.0), c64(w as f64, 0.0)],
            )?;
            comm.try_send(0, (1 << 52) + 2, l)?;
            comm.try_send(0, (1 << 52) + 3, g)?;
        }
        Ok(ElasticRankOut {
            assembled: None,
            bytes: stats,
            busy_secs,
            unit_secs,
            steal_requests,
            stolen_units,
        })
    }
}

type RankResult = (Option<(ElectronSelfEnergy, PhononSelfEnergy)>, (u64, u64));

fn collect_results(results: Vec<RankResult>) -> (ElectronSelfEnergy, PhononSelfEnergy, CommStats) {
    let rank_sent: Vec<u64> = results.iter().map(|r| r.1 .0).collect();
    let rank_recv: Vec<u64> = results.iter().map(|r| r.1 .1).collect();
    let world_bytes = rank_sent.iter().sum();
    let max_rank_recv = rank_recv.iter().copied().max().unwrap_or(0);
    let (sigma, pi) = results
        .into_iter()
        .find_map(|(s, _)| s)
        .expect("root produced the assembled Σ and Π");
    (
        sigma,
        pi,
        CommStats {
            world_bytes,
            max_rank_recv,
            rank_sent,
            rank_recv,
            balance: None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_core::gf::{self, GfConfig};
    use qt_core::hamiltonian::{ElectronModel, PhononModel};
    use qt_core::sse::SseVariant;

    struct Fx {
        p: SimParams,
        dev: Device,
        grids: Grids,
        dh: Tensor,
        gl: Tensor,
        gg: Tensor,
        dl: Tensor,
        dg: Tensor,
    }

    fn fixture() -> Fx {
        fixture_with(Device::new)
    }

    /// A device with one heavy contact slab and a sparse channel: the
    /// per-tile SSE cost is strongly atom-skewed.
    fn skewed_fixture() -> Fx {
        fixture_with(|p| Device::skewed(p, 1, 1))
    }

    fn fixture_with(make_dev: impl Fn(&SimParams) -> Device) -> Fx {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 12,
            nw: 2,
            na: 12,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let dev = make_dev(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        let cfg = GfConfig::default();
        let egf = gf::electron_gf_phase(
            &dev,
            &em,
            &p,
            &grids,
            &gf::ElectronSelfEnergy::zeros(&p),
            &cfg,
        )
        .unwrap();
        let pgf = gf::phonon_gf_phase(
            &dev,
            &pm,
            &p,
            &grids,
            &gf::PhononSelfEnergy::zeros(&p),
            &cfg,
        )
        .unwrap();
        let (dl, dg) = sse::preprocess_d(&dev, &p, &pgf);
        Fx {
            dh: em.dh_tensor(&dev),
            gl: egf.g_lesser,
            gg: egf.g_greater,
            dl,
            dg,
            p,
            dev,
            grids,
        }
    }

    fn ctx(fx: &Fx) -> SseDistContext<'_> {
        SseDistContext {
            p: &fx.p,
            dev: &fx.dev,
            grids: &fx.grids,
            dh: &fx.dh,
            g_lesser: &fx.gl,
            g_greater: &fx.gg,
            d_lesser_pre: &fx.dl,
            d_greater_pre: &fx.dg,
        }
    }

    fn serial_results(fx: &Fx) -> (ElectronSelfEnergy, PhononSelfEnergy) {
        let inputs = sse::SseInputs {
            dev: &fx.dev,
            p: &fx.p,
            grids: &fx.grids,
            dh: &fx.dh,
            g_lesser: &fx.gl,
            g_greater: &fx.gg,
            d_lesser_pre: &fx.dl,
            d_greater_pre: &fx.dg,
        };
        (
            sse::sigma(&inputs, SseVariant::Omen),
            sse::pi(&inputs, SseVariant::Reference),
        )
    }

    fn assert_close(name: &str, serial: &qt_linalg::Tensor, dist: &qt_linalg::Tensor) {
        let rel = serial.max_abs_diff(dist) / serial.norm().max(1e-30);
        assert!(rel < 1e-10, "{name}: rel {rel}");
    }

    #[test]
    fn omen_scheme_matches_serial() {
        let fx = fixture();
        let (serial, serial_pi) = serial_results(&fx);
        for procs in [1usize, 2, 4] {
            let (dist, dist_pi, stats) = omen_scheme(&ctx(&fx), procs);
            assert_close("sigma lesser", &serial.lesser, &dist.lesser);
            assert_close("sigma greater", &serial.greater, &dist.greater);
            assert_close("pi lesser", &serial_pi.lesser, &dist_pi.lesser);
            assert_close("pi greater", &serial_pi.greater, &dist_pi.greater);
            if procs > 1 {
                assert!(stats.world_bytes > 0, "must actually communicate");
            }
        }
    }

    #[test]
    fn dace_scheme_matches_serial() {
        let fx = fixture();
        let (serial, serial_pi) = serial_results(&fx);
        for (te, ta) in [(1usize, 2usize), (2, 2), (3, 2), (2, 3)] {
            let (dist, dist_pi, stats) = dace_scheme(&ctx(&fx), te, ta);
            assert_close("sigma lesser", &serial.lesser, &dist.lesser);
            assert_close("sigma greater", &serial.greater, &dist.greater);
            assert_close("pi lesser", &serial_pi.lesser, &dist_pi.lesser);
            assert_close("pi greater", &serial_pi.greater, &dist_pi.greater);
            assert!(stats.world_bytes > 0);
        }
    }

    #[test]
    fn dace_moves_less_data() {
        let fx = fixture();
        let (_, _, omen_stats) = omen_scheme(&ctx(&fx), 4);
        let (_, _, dace_stats) = dace_scheme(&ctx(&fx), 2, 2);
        // Even at this tiny scale the all-to-all redistribution must beat
        // the per-round replication of G.
        assert!(
            dace_stats.world_bytes < omen_stats.world_bytes,
            "dace {} vs omen {}",
            dace_stats.world_bytes,
            omen_stats.world_bytes
        );
    }

    #[test]
    fn omen_rank_volumes_match_closed_form_exactly() {
        // The per-rank byte model in `volume` must reproduce the measured
        // sends *to the byte* for every world size.
        let fx = fixture();
        for procs in [2usize, 3, 4, 6] {
            let (_, _, stats) = omen_scheme(&ctx(&fx), procs);
            let model = crate::volume::omen_rank_sent_bytes(&fx.p, procs);
            assert_eq!(stats.rank_sent, model, "procs={procs}");
            assert_eq!(
                stats.rank_sent.iter().sum::<u64>(),
                stats.world_bytes,
                "world total must be the sum of per-rank sends"
            );
            assert_eq!(
                stats.world_bytes,
                crate::volume::omen_measured_bytes(&fx.p, procs)
            );
        }
    }

    #[test]
    fn dace_rank_volumes_match_closed_form_exactly() {
        let fx = fixture();
        let halo = fx.dev.max_neighbor_index_distance();
        for (te, ta) in [(1usize, 2usize), (2, 2), (3, 2), (2, 3)] {
            let (_, _, stats) = dace_scheme(&ctx(&fx), te, ta);
            let model = crate::volume::dace_rank_sent_bytes(&fx.p, te, ta, halo);
            assert_eq!(stats.rank_sent, model, "te={te} ta={ta}");
            assert_eq!(stats.rank_sent.iter().sum::<u64>(), stats.world_bytes);
            assert_eq!(
                stats.world_bytes,
                crate::volume::dace_measured_bytes(&fx.p, te, ta, halo)
            );
        }
    }

    fn assert_bitwise(name: &str, a: &qt_linalg::Tensor, b: &qt_linalg::Tensor) {
        assert_eq!(a.as_slice().len(), b.as_slice().len(), "{name}: shape");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "{name}: element {i} differs: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn elastic_full_world_is_bitwise_equal_to_classic_dace() {
        let fx = fixture();
        let live = LivenessConfig::default();
        for (te, ta) in [(2usize, 2usize), (3, 2)] {
            let (classic, classic_pi, classic_stats) = dace_scheme(&ctx(&fx), te, ta);
            let tiling = ElasticTiling::new(&fx.p, te, ta);
            let (dist, dist_pi, stats) =
                elastic_sse_exchange(&ctx(&fx), &tiling, &live).expect("fault-free run succeeds");
            assert_bitwise("sigma lesser", &classic.lesser, &dist.lesser);
            assert_bitwise("sigma greater", &classic.greater, &dist.greater);
            assert_bitwise("pi lesser", &classic_pi.lesser, &dist_pi.lesser);
            assert_bitwise("pi greater", &classic_pi.greater, &dist_pi.greater);
            assert_eq!(stats.rank_sent, classic_stats.rank_sent, "te={te} ta={ta}");
        }
    }

    #[test]
    fn elastic_shrunken_worlds_still_match_serial() {
        let fx = fixture();
        let (serial, serial_pi) = serial_results(&fx);
        let live = LivenessConfig::default();
        // Kill ranks out of a 2×2 tiling and re-run on the survivors: the
        // answer must not move, all the way down to a single survivor.
        let mut tiling = ElasticTiling::new(&fx.p, 2, 2);
        let full = elastic_sse_exchange(&ctx(&fx), &tiling, &live).unwrap();
        for dead in [1usize, 3, 0] {
            tiling.remove_rank(dead);
            let (dist, dist_pi, _) = elastic_sse_exchange(&ctx(&fx), &tiling, &live).unwrap();
            assert_close("sigma lesser", &serial.lesser, &dist.lesser);
            assert_close("sigma greater", &serial.greater, &dist.greater);
            assert_close("pi lesser", &serial_pi.lesser, &dist_pi.lesser);
            assert_close("pi greater", &serial_pi.greater, &dist_pi.greater);
            // Stronger: shrinking the world must not perturb a single bit.
            assert_bitwise("sigma lesser", &full.0.lesser, &dist.lesser);
            assert_bitwise("pi greater", &full.1.greater, &dist_pi.greater);
        }
        assert_eq!(tiling.world_size(), 1);
    }

    #[test]
    fn weighted_tiling_is_bitwise_identical_and_reports_balance() {
        let fx = skewed_fixture();
        let live = LivenessConfig::default();
        let (te, ta) = (2usize, 2usize);
        let uniform = ElasticTiling::uniform(&fx.p, te, ta, te * ta);
        let (base, base_pi, _) = elastic_sse_exchange(&ctx(&fx), &uniform, &live).unwrap();
        // A lopsided weight vector must move owners, not tile geometry —
        // and the observables must not move a single bit with them.
        let weighted = ElasticTiling::weighted(&fx.p, te, ta, te * ta, &[1.0, 10.0, 1.0, 1.0]);
        assert_ne!(weighted.owner, uniform.owner, "weights must move owners");
        let (dist, dist_pi, stats) = elastic_sse_exchange(&ctx(&fx), &weighted, &live).unwrap();
        assert_bitwise("sigma lesser", &base.lesser, &dist.lesser);
        assert_bitwise("sigma greater", &base.greater, &dist.greater);
        assert_bitwise("pi lesser", &base_pi.lesser, &dist_pi.lesser);
        assert_bitwise("pi greater", &base_pi.greater, &dist_pi.greater);
        let bal = stats.balance.expect("elastic exchange measures balance");
        assert_eq!(bal.rank_busy_secs.len(), te * ta);
        assert_eq!(bal.unit_secs.len(), te * ta);
        assert!(
            bal.unit_secs.iter().all(|&s| s > 0.0),
            "{:?}",
            bal.unit_secs
        );
        assert!(bal.imbalance_ratio() >= 1.0);
        assert_eq!(bal.steal_requests, 0, "stealing defaults off");
    }

    #[test]
    fn stealing_terminates_and_matches_bitwise() {
        let fx = skewed_fixture();
        let live = LivenessConfig::default();
        let (te, ta) = (2usize, 2usize);
        let (classic, classic_pi, _) = dace_scheme(&ctx(&fx), te, ta);
        // All-zero weights collapse every unit onto rank 0: three ranks
        // start idle and must pull their work through the steal protocol.
        let tiling = ElasticTiling::weighted(&fx.p, te, ta, te * ta, &[0.0; 4]);
        assert_eq!(tiling.units_of(0).len(), te * ta);
        let mut stole = 0u64;
        for _ in 0..5 {
            let (dist, dist_pi, stats) =
                elastic_sse_exchange_opts(&ctx(&fx), &tiling, &live, true).unwrap();
            assert_bitwise("sigma lesser", &classic.lesser, &dist.lesser);
            assert_bitwise("sigma greater", &classic.greater, &dist.greater);
            assert_bitwise("pi lesser", &classic_pi.lesser, &dist_pi.lesser);
            assert_bitwise("pi greater", &classic_pi.greater, &dist_pi.greater);
            let bal = stats.balance.expect("balance measured");
            assert!(bal.steal_requests >= bal.stolen_units);
            // Every unit cost is attributed, wherever the unit ran.
            assert!(
                bal.unit_secs.iter().all(|&s| s > 0.0),
                "{:?}",
                bal.unit_secs
            );
            stole += bal.stolen_units;
            if stole > 0 {
                break;
            }
        }
        assert!(stole > 0, "three idle ranks must manage at least one steal");
    }

    #[test]
    fn elastic_measured_bytes_match_elastic_model_exactly() {
        let fx = fixture();
        let halo = fx.dev.max_neighbor_index_distance();
        let live = LivenessConfig::default();
        let mut tiling = ElasticTiling::new(&fx.p, 2, 2);
        for dead in [2usize, 0] {
            tiling.remove_rank(dead);
            let (_, _, stats) = elastic_sse_exchange(&ctx(&fx), &tiling, &live).unwrap();
            let model = crate::volume::dace_elastic_rank_sent_bytes(&fx.p, halo, &tiling);
            assert_eq!(stats.rank_sent, model, "dead={dead}");
            assert_eq!(stats.rank_sent.iter().sum::<u64>(), stats.world_bytes);
        }
    }

    #[test]
    fn measured_omen_bytes_track_formula_shape() {
        // The G-replication term scales with Nqz·Nω: doubling the rounds
        // must roughly double the measured traffic.
        let fx = fixture();
        let mut p2 = fx.p;
        p2.nw = 4; // double the frequency count
        let fx2 = Fx {
            p: p2,
            dev: Device::new(&p2),
            grids: Grids::new(&p2, -1.2, 1.2),
            dh: fx.dh.clone(),
            gl: fx.gl.clone(),
            gg: fx.gg.clone(),
            dl: Tensor::zeros(&[p2.nqz, p2.nw, p2.na, p2.nb, N3D, N3D]),
            dg: Tensor::zeros(&[p2.nqz, p2.nw, p2.na, p2.nb, N3D, N3D]),
        };
        let (_, _, s1) = omen_scheme(&ctx(&fx), 4);
        let (_, _, s2) = omen_scheme(&ctx(&fx2), 4);
        let ratio = s2.world_bytes as f64 / s1.world_bytes as f64;
        assert!(
            ratio > 1.5 && ratio < 2.5,
            "doubling Nω should ~double OMEN traffic: {ratio}"
        );
    }
}
