//! Property tests for the fail-closed contract: *no* input — random
//! bytes, token soup, or targeted mutation of a valid document — may
//! panic the scenario pipeline; every failure is a typed
//! [`ScenarioError`]. And for valid documents, normalization is a
//! fixed point: parse → to_toml → parse is the identity.

use proptest::collection;
use proptest::prelude::*;
use qt_scenario::{Scenario, ScenarioError};

/// A valid baseline document the mutation fuzzer starts from.
fn baseline(kind: &str, sections: usize, atoms: usize, ne: usize, disorder: bool) -> String {
    let mut doc = format!(
        "name = \"prop-case\"\n\
         [geometry]\n\
         kind = \"{kind}\"\n\
         sections = {sections}\n\
         atoms_per_section = {atoms}\n\
         [grid]\n\
         ne = {ne}\n\
         nw = 2\n\
         emin = -1.5\n\
         emax = 1.5\n\
         [sweep]\n\
         biases = [0.0, 0.25]\n"
    );
    if disorder {
        doc.push_str("[disorder]\nseed = 11\nvacancy_fraction = 0.1\nvacancy_level = 0.2\n");
    }
    doc
}

/// Tokens the soup fuzzer splices together: every schema keyword plus
/// adversarial syntax fragments, so the walker and lexer both get hit.
const TOKENS: &[&str] = &[
    "[geometry]",
    "[grid]",
    "[sweep]",
    "[solver]",
    "[disorder]",
    "[contacts]",
    "[geometry.kind]",
    "[[sweep]]",
    "[unknown]",
    "name",
    "kind",
    "sections",
    "atoms_per_section",
    "orbitals",
    "nkz",
    "nqz",
    "ne",
    "nw",
    "emin",
    "emax",
    "biases",
    "temperatures",
    "seed",
    "vacancy_fraction",
    "vacancy_level",
    "max_iterations",
    "tolerance",
    "mixing",
    "variant",
    "=",
    "\"nanowire\"",
    "\"dace\"",
    "\"unterminated",
    "4",
    "-3",
    "0.5",
    "1e308",
    "-1e308",
    "inf",
    "nan",
    "true",
    "false",
    "[",
    "]",
    "[1, 2]",
    "[1,",
    ",",
    "#",
    "a.b",
    "''",
    "\u{1F980}",
    "\\",
    "= =",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: the parser must return Ok or a typed error,
    /// never panic, and syntax errors must point at a real line.
    #[test]
    fn random_bytes_never_panic(bytes in collection::vec(0u8..=255u8, 0..200)) {
        let doc = String::from_utf8_lossy(&bytes).into_owned();
        match Scenario::parse(&doc) {
            Ok(s) => { let _ = s.build(); }
            Err(ScenarioError::Syntax { line, .. }) => {
                prop_assert!(line >= 1 && line <= doc.lines().count().max(1));
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Token soup: schema keywords and adversarial fragments spliced
    /// into documents that are *almost* well-formed — the hard paths of
    /// the section walker.
    #[test]
    fn token_soup_never_panics(picks in collection::vec(0usize..TOKENS.len(), 0..40), glue in any::<u64>()) {
        let mut doc = String::new();
        for (i, &p) in picks.iter().enumerate() {
            doc.push_str(TOKENS[p]);
            // Deterministic per-position glue: space or newline.
            doc.push(if (glue >> (i % 64)) & 1 == 1 { '\n' } else { ' ' });
        }
        match Scenario::parse(&doc) {
            Ok(s) => { let _ = s.build(); }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Single-point mutation of a valid document: replace one line with
    /// garbage drawn from the token pool. Must never panic, and when it
    /// fails the error carries a usable location (path or line).
    #[test]
    fn mutated_valid_documents_fail_closed(
        line_pick in any::<u32>(),
        token in 0usize..TOKENS.len(),
        disorder in any::<bool>(),
    ) {
        let doc = baseline("nanowire", 4, 4, 12, disorder);
        let lines: Vec<&str> = doc.lines().collect();
        let target = line_pick as usize % lines.len();
        let mutated: String = lines
            .iter()
            .enumerate()
            .map(|(i, l)| if i == target { TOKENS[token] } else { *l })
            .collect::<Vec<_>>()
            .join("\n");
        match Scenario::parse(&mutated) {
            Ok(s) => { let _ = s.build(); }
            Err(ScenarioError::Syntax { line, .. }) => {
                prop_assert!(line >= 1 && line <= lines.len());
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Valid documents normalize to a fixed point: parse → to_toml →
    /// parse is the identity, and the canonical form is idempotent.
    /// Build succeeds, and the built scenario agrees with its params.
    #[test]
    fn valid_documents_roundtrip_deterministically(
        kind_pick in 0usize..3,
        sections in 2usize..=5,
        atoms in 2usize..=5,
        ne in 8usize..=16,
        disorder in any::<bool>(),
    ) {
        let kind = ["nanowire", "gate-all-around", "sheet-2d"][kind_pick];
        let doc = baseline(kind, sections, atoms, ne, disorder);
        let s1 = Scenario::parse(&doc).unwrap();
        let canon = s1.to_toml();
        let s2 = Scenario::parse(&canon).unwrap();
        prop_assert_eq!(&s1, &s2);
        prop_assert_eq!(&canon, &s2.to_toml());
        let built = s1.build().unwrap();
        prop_assert_eq!(built.params.na, sections * atoms);
        prop_assert_eq!(built.params.bnum, sections);
        prop_assert_eq!(built.disorder.is_some(), disorder);
        // Building twice from the same scenario yields the same device.
        let again = s1.build().unwrap();
        prop_assert_eq!(&built.sim.dev.neighbors, &again.sim.dev.neighbors);
    }
}
