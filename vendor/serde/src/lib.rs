//! Offline stand-in for `serde` 1.
//!
//! The build environment has no registry access, so the workspace patches
//! `serde` to this crate. Instead of upstream's visitor-based data model it
//! round-trips through an owned [`Value`] tree: `Serialize` renders a value
//! into the tree, `Deserialize` reads one back out, and the accompanying
//! `serde_derive` stand-in generates both impls for plain structs and
//! enums (externally tagged, like upstream's default representation).
//! `serde_json`'s stand-in then renders the tree as JSON text — so the
//! whole derive→to_string→from_str round trip works offline.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The self-describing value tree both traits pass through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integers keep 64-bit precision (JSON numbers without a fraction).
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Ordered key/value pairs (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::Num(v) if v.fract() == 0.0 && v.abs() < 9.0e15 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::Num(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Render into the value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild from the value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

/// Look up a required object field (derive-generated code calls this).
pub fn field<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

/// Like [`field`], but a missing key reads as `Null` so `Option` fields
/// skipped on output (`skip_serializing_if`) still deserialize.
pub fn field_or_null<'a>(obj: &'a [(String, Value)], key: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let raw = v.as_i64().ok_or_else(|| format!("expected integer, got {v:?}"))?;
                <$t>::try_from(raw).map_err(|_| format!("integer {raw} out of range"))
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| format!("expected number, got {v:?}"))
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("expected bool, got {v:?}")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v:?}"))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

/// `&'static str` deserialization leaks the parsed string — acceptable for
/// the static machine descriptions this workspace round-trips in tests.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| format!("expected string, got {v:?}"))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_arr()
            .ok_or_else(|| format!("expected array, got {v:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(format!("expected 2-element array, got {v:?}")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(format!("expected 3-element array, got {v:?}")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_obj()
            .ok_or_else(|| format!("expected object, got {v:?}"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut pairs: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_obj()
            .ok_or_else(|| format!("expected object, got {v:?}"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            Vec::<i64>::from_value(&vec![1i64, -2].to_value()),
            Ok(vec![1, -2])
        );
        assert_eq!(Option::<bool>::from_value(&Value::Null), Ok(None));
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 3i64);
        assert_eq!(BTreeMap::from_value(&m.to_value()), Ok(m));
    }
}
