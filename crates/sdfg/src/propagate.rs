//! Memlet propagation through map scopes (§4.1, Fig. 7).
//!
//! Given an inner memlet whose indices depend on map parameters, compute the
//! outer memlet: the union of accessed elements over the parameter ranges,
//! plus the total access count. DaCe "automatically computes contiguous and
//! strided ranges, but can only over-approximate some irregular accesses" —
//! affine index expressions are handled exactly here; indirections (`f(a,b)`)
//! take a performance-engineer-provided [`IndirectionModel`], mirroring the
//! paper's workflow.

use crate::subset::{Dim, Range, Subset};
use crate::symexpr::SymExpr;
use serde::{Deserialize, Serialize};

/// A map parameter and the half-open range it iterates over.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParamRange {
    pub name: String,
    pub range: Range,
}

impl ParamRange {
    pub fn new(
        name: impl Into<String>,
        begin: impl Into<SymExpr>,
        end: impl Into<SymExpr>,
    ) -> Self {
        ParamRange {
            name: name.into(),
            range: Range::new(begin, end),
        }
    }
}

/// Performance-engineer-supplied propagation for indirect dimensions.
///
/// The paper's model for the neighbor indirection `f(a, b)` over
/// `a ∈ [ta·sa, (ta+1)·sa), b ∈ [0, NB)` is
/// `[max(0, ta·sa − NB/2), min(NA, (ta+1)·sa + NB/2))`,
/// justified by atoms with neighboring indices usually being neighbors in
/// the coupling matrix.
pub struct IndirectionModel {
    /// Name of the lookup table this model applies to.
    pub table: String,
    /// Given the propagated ranges of the indirection arguments, produce the
    /// propagated output range.
    #[allow(clippy::type_complexity)]
    pub propagate: Box<dyn Fn(&[Range]) -> Range>,
}

impl IndirectionModel {
    /// The paper's neighbor-window model: the output spans the first
    /// argument's range widened by `NB/2` on each side, clamped to `[0, NA)`.
    pub fn neighbor_window(table: impl Into<String>, na: SymExpr, nb: SymExpr) -> Self {
        let table = table.into();
        IndirectionModel {
            table,
            propagate: Box::new(move |args: &[Range]| {
                let a = &args[0];
                let half = nb.clone().div(SymExpr::int(2));
                Range {
                    begin: (a.begin.clone() - half.clone()).max(SymExpr::int(0)),
                    end: (a.end.clone() + half.clone()).min(na.clone()),
                    stride: None,
                }
            }),
        }
    }
}

/// Propagate a single affine index expression over the parameter ranges.
///
/// For `e = Σ c_p·p + rest`: the minimum is attained with each positive-
/// coefficient parameter at its begin and each negative one at `end − 1`
/// (and vice versa for the maximum). Non-participating symbols stay
/// symbolic. Returns the half-open range `[min, max + 1)`.
pub fn propagate_index(e: &SymExpr, params: &[ParamRange]) -> Range {
    let mut lo = e.clone();
    let mut hi = e.clone();
    if let Some((coeffs, _)) = e.as_affine() {
        for p in params {
            let Some(&c) = coeffs.get(&p.name) else {
                continue;
            };
            if c == 0 {
                continue;
            }
            let begin = p.range.begin.clone();
            let last = p.range.end.clone() - SymExpr::int(1);
            if c > 0 {
                lo = lo.subs(&p.name, &begin);
                hi = hi.subs(&p.name, &last);
            } else {
                lo = lo.subs(&p.name, &last);
                hi = hi.subs(&p.name, &begin);
            }
        }
        Range {
            begin: lo.simplified(),
            end: (hi + SymExpr::int(1)).simplified(),
            stride: None,
        }
    } else {
        // Conservative: cannot bound a non-affine expression; substitute the
        // extremes for every parameter appearing in it and take both orders.
        let mut lo = e.clone();
        let mut hi = e.clone();
        for p in params {
            lo = lo.subs(&p.name, &p.range.begin);
            hi = hi.subs(&p.name, &(p.range.end.clone() - SymExpr::int(1)));
        }
        Range {
            begin: lo.clone().min(hi.clone()),
            end: lo.max(hi) + SymExpr::int(1),
            stride: None,
        }
    }
}

/// Result of propagating a memlet out of a map scope.
#[derive(Clone, Debug)]
pub struct PropagatedMemlet {
    /// Union of accessed elements (per dimension).
    pub subset: Subset,
    /// Total number of (not necessarily unique) accesses.
    pub accesses: SymExpr,
}

/// Propagate a full memlet subset through a map with the given parameter
/// ranges. `models` resolve indirect dimensions; unknown indirections
/// over-approximate to the full array dimension if `shape` is provided.
pub fn propagate_subset(
    subset: &Subset,
    params: &[ParamRange],
    models: &[IndirectionModel],
    shape: Option<&[SymExpr]>,
) -> PropagatedMemlet {
    let mut dims = Vec::with_capacity(subset.ndim());
    for (d, dim) in subset.0.iter().enumerate() {
        let out = match dim {
            Dim::Index(e) => {
                let r = propagate_index(e, params);
                if r.length() == SymExpr::int(1) {
                    Dim::Index(r.begin)
                } else {
                    Dim::Range(r)
                }
            }
            Dim::Range(r) => {
                // Propagate both endpoints.
                let lo = propagate_index(&r.begin, params);
                let hi_last = propagate_index(&(r.end.clone() - SymExpr::int(1)), params);
                Dim::Range(Range {
                    begin: lo.begin,
                    end: hi_last.end,
                    stride: r.stride.clone(),
                })
            }
            Dim::Indirect { table, args } => {
                if let Some(model) = models.iter().find(|m| &m.table == table) {
                    let arg_ranges: Vec<Range> =
                        args.iter().map(|a| propagate_index(a, params)).collect();
                    Dim::Range((model.propagate)(&arg_ranges))
                } else if let Some(shape) = shape {
                    Dim::Range(Range::full(shape[d].clone()))
                } else {
                    Dim::Indirect {
                        table: table.clone(),
                        args: args.clone(),
                    }
                }
            }
        };
        dims.push(out);
    }
    // Access count: one access per inner-subset element per map iteration.
    let map_volume = params
        .iter()
        .fold(SymExpr::int(1), |acc, p| acc * p.range.length());
    let accesses = (map_volume * subset.num_elements()).simplified();
    PropagatedMemlet {
        subset: Subset::new(dims),
        accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symexpr::Bindings;

    fn b(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    /// The paper's worked example (Fig. 7): propagating `kz - qz` over
    /// `kz ∈ [tk·sk, (tk+1)·sk)`, `qz ∈ [tq·sq, (tq+1)·sq)` yields
    /// `[tk·sk − (tq+1)·sq + 1, (tk+1)·sk − tq·sq)` with
    /// `sk + sq − 1` unique elements.
    #[test]
    fn paper_kz_minus_qz_example() {
        let tk = SymExpr::sym("tk");
        let tq = SymExpr::sym("tq");
        let sk = SymExpr::sym("sk");
        let sq = SymExpr::sym("sq");
        let params = vec![
            ParamRange::new(
                "kz",
                tk.clone() * sk.clone(),
                (tk.clone() + SymExpr::int(1)) * sk.clone(),
            ),
            ParamRange::new(
                "qz",
                tq.clone() * sq.clone(),
                (tq.clone() + SymExpr::int(1)) * sq.clone(),
            ),
        ];
        let e = SymExpr::sym("kz") - SymExpr::sym("qz");
        let r = propagate_index(&e, &params);
        let bind = b(&[("tk", 2), ("sk", 10), ("tq", 1), ("sq", 4)]);
        // Range should be [2*10 - 2*4 + 1, 3*10 - 1*4) = [13, 26)
        assert_eq!(r.begin.eval(&bind).unwrap(), 13);
        assert_eq!(r.end.eval(&bind).unwrap(), 26);
        // Unique accesses: sk + sq - 1 = 13.
        assert_eq!(r.eval_length(&bind).unwrap(), 13);
    }

    #[test]
    fn constant_coefficient_direction() {
        // e = 2*i - 3*j over i ∈ [0, 4), j ∈ [0, 5)
        let params = vec![ParamRange::new("i", 0, 4), ParamRange::new("j", 0, 5)];
        let e = SymExpr::int(2) * SymExpr::sym("i") - SymExpr::int(3) * SymExpr::sym("j");
        let r = propagate_index(&e, &params);
        let bind = b(&[]);
        // min = 0 - 3*4 = -12, max = 2*3 - 0 = 6 -> [-12, 7)
        assert_eq!(r.begin.eval(&bind).unwrap(), -12);
        assert_eq!(r.end.eval(&bind).unwrap(), 7);
    }

    #[test]
    fn pure_param_index_becomes_param_range() {
        let params = vec![ParamRange::new("E", 0, SymExpr::sym("NE"))];
        let e = SymExpr::sym("E");
        let r = propagate_index(&e, &params);
        let bind = b(&[("NE", 100)]);
        assert_eq!(r.begin.eval(&bind).unwrap(), 0);
        assert_eq!(r.end.eval(&bind).unwrap(), 100);
    }

    #[test]
    fn indirection_model_neighbor_window() {
        // f(a, b) over a ∈ [ta*sa, (ta+1)*sa): propagates to the widened
        // window of the paper.
        let na = SymExpr::sym("NA");
        let nb = SymExpr::sym("NB");
        let model = IndirectionModel::neighbor_window("f", na.clone(), nb.clone());
        let ta = SymExpr::sym("ta");
        let sa = SymExpr::sym("sa");
        let params = vec![
            ParamRange::new("a", ta.clone() * sa.clone(), (ta + SymExpr::int(1)) * sa),
            ParamRange::new("b", 0, nb.clone()),
        ];
        let subset = Subset::new(vec![Dim::Indirect {
            table: "f".into(),
            args: vec![SymExpr::sym("a"), SymExpr::sym("b")],
        }]);
        let prop = propagate_subset(&subset, &params, &[model], None);
        let bind = b(&[("ta", 2), ("sa", 100), ("NA", 1000), ("NB", 14)]);
        let Dim::Range(r) = &prop.subset.0[0] else {
            panic!("expected range");
        };
        // [max(0, 200-7), min(1000, 300+7)) = [193, 307): sa + NB elements.
        assert_eq!(r.begin.eval(&bind).unwrap(), 193);
        assert_eq!(r.end.eval(&bind).unwrap(), 307);
        assert_eq!(r.eval_length(&bind).unwrap(), 114);
        // Total accesses: sa * NB map iterations * 1 element = 1400.
        assert_eq!(prop.accesses.eval(&bind).unwrap(), 1400);
    }

    #[test]
    fn range_dim_propagates_endpoints() {
        // A[E - Nw : E] over E ∈ [0, NE) -> [-Nw+1... wait: endpoints
        // propagate to [0 - Nw, NE - 1) + 1 = [-Nw, NE).
        let params = vec![ParamRange::new("E", 0, SymExpr::sym("NE"))];
        let subset = Subset::new(vec![Dim::Range(Range::new(
            SymExpr::sym("E") - SymExpr::sym("Nw"),
            SymExpr::sym("E"),
        ))]);
        let prop = propagate_subset(&subset, &params, &[], None);
        let bind = b(&[("NE", 100), ("Nw", 10)]);
        let Dim::Range(r) = &prop.subset.0[0] else {
            panic!()
        };
        assert_eq!(r.begin.eval(&bind).unwrap(), -10);
        assert_eq!(r.end.eval(&bind).unwrap(), 99);
    }

    #[test]
    fn access_count_multiplies_map_volume() {
        let params = vec![
            ParamRange::new("i", 0, SymExpr::sym("M")),
            ParamRange::new("j", 0, SymExpr::sym("N")),
        ];
        // A[i] read once per (i, j).
        let subset = Subset::new(vec![Dim::idx(SymExpr::sym("i"))]);
        let prop = propagate_subset(&subset, &params, &[], None);
        let bind = b(&[("M", 8), ("N", 5)]);
        assert_eq!(prop.accesses.eval(&bind).unwrap(), 40);
        assert_eq!(prop.subset.eval_num_elements(&bind).unwrap(), 8);
    }
}
