//! Resilience integration tests: quarantine containment and
//! always-finite SCF trajectories.

use proptest::prelude::*;
use qt_core::device::Device;
use qt_core::gf::{self, ElectronSelfEnergy, GfConfig};
use qt_core::grids::Grids;
use qt_core::hamiltonian::ElectronModel;
use qt_core::health::{HealthPolicy, NumericalError};
use qt_core::params::SimParams;

fn small_params() -> SimParams {
    SimParams {
        nkz: 2,
        nqz: 2,
        ne: 8,
        nw: 2,
        na: 8,
        nb: 3,
        norb: 2,
        bnum: 4,
    }
}

/// A NaN seeded into the self-energy of one `(kz, E)` point must
/// quarantine exactly that point: its `G≷` slices stay zero, every other
/// point matches the clean run bitwise, and the coverage report names it.
#[test]
fn seeded_nan_is_quarantined_without_corrupting_neighbors() {
    let p = small_params();
    let dev = Device::new(&p);
    let em = ElectronModel::for_params(&p);
    let grids = Grids::new(&p, -1.2, 1.2);
    let cfg = GfConfig::default();
    let clean = gf::electron_gf_phase(&dev, &em, &p, &grids, &ElectronSelfEnergy::zeros(&p), &cfg)
        .expect("clean run");
    assert!(clean.coverage.is_full());

    let (bad_k, bad_e) = (1usize, 3usize);
    let mut sigma = ElectronSelfEnergy::zeros(&p);
    sigma.lesser.inner_mut(&[bad_k, bad_e, 0])[0] = qt_linalg::c64(f64::NAN, 0.0);
    let poisoned =
        gf::electron_gf_phase(&dev, &em, &p, &grids, &sigma, &cfg).expect("quarantine absorbs it");

    let bad_idx = bad_k * p.ne + bad_e;
    assert_eq!(poisoned.coverage.total_points, p.nkz * p.ne);
    assert_eq!(poisoned.coverage.quarantined.len(), 1);
    assert_eq!(poisoned.coverage.quarantined[0].grid_index, bad_idx);
    assert!(!poisoned.coverage.is_full());
    assert!(poisoned.coverage.bad_fraction() > 0.0);

    for k in 0..p.nkz {
        for e in 0..p.ne {
            for a in 0..p.na {
                let (got_l, want_l) = (
                    poisoned.g_lesser.inner(&[k, e, a]),
                    clean.g_lesser.inner(&[k, e, a]),
                );
                let (got_g, want_g) = (
                    poisoned.g_greater.inner(&[k, e, a]),
                    clean.g_greater.inner(&[k, e, a]),
                );
                if (k, e) == (bad_k, bad_e) {
                    assert!(
                        got_l
                            .iter()
                            .chain(got_g)
                            .all(|z| z.re == 0.0 && z.im == 0.0),
                        "quarantined point must be zero-filled"
                    );
                } else {
                    assert_eq!(got_l, want_l, "neighbor ({k},{e},{a}) G< corrupted");
                    assert_eq!(got_g, want_g, "neighbor ({k},{e},{a}) G> corrupted");
                }
            }
        }
    }
    // Every kept value is finite.
    assert!(poisoned
        .g_lesser
        .as_slice()
        .iter()
        .all(|z| z.re.is_finite() && z.im.is_finite()));
}

/// With quarantine disabled the same seed fails fast with a typed error
/// instead of silently producing garbage.
#[test]
fn fail_fast_policy_surfaces_the_error() {
    let p = small_params();
    let dev = Device::new(&p);
    let em = ElectronModel::for_params(&p);
    let grids = Grids::new(&p, -1.2, 1.2);
    let cfg = GfConfig {
        health: HealthPolicy {
            quarantine: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut sigma = ElectronSelfEnergy::zeros(&p);
    sigma.lesser.inner_mut(&[0, 0, 0])[0] = qt_linalg::c64(f64::NAN, 0.0);
    let err = gf::electron_gf_phase(&dev, &em, &p, &grids, &sigma, &cfg)
        .expect_err("fail-fast policy must error");
    match err {
        NumericalError::NonFiniteTensor { .. } | NumericalError::SingularBlock { .. } => {}
        other => panic!("unexpected error kind: {other}"),
    }
}

/// A ceiling of zero tolerable bad points turns any quarantine into an
/// error — the coverage floor of the ISSUE.
#[test]
fn bad_fraction_ceiling_is_enforced() {
    let p = small_params();
    let dev = Device::new(&p);
    let em = ElectronModel::for_params(&p);
    let grids = Grids::new(&p, -1.2, 1.2);
    let cfg = GfConfig {
        health: HealthPolicy {
            quarantine: true,
            max_bad_fraction: 0.0,
        },
        ..Default::default()
    };
    let mut sigma = ElectronSelfEnergy::zeros(&p);
    sigma.lesser.inner_mut(&[0, 0, 0])[0] = qt_linalg::c64(f64::NAN, 0.0);
    assert!(gf::electron_gf_phase(&dev, &em, &p, &grids, &sigma, &cfg).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the mixing factor and bias, a short SCF run never records
    /// a non-finite residual, current, or mixing value in its trajectory —
    /// the health guards keep the loop's telemetry clean even when the
    /// fixed-point iteration is stressed.
    #[test]
    fn scf_trajectories_stay_finite(
        mixing in 0.05f64..=1.0,
        bias in 0.0f64..0.4,
    ) {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 6,
            nw: 2,
            na: 6,
            nb: 3,
            norb: 2,
            bnum: 3,
        };
        let sim = qt_core::scf::Simulation::new(p, -1.0, 1.0);
        let mut cfg = qt_core::scf::ScfConfig {
            max_iterations: 4,
            tolerance: 1e-9,
            mixing,
            ..Default::default()
        };
        cfg.gf.contacts.mu_left = bias;
        cfg.gf.contacts.mu_right = -bias;
        let out = qt_core::scf::run_scf(&sim, &cfg).expect("SCF runs");
        prop_assert_eq!(out.trajectory.len(), out.iterations);
        for rec in &out.trajectory {
            if let Some(res) = rec.residual {
                prop_assert!(res.is_finite() && res >= 0.0,
                    "iteration {} residual {res}", rec.iteration);
            }
            prop_assert!(rec.current.is_finite());
            prop_assert!(rec.mixing.is_finite() && rec.mixing > 0.0 && rec.mixing <= mixing);
        }
        for r in &out.residuals {
            prop_assert!(r.is_finite());
        }
    }
}
