//! LU factorization with partial pivoting for complex dense matrices.
//!
//! The RGF recursion inverts one diagonal block per forward step
//! (`gR_n = (A_nn − A_{n,n-1} gR_{n-1} A_{n-1,n})^{-1}`), so a robust dense
//! inverse is the second-most executed kernel after GEMM.

use crate::complex::Complex64;
use crate::dense::Matrix;
use crate::flops;
use std::fmt;

/// Error returned when a pivot is (numerically) zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix;

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrix {}

/// Packed LU factorization `P·A = L·U` of a square matrix.
#[derive(Debug)]
pub struct Lu {
    lu: Matrix,
    piv: Vec<usize>,
}

/// Factor `lu` in place with partial pivoting; `piv` must hold the
/// identity permutation on entry. The shared core of [`Lu::factor`] and
/// the workspace-pooled [`invert_ws`].
fn factor_in_place(lu: &mut Matrix, piv: &mut [usize]) -> Result<(), SingularMatrix> {
    let n = lu.rows();
    // ~8/3 n^3 real flop for complex LU.
    flops::add_flops((8 * n as u64 * n as u64 * n as u64) / 3);
    for col in 0..n {
        // Pivot search.
        let mut p = col;
        let mut best = lu[(col, col)].norm_sqr();
        for r in col + 1..n {
            let v = lu[(r, col)].norm_sqr();
            if v > best {
                best = v;
                p = r;
            }
        }
        if best == 0.0 || !best.is_finite() {
            return Err(SingularMatrix);
        }
        if p != col {
            piv.swap(p, col);
            for j in 0..n {
                let tmp = lu[(col, j)];
                lu[(col, j)] = lu[(p, j)];
                lu[(p, j)] = tmp;
            }
        }
        let pivot_inv = lu[(col, col)].inv();
        for r in col + 1..n {
            let factor = lu[(r, col)] * pivot_inv;
            lu[(r, col)] = factor;
            if factor == Complex64::ZERO {
                continue;
            }
            for j in col + 1..n {
                let u = lu[(col, j)];
                lu[(r, j)] = lu[(r, j)].mul_add(-factor, u);
            }
        }
    }
    Ok(())
}

/// Forward/backward substitution of the packed factors into `x`, which on
/// entry holds the row-permuted right-hand side.
fn substitute_in_place(lu: &Matrix, x: &mut Matrix) {
    let n = lu.rows();
    let nrhs = x.cols();
    // Forward substitution with unit-diagonal L.
    for i in 1..n {
        for k in 0..i {
            let l = lu[(i, k)];
            if l == Complex64::ZERO {
                continue;
            }
            for j in 0..nrhs {
                let v = x[(k, j)];
                x[(i, j)] = x[(i, j)].mul_add(-l, v);
            }
        }
    }
    // Backward substitution with U.
    for i in (0..n).rev() {
        for k in i + 1..n {
            let u = lu[(i, k)];
            if u == Complex64::ZERO {
                continue;
            }
            for j in 0..nrhs {
                let v = x[(k, j)];
                x[(i, j)] = x[(i, j)].mul_add(-u, v);
            }
        }
        let d = lu[(i, i)].inv();
        for j in 0..nrhs {
            x[(i, j)] *= d;
        }
    }
}

impl Lu {
    /// Factor `a` (square) with partial pivoting.
    pub fn factor(a: &Matrix) -> Result<Lu, SingularMatrix> {
        assert!(a.is_square(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        factor_in_place(&mut lu, &mut piv)?;
        Ok(Lu { lu, piv })
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A X = B` for a dense right-hand side; `b` is `n x nrhs`.
    pub fn solve(&self, b: &Matrix) -> Matrix {
        let n = self.order();
        assert_eq!(b.rows(), n, "rhs row count mismatch");
        let nrhs = b.cols();
        flops::add_flops(8 * (n * n * nrhs) as u64);
        // Apply the row permutation.
        let mut x = Matrix::from_fn(n, nrhs, |i, j| b[(self.piv[i], j)]);
        substitute_in_place(&self.lu, &mut x);
        x
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> Complex64 {
        let n = self.order();
        // Sign of the permutation.
        let mut seen = vec![false; n];
        let mut sign = 1.0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut len = 0usize;
            let mut i = start;
            while !seen[i] {
                seen[i] = true;
                i = self.piv[i];
                len += 1;
            }
            if len.is_multiple_of(2) {
                sign = -sign;
            }
        }
        let mut d = Complex64::real(sign);
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Invert a square matrix (`A^{-1}`), the operation the RGF forward pass
/// performs per diagonal block.
pub fn invert(a: &Matrix) -> Result<Matrix, SingularMatrix> {
    let lu = Lu::factor(a)?;
    Ok(lu.solve(&Matrix::identity(a.rows())))
}

/// Solve `A X = B` in one call.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, SingularMatrix> {
    Ok(Lu::factor(a)?.solve(b))
}

/// Invert a square matrix into a [`workspace`](crate::workspace)-pooled
/// result. The LU factors and pivot buffer are themselves checked out of
/// (and returned to) the calling thread's pool, so warm calls perform no
/// heap allocation. The caller owns the returned matrix and should
/// `workspace::give` it back once its contents are consumed. Numerics and
/// flop accounting are identical to [`invert`].
pub fn invert_ws(a: &Matrix) -> Result<Matrix, SingularMatrix> {
    assert!(a.is_square(), "LU requires a square matrix");
    let n = a.rows();
    let mut lu = crate::workspace::take(n, n);
    lu.copy_from(a);
    let mut piv = crate::workspace::take_idx(n);
    for (i, p) in piv.iter_mut().enumerate() {
        *p = i;
    }
    let out = factor_in_place(&mut lu, &mut piv).map(|()| {
        flops::add_flops(8 * (n * n * n) as u64);
        // Row-permuted identity as the right-hand side.
        let mut x = crate::workspace::take(n, n);
        for (i, &p) in piv.iter().enumerate() {
            x[(i, p)] = Complex64::ONE;
        }
        substitute_in_place(&lu, &mut x);
        x
    });
    crate::workspace::give(lu);
    crate::workspace::give_idx(piv);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn inverse_roundtrip() {
        let mut r = rng();
        for n in [1usize, 2, 3, 5, 8, 16, 31] {
            let a = Matrix::random(n, n, &mut r);
            let inv = invert(&a).expect("random matrices are a.s. nonsingular");
            let eye = a.matmul(&inv);
            assert!(eye.max_abs_diff(&Matrix::identity(n)) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn solve_matches_inverse_multiply() {
        let mut r = rng();
        let a = Matrix::random(12, 12, &mut r);
        let b = Matrix::random(12, 4, &mut r);
        let x = solve(&a, &b).unwrap();
        let resid = &a.matmul(&x) - &b;
        assert!(resid.max_abs() < 1e-10);
    }

    #[test]
    fn singular_detected() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = c64(1.0, 0.0);
        a[(1, 1)] = c64(2.0, 0.0);
        // third row/col zero -> singular
        assert_eq!(Lu::factor(&a).unwrap_err(), SingularMatrix);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // [[0, 1], [1, 0]] requires a row swap.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = Complex64::ONE;
        a[(1, 0)] = Complex64::ONE;
        let inv = invert(&a).unwrap();
        assert!(
            inv.max_abs_diff(&a) < 1e-14,
            "permutation is its own inverse"
        );
    }

    #[test]
    fn determinant_of_known_matrix() {
        // det([[1, 2], [3, 4]]) = -2
        let a = Matrix::from_vec(
            2,
            2,
            vec![c64(1.0, 0.0), c64(2.0, 0.0), c64(3.0, 0.0), c64(4.0, 0.0)],
        );
        let d = Lu::factor(&a).unwrap().det();
        assert!((d - c64(-2.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn det_multiplicative() {
        let mut r = rng();
        let a = Matrix::random(5, 5, &mut r);
        let b = Matrix::random(5, 5, &mut r);
        let dab = Lu::factor(&a.matmul(&b)).unwrap().det();
        let da = Lu::factor(&a).unwrap().det();
        let db = Lu::factor(&b).unwrap().det();
        assert!((dab - da * db).abs() / dab.abs().max(1.0) < 1e-9);
    }

    #[test]
    fn identity_inverse_is_identity() {
        let inv = invert(&Matrix::identity(7)).unwrap();
        assert!(inv.max_abs_diff(&Matrix::identity(7)) < 1e-14);
    }

    #[test]
    fn invert_ws_is_bit_identical_to_invert() {
        let mut r = rng();
        for n in [1usize, 3, 8, 17] {
            let a = Matrix::random(n, n, &mut r);
            let heap = invert(&a).unwrap();
            let pooled = invert_ws(&a).unwrap();
            assert_eq!(heap.as_slice(), pooled.as_slice(), "n={n}");
            crate::workspace::give(pooled);
        }
        // Singular input still reports the error (and returns its buffers).
        let z = Matrix::zeros(4, 4);
        assert_eq!(invert_ws(&z).unwrap_err(), SingularMatrix);
    }

    #[test]
    fn invert_ws_counts_the_same_flops_as_invert() {
        let mut r = rng();
        let a = Matrix::random(9, 9, &mut r);
        let (_, heap_flops) = flops::count_flops(|| invert(&a).unwrap());
        let (pooled, ws_flops) = flops::count_flops(|| invert_ws(&a).unwrap());
        assert_eq!(heap_flops, ws_flops);
        crate::workspace::give(pooled);
    }
}
