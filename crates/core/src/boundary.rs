//! Open boundary conditions: contact self-energies.
//!
//! Substitution (DESIGN.md §4): OMEN computes boundary self-energies with a
//! contour-integral method; we use Sancho–Rubio decimation, which produces
//! the same object (the retarded self-energy of a semi-infinite periodic
//! lead) with robust convergence. The lesser/greater components follow from
//! the fluctuation–dissipation theorem at the contact's equilibrium
//! occupation:
//!
//! * electrons: `Σ< = i·f·Γ`, `Σ> = −i·(1−f)·Γ`
//! * phonons:   `Π< = −i·n·Γ`, `Π> = −i·(n+1)·Γ`
//!
//! with `Γ = i(Σᴿ − Σᴿ†)`, which guarantees `Σ> − Σ< = Σᴿ − Σᴬ`.

use qt_linalg::{c64, invert, Complex64, Matrix, SingularMatrix};
use std::sync::{OnceLock, RwLock, RwLockReadGuard};

/// Which contact a self-energy belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

/// Convergence controls for the decimation iteration.
#[derive(Clone, Copy, Debug)]
pub struct BoundaryConfig {
    /// Imaginary broadening added to the energy (eV).
    pub eta: f64,
    /// Maximum decimation iterations.
    pub max_iter: usize,
    /// Convergence threshold on the coupling norm.
    pub tol: f64,
}

impl Default for BoundaryConfig {
    fn default() -> Self {
        BoundaryConfig {
            eta: 1e-4,
            max_iter: 200,
            tol: 1e-12,
        }
    }
}

/// Retarded surface self-energy of a semi-infinite lead.
///
/// The lead repeats the period `(h00, s00)` with inter-period coupling
/// `(h01, s01)` (pointing *away* from the device). `z = E + iη` for
/// electrons or `ω² + iη` for phonons (pass `s00 = I`, `s01 = 0` then).
pub fn surface_self_energy(
    z: Complex64,
    h00: &Matrix,
    h01: &Matrix,
    s00: &Matrix,
    s01: &Matrix,
    side: Side,
    cfg: &BoundaryConfig,
) -> Result<Matrix, SingularMatrix> {
    // Thread-local attribution (called from inside the GF-phase workers);
    // "contour" is the paper's name for the boundary-condition stage.
    let _span = qt_telemetry::Span::enter("contour");
    let zs = |s: &Matrix, h: &Matrix| -> Matrix {
        let mut m = s.scale(z);
        m -= h;
        m
    };
    // Decimation on the A = z·S − H blocks: eliminating every other block
    // renormalizes the surface block as eps_s -= α·g·β (chain extending in
    // the +direction through α) or eps_s -= β·g·α (−direction). The sign
    // pattern follows from Gaussian elimination of A·x = I; the minus signs
    // in the coupling updates cancel pairwise in all accumulated products.
    let alpha0 = zs(s01, h01);
    let beta0 = zs(&s01.dagger(), &h01.dagger());
    let mut alpha = alpha0.clone();
    let mut beta = beta0.clone();
    let mut eps = zs(s00, h00);
    // Surface onsite for the chain extending away from the device.
    let mut eps_s = eps.clone();
    for _ in 0..cfg.max_iter {
        if alpha.norm() < cfg.tol && beta.norm() < cfg.tol {
            break;
        }
        let g = invert(&eps)?;
        let ag = alpha.matmul(&g);
        let bg = beta.matmul(&g);
        let agb = ag.matmul(&beta);
        let bga = bg.matmul(&alpha);
        match side {
            // Left lead extends toward −∞: its exposed (rightmost) block is
            // renormalized through the β-direction.
            Side::Left => eps_s -= &bga,
            // Right lead extends toward +∞ through α.
            Side::Right => eps_s -= &agb,
        }
        eps -= &agb;
        eps -= &bga;
        alpha = ag.matmul(&alpha);
        beta = bg.matmul(&beta);
    }
    let gs = invert(&eps_s)?;
    // Left lead couples into device block 0 via A_{0,−1} = β;
    // right lead via A_{N−1,N} = α.
    Ok(match side {
        Side::Left => beta0.matmul(&gs).matmul(&alpha0),
        Side::Right => alpha0.matmul(&gs).matmul(&beta0),
    })
}

/// FNV-1a accumulator over raw `f64` bit patterns — the identity key used
/// to decide whether a [`BoundaryCache`] binding is still valid. Hashing
/// the boundary Hamiltonian/overlap blocks, the energy grid and the
/// broadening configuration captures everything the retarded contact
/// self-energy depends on; bit-level equality means the memoized Σᴿ is
/// exact, not approximate.
pub struct KeyHasher(u64);

impl KeyHasher {
    pub fn new() -> Self {
        KeyHasher(0xcbf2_9ce4_8422_2325)
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    pub fn matrix(&mut self, m: &Matrix) -> &mut Self {
        self.u64(m.rows() as u64);
        for z in m.as_slice() {
            self.f64(z.re).f64(z.im);
        }
        self
    }

    /// Finished key; never 0, so 0 can mean "unbound".
    pub fn finish(&self) -> u64 {
        self.0.max(1)
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

struct CacheInner {
    electron_key: u64,
    electron: Vec<OnceLock<(Matrix, Matrix)>>,
    phonon_key: u64,
    phonon: Vec<OnceLock<(Matrix, Matrix)>>,
}

/// Memoized retarded contact self-energies `(Σᴿ_left, Σᴿ_right)` per grid
/// point. The Sancho–Rubio decimation (up to `max_iter` invert + 6-GEMM
/// rounds per point and side) depends only on the lead blocks, the grid
/// and the broadening — none of which change across Born iterations — so
/// iteration 1 pays for it once and every later iteration replays the
/// stored Σᴿ. Occupation-dependent lesser/greater parts are formed
/// *outside* the cache from the memoized Σᴿ, so contacts at any bias reuse
/// the same entries.
///
/// The cache is internally synchronized: a phase `bind_*`s its section
/// with the current identity key (write lock, invalidating stale entries),
/// then the per-point rayon workers fill/read slots through a shared
/// [`BoundaryCacheView`] (read lock + per-slot `OnceLock`).
#[derive(Default)]
pub struct BoundaryCache {
    inner: RwLock<CacheInner>,
}

impl Default for CacheInner {
    fn default() -> Self {
        CacheInner {
            electron_key: 0,
            electron: Vec::new(),
            phonon_key: 0,
            phonon: Vec::new(),
        }
    }
}

impl BoundaryCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind the electron section to `key` with `n` grid points. A key or
    /// size mismatch drops every stored electron entry.
    pub fn bind_electron(&self, key: u64, n: usize) {
        let mut inner = self.inner.write().expect("boundary cache poisoned");
        if inner.electron_key != key || inner.electron.len() != n {
            inner.electron_key = key;
            inner.electron = (0..n).map(|_| OnceLock::new()).collect();
        }
    }

    /// Bind the phonon section to `key` with `n` grid points.
    pub fn bind_phonon(&self, key: u64, n: usize) {
        let mut inner = self.inner.write().expect("boundary cache poisoned");
        if inner.phonon_key != key || inner.phonon.len() != n {
            inner.phonon_key = key;
            inner.phonon = (0..n).map(|_| OnceLock::new()).collect();
        }
    }

    /// Drop every stored entry (e.g. after mutating the Hamiltonian in
    /// place). Binding with the correct key makes this automatic; the
    /// explicit hook exists for callers that know they invalidated state.
    pub fn invalidate(&self) {
        let mut inner = self.inner.write().expect("boundary cache poisoned");
        *inner = CacheInner::default();
    }

    /// Shared read view for the duration of a phase's parallel loop.
    pub fn view(&self) -> BoundaryCacheView<'_> {
        BoundaryCacheView(self.inner.read().expect("boundary cache poisoned"))
    }
}

/// Read-locked access to a [`BoundaryCache`]; clonable across rayon
/// workers by taking one view per worker closure invocation.
pub struct BoundaryCacheView<'a>(RwLockReadGuard<'a, CacheInner>);

impl BoundaryCacheView<'_> {
    fn slot<'s>(
        slot: &'s OnceLock<(Matrix, Matrix)>,
        compute: impl FnOnce() -> Result<(Matrix, Matrix), SingularMatrix>,
    ) -> Result<&'s (Matrix, Matrix), SingularMatrix> {
        if let Some(pair) = slot.get() {
            qt_telemetry::counters::add_boundary_hit();
            return Ok(pair);
        }
        let pair = compute()?;
        qt_telemetry::counters::add_boundary_miss();
        Ok(slot.get_or_init(|| pair))
    }

    /// `(Σᴿ_left, Σᴿ_right)` for electron grid point `idx`, computing and
    /// storing it on first access. The section must have been bound via
    /// [`BoundaryCache::bind_electron`] with at least `idx + 1` points.
    pub fn electron(
        &self,
        idx: usize,
        compute: impl FnOnce() -> Result<(Matrix, Matrix), SingularMatrix>,
    ) -> Result<&(Matrix, Matrix), SingularMatrix> {
        Self::slot(&self.0.electron[idx], compute)
    }

    /// `(Πᴿ_left, Πᴿ_right)` for phonon grid point `idx`.
    pub fn phonon(
        &self,
        idx: usize,
        compute: impl FnOnce() -> Result<(Matrix, Matrix), SingularMatrix>,
    ) -> Result<&(Matrix, Matrix), SingularMatrix> {
        Self::slot(&self.0.phonon[idx], compute)
    }
}

/// Broadening matrix `Γ = i(Σᴿ − Σᴿ†)`.
pub fn gamma(sigma_r: &Matrix) -> Matrix {
    let mut d = sigma_r.clone();
    d -= &sigma_r.dagger();
    d.scale(Complex64::I)
}

/// Electron lesser/greater boundary self-energies at occupation `f`.
pub fn electron_lesser_greater(sigma_r: &Matrix, f: f64) -> (Matrix, Matrix) {
    let g = gamma(sigma_r);
    let lesser = g.scale(c64(0.0, f));
    let greater = g.scale(c64(0.0, f - 1.0));
    (lesser, greater)
}

/// Phonon lesser/greater boundary self-energies at Bose occupation `n`.
pub fn phonon_lesser_greater(pi_r: &Matrix, n: f64) -> (Matrix, Matrix) {
    let g = gamma(pi_r);
    let lesser = g.scale(c64(0.0, -n));
    let greater = g.scale(c64(0.0, -(n + 1.0)));
    (lesser, greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::hamiltonian::{ElectronModel, PhononModel};
    use crate::params::SimParams;

    fn electron_setup() -> (Matrix, Matrix, Matrix, Matrix) {
        let p = SimParams::test_small();
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let h = em.hamiltonian(&dev, 0.3);
        let s = em.overlap_matrix(&dev, 0.3);
        (
            h.diag(0).clone(),
            h.upper(0).clone(),
            s.diag(0).clone(),
            s.upper(0).clone(),
        )
    }

    #[test]
    fn surface_sigma_converges_and_dissipates() {
        let (h00, h01, s00, s01) = electron_setup();
        let cfg = BoundaryConfig::default();
        let z = c64(0.1, cfg.eta);
        let sig = surface_self_energy(z, &h00, &h01, &s00, &s01, Side::Left, &cfg).unwrap();
        // A retarded self-energy has a negative anti-Hermitian part:
        // Γ = i(Σ − Σ†) must be positive semidefinite; check via its trace
        // and smallest Rayleigh quotient over basis vectors.
        let g = gamma(&sig);
        let tr = g.trace();
        assert!(tr.re >= -1e-10, "tr Γ = {tr} must be non-negative");
        assert!(tr.im.abs() < 1e-10);
        assert!(g.is_hermitian(1e-10));
    }

    #[test]
    fn decimation_matches_fixed_point() {
        // The surface GF satisfies gs = (z·S00 − H00 − (z·S10−H10) gs (z·S01−H01))^{-1}
        // ... for the left-pointing lead. Verify the fixed-point residual.
        let (h00, h01, s00, s01) = electron_setup();
        let cfg = BoundaryConfig {
            eta: 1e-3,
            ..Default::default()
        };
        let z = c64(0.05, cfg.eta);
        // Sigma_left = beta gs alpha, so gs can be recovered:
        // compute directly with the same recursion internals by solving the
        // fixed point iteratively from scratch here.
        let zs = |s: &Matrix, h: &Matrix| {
            let mut m = s.scale(z);
            m -= h;
            m
        };
        let alpha0 = zs(&s01, &h01);
        let beta0 = zs(&s01.dagger(), &h01.dagger());
        let e0 = zs(&s00, &h00);
        // Brute-force fixed point iteration.
        let mut gs = invert(&e0).unwrap();
        for _ in 0..4000 {
            let mut m = e0.clone();
            let corr = beta0.matmul(&gs).matmul(&alpha0);
            m -= &corr;
            gs = invert(&m).unwrap();
        }
        let sigma_fp = beta0.matmul(&gs).matmul(&alpha0);
        let sigma_sr = surface_self_energy(z, &h00, &h01, &s00, &s01, Side::Left, &cfg).unwrap();
        let rel = sigma_fp.max_abs_diff(&sigma_sr) / sigma_sr.max_abs().max(1e-30);
        assert!(rel < 1e-6, "decimation vs fixed point rel err {rel}");
    }

    #[test]
    fn electron_occupations_bracket() {
        let (h00, h01, s00, s01) = electron_setup();
        let cfg = BoundaryConfig::default();
        let sig = surface_self_energy(c64(0.2, cfg.eta), &h00, &h01, &s00, &s01, Side::Right, &cfg)
            .unwrap();
        let (l_full, g_full) = electron_lesser_greater(&sig, 1.0);
        let (l_empty, g_empty) = electron_lesser_greater(&sig, 0.0);
        // f = 1: Σ> = 0; f = 0: Σ< = 0.
        assert!(g_full.max_abs() < 1e-12);
        assert!(l_empty.max_abs() < 1e-12);
        // Identity Σ> − Σ< = Σᴿ − Σᴬ at any occupation.
        for (l, g) in [(l_full, g_full), (l_empty, g_empty)] {
            let mut lhs = g.clone();
            lhs -= &l;
            let mut rhs = sig.clone();
            rhs -= &sig.dagger();
            assert!(lhs.max_abs_diff(&rhs) < 1e-10);
        }
    }

    #[test]
    fn boundary_cache_memoizes_and_invalidates() {
        let cache = BoundaryCache::new();
        cache.bind_electron(42, 3);
        let mk = || {
            Ok((
                Matrix::identity(2),
                Matrix::identity(2).scale(c64(2.0, 0.0)),
            ))
        };
        {
            let v = cache.view();
            let first = v.electron(1, mk).unwrap();
            assert_eq!(first.1[(0, 0)], c64(2.0, 0.0));
            // Second access must replay the stored pair, not recompute.
            let again = v
                .electron(1, || panic!("cached slot must not recompute"))
                .unwrap();
            assert_eq!(again.0.as_slice(), Matrix::identity(2).as_slice());
        }
        // Re-binding with the same key keeps entries.
        cache.bind_electron(42, 3);
        cache
            .view()
            .electron(1, || panic!("same-key rebind must keep entries"))
            .unwrap();
        // A different key (H/grid changed) drops them.
        cache.bind_electron(43, 3);
        let mut recomputed = false;
        cache
            .view()
            .electron(1, || {
                recomputed = true;
                mk()
            })
            .unwrap();
        assert!(recomputed, "key change must invalidate");
        // Explicit invalidation hook.
        cache.bind_phonon(7, 2);
        cache.view().phonon(0, mk).unwrap();
        cache.invalidate();
        cache.bind_phonon(7, 2);
        let mut recomputed = false;
        cache
            .view()
            .phonon(0, || {
                recomputed = true;
                mk()
            })
            .unwrap();
        assert!(recomputed);
    }

    #[test]
    fn key_hasher_separates_inputs() {
        let (h00, h01, _, _) = electron_setup();
        let mut a = KeyHasher::new();
        a.matrix(&h00).matrix(&h01).f64(1e-3);
        let mut b = KeyHasher::new();
        b.matrix(&h00).matrix(&h01).f64(1e-3);
        assert_eq!(a.finish(), b.finish(), "identical inputs -> identical key");
        let mut c = KeyHasher::new();
        let mut h00b = h00.clone();
        h00b[(0, 0)] += c64(1e-15, 0.0);
        c.matrix(&h00b).matrix(&h01).f64(1e-3);
        assert_ne!(a.finish(), c.finish(), "bit-level change -> new key");
        assert_ne!(a.finish(), 0, "finished keys are never the unbound value");
    }

    #[test]
    fn phonon_boundary_identity() {
        let p = SimParams::test_small();
        let dev = Device::new(&p);
        let pm = PhononModel::default();
        let phi = pm.dynamical(&dev, 0.5);
        let cfg = BoundaryConfig {
            eta: 1e-6,
            ..Default::default()
        };
        let w: f64 = 0.02;
        let z = c64(w * w, cfg.eta);
        let eye = Matrix::identity(phi.block_size());
        let zero = Matrix::zeros(phi.block_size(), phi.block_size());
        let pi = surface_self_energy(z, phi.diag(0), phi.upper(0), &eye, &zero, Side::Left, &cfg)
            .unwrap();
        let n = 0.7;
        let (l, g) = phonon_lesser_greater(&pi, n);
        let mut lhs = g.clone();
        lhs -= &l;
        let mut rhs = pi.clone();
        rhs -= &pi.dagger();
        assert!(lhs.max_abs_diff(&rhs) < 1e-10, "Π> − Π< = Πᴿ − Πᴬ");
    }
}
