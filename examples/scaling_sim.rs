//! Strong/weak scaling study (Fig. 13): model both supercomputers AND run
//! the real distributed SSE schemes on the thread-backed MPI world at
//! reduced scale, comparing measured communication bytes against the
//! closed-form model.
//!
//! ```sh
//! cargo run --release --example scaling_sim
//! ```

use dace_omen::core::device::Device;
use dace_omen::core::gf::{self, GfConfig};
use dace_omen::core::grids::Grids;
use dace_omen::core::hamiltonian::{ElectronModel, PhononModel};
use dace_omen::core::sse;
use dace_omen::model::scaling;
use dace_omen::prelude::*;

fn main() {
    // ---- Part 1: model-scale reproduction of Fig. 13. ----
    let p = SimParams::paper_si_4864(7);
    println!("== Fig. 13 model: strong scaling, NA = 4,864, Nkz = 7 ==");
    for (m, nodes) in [
        (&PIZ_DAINT, vec![112usize, 224, 448, 896, 1792, 2700, 5400]),
        (&SUMMIT, vec![19, 38, 76, 152, 228]),
    ] {
        println!("\n{} ({} GPUs/node):", m.name, m.gpus_per_node);
        println!(
            "  {:>6} {:>7} | {:>9} {:>9} | {:>9} {:>9} | {:>8}",
            "nodes", "GPUs", "OMEN comp", "OMEN comm", "DaCe comp", "DaCe comm", "speedup"
        );
        for &n in &nodes {
            let o = scaling::predict(&p, m, n, Variant::Omen);
            let d = scaling::predict(&p, m, n, Variant::Dace);
            println!(
                "  {:>6} {:>7} | {:>8.1}s {:>8.1}s | {:>8.1}s {:>8.1}s | {:>7.1}x",
                n,
                m.gpus(n),
                o.compute(),
                o.t_comm,
                d.compute(),
                d.t_comm,
                o.total() / d.total()
            );
        }
    }

    println!("\n== Fig. 13 model: weak scaling (nodes grow with Nkz) ==");
    let base = SimParams::paper_si_4864(3);
    for (m, nodes_per_kz) in [(&PIZ_DAINT, 128usize), (&SUMMIT, 22usize)] {
        println!("\n{}:", m.name);
        let omen = scaling::weak_scaling(&base, m, &[3, 5, 7, 9, 11], nodes_per_kz, Variant::Omen);
        let dace = scaling::weak_scaling(&base, m, &[3, 5, 7, 9, 11], nodes_per_kz, Variant::Dace);
        println!(
            "  {:>4} {:>6} | {:>10} | {:>10} | {:>8}",
            "Nkz", "nodes", "OMEN total", "DaCe total", "speedup"
        );
        for (o, d) in omen.iter().zip(&dace) {
            println!(
                "  {:>4} {:>6} | {:>9.1}s | {:>9.1}s | {:>7.1}x",
                o.0,
                o.1.nodes,
                o.1.times.total(),
                d.1.times.total(),
                o.1.times.total() / d.1.times.total()
            );
        }
    }

    // ---- Part 2: run both schemes for real on the thread world. ----
    println!("\n== measured bytes: thread-MPI runs at reduced scale ==");
    let p = SimParams {
        nkz: 3,
        nqz: 3,
        ne: 24,
        nw: 3,
        na: 24,
        nb: 4,
        norb: 2,
        bnum: 6,
    };
    let dev = Device::new(&p);
    let em = ElectronModel::for_params(&p);
    let pm = PhononModel::default();
    let grids = Grids::new(&p, -1.2, 1.2);
    let cfg = GfConfig::default();
    let egf = gf::electron_gf_phase(
        &dev,
        &em,
        &p,
        &grids,
        &gf::ElectronSelfEnergy::zeros(&p),
        &cfg,
    )
    .expect("electron GF");
    let pgf = gf::phonon_gf_phase(
        &dev,
        &pm,
        &p,
        &grids,
        &gf::PhononSelfEnergy::zeros(&p),
        &cfg,
    )
    .expect("phonon GF");
    let (dl, dg) = sse::preprocess_d(&dev, &p, &pgf);
    let dh = em.dh_tensor(&dev);
    let ctx = SseDistContext {
        p: &p,
        dev: &dev,
        grids: &grids,
        dh: &dh,
        g_lesser: &egf.g_lesser,
        g_greater: &egf.g_greater,
        d_lesser_pre: &dl,
        d_greater_pre: &dg,
    };
    println!(
        "  {:>6} | {:>12} | {:>12} | {:>8}",
        "ranks", "OMEN bytes", "DaCe bytes", "ratio"
    );
    for procs in [2usize, 4, 6] {
        let (sig_o, _, so) = omen_scheme(&ctx, procs);
        let (te, ta) = match procs {
            2 => (2, 1),
            4 => (2, 2),
            _ => (3, 2),
        };
        let (sig_d, _, sd) = dace_scheme(&ctx, te, ta);
        let agree = sig_o.lesser.max_abs_diff(&sig_d.lesser) / sig_o.lesser.norm().max(1e-30);
        println!(
            "  {:>6} | {:>12} | {:>12} | {:>7.1}x   (results agree to {agree:.1e})",
            procs,
            so.world_bytes,
            sd.world_bytes,
            so.world_bytes as f64 / sd.world_bytes.max(1) as f64
        );
    }
}
