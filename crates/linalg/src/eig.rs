//! Hermitian eigendecomposition (cyclic Jacobi with complex rotations).
//!
//! Needed to enforce the positivity structure of the scattering
//! self-energies (`−iΣ< ⪰ 0`, `iΣ> ⪰ 0`) that keeps the self-consistent
//! Born iteration dissipative, and generally useful for spectra of small
//! blocks (`Norb ≤ 30`, Table 1).

use crate::complex::{c64, Complex64};
use crate::dense::Matrix;
use crate::workspace;

/// Eigendecomposition `A = V · diag(λ) · V†` of a Hermitian matrix.
#[derive(Clone, Debug)]
pub struct Eigh {
    /// Eigenvalues in ascending order (real for Hermitian input).
    pub values: Vec<f64>,
    /// Unitary matrix of eigenvectors (columns).
    pub vectors: Matrix,
}

/// Compute the eigendecomposition of a Hermitian matrix by cyclic Jacobi.
/// The strict upper triangle drives the rotations; the input is implicitly
/// hermitized (`(A + A†)/2`).
pub fn eigh(a: &Matrix) -> Eigh {
    assert!(a.is_square(), "eigh requires a square matrix");
    let n = a.rows();
    // Hermitize.
    let mut m = Matrix::from_fn(n, n, |i, j| (a[(i, j)] + a[(j, i)].conj()).scale(0.5));
    let mut v = Matrix::identity(n);
    jacobi_diagonalize(&mut m, &mut v);
    // Extract eigenvalues and sort ascending, permuting the vectors.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)].re, i)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let values: Vec<f64> = pairs.iter().map(|&(l, _)| l).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, pairs[j].1)]);
    Eigh { values, vectors }
}

/// Cyclic Jacobi sweeps: diagonalize Hermitian `m` in place, accumulating
/// the rotations into `v` (which must start as the identity).
fn jacobi_diagonalize(m: &mut Matrix, v: &mut Matrix) {
    let n = m.rows();
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m[(i, j)].norm_sqr();
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + m.norm()) {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                // Complex Jacobi rotation zeroing m[p][q]:
                // phase factor removes the complex part, then a real
                // rotation zeroes the symmetric problem.
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                let abs_apq = apq.abs();
                let phase = apq.scale(1.0 / abs_apq); // e^{iφ}
                let tau = (aqq - app) / (2.0 * abs_apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Rotation: [c, s·e^{iφ}; −s·e^{−iφ}, c] applied on (p, q).
                let spq = phase.scale(s);
                // Update rows/columns of m: m ← R† m R.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = mkp * c64(c, 0.0) - mkq * spq.conj();
                    m[(k, q)] = mkq * c64(c, 0.0) + mkp * spq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = mpk * c64(c, 0.0) - mqk * spq;
                    m[(q, k)] = mqk * c64(c, 0.0) + mpk * spq.conj();
                }
                // Accumulate eigenvectors: V ← V R.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * c64(c, 0.0) - vkq * spq.conj();
                    v[(k, q)] = vkq * c64(c, 0.0) + vkp * spq;
                }
            }
        }
    }
}

/// Project a (nearly) Hermitian matrix onto the cone of positive
/// semidefinite matrices: hermitize, eigendecompose, clip negative
/// eigenvalues to zero, and reassemble.
pub fn psd_projection(a: &Matrix) -> Matrix {
    let n = a.rows();
    let e = eigh(a);
    let mut out = Matrix::zeros(n, n);
    for (idx, &lambda) in e.values.iter().enumerate() {
        if lambda <= 0.0 {
            continue;
        }
        // out += λ · v v†
        for i in 0..n {
            for j in 0..n {
                let vi = e.vectors[(i, idx)];
                let vj = e.vectors[(j, idx)];
                out[(i, j)] += (vi * vj.conj()).scale(lambda);
            }
        }
    }
    out
}

/// Positivity enforcement on a row-major `n × n` block, in place:
/// overwrites `blk` with `ζ · PSD(ζ̄ · blk)` (hermitization of `ζ̄ · blk`
/// is implicit, as in [`eigh`]). Arithmetically identical to composing
/// `scale(ζ̄)` → [`psd_projection`] → `scale(ζ)`, but every temporary is
/// checked out of the per-thread [`workspace`] pool so steady-state calls
/// never touch the allocator.
pub fn psd_project_scaled_in_place(n: usize, zeta: Complex64, blk: &mut [Complex64]) {
    assert_eq!(blk.len(), n * n, "block length must be n^2");
    let zc = zeta.conj();
    let mut m = workspace::take(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = (blk[i * n + j] * zc + (blk[j * n + i] * zc).conj()).scale(0.5);
        }
    }
    let mut v = workspace::take(n, n);
    for i in 0..n {
        v[(i, i)] = c64(1.0, 0.0);
    }
    jacobi_diagonalize(&mut m, &mut v);
    // Stable ascending order of the diagonal eigenvalues — the same
    // permutation `eigh`'s sort produces — via a pooled index buffer.
    let mut perm = workspace::take_idx(n);
    for (i, slot) in perm.iter_mut().enumerate() {
        *slot = i;
    }
    for i in 1..n {
        let mut j = i;
        while j > 0 && m[(perm[j - 1], perm[j - 1])].re > m[(perm[j], perm[j])].re {
            perm.swap(j - 1, j);
            j -= 1;
        }
    }
    let mut out = workspace::take(n, n);
    for &col in perm.iter() {
        let lambda = m[(col, col)].re;
        if lambda <= 0.0 {
            continue;
        }
        // out += λ · v v†
        for i in 0..n {
            for j in 0..n {
                let vi = v[(i, col)];
                let vj = v[(j, col)];
                out[(i, j)] += (vi * vj.conj()).scale(lambda);
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            blk[i * n + j] = out[(i, j)] * zeta;
        }
    }
    workspace::give(m);
    workspace::give(v);
    workspace::give(out);
    workspace::give_idx(perm);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    #[test]
    fn reconstruction() {
        let mut r = rng();
        for n in [1usize, 2, 3, 5, 8] {
            let h = Matrix::random_hermitian(n, &mut r);
            let e = eigh(&h);
            // A·V = V·diag(λ)
            let av = h.matmul(&e.vectors);
            let vl = Matrix::from_fn(n, n, |i, j| e.vectors[(i, j)].scale(e.values[j]));
            assert!(av.max_abs_diff(&vl) < 1e-10, "n={n}");
            // V unitary.
            let vtv = e.vectors.dagger().matmul(&e.vectors);
            assert!(vtv.max_abs_diff(&Matrix::identity(n)) < 1e-10);
        }
    }

    #[test]
    fn eigenvalues_sorted_and_real_trace_preserved() {
        let mut r = rng();
        let h = Matrix::random_hermitian(6, &mut r);
        let e = eigh(&h);
        assert!(e.values.windows(2).all(|w| w[0] <= w[1]));
        let sum: f64 = e.values.iter().sum();
        assert!((sum - h.trace().re).abs() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let d = Matrix::from_diag(&[c64(3.0, 0.0), c64(-1.0, 0.0), c64(2.0, 0.0)]);
        let e = eigh(&d);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn psd_projection_properties() {
        let mut r = rng();
        let h = Matrix::random_hermitian(5, &mut r);
        let p = psd_projection(&h);
        // PSD: all eigenvalues non-negative.
        let e = eigh(&p);
        assert!(e.values.iter().all(|&l| l >= -1e-12));
        // Idempotent on already-PSD matrices.
        let p2 = psd_projection(&p);
        assert!(p.max_abs_diff(&p2) < 1e-9);
        // Projection of a PSD matrix is itself.
        let a = Matrix::random(4, 5, &mut r);
        let psd = a.matmul(&a.dagger());
        let proj = psd_projection(&psd);
        assert!(proj.max_abs_diff(&psd) < 1e-9);
    }

    #[test]
    fn in_place_projection_matches_out_of_place_bitwise() {
        let mut r = rng();
        for n in [1usize, 2, 3, 5] {
            for zeta in [c64(1.0, 0.0), Complex64::I, -Complex64::I] {
                let a = Matrix::random(n, n, &mut r);
                let reference = psd_projection(&a.scale(zeta.conj())).scale(zeta);
                let mut blk = a.as_slice().to_vec();
                psd_project_scaled_in_place(n, zeta, &mut blk);
                // Identical operation sequence ⇒ exact equality, not just
                // tolerance-level agreement.
                for (got, want) in blk.iter().zip(reference.as_slice()) {
                    assert_eq!(got, want, "n={n} zeta={zeta:?}");
                }
            }
        }
    }

    #[test]
    fn psd_projection_distance_optimality_on_diagonal() {
        // For a diagonal matrix the projection just clips negatives.
        let d = Matrix::from_diag(&[c64(-2.0, 0.0), c64(0.5, 0.0)]);
        let p = psd_projection(&d);
        assert!((p[(0, 0)]).abs() < 1e-12);
        assert!((p[(1, 1)] - c64(0.5, 0.0)).abs() < 1e-12);
    }
}
