//! Distributed GF+SSE iteration driver.
//!
//! One full iteration of the Fig. 2 loop executed on the thread world:
//! every rank *computes* the Green's functions for its own energy chunk
//! (momentum×energy parallelism of the GF phase), the DaCe all-to-all
//! redistributes them into the energy×atom tiling, each rank runs its local
//! SSE, and the results gather on root. Unlike [`crate::schemes`] (which
//! reads pre-computed tensors to isolate the communication pattern), this
//! driver owns the whole pipeline — the distributed analogue of
//! `qt_core::scf`'s single iteration.

use crate::comm::run_world;
use crate::decomp::OmenDecomp;
use crate::schemes::{dace_scheme, CommStats, SseDistContext};
use qt_core::device::Device;
use qt_core::gf::{self, ElectronSelfEnergy, GfConfig, PhononSelfEnergy};
use qt_core::grids::Grids;
use qt_core::hamiltonian::{ElectronModel, PhononModel};
use qt_core::health::NumericalError;
use qt_core::params::SimParams;
use qt_core::sse;
use qt_linalg::Tensor;

/// Result of one distributed iteration.
pub struct DistIterationResult {
    pub sigma: ElectronSelfEnergy,
    pub pi: PhononSelfEnergy,
    /// Electrical current accumulated across ranks.
    pub current: f64,
    /// Total bytes moved in the SSE exchange.
    pub sse_bytes: u64,
    /// Full per-rank communication statistics of the SSE exchange.
    pub comm: CommStats,
}

/// Run one GF+SSE iteration distributed over `te × ta` ranks.
///
/// The GF phase is computed rank-locally: rank `r` solves RGF for its
/// energy chunk (all kz), exactly the paper's momentum+energy
/// decomposition. The SSE phase uses the communication-avoiding scheme.
#[allow(clippy::too_many_arguments)]
pub fn distributed_iteration(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    te: usize,
    ta: usize,
) -> Result<DistIterationResult, NumericalError> {
    distributed_iteration_impl(p, dev, em, pm, grids, cfg, te, ta, |ctx| {
        dace_scheme(ctx, te, ta)
    })
}

/// [`distributed_iteration`] with the SSE exchange running under a
/// deterministic fault plan (the GF phase communicates nothing, so it is
/// unaffected). With `guarantee_delivery` the result matches the
/// fault-free run bitwise; only traffic and timing differ.
#[cfg(feature = "fault-inject")]
#[allow(clippy::too_many_arguments)]
pub fn distributed_iteration_with_faults(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    te: usize,
    ta: usize,
    plan: crate::fault::FaultPlan,
) -> Result<DistIterationResult, NumericalError> {
    distributed_iteration_impl(p, dev, em, pm, grids, cfg, te, ta, move |ctx| {
        crate::schemes::dace_scheme_with_faults(ctx, te, ta, plan)
    })
}

#[allow(clippy::too_many_arguments)]
fn distributed_iteration_impl(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    te: usize,
    ta: usize,
    sse_exchange: impl FnOnce(&SseDistContext<'_>) -> (ElectronSelfEnergy, PhononSelfEnergy, CommStats),
) -> Result<DistIterationResult, NumericalError> {
    let _span = qt_telemetry::Span::enter_global("dist/iteration");
    let procs = te * ta;
    let dh = em.dh_tensor(dev);
    // ---- GF phase: each rank computes its energy chunk. ----
    // (Thread-world ranks write disjoint slices; results are assembled
    // into the global tensors that seed the SSE exchange, mirroring how
    // each MPI rank would hold its slice in place.)
    let dec = OmenDecomp::new(p, procs);
    let chunks: Vec<Result<(usize, gf::ElectronGf), NumericalError>> = run_world(procs, |comm| {
        let rank = comm.rank();
        let my_e = dec.energy.range(rank);
        // Solve only this rank's energies: narrow the grid.
        let mut local = *p;
        local.ne = my_e.len();
        let local_grids = Grids {
            energies: grids.energies[my_e.clone()].to_vec(),
            omegas: grids.omegas.clone(),
            kz: grids.kz.clone(),
            qz: grids.qz.clone(),
            de: grids.de,
        };
        let zeros = ElectronSelfEnergy::zeros(&local);
        gf::electron_gf_phase(dev, em, &local, &local_grids, &zeros, cfg).map(|g| (rank, g))
    });
    let mut g_lesser = Tensor::zeros(&[p.nkz, p.ne, p.na, p.norb, p.norb]);
    let mut g_greater = Tensor::zeros(&[p.nkz, p.ne, p.na, p.norb, p.norb]);
    let mut current = 0.0;
    for c in chunks {
        let (rank, egf) = c?;
        let my_e = dec.energy.range(rank);
        for k in 0..p.nkz {
            for (el, e) in my_e.clone().enumerate() {
                for a in 0..p.na {
                    g_lesser
                        .inner_mut(&[k, e, a])
                        .copy_from_slice(egf.g_lesser.inner(&[k, el, a]));
                    g_greater
                        .inner_mut(&[k, e, a])
                        .copy_from_slice(egf.g_greater.inner(&[k, el, a]));
                }
            }
        }
        current += egf.current;
    }
    // Phonon GF phase (serial here; its grid is small and its
    // parallelization is identical in kind).
    let pgf = gf::phonon_gf_phase(dev, pm, p, grids, &PhononSelfEnergy::zeros(p), cfg)?;
    let (dl, dg) = sse::preprocess_d(dev, p, &pgf);
    // ---- SSE phase: communication-avoiding exchange + local compute. ----
    let ctx = SseDistContext {
        p,
        dev,
        grids,
        dh: &dh,
        g_lesser: &g_lesser,
        g_greater: &g_greater,
        d_lesser_pre: &dl,
        d_greater_pre: &dg,
    };
    let (sigma, pi, stats) = sse_exchange(&ctx);
    Ok(DistIterationResult {
        sigma,
        pi,
        current,
        sse_bytes: stats.world_bytes,
        comm: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_iteration_matches_serial() {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 12,
            nw: 2,
            na: 12,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        let cfg = GfConfig::default();
        // Serial reference: one GF phase + serial SSE.
        let egf =
            gf::electron_gf_phase(&dev, &em, &p, &grids, &ElectronSelfEnergy::zeros(&p), &cfg)
                .unwrap();
        let pgf =
            gf::phonon_gf_phase(&dev, &pm, &p, &grids, &PhononSelfEnergy::zeros(&p), &cfg).unwrap();
        let (dl, dg) = sse::preprocess_d(&dev, &p, &pgf);
        let dh = em.dh_tensor(&dev);
        let inputs = sse::SseInputs {
            dev: &dev,
            p: &p,
            grids: &grids,
            dh: &dh,
            g_lesser: &egf.g_lesser,
            g_greater: &egf.g_greater,
            d_lesser_pre: &dl,
            d_greater_pre: &dg,
        };
        let serial_sigma = sse::sigma(&inputs, sse::SseVariant::Dace);
        // Distributed on a 2×2 grid.
        let dist = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, 2, 2).unwrap();
        let rel = serial_sigma.lesser.max_abs_diff(&dist.sigma.lesser)
            / serial_sigma.lesser.norm().max(1e-30);
        assert!(rel < 1e-10, "distributed iteration Σ< rel {rel}");
        // Currents: distributed GF accumulates the same Meir–Wingreen sum.
        assert!(
            (dist.current - egf.current).abs() / egf.current.abs().max(1e-30) < 1e-10,
            "current {} vs serial {}",
            dist.current,
            egf.current
        );
        assert!(dist.sse_bytes > 0);
    }

    #[test]
    fn runner_reports_per_rank_volumes_matching_model() {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 12,
            nw: 2,
            na: 12,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        let cfg = GfConfig::default();
        let (te, ta) = (2, 2);
        let dist = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, te, ta).unwrap();
        assert_eq!(dist.comm.rank_sent.len(), te * ta);
        assert_eq!(dist.comm.rank_sent.iter().sum::<u64>(), dist.sse_bytes);
        assert_eq!(dist.comm.world_bytes, dist.sse_bytes);
        // The per-rank sends match the exact closed form of the scheme.
        let halo = dev.max_neighbor_index_distance();
        let model = crate::volume::dace_rank_sent_bytes(&p, te, ta, halo);
        assert_eq!(dist.comm.rank_sent, model);
    }

    #[test]
    fn energy_chunking_is_exact() {
        // The GF phase must be bitwise-independent of how energies are
        // chunked: each (kz, E) point is solved in isolation.
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 10,
            nw: 2,
            na: 8,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        let cfg = GfConfig::default();
        let a = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, 1, 2).unwrap();
        let b = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, 5, 2).unwrap();
        let rel = a.sigma.lesser.max_abs_diff(&b.sigma.lesser) / a.sigma.lesser.norm().max(1e-30);
        assert!(rel < 1e-10, "chunking must not change results: {rel}");
    }
}
