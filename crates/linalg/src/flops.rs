//! Global floating-point-operation accounting.
//!
//! The paper counts flop with `nvprof` on the GPU (§4.3); our substitute
//! is a process-wide counter that every kernel in this crate feeds. Since
//! the telemetry PR the backing store is `qt_telemetry::counters` — the
//! same per-thread shards the phase spans read — so kernel accounting,
//! phase attribution and the Table 3 model-vs-measured comparison all see
//! one number. This module keeps the historical `qt_linalg::flops` API as
//! a thin façade over that registry.
//!
//! Convention: one complex multiply = 6 real flop, one complex add = 2 real
//! flop, so a complex fused multiply-accumulate costs 8 — the same convention
//! the paper's `64·N·...·Norb^3` byte/flop formulas use (8 flop × 8 bytes).

/// Add `n` real floating point operations to the global counter.
#[inline]
pub fn add_flops(n: u64) {
    qt_telemetry::counters::add_flops(n);
}

/// Record the cost of a complex GEMM of shape `m x k x n`
/// (8 real flop per complex multiply-accumulate).
#[inline]
pub fn add_gemm_flops(m: usize, k: usize, n: usize) {
    qt_telemetry::counters::add_gemm_flops(m, k, n);
}

/// Record the cost of `batch` complex GEMMs of shape `m x k x n` — the one
/// accounting helper every GEMM variant routes through, so the Table 3
/// model-vs-measured comparison can't drift between kernels.
#[inline]
pub fn add_gemm_flops_batched(m: usize, k: usize, n: usize, batch: usize) {
    qt_telemetry::counters::add_gemm_flops_batched(m, k, n, batch);
}

/// Current global flop count (summed across all threads).
pub fn flop_count() -> u64 {
    qt_telemetry::counters::total_flops()
}

/// Reset the global counter to zero (tests / per-phase measurement).
pub fn reset_flops() {
    qt_telemetry::counters::reset_flops();
}

/// Measure the flop executed by `f`, without disturbing the global counter
/// semantics for concurrent readers (the counter keeps increasing; we report
/// the delta).
pub fn count_flops<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = flop_count();
    let out = f();
    (out, flop_count() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_formula() {
        let (_, d) = count_flops(|| add_gemm_flops(2, 3, 4));
        assert_eq!(d, 8 * 2 * 3 * 4);
    }

    #[test]
    fn batched_gemm_flops_formula() {
        let (_, d) = count_flops(|| add_gemm_flops_batched(2, 3, 4, 7));
        assert_eq!(d, 8 * 2 * 3 * 4 * 7);
    }

    #[test]
    fn count_is_monotone_delta() {
        add_flops(10);
        let (_, d) = count_flops(|| add_flops(32));
        assert_eq!(d, 32);
    }

    #[test]
    fn facade_and_telemetry_agree() {
        let (_, d) = count_flops(|| add_gemm_flops_batched(3, 4, 5, 2));
        assert_eq!(d, 8 * 3 * 4 * 5 * 2);
        // The façade and the telemetry registry read the same counter.
        assert_eq!(flop_count(), qt_telemetry::counters::total_flops());
    }
}
