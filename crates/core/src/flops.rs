//! Analytic flop models (§4.3, Table 3).
//!
//! The SSE formulas are the paper's own, exact:
//!
//! * OMEN:  `64·NA·NB·N3D·Nkz·Nqz·NE·Nω·Norb³`
//! * DaCe:  `32·NA·NB·N3D·Nkz·Nqz·NE·Nω·Norb³ + 32·NA·NB·N3D·Nkz·NE·Norb³`
//!
//! The GF-phase kernels (contour integral, RGF) mix dense and sparse work;
//! the paper measures them with `nvprof`. Our substitute: a block-cubed
//! model `8·Nkz·NE·bnum·κ·(NA/bnum·Norb)³` with κ calibrated once against
//! Table 3 (documented empirical constants, like the paper's measured
//! values).

use crate::device::Device;
use crate::params::{SimParams, N3D};
use std::ops::Range;

/// Calibrated RGF constant in `RGF_KAPPA·Nkz·NE·bnum·bs³` (fit to Table 3's
/// 52.95 Pflop at `Nkz = 3` for the 4,864-atom structure with `bnum = 152`).
pub const RGF_KAPPA: f64 = 2904.9;

/// Calibrated contour-integral constant in `CONTOUR_KAPPA·Nkz·NE·bs³`
/// (8.45 Pflop at the same calibration point).
pub const CONTOUR_KAPPA: f64 = 70459.0;

/// Table 3, "SSE (OMEN)": both small matrix products performed for every
/// point of the full 8-D iteration space.
pub fn sse_omen_flops(p: &SimParams) -> f64 {
    64.0 * (p.na * p.nb * N3D) as f64
        * (p.nkz * p.nqz) as f64
        * (p.ne * p.nw) as f64
        * (p.norb * p.norb * p.norb) as f64
}

/// Table 3, "SSE (DaCe)": redundancy removal makes the `∇H·G` stage
/// independent of `(Nqz, Nω)`.
pub fn sse_dace_flops(p: &SimParams) -> f64 {
    let norb3 = (p.norb * p.norb * p.norb) as f64;
    32.0 * (p.na * p.nb * N3D) as f64 * (p.nkz * p.nqz) as f64 * (p.ne * p.nw) as f64 * norb3
        + 32.0 * (p.na * p.nb * N3D) as f64 * p.nkz as f64 * p.ne as f64 * norb3
}

/// Number of `(a, slot)` neighbor pairs actually present in the device —
/// the exact count the SSE kernels iterate over. The Table 3 formulas use
/// the dense bound `NA·NB`; edge atoms are missing neighbors, so
/// `pair_count ≤ NA·NB` with equality only on a periodic device.
pub fn pair_count(dev: &Device, p: &SimParams) -> u64 {
    let mut n = 0u64;
    for a in 0..p.na {
        for slot in 0..p.nb {
            if dev.neighbor(a, slot).is_some() {
                n += 1;
            }
        }
    }
    n
}

/// Number of valid `(E, ±ω)` sideband pairs on the finite energy grid:
/// `Σ_{w=1..Nω} (NE−w)` for each direction, i.e. `Nω·(2NE − Nω − 1)`.
/// The Table 3 formulas use the unclamped bound `2·NE·Nω`.
pub fn sideband_count(p: &SimParams) -> u64 {
    (p.nw * (2 * p.ne - p.nw - 1)) as u64
}

/// *Exact* flop count of [`crate::sse::omen::sigma`] on a concrete device:
/// per lesser/greater (2), per `(qz, kz)` point, per present neighbor
/// pair, per valid sideband, per direction (3): two `Norb³` GEMMs at
/// 8 flop per complex FMA — `96·Nkz·Nqz·P_ab·S·Norb³`. Reduces to the
/// Table 3 form `64·NA·NB·N3D·Nkz·Nqz·NE·Nω·Norb³` when `P_ab = NA·NB`
/// and `S = 2·NE·Nω` (no grid clamping).
pub fn sse_omen_flops_exact(p: &SimParams, dev: &Device) -> u64 {
    let no3 = (p.norb * p.norb * p.norb) as u64;
    96 * (p.nkz * p.nqz) as u64 * pair_count(dev, p) * sideband_count(p) * no3
}

/// *Exact* flop count of [`crate::sse::dace::sigma`] on a concrete device:
/// the redundancy-removed `∇H·G` stage performs one wide
/// `(Nkz·NE·Norb) × Norb × Norb` GEMM per pair, direction and
/// lesser/greater (`48·P_ab·Nkz·NE·Norb³` — *half* the paper's second
/// term, because the shared `∇H·G` batch serves both sidebands), plus the
/// windowed stage (`48·P_ab·Nkz·Nqz·S·Norb³`).
pub fn sse_dace_flops_exact(p: &SimParams, dev: &Device) -> u64 {
    let no3 = (p.norb * p.norb * p.norb) as u64;
    let pab = pair_count(dev, p);
    48 * pab * p.nkz as u64 * no3 * (p.ne as u64 + p.nqz as u64 * sideband_count(p))
}

/// Neighbor pairs whose source atom lies in `a_range` — the restriction
/// of [`pair_count`] to one atom tile. Tile counts sum exactly to the
/// global count over any partition of the atom axis.
pub fn pair_count_tile(dev: &Device, p: &SimParams, a_range: &Range<usize>) -> u64 {
    let mut n = 0u64;
    for a in a_range.clone() {
        for slot in 0..p.nb {
            if dev.neighbor(a, slot).is_some() {
                n += 1;
            }
        }
    }
    n
}

/// Valid `(E, ±ω)` sideband pairs whose energy lies in `e_range`: for each
/// `E` the down-sidebands `min(E, Nω)` and up-sidebands `min(NE−1−E, Nω)`
/// exist on the grid. Sums to [`sideband_count`] over the full axis.
pub fn sideband_count_tile(p: &SimParams, e_range: &Range<usize>) -> u64 {
    e_range
        .clone()
        .map(|e| (e.min(p.nw) + (p.ne - 1 - e).min(p.nw)) as u64)
        .sum()
}

/// *Exact* flop count of the DaCe SSE work restricted to one
/// `(energy, atom)` tile — the per-unit predicted cost the adaptive
/// partitioner feeds on. Same structure as [`sse_dace_flops_exact`] with
/// both axes tile-restricted; summing over a full tile grid reproduces
/// the global count exactly, so predicted per-rank shares partition the
/// true total.
pub fn sse_dace_flops_tile(
    p: &SimParams,
    dev: &Device,
    e_range: &Range<usize>,
    a_range: &Range<usize>,
) -> u64 {
    let no3 = (p.norb * p.norb * p.norb) as u64;
    let pab = pair_count_tile(dev, p, a_range);
    48 * pab
        * p.nkz as u64
        * no3
        * (e_range.len() as u64 + p.nqz as u64 * sideband_count_tile(p, e_range))
}

/// RGF flop model for one chunk of `n_e` energies (the GF-phase share of
/// a work unit): `κ·Nkz·n_e·bnum·bs³`.
pub fn rgf_flops_chunk(p: &SimParams, n_e: usize) -> f64 {
    let bs = p.e_block_size() as f64;
    RGF_KAPPA * (p.nkz * n_e * p.bnum) as f64 * bs * bs * bs
}

/// RGF flop model: `κ·Nkz·NE·bnum·bs³` with `bs = NA/bnum·Norb`.
pub fn rgf_flops(p: &SimParams) -> f64 {
    let bs = p.e_block_size() as f64;
    RGF_KAPPA * (p.nkz * p.ne * p.bnum) as f64 * bs * bs * bs
}

/// Contour-integral (boundary conditions) flop model.
pub fn contour_flops(p: &SimParams) -> f64 {
    let bs = p.e_block_size() as f64;
    CONTOUR_KAPPA * (p.nkz * p.ne) as f64 * bs * bs * bs
}

/// One full GF+SSE iteration under the DaCe variant.
pub fn iteration_flops_dace(p: &SimParams) -> f64 {
    contour_flops(p) + rgf_flops(p) + sse_dace_flops(p)
}

/// One full iteration under the original OMEN algorithm.
pub fn iteration_flops_omen(p: &SimParams) -> f64 {
    contour_flops(p) + rgf_flops(p) + sse_omen_flops(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PFLOP: f64 = 1e15;

    /// Table 3 row-by-row: SSE numbers are exact, GF-phase numbers are the
    /// calibrated fits.
    #[test]
    fn table3_sse_omen_exact() {
        // Paper: NA=4,864, NB=34, NE=706, Nω=70, Norb=12.
        for (nkz, expect) in [
            (3, 24.41),
            (5, 67.80),
            (7, 132.89),
            (9, 219.67),
            (11, 328.15),
        ] {
            let p = SimParams::paper_si_4864(nkz);
            let got = sse_omen_flops(&p) / PFLOP;
            assert!(
                (got - expect).abs() / expect < 0.005,
                "Nkz={nkz}: got {got:.2} Pflop, paper {expect}"
            );
        }
    }

    #[test]
    fn table3_sse_dace_matches_within_formula_tolerance() {
        // The paper's printed values deviate <2% from its own closed form
        // (extra bookkeeping in the measured kernel); we reproduce the
        // closed form.
        for (nkz, expect) in [
            (3, 12.38),
            (5, 34.19),
            (7, 66.85),
            (9, 110.36),
            (11, 164.71),
        ] {
            let p = SimParams::paper_si_4864(nkz);
            let got = sse_dace_flops(&p) / PFLOP;
            assert!(
                (got - expect).abs() / expect < 0.02,
                "Nkz={nkz}: got {got:.2} Pflop, paper {expect}"
            );
        }
    }

    #[test]
    fn sse_reduction_approaches_two() {
        let p = SimParams::paper_si_4864(11);
        let ratio = sse_omen_flops(&p) / sse_dace_flops(&p);
        assert!(ratio > 1.9 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn rgf_scales_linearly_in_nkz() {
        let f3 = rgf_flops(&SimParams::paper_si_4864(3));
        let f9 = rgf_flops(&SimParams::paper_si_4864(9));
        assert!((f9 / f3 - 3.0).abs() < 1e-12);
        // Calibration point: 52.95 Pflop at Nkz=3.
        assert!((f3 / PFLOP - 52.95).abs() / 52.95 < 0.02, "{}", f3 / PFLOP);
    }

    #[test]
    fn contour_calibration_point() {
        let f3 = contour_flops(&SimParams::paper_si_4864(3));
        assert!((f3 / PFLOP - 8.45).abs() / 8.45 < 0.02, "{}", f3 / PFLOP);
    }

    #[test]
    fn tile_flops_partition_the_exact_total() {
        // Any tiling of the (E, A) plane must sum to the global exact
        // count — the invariant that makes predicted per-rank shares
        // meaningful.
        let p = SimParams::test_small();
        for dev in [Device::new(&p), Device::skewed(&p, 1, 1)] {
            let total = sse_dace_flops_exact(&p, &dev);
            for (te, ta) in [(1, 1), (2, 2), (3, 4), (12, 16)] {
                let e_parts: Vec<Range<usize>> = split(p.ne, te);
                let a_parts: Vec<Range<usize>> = split(p.na, ta);
                let mut sum = 0u64;
                for er in &e_parts {
                    for ar in &a_parts {
                        sum += sse_dace_flops_tile(&p, &dev, er, ar);
                    }
                }
                assert_eq!(sum, total, "tiling {te}x{ta}");
            }
        }
        fn split(total: usize, parts: usize) -> Vec<Range<usize>> {
            (0..parts)
                .map(|i| {
                    let base = total / parts;
                    let extra = total % parts;
                    let start = i * base + i.min(extra);
                    start..start + base + usize::from(i < extra)
                })
                .collect()
        }
    }

    #[test]
    fn skewed_device_has_skewed_tile_costs() {
        let p = SimParams::test_small();
        let dev = Device::skewed(&p, 1, 1);
        let apb = p.na / p.bnum;
        let heavy = sse_dace_flops_tile(&p, &dev, &(0..p.ne), &(0..apb));
        let light = sse_dace_flops_tile(&p, &dev, &(0..p.ne), &(p.na - apb..p.na));
        assert!(
            heavy as f64 > 2.0 * light as f64,
            "heavy {heavy} vs light {light}"
        );
    }

    #[test]
    fn rgf_chunks_partition_the_total() {
        let p = SimParams::test_small();
        let sum: f64 = [5, 4, 3].iter().map(|&n| rgf_flops_chunk(&p, n)).sum();
        assert!((sum - rgf_flops(&p)).abs() < 1e-6 * rgf_flops(&p));
    }

    #[test]
    fn exact_models_equal_measured_flops() {
        // The exact models must reproduce the instrumented kernels *to the
        // flop* — this is the report's `exact = true` residual class.
        use crate::sse::{self, testutil, SseVariant};
        let fx = testutil::fixture();
        let inputs = fx.inputs();
        let (_, f_omen) = qt_linalg::count_flops(|| sse::sigma(&inputs, SseVariant::Omen));
        let (_, f_dace) = qt_linalg::count_flops(|| sse::sigma(&inputs, SseVariant::Dace));
        assert_eq!(f_omen, sse_omen_flops_exact(&fx.p, &fx.dev), "omen");
        assert_eq!(f_dace, sse_dace_flops_exact(&fx.p, &fx.dev), "dace");
    }

    #[test]
    fn exact_models_approach_table3_at_paper_scale() {
        // At Table 3 scale the grid clamping is a small correction:
        // S/(2·NE·Nω) = 1 − (Nω+1)/(2·NE) ≈ 0.95 for NE=706, Nω=70, and
        // P_ab < NA·NB only through edge atoms.
        let p = SimParams::paper_si_4864(3);
        let dev = Device::new(&p);
        let omen_ratio = sse_omen_flops_exact(&p, &dev) as f64 / sse_omen_flops(&p);
        assert!(
            omen_ratio > 0.85 && omen_ratio < 1.0,
            "omen exact/asymptotic {omen_ratio}"
        );
        // The DaCe stage-1 term is half the paper's second term (shared
        // ∇H·G batch), so the total sits a little below the Table 3 value.
        let dace_ratio = sse_dace_flops_exact(&p, &dev) as f64 / sse_dace_flops(&p);
        assert!(
            dace_ratio > 0.8 && dace_ratio < 1.0,
            "dace exact/asymptotic {dace_ratio}"
        );
    }

    #[test]
    fn instrumented_kernels_match_analytic_shape() {
        // Run the actual Σ kernels at tiny scale and compare the measured
        // flop ratio OMEN/DaCe with the analytic prediction.
        use crate::sse::{self, testutil, SseVariant};
        let fx = testutil::fixture();
        let inputs = fx.inputs();
        let (_, f_omen) = qt_linalg::count_flops(|| sse::sigma(&inputs, SseVariant::Omen));
        let (_, f_dace) = qt_linalg::count_flops(|| sse::sigma(&inputs, SseVariant::Dace));
        let measured = f_omen as f64 / f_dace as f64;
        let analytic = sse_omen_flops(&fx.p) / sse_dace_flops(&fx.p);
        // The tiny fixture has boundary effects (energy window clamps),
        // so allow a generous band around the analytic ratio.
        assert!(
            (measured / analytic - 1.0).abs() < 0.8,
            "measured {measured:.2} vs analytic {analytic:.2}"
        );
        assert!(measured > 1.0);
    }
}
