//! Property-based tests of the SDFG transformation pipeline: for *any*
//! valid (small) parameter binding, the §4.2 rewrites must apply cleanly,
//! preserve the observable coverage of non-transient arrays, and strictly
//! improve flop count and transient footprint.

use dace_omen::sdfg::library;
use dace_omen::sdfg::{transforms, Bindings, SymExpr, TileSpec};
use proptest::prelude::*;

fn bindings(nkz: i64, ne: i64, nqz: i64, nw: i64, na: i64, nb: i64, norb: i64) -> Bindings {
    [
        ("Nkz", nkz),
        ("NE", ne),
        ("Nqz", nqz),
        ("Nw", nw),
        ("N3D", 3),
        ("NA", na),
        ("NB", nb),
        ("Norb", norb),
    ]
    .iter()
    .map(|&(k, v)| (k.to_string(), v))
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full pipeline applies and improves for arbitrary valid dims.
    #[test]
    fn pipeline_improves_for_any_dims(
        nkz in 1i64..5, ne in 4i64..17, nqz in 1i64..5, nw in 1i64..5,
        na in 2i64..13, nb in 1i64..5, norb in 1i64..5,
    ) {
        let b = bindings(nkz, ne, nqz, nw, na, nb, norb);
        let mut tree = library::sse_sigma_tree();
        let steps = library::transform_sse_sigma(&mut tree, &b).expect("pipeline applies");
        let first = &steps[0].stats;
        let last = &steps.last().unwrap().stats;
        prop_assert!(last.flops < first.flops);
        prop_assert!(last.transient_bytes <= first.transient_bytes);
        prop_assert!(tree.validate().is_ok());
        // Unique coverage of the non-transient output is invariant: Σ
        // covers its full tensor before and after.
        let sigma_full = nkz * ne * na * norb * norb;
        prop_assert_eq!(first.unique["Sigma"], sigma_full);
        prop_assert_eq!(last.unique["Sigma"], sigma_full);
        // Input coverage of G likewise (clamped to the array).
        let g_full = nkz * ne * na * norb * norb;
        prop_assert_eq!(first.unique["G"], g_full);
        prop_assert_eq!(last.unique["G"], g_full);
    }

    /// Map tiling never changes total access counts — it only reorganizes
    /// the iteration space (Fig. 7).
    #[test]
    fn tiling_preserves_access_counts(
        m in 1i64..30, tiles in 1i64..6,
    ) {
        // Only exact tilings (m divisible) keep the space identical.
        let m = m * tiles;
        let mut t = library::matmul_tree();
        let b: Bindings = [("M", m), ("N", 6), ("K", 4)]
            .iter()
            .map(|&(k, v)| (k.to_string(), v))
            .collect();
        let before = t.stats(&b, &[]);
        transforms::map_tiling(
            &mut t,
            "mm",
            &[TileSpec::new("i", SymExpr::int(tiles), SymExpr::int(m / tiles))],
        )
        .unwrap();
        prop_assert!(t.validate().is_ok());
        let mut b2 = b.clone();
        // Outer tile symbol ranges are concrete; no extra bindings needed.
        b2.insert("unused".into(), 0);
        let after = t.stats(&b2, &[]);
        prop_assert_eq!(before.accesses, after.accesses);
        prop_assert_eq!(before.flops, after.flops);
    }

    /// Data-layout transformation is semantics-preserving: every statistic
    /// is invariant under any permutation of G's dimensions.
    #[test]
    fn data_layout_is_movement_invariant(perm_seed in 0usize..120) {
        // All permutations of the 5 dims of G, enumerated via Lehmer code.
        let mut items: Vec<usize> = (0..5).collect();
        let mut perm = Vec::with_capacity(5);
        let mut code = perm_seed;
        for radix in (1..=5).rev() {
            let idx = code % radix;
            code /= radix;
            perm.push(items.remove(idx));
        }
        let b = bindings(2, 8, 2, 2, 6, 3, 2);
        let models = [library::neighbor_model()];
        let mut tree = library::sse_sigma_tree();
        let before = tree.stats(&b, &models);
        transforms::data_layout(&mut tree, "G", &perm).unwrap();
        prop_assert!(tree.validate().is_ok());
        let after = tree.stats(&b, &models);
        prop_assert_eq!(before.flops, after.flops);
        prop_assert_eq!(before.accesses, after.accesses);
        prop_assert_eq!(before.transient_bytes, after.transient_bytes);
    }

    /// Tensor layout permutation round-trips through its inverse.
    #[test]
    fn tensor_permutation_roundtrip(
        d0 in 1usize..4, d1 in 1usize..4, d2 in 1usize..4, perm_seed in 0usize..6,
    ) {
        use dace_omen::linalg::{c64, Tensor};
        let perms = [[0usize, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let perm = perms[perm_seed];
        let mut t = Tensor::zeros(&[d0, d1, d2]);
        for (i, z) in t.as_mut_slice().iter_mut().enumerate() {
            *z = c64(i as f64, -(i as f64));
        }
        let p = t.permuted(&perm);
        // Inverse permutation.
        let mut inv = [0usize; 3];
        for (out_dim, &src_dim) in perm.iter().enumerate() {
            inv[src_dim] = out_dim;
        }
        let back = p.permuted(&inv);
        prop_assert_eq!(back, t);
    }
}
