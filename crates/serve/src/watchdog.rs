//! Deadline watchdog: one thread that cancels overdue requests.
//!
//! Workers register `(deadline, token)` when a deadlined sweep starts
//! and deregister on completion. The watchdog sleeps until the nearest
//! deadline, cancels expired tokens asynchronously, and marks the
//! request's `expired` flag so the worker can tell a deadline cancel
//! from a shutdown drain (both ride the same `CancelToken`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use qt_core::scf::CancelToken;

struct Entry {
    deadline: Instant,
    token: CancelToken,
    expired: Arc<AtomicBool>,
    request: u64,
}

#[derive(Default)]
struct State {
    entries: Vec<Entry>,
    shutdown: bool,
}

/// Shared handle workers use to (de)register deadlines.
#[derive(Clone)]
pub struct WatchdogHandle {
    state: Arc<(Mutex<State>, Condvar)>,
}

/// A registered deadline; deregisters on drop (success and failure
/// paths alike — RAII, like the pool lease).
pub struct DeadlineGuard {
    handle: WatchdogHandle,
    request: u64,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.handle.state;
        let mut st = lock.lock().unwrap();
        st.entries.retain(|e| e.request != self.request);
        cvar.notify_all();
    }
}

impl WatchdogHandle {
    /// Register `request`'s deadline. The returned guard keeps the
    /// registration alive; `expired` flips to true if the watchdog fires.
    pub fn register(
        &self,
        request: u64,
        deadline: Instant,
        token: CancelToken,
        expired: Arc<AtomicBool>,
    ) -> DeadlineGuard {
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        st.entries.push(Entry {
            deadline,
            token,
            expired,
            request,
        });
        cvar.notify_all();
        DeadlineGuard {
            handle: self.clone(),
            request,
        }
    }
}

/// The watchdog thread plus its shared handle.
pub struct Watchdog {
    pub handle: WatchdogHandle,
    thread: Option<JoinHandle<()>>,
}

impl Watchdog {
    pub fn spawn() -> Watchdog {
        let handle = WatchdogHandle {
            state: Arc::new((Mutex::new(State::default()), Condvar::new())),
        };
        let run_handle = handle.clone();
        let thread = std::thread::Builder::new()
            .name("qt-serve-watchdog".into())
            .spawn(move || run(run_handle))
            .expect("spawn watchdog thread");
        Watchdog {
            handle,
            thread: Some(thread),
        }
    }

    /// Stop the thread (idempotent). Outstanding registrations are left
    /// uncancelled — shutdown cancels tokens through its own drain path.
    pub fn stop(&mut self) {
        let (lock, cvar) = &*self.handle.state;
        lock.lock().unwrap().shutdown = true;
        cvar.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run(handle: WatchdogHandle) {
    let (lock, cvar) = &*handle.state;
    let mut st = lock.lock().unwrap();
    loop {
        if st.shutdown {
            return;
        }
        let now = Instant::now();
        // Fire everything overdue.
        let mut fired = Vec::new();
        st.entries.retain(|e| {
            if e.deadline <= now {
                fired.push((e.token.clone(), e.expired.clone(), e.request));
                false
            } else {
                true
            }
        });
        let nearest = st.entries.iter().map(|e| e.deadline).min();
        if !fired.is_empty() {
            // Cancel outside the retain pass but under the lock is fine:
            // cancel() is a store, never blocks.
            for (token, expired, request) in fired {
                expired.store(true, Ordering::SeqCst);
                token.cancel();
                qt_telemetry::counters::add_service_deadline_cancel();
                qt_telemetry::journal::emit(qt_telemetry::EventKind::DeadlineExpired { request });
            }
            continue;
        }
        st = match nearest {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(now);
                cvar.wait_timeout(st, wait).unwrap().0
            }
            // Nothing registered: sleep until a register/stop wakes us.
            None => cvar.wait(st).unwrap(),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn expired_deadline_cancels_the_token_and_flags_the_request() {
        let mut wd = Watchdog::spawn();
        let token = CancelToken::new();
        let expired = Arc::new(AtomicBool::new(false));
        let _guard = wd.handle.register(
            7,
            Instant::now() + Duration::from_millis(20),
            token.clone(),
            expired.clone(),
        );
        let t0 = Instant::now();
        while !token.is_cancelled() && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(token.is_cancelled(), "watchdog must fire the deadline");
        assert!(expired.load(Ordering::SeqCst));
        wd.stop();
    }

    #[test]
    fn deregistered_deadline_never_fires() {
        let mut wd = Watchdog::spawn();
        let token = CancelToken::new();
        let expired = Arc::new(AtomicBool::new(false));
        let guard = wd.handle.register(
            8,
            Instant::now() + Duration::from_millis(30),
            token.clone(),
            expired.clone(),
        );
        drop(guard); // request finished in time
        std::thread::sleep(Duration::from_millis(80));
        assert!(!token.is_cancelled());
        assert!(!expired.load(Ordering::SeqCst));
        wd.stop();
    }
}
