//! Offline stand-in for `crossbeam` 0.8.
//!
//! The build environment has no registry access, so the workspace patches
//! `crossbeam` to this crate. Only `crossbeam::channel`'s unbounded MPMC
//! channel subset is provided (that is all the thread-world communicator
//! uses): `unbounded`, cloneable `Sender`/`Receiver`, `send`,
//! `recv_timeout`, `try_recv`, and the matching error types, with the
//! upstream disconnect semantics (a send fails once every receiver is
//! gone; a receive reports `Disconnected` once every sender is gone and
//! the queue is drained).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    pub struct Sender<T>(Arc<Chan<T>>);
    pub struct Receiver<T>(Arc<Chan<T>>);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Senders fail fast instead of filling a dead queue.
                st.queue.clear();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap();
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.0.ready.wait_timeout(st, left).unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        pub fn is_empty(&self) -> bool {
            self.0.state.lock().unwrap().queue.is_empty()
        }

        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            for i in 0..5 {
                assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(i));
            }
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                tx.send(42u64).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            t.join().unwrap();
        }
    }
}
