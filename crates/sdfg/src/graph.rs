//! Flat multigraph view of an SDFG and GraphViz export.
//!
//! The scope tree ([`crate::stree`]) is the transformable representation;
//! this module lowers it to the node/edge form of the paper's figures
//! (access nodes, tasklets, map entry/exit pairs, memlet edges) so the
//! transformed SSE kernels can be rendered as DOT files — our reproduction
//! of Figs. 4, 6 and 8–12.

use crate::stree::{Node, OpKind, ScopeTree};
use std::fmt::Write as _;

/// Node kinds of the flat SDFG view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphNode {
    /// Array container access node (oval in the figures).
    Access(String),
    /// Fine-grained computation (octagon).
    Tasklet(String),
    /// Map entry with its parameter list (trapezoid).
    MapEntry(String),
    /// Matching map exit.
    MapExit(String),
}

/// Directed edge carrying an optional memlet annotation.
#[derive(Clone, Debug)]
pub struct GraphEdge {
    pub src: usize,
    pub dst: usize,
    pub label: String,
    pub wcr: bool,
}

/// Flat SDFG state graph.
#[derive(Clone, Debug, Default)]
pub struct StateGraph {
    pub name: String,
    pub nodes: Vec<GraphNode>,
    pub edges: Vec<GraphEdge>,
}

impl StateGraph {
    fn add_node(&mut self, n: GraphNode) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    fn add_edge(&mut self, src: usize, dst: usize, label: String, wcr: bool) {
        self.edges.push(GraphEdge {
            src,
            dst,
            label,
            wcr,
        });
    }

    /// Lower a scope tree into the flat graph.
    pub fn from_tree(tree: &ScopeTree) -> StateGraph {
        let mut g = StateGraph {
            name: tree.name.clone(),
            ..Default::default()
        };
        for root in &tree.roots {
            g.lower(root, None, None);
        }
        g
    }

    /// Recursively lower `node`; `entry`/`exit` are the enclosing map's
    /// entry/exit node ids.
    fn lower(&mut self, node: &Node, entry: Option<usize>, exit: Option<usize>) {
        match node {
            Node::Map {
                label,
                params,
                body,
            } => {
                let ps: Vec<String> = params
                    .iter()
                    .map(|p| format!("{}={}", p.name, p.range))
                    .collect();
                let me = self.add_node(GraphNode::MapEntry(format!("{label} [{}]", ps.join(", "))));
                let mx = self.add_node(GraphNode::MapExit(label.clone()));
                if let (Some(e), Some(x)) = (entry, exit) {
                    self.add_edge(e, me, String::new(), false);
                    self.add_edge(mx, x, String::new(), false);
                }
                for child in body {
                    self.lower(child, Some(me), Some(mx));
                }
            }
            Node::Compute {
                label,
                op,
                inputs,
                outputs,
                ..
            } => {
                let opname = match op {
                    OpKind::MatMul => "@",
                    OpKind::ScalarMul => "*",
                    OpKind::BatchedGemm { .. } => "@ (batched)",
                    OpKind::Tasklet => "tasklet",
                };
                let t = self.add_node(GraphNode::Tasklet(format!("{label} {opname}")));
                for acc in inputs {
                    let a = self.add_node(GraphNode::Access(acc.array.clone()));
                    let label = format!("{}{}", acc.array, acc.subset);
                    if let Some(e) = entry {
                        self.add_edge(a, e, label.clone(), false);
                        self.add_edge(e, t, label, false);
                    } else {
                        self.add_edge(a, t, label, false);
                    }
                }
                for acc in outputs {
                    let a = self.add_node(GraphNode::Access(acc.array.clone()));
                    let label = format!("{}{}", acc.array, acc.subset);
                    if let Some(x) = exit {
                        self.add_edge(t, x, label.clone(), acc.wcr_sum);
                        self.add_edge(x, a, label, acc.wcr_sum);
                    } else {
                        self.add_edge(t, a, label, acc.wcr_sum);
                    }
                }
            }
        }
    }

    /// Render as GraphViz DOT.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  rankdir=TB;");
        for (i, n) in self.nodes.iter().enumerate() {
            let (shape, label) = match n {
                GraphNode::Access(a) => ("ellipse", a.clone()),
                GraphNode::Tasklet(t) => ("octagon", t.clone()),
                GraphNode::MapEntry(m) => ("trapezium", m.clone()),
                GraphNode::MapExit(m) => ("invtrapezium", format!("{m} (exit)")),
            };
            let _ = writeln!(
                out,
                "  n{i} [shape={shape}, label=\"{}\"];",
                label.replace('"', "'")
            );
        }
        for e in &self.edges {
            let style = if e.wcr {
                ", style=dashed, color=red"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}\"{}];",
                e.src,
                e.dst,
                e.label.replace('"', "'"),
                style
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::ParamRange;
    use crate::stree::{Access, ArrayDesc, Dtype};
    use crate::subset::{Dim, Subset};
    use crate::symexpr::SymExpr;

    fn tiny_tree() -> ScopeTree {
        let mut t = ScopeTree::new("tiny");
        t.add_array(
            "A",
            ArrayDesc::new(vec![SymExpr::sym("N")], Dtype::Complex128, false),
        );
        t.add_array(
            "B",
            ArrayDesc::new(vec![SymExpr::sym("N")], Dtype::Complex128, false),
        );
        t.roots.push(Node::map(
            "m",
            vec![ParamRange::new("i", 0, SymExpr::sym("N"))],
            vec![Node::compute(
                "copy",
                OpKind::Tasklet,
                vec![Access::read(
                    "A",
                    Subset::new(vec![Dim::idx(SymExpr::sym("i"))]),
                )],
                vec![Access::accumulate(
                    "B",
                    Subset::new(vec![Dim::idx(SymExpr::sym("i"))]),
                )],
                SymExpr::int(1),
            )],
        ));
        t
    }

    #[test]
    fn lowering_produces_entry_exit_pairs() {
        let g = StateGraph::from_tree(&tiny_tree());
        let entries = g
            .nodes
            .iter()
            .filter(|n| matches!(n, GraphNode::MapEntry(_)))
            .count();
        let exits = g
            .nodes
            .iter()
            .filter(|n| matches!(n, GraphNode::MapExit(_)))
            .count();
        assert_eq!(entries, 1);
        assert_eq!(exits, 1);
        let tasklets = g
            .nodes
            .iter()
            .filter(|n| matches!(n, GraphNode::Tasklet(_)))
            .count();
        assert_eq!(tasklets, 1);
    }

    #[test]
    fn dot_contains_wcr_styling_and_labels() {
        let g = StateGraph::from_tree(&tiny_tree());
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("style=dashed"), "CR edges render dashed");
        assert!(dot.contains("A[i]"));
        assert!(dot.contains("trapezium"));
    }

    #[test]
    fn nested_maps_connect_through_scopes() {
        let mut t = tiny_tree();
        crate::transforms::map_tiling(
            &mut t,
            "m",
            &[crate::transforms::TileSpec::new(
                "i",
                SymExpr::sym("T"),
                SymExpr::sym("s"),
            )],
        )
        .unwrap();
        let g = StateGraph::from_tree(&t);
        let entries = g
            .nodes
            .iter()
            .filter(|n| matches!(n, GraphNode::MapEntry(_)))
            .count();
        assert_eq!(entries, 2);
        // There must be an edge between the two map entries.
        let entry_ids: Vec<usize> = g
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, GraphNode::MapEntry(_)))
            .map(|(i, _)| i)
            .collect();
        assert!(g
            .edges
            .iter()
            .any(|e| entry_ids.contains(&e.src) && entry_ids.contains(&e.dst)));
    }
}
