//! The GF phase (Fig. 6, left state): solve Eq. (1) for electrons over all
//! `(kz, E)` and Eq. (2) for phonons over all `(qz, ω)`.
//!
//! Each grid point is independent (embarrassingly parallel — the paper's
//! momentum+energy MPI decomposition); here the points fan out over a rayon
//! pool. The outputs are exactly the tensors the SSE phase consumes:
//! `G≷[Nkz, NE, NA, Norb, Norb]` and `D≷[Nqz, Nω, NA, NB+1, 3, 3]`
//! (slot `NB` holds the diagonal `D_aa`, slots `0..NB` the neighbor pairs).

use crate::boundary::{self, BoundaryCache, BoundaryConfig, KeyHasher, Side};
use crate::device::Device;
use crate::grids::{bose, fermi, Grids};
use crate::hamiltonian::{ElectronModel, PhononModel};
use crate::health::{CoverageReport, HealthPolicy, NumericalError, QuarantinedPoint};
use crate::params::{SimParams, N3D};
use crate::rgf;
use qt_linalg::{c64, workspace, BlockTridiag, Complex64, Matrix, Tensor};
use rayon::prelude::*;

/// Contact electrochemical potentials and temperature.
#[derive(Clone, Copy, Debug)]
pub struct Contacts {
    /// Left contact chemical potential (eV).
    pub mu_left: f64,
    /// Right contact chemical potential (eV).
    pub mu_right: f64,
    /// Lattice/contact temperature (K).
    pub temperature: f64,
    /// Rigid band offset of the left lead (eV): the lead surface Green's
    /// function is evaluated at `E − shift_left`, modelling a gate- or
    /// workfunction-induced band-edge shift of the contact material.
    /// Unlike `mu_*`/`temperature` (occupations, applied outside the
    /// boundary cache) this changes the memoized Σᴿ itself, so it is part
    /// of the cache identity key.
    pub shift_left: f64,
    /// Rigid band offset of the right lead (eV).
    pub shift_right: f64,
}

impl Default for Contacts {
    fn default() -> Self {
        Contacts {
            mu_left: 0.05,
            mu_right: -0.05,
            temperature: 300.0,
            shift_left: 0.0,
            shift_right: 0.0,
        }
    }
}

/// Configuration of the GF phase.
#[derive(Clone, Copy, Debug)]
pub struct GfConfig {
    /// Contact broadening η (eV): imaginary part used when solving the
    /// lead surface Green's functions.
    pub eta: f64,
    /// Broadening inside the device. Defaults to 0 so that the only
    /// dissipation channels are the contacts and the scattering
    /// self-energies — this makes the equilibrium current vanish exactly
    /// (current conservation).
    pub device_eta: f64,
    /// Broadening inside the device for the *phonon* system (relative to
    /// ω·de). Interior vibrational modes decouple from the contacts almost
    /// completely, so a small damping is needed to bound `D` at resonance
    /// and keep the Born iteration stable.
    pub phonon_device_eta: f64,
    pub boundary: BoundaryConfig,
    pub contacts: Contacts,
    /// Containment policy for per-point numerical failures (quarantine vs
    /// fail-fast, and the tolerated bad fraction).
    pub health: HealthPolicy,
    /// How RGF evaluates the off-diagonal coupling products (Table 6):
    /// all-dense GEMM, forced CSRMM, or calibrated per-block
    /// auto-selection.
    pub strategy: rgf::MultiplyStrategy,
}

impl Default for GfConfig {
    fn default() -> Self {
        GfConfig {
            eta: 1e-3,
            device_eta: 0.0,
            phonon_device_eta: 5e-2,
            boundary: BoundaryConfig::default(),
            contacts: Contacts::default(),
            health: HealthPolicy::default(),
            strategy: rgf::MultiplyStrategy::Dense,
        }
    }
}

/// Electron scattering self-energies (diagonal per-atom blocks, §2:
/// "only the diagonal blocks of Σ are retained").
/// Shape `[Nkz, NE, NA, Norb, Norb]`.
#[derive(Clone, Debug)]
pub struct ElectronSelfEnergy {
    pub lesser: Tensor,
    pub greater: Tensor,
}

impl ElectronSelfEnergy {
    pub fn zeros(p: &SimParams) -> Self {
        let shape = [p.nkz, p.ne, p.na, p.norb, p.norb];
        ElectronSelfEnergy {
            lesser: Tensor::zeros(&shape),
            greater: Tensor::zeros(&shape),
        }
    }

    /// Retarded part via the paper's approximation `Σᴿ ≈ (Σ> − Σ<)/2`.
    pub fn retarded_block(&self, idx: &[usize; 3], norb: usize) -> Matrix {
        let g = self.greater.inner(&idx[..]);
        let l = self.lesser.inner(&idx[..]);
        Matrix::from_vec(
            norb,
            norb,
            g.iter()
                .zip(l)
                .map(|(&gg, &ll)| (gg - ll).scale(0.5))
                .collect(),
        )
    }
}

/// Phonon scattering self-energies. Shape `[Nqz, Nω, NA, NB+1, 3, 3]`;
/// slot `NB` is the diagonal `Π_aa`, slots `0..NB` the neighbor connections
/// (§2: "NB non-diagonal connections are kept for Π").
#[derive(Clone, Debug)]
pub struct PhononSelfEnergy {
    pub lesser: Tensor,
    pub greater: Tensor,
}

impl PhononSelfEnergy {
    pub fn zeros(p: &SimParams) -> Self {
        let shape = [p.nqz, p.nw, p.na, p.nb + 1, N3D, N3D];
        PhononSelfEnergy {
            lesser: Tensor::zeros(&shape),
            greater: Tensor::zeros(&shape),
        }
    }

    pub fn retarded_block(&self, idx: &[usize; 4]) -> Matrix {
        let g = self.greater.inner(&idx[..]);
        let l = self.lesser.inner(&idx[..]);
        Matrix::from_vec(
            N3D,
            N3D,
            g.iter()
                .zip(l)
                .map(|(&gg, &ll)| (gg - ll).scale(0.5))
                .collect(),
        )
    }
}

/// Output of the electron GF phase.
#[derive(Clone, Debug)]
pub struct ElectronGf {
    /// `G<[kz, E, a, :, :]` diagonal atom blocks.
    pub g_lesser: Tensor,
    /// `G>[kz, E, a, :, :]`.
    pub g_greater: Tensor,
    /// Left-contact current spectrum per `(kz, E)` (Meir–Wingreen trace).
    pub current_spectrum: Vec<f64>,
    /// Integrated electrical current (arbitrary units: e/ħ per 2π).
    pub current: f64,
    /// Energy-integrated bond current through every slab interface
    /// (`j_n = 2·Re tr[(−A_{n,n+1})·G<_{n+1,n}]`, length `bnum − 1`).
    /// In the ballistic limit these equal the contact current exactly —
    /// the current-conservation check of the whole RGF + boundary stack.
    pub bond_currents: Vec<f64>,
    /// Which `(kz, E)` points were actually covered; quarantined points
    /// are zero-filled in `g_lesser`/`g_greater` and excluded from the
    /// currents.
    pub coverage: CoverageReport,
}

/// Output of the phonon GF phase.
#[derive(Clone, Debug)]
pub struct PhononGf {
    /// `D<[qz, ω, a, slot, :, :]` with slot `NB` diagonal.
    pub d_lesser: Tensor,
    /// `D>[qz, ω, a, slot, :, :]`.
    pub d_greater: Tensor,
    /// Integrated phonon energy current at the left contact.
    pub energy_current: f64,
    /// Which `(qz, ω)` points were actually covered.
    pub coverage: CoverageReport,
}

/// `tr(A·B)` without forming the product: `Σ_i Σ_j A[i,j]·B[j,i]`. The
/// Meir–Wingreen and bond-current traces only need the product's diagonal,
/// so this replaces an `O(n³)` GEMM (plus its temporary) with an `O(n²)`
/// reduction.
fn trace_of_product(a: &Matrix, b: &Matrix) -> Complex64 {
    let n = a.rows();
    let k = a.cols();
    debug_assert_eq!(b.rows(), k);
    debug_assert_eq!(b.cols(), n);
    qt_linalg::add_flops(8 * (n * k) as u64);
    let mut acc = Complex64::ZERO;
    for i in 0..n {
        for j in 0..k {
            acc = acc.mul_add(a[(i, j)], b[(j, i)]);
        }
    }
    acc
}

/// `out ← i·(sig − sig†)` — [`boundary::gamma`] into an existing buffer.
fn gamma_into(sig: &Matrix, out: &mut Matrix) {
    let n = sig.rows();
    for i in 0..n {
        for j in 0..n {
            out[(i, j)] = (sig[(i, j)] - sig[(j, i)].conj()) * Complex64::I;
        }
    }
}

/// `out ← src · z` elementwise, overwriting `out`.
fn scale_into(src: &Matrix, z: Complex64, out: &mut Matrix) {
    for (o, s) in out.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *o = *s * z;
    }
}

/// Recycle a block tri-diagonal whose blocks came from the workspace pool.
fn recycle_tridiag(a: BlockTridiag) {
    let (d, u, l) = a.into_parts();
    for m in d.into_iter().chain(u).chain(l) {
        workspace::give(m);
    }
}

/// Fold per-point worker results into a [`CoverageReport`] under `policy`:
/// successes flow into `keep`, failures are either fatal (fail-fast mode)
/// or quarantined — counted, recorded with their flattened `grid_index`,
/// and simply *absent* from the output tensors (which start zeroed, so a
/// quarantined point contributes nothing rather than garbage). Exceeding
/// `max_bad_fraction` makes the whole phase fail with the first recorded
/// error as the representative root cause.
fn apply_health_policy<T>(
    results: Vec<Result<T, NumericalError>>,
    grid_index: impl Fn(usize) -> usize,
    policy: &HealthPolicy,
    mut keep: impl FnMut(T),
) -> Result<CoverageReport, NumericalError> {
    let mut coverage = CoverageReport::full(results.len());
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(v) => keep(v),
            Err(error) => {
                if !policy.quarantine {
                    return Err(error);
                }
                qt_telemetry::counters::add_quarantined_point();
                let gi = grid_index(i);
                qt_telemetry::journal::emit(qt_telemetry::EventKind::QuarantinePoint {
                    grid_index: gi as u64,
                });
                coverage.quarantined.push(QuarantinedPoint {
                    grid_index: gi,
                    error,
                });
            }
        }
    }
    if coverage.bad_fraction() > policy.max_bad_fraction {
        return Err(coverage.quarantined[0].error.clone());
    }
    Ok(coverage)
}

/// Identity key of everything the electron contact self-energies depend
/// on: the lead blocks of `H(kz)`/`S(kz)`, the energy grid and the
/// broadening configuration.
fn electron_boundary_key(
    hs: &[(BlockTridiag, BlockTridiag)],
    grids: &Grids,
    cfg: &GfConfig,
) -> u64 {
    let mut kh = KeyHasher::new();
    kh.u64(0xe1ec);
    for (h, s) in hs {
        let nbk = h.num_blocks();
        kh.matrix(h.diag(0))
            .matrix(h.upper(0))
            .matrix(s.diag(0))
            .matrix(s.upper(0))
            .matrix(h.diag(nbk - 1))
            .matrix(h.upper(nbk - 2))
            .matrix(s.diag(nbk - 1))
            .matrix(s.upper(nbk - 2));
    }
    for &e in &grids.energies {
        kh.f64(e);
    }
    // The lead band offsets shift the energy the decimation runs at, so
    // they are part of the Σᴿ identity. The occupations (mu_*,
    // temperature) deliberately stay OUT of the key: they are applied
    // outside the cache, which is what lets one memoized Σᴿ serve every
    // bias point of a sweep.
    kh.f64(cfg.contacts.shift_left)
        .f64(cfg.contacts.shift_right);
    kh.f64(cfg.eta)
        .f64(cfg.boundary.eta)
        .u64(cfg.boundary.max_iter as u64)
        .f64(cfg.boundary.tol)
        .f64(cfg.boundary.eta_bump);
    kh.finish()
}

/// Identity key of the phonon contact self-energies: lead blocks of
/// `Φ(qz)`, the frequency grid (and its spacing, which enters the
/// broadening) and the configuration.
fn phonon_boundary_key(phis: &[BlockTridiag], grids: &Grids, cfg: &GfConfig) -> u64 {
    let mut kh = KeyHasher::new();
    kh.u64(0x9409);
    for phi in phis {
        let nbk = phi.num_blocks();
        kh.matrix(phi.diag(0))
            .matrix(phi.upper(0))
            .matrix(phi.diag(nbk - 1))
            .matrix(phi.upper(nbk - 2));
    }
    for &w in &grids.omegas {
        kh.f64(w);
    }
    kh.f64(grids.de)
        .f64(cfg.eta)
        .f64(cfg.boundary.eta)
        .u64(cfg.boundary.max_iter as u64)
        .f64(cfg.boundary.tol)
        .f64(cfg.boundary.eta_bump);
    kh.finish()
}

/// Solve the electron Green's functions for every `(kz, E)` point.
pub fn electron_gf_phase(
    dev: &Device,
    em: &ElectronModel,
    p: &SimParams,
    grids: &Grids,
    sse: &ElectronSelfEnergy,
    cfg: &GfConfig,
) -> Result<ElectronGf, NumericalError> {
    electron_gf_phase_cached(dev, em, p, grids, sse, cfg, None, None)
}

/// [`electron_gf_phase`] with optional contact self-energy memoization:
/// when `cache` is given it is (re-)bound to the current `H`/`S`/grid
/// identity and the Sancho–Rubio decimation runs at most once per
/// `(kz, E)` point across every Born iteration. `selector` carries the
/// sticky per-coupling kernel choices when `cfg.strategy` is
/// [`rgf::MultiplyStrategy::Auto`].
#[allow(clippy::too_many_arguments)]
pub fn electron_gf_phase_cached(
    dev: &Device,
    em: &ElectronModel,
    p: &SimParams,
    grids: &Grids,
    sse: &ElectronSelfEnergy,
    cfg: &GfConfig,
    cache: Option<&BoundaryCache>,
    selector: Option<&rgf::KernelSelector>,
) -> Result<ElectronGf, NumericalError> {
    let _span = qt_telemetry::Span::enter_global("gf/electron");
    let no = p.norb;
    let apb = dev.atoms_per_slab;
    // Hoist H(kz), S(kz) per momentum point.
    let hs: Vec<(BlockTridiag, BlockTridiag)> = grids
        .kz
        .iter()
        .map(|&kz| (em.hamiltonian(dev, kz), em.overlap_matrix(dev, kz)))
        .collect();
    if let Some(c) = cache {
        c.bind_electron(electron_boundary_key(&hs, grids, cfg), p.nkz * p.ne);
    }
    let points: Vec<(usize, usize)> = (0..p.nkz)
        .flat_map(|k| (0..p.ne).map(move |e| (k, e)))
        .collect();
    type EPoint = (usize, usize, Vec<Complex64>, Vec<Complex64>, f64, Vec<f64>);
    let results: Vec<Result<EPoint, NumericalError>> = points
        .par_iter()
        .map(|&(k, e)| {
            let point_idx = k * p.ne + e;
            let (h, s) = &hs[k];
            let energy = grids.energies[e];
            // Lead surface GF at finite broadening; device interior at
            // (near-)real energy so contacts are the only implicit bath.
            // Each lead sees the energy relative to its own band offset.
            let z_l = c64(energy - cfg.contacts.shift_left, cfg.eta);
            let z_r = c64(energy - cfg.contacts.shift_right, cfg.eta);
            let z_dev = c64(energy, cfg.device_eta);
            let nbk = h.num_blocks();
            let bs = h.block_size();
            // A = z·S − H assembled into workspace-pooled blocks.
            let mut a_diag: Vec<Matrix> = Vec::with_capacity(nbk);
            for n in 0..nbk {
                let mut d = workspace::take(bs, bs);
                for (o, (sv, hv)) in d
                    .as_mut_slice()
                    .iter_mut()
                    .zip(s.diag(n).as_slice().iter().zip(h.diag(n).as_slice()))
                {
                    *o = *sv * z_dev - *hv;
                }
                a_diag.push(d);
            }
            let fill_off = |sb: &Matrix, hb: &Matrix| {
                let mut m = workspace::take(bs, bs);
                for (o, (sv, hv)) in m
                    .as_mut_slice()
                    .iter_mut()
                    .zip(sb.as_slice().iter().zip(hb.as_slice()))
                {
                    *o = *sv * z_dev - *hv;
                }
                m
            };
            let a_upper: Vec<Matrix> = (0..nbk - 1)
                .map(|n| fill_off(s.upper(n), h.upper(n)))
                .collect();
            let a_lower: Vec<Matrix> = (0..nbk - 1)
                .map(|n| fill_off(s.lower(n), h.lower(n)))
                .collect();
            let mut a = BlockTridiag::from_blocks(a_diag, a_upper, a_lower);
            // Boundary self-energies: memoized per point when cached — the
            // decimation depends on neither the occupations nor the Born
            // iterate, so iteration 2+ replays the stored Σᴿ.
            let compute_pair = || -> Result<(Matrix, Matrix), NumericalError> {
                let sig_l = boundary::surface_self_energy(
                    z_l,
                    h.diag(0),
                    h.upper(0),
                    s.diag(0),
                    s.upper(0),
                    Side::Left,
                    &cfg.boundary,
                )?;
                let sig_r = boundary::surface_self_energy(
                    z_r,
                    h.diag(nbk - 1),
                    h.upper(nbk - 2),
                    s.diag(nbk - 1),
                    s.upper(nbk - 2),
                    Side::Right,
                    &cfg.boundary,
                )?;
                Ok((sig_l.sigma, sig_r.sigma))
            };
            let view = cache.map(|c| c.view());
            let pair_storage;
            let (sig_l, sig_r): (&Matrix, &Matrix) = match &view {
                Some(v) => {
                    let pair = v
                        .electron(point_idx, compute_pair)
                        .map_err(|err| err.at("gf/electron", point_idx))?;
                    (&pair.0, &pair.1)
                }
                None => {
                    pair_storage =
                        compute_pair().map_err(|err| err.at("gf/electron", point_idx))?;
                    (&pair_storage.0, &pair_storage.1)
                }
            };
            *a.diag_mut(0) -= sig_l;
            *a.diag_mut(nbk - 1) -= sig_r;
            let f_l = fermi(energy, cfg.contacts.mu_left, cfg.contacts.temperature);
            let f_r = fermi(energy, cfg.contacts.mu_right, cfg.contacts.temperature);
            // Γ and the occupation-scaled boundary Σ≷ in pooled buffers
            // (the occupations are applied outside the cache, so the same
            // memoized Σᴿ serves any bias).
            let mut gam = workspace::take(bs, bs);
            gamma_into(sig_l, &mut gam);
            let mut bl_l = workspace::take(bs, bs);
            scale_into(&gam, c64(0.0, f_l), &mut bl_l);
            let mut bg_l = workspace::take(bs, bs);
            scale_into(&gam, c64(0.0, f_l - 1.0), &mut bg_l);
            gamma_into(sig_r, &mut gam);
            let mut bl_r = workspace::take(bs, bs);
            scale_into(&gam, c64(0.0, f_r), &mut bl_r);
            workspace::give(gam);
            drop(view);
            let mut sig_lesser: Vec<Matrix> = (0..nbk).map(|_| workspace::take(bs, bs)).collect();
            sig_lesser[0] += &bl_l;
            sig_lesser[nbk - 1] += &bl_r;
            // Scattering self-energies (diagonal atom blocks), injected
            // straight from the SSE tensors — no temporaries.
            for atom in 0..p.na {
                let slab = dev.slab_of(atom);
                let row = (atom % apb) * no;
                let g_blk = sse.greater.inner(&[k, e, atom]);
                let l_blk = sse.lesser.inner(&[k, e, atom]);
                for i in 0..no {
                    for j in 0..no {
                        // Σᴿ ≈ (Σ> − Σ<)/2; A -= Σᴿ_scatt.
                        let sr = (g_blk[i * no + j] - l_blk[i * no + j]).scale(0.5);
                        let cur = a.diag(slab)[(row + i, row + j)];
                        a.diag_mut(slab)[(row + i, row + j)] = cur - sr;
                        let cur = sig_lesser[slab][(row + i, row + j)];
                        sig_lesser[slab][(row + i, row + j)] = cur + l_blk[i * no + j];
                    }
                }
            }
            let out = rgf::rgf_with_selector(&a, &sig_lesser, cfg.strategy, selector)
                .map_err(|_| NumericalError::singular("rgf", point_idx))?;
            // Gather per-atom diagonal blocks (these escape the worker, so
            // they stay on the regular heap).
            let mut gl = Vec::with_capacity(p.na * no * no);
            let mut gg = Vec::with_capacity(p.na * no * no);
            for atom in 0..p.na {
                let slab = dev.slab_of(atom);
                let row = (atom % apb) * no;
                for i in 0..no {
                    for j in 0..no {
                        gl.push(out.gl_diag[slab][(row + i, row + j)]);
                        gg.push(out.gg_diag[slab][(row + i, row + j)]);
                    }
                }
            }
            // Meir–Wingreen current trace at the left contact:
            // i(E) = Re tr[Σ<_L G> − Σ>_L G<].
            let t1 = trace_of_product(&bl_l, &out.gg_diag[0]);
            let t2 = trace_of_product(&bg_l, &out.gl_diag[0]);
            let ispec = (t1 - t2).re;
            // Bond currents through every slab interface.
            let bonds: Vec<f64> = (0..nbk - 1)
                .map(|n| -2.0 * trace_of_product(a.upper(n), &out.gl_lower[n]).re)
                .collect();
            for m in [bl_l, bg_l, bl_r] {
                workspace::give(m);
            }
            for m in sig_lesser {
                workspace::give(m);
            }
            out.recycle();
            recycle_tridiag(a);
            // Phase-boundary health check: everything escaping the worker
            // must be finite, or downstream SSE convolutions smear the
            // poison across the whole spectrum.
            let finite = gl
                .iter()
                .chain(&gg)
                .all(|v| v.re.is_finite() && v.im.is_finite())
                && ispec.is_finite()
                && bonds.iter().all(|j| j.is_finite());
            if !finite {
                return Err(NumericalError::NonFiniteTensor {
                    phase: "gf/electron",
                    index: point_idx,
                });
            }
            Ok((k, e, gl, gg, ispec, bonds))
        })
        .collect();
    let mut g_lesser = Tensor::zeros(&[p.nkz, p.ne, p.na, no, no]);
    let mut g_greater = Tensor::zeros(&[p.nkz, p.ne, p.na, no, no]);
    let mut current_spectrum = vec![0.0; p.nkz * p.ne];
    let mut current = 0.0;
    let mut bond_currents = vec![0.0; p.bnum - 1];
    let coverage = apply_health_policy(
        results,
        |i| {
            let (k, e) = points[i];
            k * p.ne + e
        },
        &cfg.health,
        |(k, e, gl, gg, ispec, bonds)| {
            g_lesser.inner_mut(&[k, e]).copy_from_slice(&gl);
            g_greater.inner_mut(&[k, e]).copy_from_slice(&gg);
            current_spectrum[k * p.ne + e] = ispec;
            current += ispec * grids.de / p.nkz as f64;
            for (acc, j) in bond_currents.iter_mut().zip(&bonds) {
                *acc += j * grids.de / p.nkz as f64;
            }
        },
    )?;
    Ok(ElectronGf {
        g_lesser,
        g_greater,
        current_spectrum,
        current,
        bond_currents,
        coverage,
    })
}

/// Solve the phonon Green's functions for every `(qz, ω)` point.
pub fn phonon_gf_phase(
    dev: &Device,
    pm: &PhononModel,
    p: &SimParams,
    grids: &Grids,
    sse: &PhononSelfEnergy,
    cfg: &GfConfig,
) -> Result<PhononGf, NumericalError> {
    phonon_gf_phase_cached(dev, pm, p, grids, sse, cfg, None, None)
}

/// [`phonon_gf_phase`] with optional contact self-energy memoization and
/// an optional sticky kernel selector for the Auto multiply strategy.
#[allow(clippy::too_many_arguments)]
pub fn phonon_gf_phase_cached(
    dev: &Device,
    pm: &PhononModel,
    p: &SimParams,
    grids: &Grids,
    sse: &PhononSelfEnergy,
    cfg: &GfConfig,
    cache: Option<&BoundaryCache>,
    selector: Option<&rgf::KernelSelector>,
) -> Result<PhononGf, NumericalError> {
    let _span = qt_telemetry::Span::enter_global("gf/phonon");
    let apb = dev.atoms_per_slab;
    let phis: Vec<BlockTridiag> = grids.qz.iter().map(|&qz| pm.dynamical(dev, qz)).collect();
    let bs = phis[0].block_size();
    let eye = Matrix::identity(bs);
    let zero = Matrix::zeros(bs, bs);
    if let Some(c) = cache {
        c.bind_phonon(phonon_boundary_key(&phis, grids, cfg), p.nqz * p.nw);
    }
    let points: Vec<(usize, usize)> = (0..p.nqz)
        .flat_map(|q| (0..p.nw).map(move |w| (q, w)))
        .collect();
    type PhRes = (usize, usize, Vec<Complex64>, Vec<Complex64>, f64);
    let results: Vec<Result<PhRes, NumericalError>> = points
        .par_iter()
        .map(|&(q, w)| {
            let point_idx = q * p.nw + w;
            let phi = &phis[q];
            let omega = grids.omegas[w];
            let z = c64(omega * omega, cfg.eta * omega.max(grids.de));
            let z_dev = c64(omega * omega, cfg.phonon_device_eta * omega.max(grids.de));
            // A = ω²·I − Φ − Πᴿ in workspace-pooled blocks.
            let nbk = phi.num_blocks();
            let mut a_diag: Vec<Matrix> = Vec::with_capacity(nbk);
            for n in 0..nbk {
                let mut d = workspace::take(bs, bs);
                let pd = phi.diag(n).as_slice();
                let ds = d.as_mut_slice();
                for (o, pv) in ds.iter_mut().zip(pd) {
                    *o = Complex64::ZERO - *pv;
                }
                for i in 0..bs {
                    ds[i * bs + i] = z_dev - pd[i * bs + i];
                }
                a_diag.push(d);
            }
            let fill_neg = |src: &Matrix| {
                let mut m = workspace::take(bs, bs);
                for (o, pv) in m.as_mut_slice().iter_mut().zip(src.as_slice()) {
                    *o = -*pv;
                }
                m
            };
            let a_upper: Vec<Matrix> = (0..nbk - 1).map(|n| fill_neg(phi.upper(n))).collect();
            let a_lower: Vec<Matrix> = (0..nbk - 1).map(|n| fill_neg(phi.lower(n))).collect();
            let mut a = BlockTridiag::from_blocks(a_diag, a_upper, a_lower);
            // Boundary (equilibrium phonon baths at both contacts),
            // memoized per (qz, ω) point when cached.
            let compute_pair = || -> Result<(Matrix, Matrix), NumericalError> {
                let pi_l = boundary::surface_self_energy(
                    z,
                    phi.diag(0),
                    phi.upper(0),
                    &eye,
                    &zero,
                    Side::Left,
                    &cfg.boundary,
                )?;
                let pi_r = boundary::surface_self_energy(
                    z,
                    phi.diag(nbk - 1),
                    phi.upper(nbk - 2),
                    &eye,
                    &zero,
                    Side::Right,
                    &cfg.boundary,
                )?;
                Ok((pi_l.sigma, pi_r.sigma))
            };
            let view = cache.map(|c| c.view());
            let pair_storage;
            let (pi_l, pi_r): (&Matrix, &Matrix) = match &view {
                Some(v) => {
                    let pair = v
                        .phonon(point_idx, compute_pair)
                        .map_err(|err| err.at("gf/phonon", point_idx))?;
                    (&pair.0, &pair.1)
                }
                None => {
                    pair_storage = compute_pair().map_err(|err| err.at("gf/phonon", point_idx))?;
                    (&pair_storage.0, &pair_storage.1)
                }
            };
            *a.diag_mut(0) -= pi_l;
            *a.diag_mut(nbk - 1) -= pi_r;
            let n_occ = bose(omega, cfg.contacts.temperature);
            // Π≷ at the bath occupation, in pooled buffers.
            let mut gam = workspace::take(bs, bs);
            gamma_into(pi_l, &mut gam);
            let mut bl_l = workspace::take(bs, bs);
            scale_into(&gam, c64(0.0, -n_occ), &mut bl_l);
            let mut bg_l = workspace::take(bs, bs);
            scale_into(&gam, c64(0.0, -(n_occ + 1.0)), &mut bg_l);
            gamma_into(pi_r, &mut gam);
            let mut bl_r = workspace::take(bs, bs);
            scale_into(&gam, c64(0.0, -n_occ), &mut bl_r);
            workspace::give(gam);
            drop(view);
            let mut sig_lesser: Vec<Matrix> = (0..nbk).map(|_| workspace::take(bs, bs)).collect();
            sig_lesser[0] += &bl_l;
            sig_lesser[nbk - 1] += &bl_r;
            // Scattering Πᴿ: diagonal blocks plus neighbor connections,
            // injected straight from the SSE tensors — no temporaries.
            let inject_retarded = |dst: &mut Matrix, ra: usize, rb: usize, idx: &[usize; 4]| {
                let g_blk = sse.greater.inner(&idx[..]);
                let l_blk = sse.lesser.inner(&idx[..]);
                for i in 0..N3D {
                    for j in 0..N3D {
                        let pr = (g_blk[i * N3D + j] - l_blk[i * N3D + j]).scale(0.5);
                        dst[(ra + i, rb + j)] -= pr;
                    }
                }
            };
            for atom in 0..p.na {
                let sa = dev.slab_of(atom);
                let ra = (atom % apb) * N3D;
                inject_retarded(a.diag_mut(sa), ra, ra, &[q, w, atom, p.nb]);
                let l_blk = sse.lesser.inner(&[q, w, atom, p.nb]);
                for i in 0..N3D {
                    for j in 0..N3D {
                        let cur = sig_lesser[sa][(ra + i, ra + j)];
                        sig_lesser[sa][(ra + i, ra + j)] = cur + l_blk[i * N3D + j];
                    }
                }
                // Neighbor connections of Πᴿ (off-diagonal, §2). Lesser
                // off-diagonal parts are kept in the SSE tensors but not
                // injected into RGF (block-diagonal Σ< assumption; see
                // DESIGN.md).
                for slot in 0..p.nb {
                    let Some(b) = dev.neighbor(atom, slot) else {
                        continue;
                    };
                    let sb = dev.slab_of(b);
                    let rb = (b % apb) * N3D;
                    if sb == sa {
                        inject_retarded(a.diag_mut(sa), ra, rb, &[q, w, atom, slot]);
                    } else if sb == sa + 1 {
                        inject_retarded(a.upper_mut(sa), ra, rb, &[q, w, atom, slot]);
                    } else if sb + 1 == sa {
                        inject_retarded(a.lower_mut(sb), ra, rb, &[q, w, atom, slot]);
                    }
                }
            }
            let out = rgf::rgf_with_selector(&a, &sig_lesser, cfg.strategy, selector)
                .map_err(|_| NumericalError::singular("rgf", point_idx))?;
            // Off-diagonal D images, once per point into pooled buffers
            // (the old path re-derived them per atom pair):
            // G<_{n,n+1} = −(G<_{n+1,n})†, G>_{n,n+1} and G>_{n+1,n}.
            let mut gl_up: Vec<Matrix> = Vec::with_capacity(nbk - 1);
            let mut gg_up: Vec<Matrix> = Vec::with_capacity(nbk - 1);
            let mut gg_lo: Vec<Matrix> = Vec::with_capacity(nbk - 1);
            for n in 0..nbk - 1 {
                let mut lu_m = workspace::take(bs, bs);
                let src = &out.gl_lower[n];
                for i in 0..bs {
                    for j in 0..bs {
                        lu_m[(i, j)] = src[(j, i)].conj() * c64(-1.0, 0.0);
                    }
                }
                let mut gu = workspace::take(bs, bs);
                gu.copy_from(&lu_m);
                gu += &out.gr_upper[n];
                gu.sub_dagger_assign(&out.gr_lower[n]);
                let mut glo = workspace::take(bs, bs);
                glo.copy_from(&out.gl_lower[n]);
                glo += &out.gr_lower[n];
                glo.sub_dagger_assign(&out.gr_upper[n]);
                gl_up.push(lu_m);
                gg_up.push(gu);
                gg_lo.push(glo);
            }
            // Gather D pairs: slots 0..NB neighbors, slot NB diagonal.
            let block_len = (p.nb + 1) * N3D * N3D;
            let mut dl = vec![Complex64::ZERO; p.na * block_len];
            let mut dg = vec![Complex64::ZERO; p.na * block_len];
            let write_pair = |dst_l: &mut [Complex64],
                              dst_g: &mut [Complex64],
                              atom: usize,
                              slot: usize,
                              b: usize| {
                let sa = dev.slab_of(atom);
                let sb = dev.slab_of(b);
                let ra = (atom % apb) * N3D;
                let rb = (b % apb) * N3D;
                let base = atom * block_len + slot * N3D * N3D;
                // Select the matrices holding rows of slab sa, cols sb.
                let (l_m, g_m): (&Matrix, &Matrix) = if sb == sa {
                    (&out.gl_diag[sa], &out.gg_diag[sa])
                } else if sb == sa + 1 {
                    (&gl_up[sa], &gg_up[sa])
                } else {
                    (&out.gl_lower[sb], &gg_lo[sb])
                };
                for i in 0..N3D {
                    for j in 0..N3D {
                        dst_l[base + i * N3D + j] = l_m[(ra + i, rb + j)];
                        dst_g[base + i * N3D + j] = g_m[(ra + i, rb + j)];
                    }
                }
            };
            for atom in 0..p.na {
                write_pair(&mut dl, &mut dg, atom, p.nb, atom);
                for slot in 0..p.nb {
                    if let Some(b) = dev.neighbor(atom, slot) {
                        write_pair(&mut dl, &mut dg, atom, slot, b);
                    }
                }
            }
            let t1 = trace_of_product(&bl_l, &out.gg_diag[0]);
            let t2 = trace_of_product(&bg_l, &out.gl_diag[0]);
            let espec = (t1 - t2).re * omega;
            for m in gl_up.into_iter().chain(gg_up).chain(gg_lo) {
                workspace::give(m);
            }
            for m in [bl_l, bg_l, bl_r] {
                workspace::give(m);
            }
            for m in sig_lesser {
                workspace::give(m);
            }
            out.recycle();
            recycle_tridiag(a);
            // Phase-boundary health check (see the electron phase).
            let finite = dl
                .iter()
                .chain(&dg)
                .all(|v| v.re.is_finite() && v.im.is_finite())
                && espec.is_finite();
            if !finite {
                return Err(NumericalError::NonFiniteTensor {
                    phase: "gf/phonon",
                    index: point_idx,
                });
            }
            Ok((q, w, dl, dg, espec))
        })
        .collect();
    let mut d_lesser = Tensor::zeros(&[p.nqz, p.nw, p.na, p.nb + 1, N3D, N3D]);
    let mut d_greater = Tensor::zeros(&[p.nqz, p.nw, p.na, p.nb + 1, N3D, N3D]);
    let mut energy_current = 0.0;
    let coverage = apply_health_policy(
        results,
        |i| {
            let (q, w) = points[i];
            q * p.nw + w
        },
        &cfg.health,
        |(q, w, dl, dg, espec)| {
            d_lesser.inner_mut(&[q, w]).copy_from_slice(&dl);
            d_greater.inner_mut(&[q, w]).copy_from_slice(&dg);
            energy_current += espec * grids.de / p.nqz as f64;
        },
    )?;
    Ok(PhononGf {
        d_lesser,
        d_greater,
        energy_current,
        coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimParams, Device, ElectronModel, PhononModel, Grids) {
        let p = SimParams::test_small();
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        (p, dev, em, pm, grids)
    }

    #[test]
    fn electron_phase_produces_physical_tensors() {
        let (p, dev, em, _, grids) = setup();
        let sse = ElectronSelfEnergy::zeros(&p);
        let cfg = GfConfig::default();
        let out = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        assert_eq!(out.g_lesser.shape(), &[p.nkz, p.ne, p.na, p.norb, p.norb]);
        // Physicality: per-atom spectral weight i·tr(G> − G<) ≥ 0 and all
        // entries finite.
        for k in 0..p.nkz {
            for e in 0..p.ne {
                for a in 0..p.na {
                    let gl = out.g_lesser.inner(&[k, e, a]);
                    let gg = out.g_greater.inner(&[k, e, a]);
                    let mut spectral = 0.0;
                    for o in 0..p.norb {
                        let d = gg[o * p.norb + o] - gl[o * p.norb + o];
                        // i·(G> − G<) diagonal must be ≥ 0 (spectral func).
                        spectral += (Complex64::I * d).re;
                        assert!(d.is_finite());
                    }
                    assert!(
                        spectral >= -1e-9,
                        "negative spectral weight at ({k},{e},{a}): {spectral}"
                    );
                }
            }
        }
    }

    #[test]
    fn ballistic_current_is_conserved_through_the_device() {
        // Every slab interface must carry exactly the contact current —
        // the strongest end-to-end check of RGF's off-diagonal blocks and
        // the boundary self-energies.
        let (p, dev, em, _, grids) = setup();
        let sse = ElectronSelfEnergy::zeros(&p);
        let mut cfg = GfConfig::default();
        cfg.contacts.mu_left = 0.3;
        cfg.contacts.mu_right = -0.3;
        let out = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        assert!(out.current.abs() > 1e-12);
        for (n, j) in out.bond_currents.iter().enumerate() {
            assert!(
                (j - out.current).abs() / out.current.abs() < 1e-9,
                "bond {n}: {j} vs contact {}",
                out.current
            );
        }
    }

    #[test]
    fn equilibrium_current_vanishes() {
        let (p, dev, em, _, grids) = setup();
        let sse = ElectronSelfEnergy::zeros(&p);
        let mut cfg = GfConfig::default();
        cfg.contacts.mu_left = 0.0;
        cfg.contacts.mu_right = 0.0;
        let out = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        assert!(
            out.current.abs() < 1e-8,
            "equilibrium current must vanish, got {}",
            out.current
        );
    }

    #[test]
    fn bias_drives_current() {
        let (p, dev, em, _, grids) = setup();
        let sse = ElectronSelfEnergy::zeros(&p);
        let mut cfg = GfConfig::default();
        cfg.contacts.mu_left = 0.3;
        cfg.contacts.mu_right = -0.3;
        let fwd = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        cfg.contacts.mu_left = -0.3;
        cfg.contacts.mu_right = 0.3;
        let rev = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        assert!(fwd.current > 1e-10, "forward bias current {}", fwd.current);
        assert!(rev.current < -1e-10, "reverse bias current {}", rev.current);
    }

    #[test]
    fn phonon_phase_produces_physical_tensors() {
        let (p, dev, _, pm, grids) = setup();
        let sse = PhononSelfEnergy::zeros(&p);
        let cfg = GfConfig::default();
        let out = phonon_gf_phase(&dev, &pm, &p, &grids, &sse, &cfg).unwrap();
        assert_eq!(
            out.d_lesser.shape(),
            &[p.nqz, p.nw, p.na, p.nb + 1, N3D, N3D]
        );
        for q in 0..p.nqz {
            for w in 0..p.nw {
                for a in 0..p.na {
                    // Diagonal slot: spectral positivity of the phonon GF.
                    let dl = out.d_lesser.inner(&[q, w, a, p.nb]);
                    let dg = out.d_greater.inner(&[q, w, a, p.nb]);
                    let mut spectral = 0.0;
                    for i in 0..N3D {
                        let d = dg[i * N3D + i] - dl[i * N3D + i];
                        assert!(d.is_finite());
                        spectral += (Complex64::I * d).re;
                    }
                    assert!(
                        spectral >= -1e-9,
                        "phonon spectral weight at ({q},{w},{a}): {spectral}"
                    );
                }
            }
        }
    }

    #[test]
    fn variants_sharing_a_cache_never_exchange_entries() {
        // Cross-request poisoning regression: two device variants that
        // differ only in their contact band offsets share one
        // BoundaryCache (the qt-serve sharing pattern). The offsets enter
        // the identity key, so the second variant must rebind the cache
        // and recompute its own Σᴿ — its cached results have to match an
        // uncached solve bitwise instead of replaying the first variant's
        // entries.
        let (p, dev, em, _, grids) = setup();
        let sse = ElectronSelfEnergy::zeros(&p);
        let mut cfg_a = GfConfig::default();
        cfg_a.contacts.mu_left = 0.2;
        cfg_a.contacts.mu_right = -0.2;
        let mut cfg_b = cfg_a;
        cfg_b.contacts.shift_left = 0.15;
        cfg_b.contacts.shift_right = -0.1;
        let cache = BoundaryCache::new();
        let a_cached =
            electron_gf_phase_cached(&dev, &em, &p, &grids, &sse, &cfg_a, Some(&cache), None)
                .unwrap();
        let b_cached =
            electron_gf_phase_cached(&dev, &em, &p, &grids, &sse, &cfg_b, Some(&cache), None)
                .unwrap();
        let b_cold = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg_b).unwrap();
        assert_eq!(
            b_cached.g_lesser.max_abs_diff(&b_cold.g_lesser),
            0.0,
            "variant B served from a cache shared with variant A must \
             recompute its own contact self-energies bitwise"
        );
        assert_eq!(b_cached.current, b_cold.current);
        // And the offsets genuinely change the physics, so a poisoned
        // replay would have been observable.
        assert!(
            a_cached.g_lesser.max_abs_diff(&b_cold.g_lesser) > 1e-12,
            "band offsets must alter the Green's functions for this test to bite"
        );
        // Re-running variant B replays its own entries (warm hits).
        let hits0 = qt_telemetry::counters::total_boundary_hits();
        let b_warm =
            electron_gf_phase_cached(&dev, &em, &p, &grids, &sse, &cfg_b, Some(&cache), None)
                .unwrap();
        assert_eq!(b_warm.g_lesser.max_abs_diff(&b_cold.g_lesser), 0.0);
        assert!(
            qt_telemetry::counters::total_boundary_hits() - hits0 >= (p.nkz * p.ne) as u64,
            "replaying the bound variant must hit the cache"
        );
    }

    #[test]
    fn scattering_self_energy_changes_gf() {
        let (p, dev, em, _, grids) = setup();
        let cfg = GfConfig::default();
        let zero_sse = ElectronSelfEnergy::zeros(&p);
        let base = electron_gf_phase(&dev, &em, &p, &grids, &zero_sse, &cfg).unwrap();
        // Inject a uniform lossy self-energy on every atom.
        let mut sse = ElectronSelfEnergy::zeros(&p);
        for k in 0..p.nkz {
            for e in 0..p.ne {
                for a in 0..p.na {
                    for o in 0..p.norb {
                        sse.lesser.set(&[k, e, a, o, o], c64(0.0, 0.01));
                        sse.greater.set(&[k, e, a, o, o], c64(0.0, -0.01));
                    }
                }
            }
        }
        let scat = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        let diff = base.g_lesser.max_abs_diff(&scat.g_lesser);
        assert!(diff > 1e-8, "scattering must affect G<: {diff}");
    }
}
