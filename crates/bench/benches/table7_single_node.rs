//! Table 7: single-node runtime of the GF and SSE phases per
//! implementation variant (OMEN / "Python" reference / DaCe), at reduced
//! scale. The paper reports 965.45 / 30,560 / 96.79 s for SSE; here the
//! three variants run the *same* contraction in the same binary, so the
//! measured gap isolates loop structure, allocation behavior, and batching
//! (the interpreter overhead of the real Python row has no analogue).

use criterion::{criterion_group, criterion_main, Criterion};
use qt_bench::{bench_params, BenchFixture};
use qt_core::gf;
use qt_core::sse::{self, SseVariant};
use std::hint::black_box;

fn bench_table7(c: &mut Criterion) {
    let fx = BenchFixture::new(bench_params());
    let mut group = c.benchmark_group("table7_single_node");
    group.sample_size(10);
    group.bench_function("gf_phase_electrons", |b| {
        b.iter(|| {
            black_box(
                gf::electron_gf_phase(
                    &fx.dev,
                    &fx.em,
                    &fx.p,
                    &fx.grids,
                    &gf::ElectronSelfEnergy::zeros(&fx.p),
                    &fx.cfg,
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("gf_phase_phonons", |b| {
        b.iter(|| {
            black_box(
                gf::phonon_gf_phase(
                    &fx.dev,
                    &fx.pm,
                    &fx.p,
                    &fx.grids,
                    &gf::PhononSelfEnergy::zeros(&fx.p),
                    &fx.cfg,
                )
                .unwrap(),
            )
        })
    });
    for (name, variant) in [
        ("sse_reference_python_row", SseVariant::Reference),
        ("sse_omen_row", SseVariant::Omen),
        ("sse_dace_row", SseVariant::Dace),
    ] {
        let inputs = fx.sse_inputs();
        group.bench_function(name, |b| b.iter(|| black_box(sse::sigma(&inputs, variant))));
    }
    group.finish();
}

criterion_group!(benches, bench_table7);
criterion_main!(benches);
