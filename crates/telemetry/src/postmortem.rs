//! Postmortem dumps: the flight recorder's crash artifact.
//!
//! When a run ends abnormally — a supervisor-observed rank death, a
//! degraded completion, a guard-ceiling abort, or a panic — the journal
//! rings are drained into one versioned `POSTMORTEM.json`: the merged
//! event timeline, per-rank progress watermarks, and the last telemetry
//! report snapshot. `reproduce postmortem <file>` pretty-prints the
//! causal timeline (HeartbeatTimeout → RankDeath → Retile) so a failed
//! chaos run can be debugged from the artifact alone.
//!
//! The loader classifies corruption the same way the checkpoint reader
//! does: garbage is [`PostmortemError::NotJson`], a real postmortem from
//! an incompatible build is [`PostmortemError::UnsupportedVersion`], and
//! a structurally broken file is [`PostmortemError::Invalid`] — never a
//! silent partial load.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Mutex;

use crate::journal::{self, Event, EventKind};
use crate::json::Json;
use crate::report::TelemetryReport;

/// Postmortem format version written by this build.
pub const POSTMORTEM_VERSION: u64 = 1;

/// Why a postmortem could not be read.
#[derive(Debug)]
pub enum PostmortemError {
    /// The file could not be opened or read at all.
    Io(io::Error),
    /// The bytes are not JSON (garbage or truncated mid-document).
    NotJson(String),
    /// Valid JSON but not a postmortem (missing the version marker).
    NotAPostmortem,
    /// A real postmortem from an incompatible build.
    UnsupportedVersion {
        /// The on-disk version field.
        found: u64,
        /// The version this build reads.
        supported: u64,
    },
    /// A structurally broken field inside a version-matched file.
    Invalid(String),
}

impl fmt::Display for PostmortemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostmortemError::Io(e) => write!(f, "postmortem I/O error: {e}"),
            PostmortemError::NotJson(e) => write!(f, "not JSON (garbage or truncated): {e}"),
            PostmortemError::NotAPostmortem => write!(f, "JSON but not a postmortem (no version)"),
            PostmortemError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported postmortem version {found} (this build reads {supported})"
            ),
            PostmortemError::Invalid(what) => write!(f, "corrupt postmortem: {what}"),
        }
    }
}

impl std::error::Error for PostmortemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PostmortemError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PostmortemError {
    fn from(e: io::Error) -> Self {
        PostmortemError::Io(e)
    }
}

/// Per-rank progress watermark derived from the drained journal: how far
/// each world slot got before the run ended.
#[derive(Clone, Debug, PartialEq)]
pub struct RankWatermark {
    /// World slot.
    pub rank: u64,
    /// Timestamp of the rank's last journal event (µs since epoch).
    pub last_event_us: f64,
    /// Events the rank emitted.
    pub events: u64,
    /// Highest SCF iteration the rank was seen in (−1 if none).
    pub iteration: i64,
}

/// The versioned crash artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct Postmortem {
    /// Format version ([`POSTMORTEM_VERSION`]).
    pub version: u64,
    /// Trigger class: `"rank-death"`, `"degraded-completion"`,
    /// `"guard-ceiling-abort"`, or `"panic"`.
    pub reason: String,
    /// Free-form detail (dead ranks, panic message, …).
    pub detail: String,
    /// The merged journal timeline, sorted by timestamp.
    pub events: Vec<Event>,
    /// Journal events lost to ring overflow before the dump.
    pub dropped: u64,
    /// Per-rank progress watermarks.
    pub watermarks: Vec<RankWatermark>,
    /// Last telemetry report snapshot, when one was available.
    pub report: Option<TelemetryReport>,
}

impl Postmortem {
    /// Drain the journal and assemble a postmortem. The journal rings are
    /// consumed — a second capture sees only events emitted after this
    /// one.
    pub fn capture(reason: &str, detail: &str, report: Option<TelemetryReport>) -> Postmortem {
        let events = journal::drain();
        let dropped = events
            .iter()
            .map(|e| match e.kind {
                EventKind::Overflow { dropped } => dropped,
                _ => 0,
            })
            .sum();
        let watermarks = watermarks_of(&events);
        Postmortem {
            version: POSTMORTEM_VERSION,
            reason: reason.to_string(),
            detail: detail.to_string(),
            events,
            dropped,
            watermarks,
            report,
        }
    }

    /// Serialise as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let events = self.events.iter().map(Event::to_json).collect();
        let watermarks = self
            .watermarks
            .iter()
            .map(|w| {
                Json::Obj(vec![
                    ("rank".to_string(), Json::Num(w.rank as f64)),
                    ("last_event_us".to_string(), Json::Num(w.last_event_us)),
                    ("events".to_string(), Json::Num(w.events as f64)),
                    ("iteration".to_string(), Json::Num(w.iteration as f64)),
                ])
            })
            .collect();
        let report = match &self.report {
            None => Json::Null,
            // The report has its own serializer; nest it as a parsed tree
            // so the postmortem stays one JSON document.
            Some(r) => Json::parse(&r.to_json()).expect("report JSON parses"),
        };
        Json::Obj(vec![
            ("version".to_string(), Json::Num(self.version as f64)),
            ("reason".to_string(), Json::Str(self.reason.clone())),
            ("detail".to_string(), Json::Str(self.detail.clone())),
            ("events".to_string(), Json::Arr(events)),
            ("dropped".to_string(), Json::Num(self.dropped as f64)),
            ("watermarks".to_string(), Json::Arr(watermarks)),
            ("report".to_string(), report),
        ])
        .dump()
    }

    /// Parse a postmortem, classifying any corruption.
    pub fn from_json(json: &str) -> Result<Postmortem, PostmortemError> {
        let root = Json::parse(json).map_err(PostmortemError::NotJson)?;
        let version = root
            .get("version")
            .and_then(Json::as_u64)
            .ok_or(PostmortemError::NotAPostmortem)?;
        if version != POSTMORTEM_VERSION {
            return Err(PostmortemError::UnsupportedVersion {
                found: version,
                supported: POSTMORTEM_VERSION,
            });
        }
        let invalid = |what: String| PostmortemError::Invalid(what);
        let str_field = |key: &str| -> Result<String, PostmortemError> {
            root.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| invalid(format!("missing string {key:?}")))
        };
        let events = root
            .get("events")
            .and_then(Json::as_array)
            .ok_or_else(|| invalid("missing events array".into()))?
            .iter()
            .map(Event::from_json)
            .collect::<Result<Vec<_>, _>>()
            .map_err(invalid)?;
        let watermarks = root
            .get("watermarks")
            .and_then(Json::as_array)
            .ok_or_else(|| invalid("missing watermarks array".into()))?
            .iter()
            .map(|w| -> Result<RankWatermark, PostmortemError> {
                let int = |k: &str| {
                    w.get(k)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| invalid(format!("watermark lacks {k:?}")))
                };
                Ok(RankWatermark {
                    rank: int("rank")? as u64,
                    last_event_us: int("last_event_us")?,
                    events: int("events")? as u64,
                    iteration: int("iteration")? as i64,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let report = match root.get("report") {
            Some(Json::Null) | None => None,
            Some(r) => Some(TelemetryReport::from_json(&r.dump()).map_err(invalid)?),
        };
        Ok(Postmortem {
            version,
            reason: str_field("reason")?,
            detail: str_field("detail")?,
            events,
            dropped: root
                .get("dropped")
                .and_then(Json::as_u64)
                .ok_or_else(|| invalid("missing dropped count".into()))?,
            watermarks,
            report,
        })
    }

    /// Write atomically (temp file + rename), like the SCF checkpoint.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_json())?;
        fs::rename(&tmp, path)
    }

    /// Load a postmortem written by [`Postmortem::save`].
    pub fn load(path: &Path) -> Result<Postmortem, PostmortemError> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text)
    }

    /// Render the causal timeline as human-readable text: header, one
    /// line per event (timestamped, attributed), then the per-rank
    /// watermarks.
    pub fn timeline(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "POSTMORTEM v{} — {}: {}\n",
            self.version, self.reason, self.detail
        ));
        out.push_str(&format!(
            "{} events ({} lost to ring overflow)\n\n",
            self.events.len(),
            self.dropped
        ));
        for e in &self.events {
            out.push_str(&format!("{:>12.1} us  {}\n", e.ts_us, e.describe()));
        }
        if !self.watermarks.is_empty() {
            out.push_str("\nper-rank progress watermarks:\n");
            for w in &self.watermarks {
                out.push_str(&format!(
                    "  rank {:>3}: {} events, last at {:.1} us, iteration {}\n",
                    w.rank, w.events, w.last_event_us, w.iteration
                ));
            }
        }
        out
    }
}

fn watermarks_of(events: &[Event]) -> Vec<RankWatermark> {
    let mut marks: Vec<RankWatermark> = Vec::new();
    for e in events {
        if e.rank < 0 {
            continue;
        }
        let rank = e.rank as u64;
        let mark = match marks.iter_mut().find(|m| m.rank == rank) {
            Some(m) => m,
            None => {
                marks.push(RankWatermark {
                    rank,
                    last_event_us: 0.0,
                    events: 0,
                    iteration: -1,
                });
                marks.last_mut().unwrap()
            }
        };
        mark.events += 1;
        mark.last_event_us = mark.last_event_us.max(e.ts_us);
        mark.iteration = mark.iteration.max(e.iteration);
    }
    marks.sort_by_key(|m| m.rank);
    marks
}

/// Install a panic hook that dumps a postmortem to `path` before the
/// default hook runs. Installs at most once per process; later calls
/// retarget the path.
pub fn install_panic_hook(path: std::path::PathBuf) {
    static TARGET: Mutex<Option<std::path::PathBuf>> = Mutex::new(None);
    let mut target = TARGET.lock().unwrap();
    let first = target.is_none();
    *target = Some(path);
    if !first {
        return;
    }
    drop(target);
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let detail = info.to_string();
        let pm = Postmortem::capture("panic", &detail, None);
        if let Some(path) = TARGET.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
            let _ = pm.save(path);
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                ts_us: 10.0,
                rank: 0,
                unit: -1,
                iteration: 1,
                kind: EventKind::HeartbeatTimeout { watched: 3 },
            },
            Event {
                ts_us: 20.0,
                rank: -1,
                unit: -1,
                iteration: 1,
                kind: EventKind::RankDeath { rank: 3 },
            },
            Event {
                ts_us: 30.0,
                rank: -1,
                unit: -1,
                iteration: 1,
                kind: EventKind::Retile { moved_units: 2 },
            },
            Event {
                ts_us: 5.0,
                rank: 1,
                unit: 4,
                iteration: 2,
                kind: EventKind::Overflow { dropped: 9 },
            },
        ]
    }

    fn sample() -> Postmortem {
        let events = sample_events();
        let watermarks = watermarks_of(&events);
        Postmortem {
            version: POSTMORTEM_VERSION,
            reason: "rank-death".to_string(),
            detail: "rank 3 died mid-exchange".to_string(),
            events,
            dropped: 9,
            watermarks,
            report: None,
        }
    }

    #[test]
    fn roundtrips_through_json_and_disk() {
        let pm = sample();
        let back = Postmortem::from_json(&pm.to_json()).unwrap();
        assert_eq!(back, pm);

        let dir = std::env::temp_dir().join("qt-postmortem-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("POSTMORTEM.json");
        pm.save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "tmp must be renamed");
        let back = Postmortem::load(&path).unwrap();
        assert_eq!(back, pm);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn timeline_shows_the_causal_chain_in_order() {
        let pm = sample();
        let text = pm.timeline();
        let hb = text.find("heartbeat timeout watching rank 3").unwrap();
        let death = text.find("rank 3 declared dead").unwrap();
        let retile = text.find("re-tiled, 2 units migrated").unwrap();
        assert!(hb < death && death < retile, "chain out of order:\n{text}");
        assert!(text.contains("9 lost to ring overflow"));
        assert!(text.contains("rank   1: 1 events"));
    }

    #[test]
    fn watermarks_track_per_rank_progress() {
        let marks = watermarks_of(&sample_events());
        assert_eq!(marks.len(), 2);
        assert_eq!(marks[0].rank, 0);
        assert_eq!(marks[0].iteration, 1);
        assert_eq!(marks[1].rank, 1);
        assert_eq!(marks[1].iteration, 2);
        assert_eq!(marks[1].last_event_us, 5.0);
    }

    #[test]
    fn error_variants_classify_the_corruption() {
        // Garbage → NotJson.
        assert!(matches!(
            Postmortem::from_json("garbage!"),
            Err(PostmortemError::NotJson(_))
        ));
        // Truncated mid-document → NotJson.
        let good = sample().to_json();
        assert!(matches!(
            Postmortem::from_json(&good[..good.len() / 2]),
            Err(PostmortemError::NotJson(_))
        ));
        // Valid JSON without the version marker → NotAPostmortem.
        assert!(matches!(
            Postmortem::from_json(r#"{"reason": "x"}"#),
            Err(PostmortemError::NotAPostmortem)
        ));
        // Future version → UnsupportedVersion naming both versions.
        match Postmortem::from_json(r#"{"version": 99}"#) {
            Err(PostmortemError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, POSTMORTEM_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // Version-matched but structurally broken → Invalid.
        let broken = r#"{"version": 1, "reason": "x", "detail": "y", "dropped": 0,
            "events": [{"ts_us": 0}], "watermarks": []}"#;
        assert!(matches!(
            Postmortem::from_json(broken),
            Err(PostmortemError::Invalid(_))
        ));
        // Missing file → Io with a source.
        let err = Postmortem::load(Path::new("/nonexistent/qt.postmortem")).unwrap_err();
        assert!(matches!(err, PostmortemError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(format!("{err}").contains("I/O"));
    }

    #[test]
    fn capture_drains_the_journal() {
        // Serialize against other journal tests via the journal's state:
        // capture on a quiesced journal only sees what we emit here.
        journal::reset_journal();
        journal::set_journaling(true);
        journal::set_thread_rank(2);
        journal::emit(EventKind::CheckpointWrite);
        journal::set_journaling(false);
        journal::set_thread_rank(-1);
        let pm = Postmortem::capture("degraded-completion", "test", None);
        assert!(pm
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CheckpointWrite) && e.rank == 2));
        assert_eq!(journal::event_count(), 0);
    }
}
