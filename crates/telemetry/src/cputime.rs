//! Per-thread CPU time, for cost measurements that must survive an
//! oversubscribed host.
//!
//! Timing a compute span with `Instant` measures *wall* time, which on a
//! machine with fewer cores than runnable threads includes every
//! preemption by a sibling rank — a 4-way time-sliced kernel reads as 4x
//! its real cost, poisoning the per-unit cost model and any critical-path
//! metric built from it. `CLOCK_THREAD_CPUTIME_ID` charges a span only
//! for the cycles this thread actually burned, so per-unit costs stay
//! comparable whether the thread world ran on one core or sixty-four.

/// Seconds of CPU time consumed by the calling thread, or `None` where no
/// thread clock is available (the caller falls back to wall time).
#[cfg(target_os = "linux")]
pub fn thread_cpu_secs() -> Option<f64> {
    // Declared locally to avoid a libc dependency; the symbol comes from
    // the C runtime std already links.
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { sec: 0, nsec: 0 };
    // SAFETY: `ts` is a valid, writable timespec-layout struct and the
    // clock id is a compile-time constant the kernel accepts.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    (rc == 0).then(|| ts.sec as f64 + ts.nsec as f64 / 1e9)
}

#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_secs() -> Option<f64> {
    None
}

/// CPU seconds elapsed on this thread since `start` (a prior
/// [`thread_cpu_secs`] reading), falling back to `wall_secs` when the
/// thread clock is unavailable or ran backwards.
pub fn thread_cpu_since(start: Option<f64>, wall_secs: f64) -> f64 {
    match (start, thread_cpu_secs()) {
        (Some(a), Some(b)) if b >= a => b - a,
        _ => wall_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_clock_advances_with_work() {
        let Some(t0) = thread_cpu_secs() else {
            return; // platform without a thread clock: fallback path only
        };
        // Burn a visible amount of CPU.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let t1 = thread_cpu_secs().unwrap();
        assert!(t1 >= t0, "thread CPU clock must be monotonic");
        assert!(t1 - t0 < 60.0, "implausible CPU delta {}", t1 - t0);
    }

    #[test]
    fn since_falls_back_to_wall() {
        assert_eq!(thread_cpu_since(None, 1.25), 1.25);
        // A backwards reading (impossible clock) also falls back.
        assert_eq!(thread_cpu_since(Some(f64::MAX), 0.5), 0.5);
    }
}
