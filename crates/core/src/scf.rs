//! Self-consistent GF ↔ SSE iteration (Fig. 2 / Fig. 6).
//!
//! "The algorithm starts by setting Σ≷ = Π≷ = 0 and continues by computing
//! all GFs under this condition. The latter then serve as inputs to the next
//! phase, where the SSE are evaluated … the process repeats itself until the
//! GF variations do not exceed a pre-defined threshold." (§2)
//!
//! Linear mixing of the self-energies damps the Born iteration.

use crate::boundary::BoundaryCache;
use crate::device::Device;
use crate::gf::{self, ElectronGf, ElectronSelfEnergy, GfConfig, PhononGf, PhononSelfEnergy};
use crate::grids::Grids;
use crate::hamiltonian::{ElectronModel, PhononModel};
use crate::params::SimParams;
use crate::sse::{self, SseInputs, SseVariant};
use qt_linalg::{SingularMatrix, Tensor};

/// Everything needed to run a simulation, bundled.
pub struct Simulation {
    pub p: SimParams,
    pub dev: Device,
    pub em: ElectronModel,
    pub pm: PhononModel,
    pub grids: Grids,
    /// Hamiltonian derivative tensor `∇H[a, slot, i, :, :]`.
    pub dh: Tensor,
    /// Memoized contact self-energies, keyed on the Hamiltonian/grid
    /// identity; iteration 1 of the Born loop fills it, later iterations
    /// replay it. Call [`BoundaryCache::invalidate`] after mutating the
    /// models in place (a changed identity key also invalidates it
    /// automatically at the next GF phase).
    pub boundary: BoundaryCache,
}

impl Simulation {
    /// Build a simulation over the energy window `[emin, emax]` (eV).
    pub fn new(p: SimParams, emin: f64, emax: f64) -> Self {
        p.validate().expect("invalid parameters");
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, emin, emax);
        let dh = em.dh_tensor(&dev);
        Simulation {
            p,
            dev,
            em,
            pm,
            grids,
            dh,
            boundary: BoundaryCache::new(),
        }
    }
}

/// Controls of the self-consistent Born loop.
#[derive(Clone, Copy, Debug)]
pub struct ScfConfig {
    pub max_iterations: usize,
    /// Convergence threshold on the relative change of `G<`.
    pub tolerance: f64,
    /// Linear mixing factor in `(0, 1]` applied to new self-energies.
    pub mixing: f64,
    /// Which SSE kernel implementation to use.
    pub variant: SseVariant,
    pub gf: GfConfig,
}

impl Default for ScfConfig {
    fn default() -> Self {
        ScfConfig {
            max_iterations: 15,
            tolerance: 1e-6,
            mixing: 0.5,
            variant: SseVariant::Dace,
            gf: GfConfig::default(),
        }
    }
}

/// One Born iteration of the convergence trajectory (telemetry report,
/// "convergence" section).
#[derive(Clone, Copy, Debug)]
pub struct IterationRecord {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Relative `G<` change vs the previous iterate; `None` on the first
    /// iteration (no previous iterate to compare against).
    pub residual: Option<f64>,
    /// Mixing factor applied to the new self-energies this iteration.
    pub mixing: f64,
    /// Wall-clock time of the iteration (GF + SSE phases), in seconds.
    pub wall_seconds: f64,
    /// Electrical current after this iteration.
    pub current: f64,
    /// Bytes obtained from the global allocator during this iteration
    /// (0 unless a counting allocator is installed, e.g. qt-bench's
    /// `count-alloc` feature).
    pub alloc_bytes: u64,
    /// Workspace-pool misses (fresh buffer allocations) this iteration.
    pub ws_fresh: u64,
    /// Contact self-energies recomputed (boundary-cache misses) this
    /// iteration; 0 from iteration 2 on when the cache is warm.
    pub boundary_misses: u64,
}

/// Outcome of the self-consistent loop.
pub struct ScfResult {
    pub converged: bool,
    pub iterations: usize,
    /// Relative `G<` change after each iteration.
    pub residuals: Vec<f64>,
    /// Electrical current after each iteration.
    pub current_history: Vec<f64>,
    /// Per-iteration convergence trajectory (residual, mixing, wall time,
    /// current) — one record per Born iteration, including the first.
    pub trajectory: Vec<IterationRecord>,
    pub electron: ElectronGf,
    pub phonon: PhononGf,
    pub sigma: ElectronSelfEnergy,
    pub pi: PhononSelfEnergy,
}

/// Blend `new` into `old`: `old ← (1−mix)·old + mix·new`.
fn mix_tensor(old: &mut Tensor, new: &Tensor, mix: f64) {
    for (o, n) in old.as_mut_slice().iter_mut().zip(new.as_slice()) {
        *o = o.scale(1.0 - mix) + n.scale(mix);
    }
}

/// Run the GF ↔ SSE loop to convergence.
pub fn run_scf(sim: &Simulation, cfg: &ScfConfig) -> Result<ScfResult, SingularMatrix> {
    let _scf_span = qt_telemetry::Span::enter_global("scf");
    let p = &sim.p;
    let mut sigma = ElectronSelfEnergy::zeros(p);
    let mut pi = PhononSelfEnergy::zeros(p);
    let mut residuals = Vec::new();
    let mut current_history = Vec::new();
    let mut trajectory = Vec::new();
    let mut prev_gl: Option<Tensor> = None;
    let mut converged = false;
    let mut electron = None;
    let mut phonon = None;
    let mut iterations = 0;
    for iter in 0..cfg.max_iterations {
        let _iter_span = qt_telemetry::Span::enter_global("scf_iter");
        let iter_t0 = std::time::Instant::now();
        let alloc0 = qt_telemetry::counters::total_alloc_bytes();
        let fresh0 = qt_telemetry::counters::total_ws_fresh();
        let miss0 = qt_telemetry::counters::total_boundary_misses();
        let iter_counters = |t0: std::time::Instant| {
            (
                t0.elapsed().as_secs_f64(),
                qt_telemetry::counters::total_alloc_bytes() - alloc0,
                qt_telemetry::counters::total_ws_fresh() - fresh0,
                qt_telemetry::counters::total_boundary_misses() - miss0,
            )
        };
        iterations += 1;
        // GF phase (both carriers), replaying memoized contact
        // self-energies from iteration 2 on.
        let egf = gf::electron_gf_phase_cached(
            &sim.dev,
            &sim.em,
            p,
            &sim.grids,
            &sigma,
            &cfg.gf,
            Some(&sim.boundary),
        )?;
        let pgf = gf::phonon_gf_phase_cached(
            &sim.dev,
            &sim.pm,
            p,
            &sim.grids,
            &pi,
            &cfg.gf,
            Some(&sim.boundary),
        )?;
        current_history.push(egf.current);
        // Convergence on G<.
        let res = match &prev_gl {
            None => f64::INFINITY,
            Some(prev) => {
                let norm = egf.g_lesser.norm().max(1e-300);
                let mut diff2 = 0.0;
                for (a, b) in egf.g_lesser.as_slice().iter().zip(prev.as_slice()) {
                    diff2 += (*a - *b).norm_sqr();
                }
                diff2.sqrt() / norm
            }
        };
        if res.is_finite() {
            residuals.push(res);
        }
        prev_gl = Some(egf.g_lesser.clone());
        if res < cfg.tolerance {
            converged = true;
            let (wall, alloc_bytes, ws_fresh, boundary_misses) = iter_counters(iter_t0);
            trajectory.push(IterationRecord {
                iteration: iter,
                residual: res.is_finite().then_some(res),
                mixing: cfg.mixing,
                wall_seconds: wall,
                current: egf.current,
                alloc_bytes,
                ws_fresh,
                boundary_misses,
            });
            electron = Some(egf);
            phonon = Some(pgf);
            break;
        }
        // SSE phase.
        let (dl, dg) = sse::preprocess_d(&sim.dev, p, &pgf);
        let inputs = SseInputs {
            dev: &sim.dev,
            p,
            grids: &sim.grids,
            dh: &sim.dh,
            g_lesser: &egf.g_lesser,
            g_greater: &egf.g_greater,
            d_lesser_pre: &dl,
            d_greater_pre: &dg,
        };
        let mut new_sigma = sse::sigma(&inputs, cfg.variant);
        sse::stabilize_sigma(&mut new_sigma, p);
        let mut new_pi = sse::pi(&inputs, cfg.variant);
        sse::stabilize_pi(&mut new_pi, p);
        mix_tensor(&mut sigma.lesser, &new_sigma.lesser, cfg.mixing);
        mix_tensor(&mut sigma.greater, &new_sigma.greater, cfg.mixing);
        mix_tensor(&mut pi.lesser, &new_pi.lesser, cfg.mixing);
        mix_tensor(&mut pi.greater, &new_pi.greater, cfg.mixing);
        let (wall, alloc_bytes, ws_fresh, boundary_misses) = iter_counters(iter_t0);
        trajectory.push(IterationRecord {
            iteration: iter,
            residual: res.is_finite().then_some(res),
            mixing: cfg.mixing,
            wall_seconds: wall,
            current: egf.current,
            alloc_bytes,
            ws_fresh,
            boundary_misses,
        });
        electron = Some(egf);
        phonon = Some(pgf);
    }
    Ok(ScfResult {
        converged,
        iterations,
        residuals,
        current_history,
        trajectory,
        electron: electron.expect("at least one iteration"),
        phonon: phonon.expect("at least one iteration"),
        sigma,
        pi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Simulation {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 10,
            nw: 2,
            na: 8,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        Simulation::new(p, -1.2, 1.2)
    }

    #[test]
    fn scf_converges_on_small_system() {
        let sim = sim();
        let cfg = ScfConfig {
            max_iterations: 25,
            tolerance: 1e-7,
            ..Default::default()
        };
        let out = run_scf(&sim, &cfg).unwrap();
        assert!(
            out.converged,
            "Born loop should converge; residuals: {:?}",
            out.residuals
        );
        // Residuals must be (eventually) decreasing.
        let n = out.residuals.len();
        assert!(n >= 2);
        assert!(out.residuals[n - 1] < out.residuals[0]);
    }

    #[test]
    fn scattering_modifies_current() {
        let sim = sim();
        let mut cfg = ScfConfig::default();
        cfg.gf.contacts.mu_left = 0.3;
        cfg.gf.contacts.mu_right = -0.3;
        cfg.max_iterations = 6;
        cfg.tolerance = 1e-12; // force full iterations
        let out = run_scf(&sim, &cfg).unwrap();
        // The ballistic (first-iteration) current differs from the
        // dissipative one.
        let first = out.current_history.first().unwrap();
        let last = out.current_history.last().unwrap();
        assert!(
            (first - last).abs() > 1e-12,
            "electron-phonon scattering must alter the current ({first} vs {last})"
        );
    }

    #[test]
    fn trajectory_records_every_iteration() {
        let sim = sim();
        let cfg = ScfConfig {
            max_iterations: 5,
            tolerance: 1e-12, // force full iterations
            ..Default::default()
        };
        let out = run_scf(&sim, &cfg).unwrap();
        assert_eq!(out.trajectory.len(), out.iterations);
        // First iteration has no previous iterate → no residual.
        assert!(out.trajectory[0].residual.is_none());
        for (i, rec) in out.trajectory.iter().enumerate() {
            assert_eq!(rec.iteration, i);
            assert!(rec.wall_seconds >= 0.0);
            assert_eq!(rec.mixing, cfg.mixing);
            assert_eq!(rec.current, out.current_history[i]);
        }
        // The trajectory's finite residuals are exactly `residuals`.
        let finite: Vec<f64> = out.trajectory.iter().filter_map(|r| r.residual).collect();
        assert_eq!(finite, out.residuals);
    }

    #[test]
    fn boundary_cache_populated_and_reused() {
        let sim = sim();
        let cfg = ScfConfig {
            max_iterations: 3,
            tolerance: 0.0, // force every iteration
            ..Default::default()
        };
        let n_points = (sim.p.nkz * sim.p.ne + sim.p.nqz * sim.p.nw) as u64;
        let hits0 = qt_telemetry::counters::total_boundary_hits();
        let out = run_scf(&sim, &cfg).unwrap();
        assert_eq!(out.iterations, 3);
        // Iterations 2 and 3 replay every contact self-energy from the
        // cache (the counter is global, so other tests can only add hits).
        assert!(
            qt_telemetry::counters::total_boundary_hits() - hits0 >= 2 * n_points,
            "warm iterations must hit the boundary cache"
        );
        // The cache is populated: replay must not recompute.
        sim.boundary
            .view()
            .electron(0, || panic!("contact Σ must be cached after SCF"))
            .unwrap();
        // Trajectory records the cache behaviour per iteration.
        assert!(out.trajectory[0].boundary_misses >= n_points);
    }

    #[test]
    fn variants_converge_to_same_answer() {
        let sim = sim();
        let mut cfg = ScfConfig {
            max_iterations: 8,
            tolerance: 1e-9,
            ..Default::default()
        };
        cfg.variant = SseVariant::Omen;
        let omen = run_scf(&sim, &cfg).unwrap();
        cfg.variant = SseVariant::Dace;
        let dace = run_scf(&sim, &cfg).unwrap();
        let rel = omen.electron.g_lesser.max_abs_diff(&dace.electron.g_lesser)
            / omen.electron.g_lesser.norm().max(1e-30);
        assert!(
            rel < 1e-10,
            "SCF fixed point must not depend on variant: {rel}"
        );
    }
}
