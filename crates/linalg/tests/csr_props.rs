//! Property tests for the CSR sparse kernels: the conversions must
//! roundtrip exactly, every product form must agree with the dense
//! reference to 1e-12 (only summation-order daylight at these sizes),
//! transposition must be an involution, and the degenerate inputs —
//! empty rows, all-zero matrices, density 0 and 1 — must behave.

use proptest::prelude::*;
use qt_linalg::{c64, Complex64, CsrMatrix, Matrix};

/// Deterministic dense matrix at roughly the requested density, derived
/// from the proptest-chosen seed (same LCG as the GEMM property tests).
fn sparse_dense(rows: usize, cols: usize, density: f64, seed: u64) -> Matrix {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    Matrix::from_fn(rows, cols, |_, _| {
        let keep = (next() + 1.0) / 2.0 < density;
        let (re, im) = (next(), next());
        if keep {
            c64(re, im)
        } else {
            Complex64::ZERO
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn from_dense_to_dense_roundtrips_exactly(
        rows in 1usize..24,
        cols in 1usize..24,
        density in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let dense = sparse_dense(rows, cols, density, seed);
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        // Exact: conversion moves values, it never rounds them.
        prop_assert_eq!(csr.to_dense().max_abs_diff(&dense), 0.0);
        // And a second conversion is bitwise-stable.
        prop_assert_eq!(CsrMatrix::from_dense(&csr.to_dense(), 0.0), csr);
    }

    #[test]
    fn spgemm_matches_dense_reference(
        m in 1usize..16,
        k in 1usize..16,
        n in 1usize..16,
        da in 0.0f64..=1.0,
        db in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let a = sparse_dense(m, k, da, seed);
        let b = sparse_dense(k, n, db, seed ^ 1);
        let got = CsrMatrix::from_dense(&a, 0.0)
            .mul_csr(&CsrMatrix::from_dense(&b, 0.0))
            .to_dense();
        prop_assert!(got.max_abs_diff(&a.matmul(&b)) < 1e-12);
    }

    #[test]
    fn csrmm_forms_match_dense_reference(
        m in 1usize..14,
        k in 1usize..14,
        n in 1usize..14,
        density in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let s_dense = sparse_dense(k, n, density, seed);
        let s = CsrMatrix::from_dense(&s_dense, 0.0);
        let left = sparse_dense(m, k, 1.0, seed ^ 2);
        let right = sparse_dense(n, m, 1.0, seed ^ 3);
        // Dense × sparse (scaled accumulate) against the dense product.
        let z = c64(0.5, -0.25);
        let mut got = sparse_dense(m, n, 1.0, seed ^ 4);
        let mut want = got.clone();
        s.rmul_dense_scaled_acc(&left, z, &mut got);
        want.axpy(z, &left.matmul(&s_dense));
        prop_assert!(got.max_abs_diff(&want) < 1e-12);
        // Sparse × dense.
        let got = s.mul_dense(&right);
        prop_assert!(got.max_abs_diff(&s_dense.matmul(&right)) < 1e-12);
        // Dense × sparse-dagger.
        let a2 = sparse_dense(m, n, 1.0, seed ^ 5);
        let mut got = sparse_dense(m, k, 1.0, seed ^ 6);
        let mut want = got.clone();
        s.rmul_dagger_scaled_acc(&a2, z, &mut got);
        want.axpy(z, &a2.matmul(&s_dense.dagger()));
        prop_assert!(got.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn transpose_is_an_involution(
        rows in 1usize..24,
        cols in 1usize..24,
        density in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let csr = CsrMatrix::from_dense(&sparse_dense(rows, cols, density, seed), 0.0);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn matvec_matches_dense(
        n in 1usize..24,
        density in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let dense = sparse_dense(n, n, density, seed);
        let x: Vec<Complex64> = sparse_dense(n, 1, 1.0, seed ^ 7).into_vec();
        let y = CsrMatrix::from_dense(&dense, 0.0).matvec(&x);
        for (i, yi) in y.iter().enumerate() {
            let want: Complex64 = (0..n).map(|j| dense[(i, j)] * x[j]).sum();
            prop_assert!((*yi - want).abs() < 1e-12);
        }
    }
}

/// Adversarial inputs the random sweep can miss.
#[test]
fn adversarial_shapes_and_densities() {
    // All-zero matrix: zero nnz, empty products at both extremes.
    let zero = CsrMatrix::from_dense(&Matrix::zeros(6, 4), 0.0);
    assert_eq!(zero.nnz(), 0);
    assert_eq!(zero.density(), 0.0);
    assert_eq!(zero.to_dense().max_abs(), 0.0);
    let b = sparse_dense(4, 5, 1.0, 42);
    assert_eq!(zero.mul_dense(&b).max_abs(), 0.0);
    assert_eq!(
        zero.mul_csr(&CsrMatrix::from_dense(&b, 0.0)).nnz(),
        0,
        "0 · B must stay structurally empty"
    );

    // Fully dense (density 1): CSR carries every entry and still agrees.
    let full_dense = sparse_dense(7, 7, 1.0, 7);
    let full = CsrMatrix::from_dense(&full_dense, 0.0);
    assert_eq!(full.nnz(), 49);
    assert!((full.density() - 1.0).abs() < 1e-15);
    let c = sparse_dense(7, 7, 1.0, 8);
    assert!(
        full.mul_dense(&c).max_abs_diff(&full_dense.matmul(&c)) < 1e-12,
        "density-1 CSRMM must match dense GEMM"
    );

    // Interior empty rows: first/middle/last rows all structurally empty.
    let mut holes = Matrix::zeros(5, 5);
    holes[(1, 3)] = c64(2.0, -1.0);
    holes[(3, 0)] = c64(-0.5, 0.25);
    let h = CsrMatrix::from_dense(&holes, 0.0);
    assert_eq!(h.nnz(), 2);
    assert_eq!(h.to_dense().max_abs_diff(&holes), 0.0);
    let hv = h.matvec(&[Complex64::ONE; 5]);
    assert_eq!(hv[0], Complex64::ZERO);
    assert_eq!(hv[1], c64(2.0, -1.0));
    assert_eq!(hv[4], Complex64::ZERO);
    assert_eq!(h.transpose().transpose(), h);

    // A 1×1 degenerate matrix through every op.
    let one = CsrMatrix::from_dense(&Matrix::from_fn(1, 1, |_, _| c64(3.0, 4.0)), 0.0);
    assert_eq!(one.nnz(), 1);
    let p = one.mul_csr(&one).to_dense();
    assert!((p[(0, 0)] - c64(-7.0, 24.0)).abs() < 1e-12);
}
