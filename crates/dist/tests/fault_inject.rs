//! Chaos tests (feature `fault-inject`): the distributed iteration must
//! survive a seeded schedule of dropped, corrupted, and delayed messages
//! plus a stalled rank, and still produce the fault-free answer.
#![cfg(feature = "fault-inject")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use qt_core::device::Device;
use qt_core::gf::GfConfig;
use qt_core::grids::Grids;
use qt_core::hamiltonian::{ElectronModel, PhononModel};
use qt_core::params::SimParams;
use qt_dist::runner::{distributed_iteration, distributed_iteration_with_faults};
use qt_dist::{run_world_with_faults, FaultPlan, RetryPolicy};
use qt_linalg::c64;

fn fixture() -> (SimParams, Device, ElectronModel, PhononModel, Grids) {
    let p = SimParams {
        nkz: 2,
        nqz: 2,
        ne: 12,
        nw: 2,
        na: 12,
        nb: 3,
        norb: 2,
        bnum: 4,
    };
    let dev = Device::new(&p);
    let em = ElectronModel::for_params(&p);
    let pm = PhononModel::default();
    let grids = Grids::new(&p, -1.2, 1.2);
    (p, dev, em, pm, grids)
}

/// Drops + corruption + a stalled rank: the ISSUE's headline scenario.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_drops(150)
        .with_corruption(100)
        .with_delays(50)
        .with_stalled_rank(1, Duration::from_millis(20))
}

#[test]
fn faulty_iteration_matches_fault_free_run() {
    let (p, dev, em, pm, grids) = fixture();
    let cfg = GfConfig::default();
    let clean = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, 2, 2).unwrap();
    let retries0 = qt_telemetry::counters::total_comm_retries();
    let faulty =
        distributed_iteration_with_faults(&p, &dev, &em, &pm, &grids, &cfg, 2, 2, chaos_plan(2024))
            .unwrap();
    // guarantee_delivery retransmits the exact payload, so the results are
    // bitwise identical — well inside the 1e-10 acceptance bound.
    for (name, a, b) in [
        ("sigma lesser", &clean.sigma.lesser, &faulty.sigma.lesser),
        ("sigma greater", &clean.sigma.greater, &faulty.sigma.greater),
        ("pi lesser", &clean.pi.lesser, &faulty.pi.lesser),
        ("pi greater", &clean.pi.greater, &faulty.pi.greater),
    ] {
        let rel = a.max_abs_diff(b) / a.norm().max(1e-30);
        assert!(rel <= 1e-10, "{name}: rel {rel}");
    }
    // Faults actually fired: the protocol retried, and retransmissions
    // cost extra wire bytes on top of the clean volume.
    assert!(
        qt_telemetry::counters::total_comm_retries() > retries0,
        "chaos plan must trigger retries"
    );
    assert!(
        faulty.sse_bytes > clean.sse_bytes,
        "retransmissions must cost bytes: faulty {} vs clean {}",
        faulty.sse_bytes,
        clean.sse_bytes
    );
}

#[test]
fn faulty_runs_are_deterministic() {
    let (p, dev, em, pm, grids) = fixture();
    let cfg = GfConfig::default();
    let run = || {
        distributed_iteration_with_faults(&p, &dev, &em, &pm, &grids, &cfg, 2, 2, chaos_plan(7))
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.sigma.lesser.as_slice(), b.sigma.lesser.as_slice());
    assert_eq!(a.sigma.greater.as_slice(), b.sigma.greater.as_slice());
    assert_eq!(
        a.comm.rank_sent, b.comm.rank_sent,
        "the fault schedule (and thus the retransmission traffic) is a pure function of the seed"
    );
}

#[test]
fn different_seeds_change_the_traffic() {
    let (p, dev, em, pm, grids) = fixture();
    let cfg = GfConfig::default();
    let bytes = |seed| {
        distributed_iteration_with_faults(&p, &dev, &em, &pm, &grids, &cfg, 2, 2, chaos_plan(seed))
            .unwrap()
            .sse_bytes
    };
    assert_ne!(bytes(1), bytes(2));
}

#[test]
fn collectives_survive_heavy_faults() {
    // Broadcast + allreduce + alltoallv under a 30% fault rate still
    // produce exact results on every rank.
    let plan = FaultPlan::new(11).with_drops(200).with_corruption(100);
    let out = run_world_with_faults(4, plan, |comm| {
        let b = comm.bcast(0, (comm.rank() == 0).then(|| vec![c64(2.5, 0.0); 3]), 1);
        let r = comm.allreduce_sum(vec![c64(1.0, comm.rank() as f64)], 2);
        let sendbufs = (0..4)
            .map(|dst| vec![c64(comm.rank() as f64, dst as f64); 2])
            .collect();
        let a = comm.alltoallv(sendbufs, 3);
        comm.barrier();
        let a_ok = (0..4).all(|src| a[src][0] == c64(src as f64, comm.rank() as f64));
        (b[0], r[0], a_ok)
    });
    for (b, r, a_ok) in out {
        assert_eq!(b, c64(2.5, 0.0));
        assert_eq!(r, c64(4.0, 6.0));
        assert!(a_ok);
    }
}

#[test]
fn retry_exhaustion_panics_when_delivery_not_guaranteed() {
    // Everything drops and the sender is only allowed two attempts: the
    // bounded-retry protocol must give up loudly, not hang.
    let plan = FaultPlan::new(3).with_drops(1000).with_retry(RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_micros(50),
        recv_timeout: Duration::from_millis(20),
        guarantee_delivery: false,
    });
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_world_with_faults(2, plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, vec![c64(1.0, 0.0)]);
            } else {
                comm.recv(0, 9);
            }
        })
    }));
    assert!(result.is_err(), "exhausted retries must surface as a panic");
}
