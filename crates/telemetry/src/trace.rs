//! Chrome/Perfetto `trace_event` export.
//!
//! Every closed span becomes one complete ("X") event; nesting is
//! reconstructed by the viewer from timestamps and durations per thread
//! track. Load the emitted file in `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

static TRACING: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Relaxed);
}

struct Event {
    name: Cow<'static, str>,
    ts_us: f64,
    dur_us: f64,
    tid: u64,
}

/// Track-id base for per-rank tracks: rank `r`'s slices land on tid
/// `RANK_TRACK_BASE + r`, far above the thread-local tids, so a trace
/// viewer shows one clean lane per world slot.
pub const RANK_TRACK_BASE: u64 = 1_000_000;

/// Turn trace-event buffering on or off. Turning it on pins the trace
/// epoch (timestamp zero) if not already set.
pub fn set_tracing(on: bool) {
    if on {
        let _ = EPOCH.set(Instant::now());
    }
    TRACING.store(on, Relaxed);
}

/// Is trace-event buffering enabled?
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Relaxed)
}

/// Append one complete event for a span that started at `t0` and ran for
/// `dur_ns`. No-op unless tracing is enabled.
pub fn record_event(name: &'static str, t0: Instant, dur_ns: u64) {
    record_on_track(Cow::Borrowed(name), t0, dur_ns, TID.with(|t| *t));
}

/// Append one complete event on the dedicated track of world slot `rank`
/// (tid `RANK_TRACK_BASE + rank`) — used for unit-granularity compute
/// slices so the trace shows one lane per rank regardless of which OS
/// thread backed it. Owned names allow per-unit labels like
/// `"sse/unit/7"`. No-op unless tracing is enabled.
pub fn record_rank_event(name: String, rank: usize, t0: Instant, dur_ns: u64) {
    record_on_track(Cow::Owned(name), t0, dur_ns, RANK_TRACK_BASE + rank as u64);
}

fn record_on_track(name: Cow<'static, str>, t0: Instant, dur_ns: u64, tid: u64) {
    if !tracing_enabled() {
        return;
    }
    let epoch = *EPOCH.get_or_init(Instant::now);
    let ts_us = t0.saturating_duration_since(epoch).as_nanos() as f64 / 1e3;
    EVENTS.lock().unwrap().push(Event {
        name,
        ts_us,
        dur_us: dur_ns as f64 / 1e3,
        tid,
    });
}

/// Discard all buffered events.
pub fn clear_trace() {
    EVENTS.lock().unwrap().clear();
}

/// Number of buffered events.
pub fn event_count() -> usize {
    EVENTS.lock().unwrap().len()
}

/// Serialise the buffered events as Chrome `trace_event` JSON (object
/// format, complete events).
pub fn export_chrome_trace() -> String {
    let events = EVENTS.lock().unwrap();
    let items: Vec<Json> = events
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(e.name.to_string())),
                (
                    "cat".to_string(),
                    Json::Str(category_of(&e.name).to_string()),
                ),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("ts".to_string(), Json::Num(e.ts_us)),
                ("dur".to_string(), Json::Num(e.dur_us)),
                ("pid".to_string(), Json::Num(1.0)),
                ("tid".to_string(), Json::Num(e.tid as f64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(items)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
    .dump()
}

/// Check that `json` parses as a Chrome trace with at least one complete
/// event, returning the event count. Used by the CI smoke job.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let trace = Json::parse(json).map_err(|e| format!("trace does not parse: {e}"))?;
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("trace has no traceEvents array")?;
    if events.is_empty() {
        return Err("trace has no events".into());
    }
    for ev in events {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or("event without name")?;
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            return Err(format!("event {name:?} is not a complete event"));
        }
        for field in ["ts", "dur"] {
            let v = ev
                .get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {name:?} lacks {field}"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("event {name:?} has bad {field} {v}"));
            }
        }
        if ev.get("tid").and_then(Json::as_u64).is_none() {
            return Err(format!("event {name:?} lacks tid"));
        }
    }
    Ok(events.len())
}

/// First path segment, used as the event category (`sse/sigma/dace` →
/// `sse`).
fn category_of(name: &str) -> &str {
    name.split(['/', '.']).next().unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_roundtrips_through_validation() {
        set_tracing(true);
        record_event("test/trace/a", Instant::now(), 1_500);
        record_event("test/trace/b", Instant::now(), 2_500);
        set_tracing(false);
        let json = export_chrome_trace();
        let n = validate_chrome_trace(&json).unwrap();
        assert!(n >= 2);
    }

    #[test]
    fn rank_events_land_on_rank_tracks() {
        set_tracing(true);
        record_rank_event("sse/unit/7".to_string(), 3, Instant::now(), 900);
        set_tracing(false);
        let json = export_chrome_trace();
        validate_chrome_trace(&json).unwrap();
        let trace = Json::parse(&json).unwrap();
        let events = trace.get("traceEvents").and_then(Json::as_array).unwrap();
        let ev = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("sse/unit/7"))
            .expect("rank event exported");
        assert_eq!(
            ev.get("tid").and_then(Json::as_u64),
            Some(RANK_TRACK_BASE + 3)
        );
    }

    #[test]
    fn categories_split_on_both_separators() {
        assert_eq!(category_of("sse/sigma/dace"), "sse");
        assert_eq!(category_of("gemm.pack"), "gemm");
        assert_eq!(category_of("scf"), "scf");
    }

    #[test]
    fn validation_rejects_eventless_trace() {
        assert!(validate_chrome_trace(r#"{"traceEvents": []}"#).is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }
}
