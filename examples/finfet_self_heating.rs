//! Self-heating in a biased FinFET slice — the motivating physics of the
//! paper (Fig. 1d): solve the coupled electron-phonon NEGF problem under a
//! drain-source bias and print the atomically-resolved dissipated power /
//! temperature map — the non-uniform heating profile along the channel
//! (where the hot spot sits depends on the band structure; the synthetic
//! device heats most strongly near the high-field injection region).
//!
//! ```sh
//! cargo run --release --example finfet_self_heating
//! ```

use dace_omen::prelude::*;

fn main() {
    // A longer channel so the spatial profile is visible: 12 slabs of 4
    // atoms.
    let params = SimParams {
        nkz: 3,
        nqz: 3,
        ne: 24,
        nw: 4,
        na: 48,
        nb: 4,
        norb: 2,
        bnum: 12,
    };
    let sim = Simulation::new(params, -1.2, 1.2);
    let mut cfg = ScfConfig {
        max_iterations: 35,
        tolerance: 1e-6,
        variant: SseVariant::Dace,
        ..Default::default()
    };
    // Source-drain bias: electrons flow left -> right and lose energy to
    // the lattice on the way.
    cfg.gf.contacts = Contacts {
        mu_left: 0.35,
        mu_right: -0.35,
        temperature: 300.0,
        ..Contacts::default()
    };

    println!("== FinFET self-heating (Fig. 1d reproduction) ==");
    let result = run_scf(&sim, &cfg).expect("SCF solve");
    println!(
        "SCF: converged={} in {} iterations, I = {:.6}",
        result.converged,
        result.iterations,
        result.current_history.last().unwrap()
    );

    let power =
        observables::dissipated_power_per_atom(&sim.p, &sim.grids, &result.sigma, &result.electron);
    let temp = observables::temperature_map(&power, 300.0, 100.0);

    // Average per transport slab (source at slab 0, drain at the end).
    let apb = sim.dev.atoms_per_slab;
    println!("\nslab   <power>      <T> [K]   profile");
    let mut slab_t = Vec::new();
    for s in 0..sim.p.bnum {
        let atoms = s * apb..(s + 1) * apb;
        let p_avg: f64 = atoms.clone().map(|a| power[a]).sum::<f64>() / apb as f64;
        let t_avg: f64 = atoms.map(|a| temp[a]).sum::<f64>() / apb as f64;
        slab_t.push(t_avg);
        let bar = "#".repeat(((t_avg - 300.0) / 2.5) as usize);
        println!("{s:>4}   {p_avg:+9.3e}   {t_avg:7.2}   {bar}");
    }

    // Where is the hot spot?
    let hottest = slab_t
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    println!(
        "\nhottest slab: {hottest} of {} (source=0, drain={})",
        sim.p.bnum,
        sim.p.bnum - 1
    );
    println!(
        "energy current into the phonon bath: {:.3e}",
        result.phonon.energy_current
    );
}
