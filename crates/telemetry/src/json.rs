//! Minimal JSON value tree, writer and parser.
//!
//! `qt-telemetry` sits below every other crate in the workspace and must
//! stay dependency-free, so the report and trace formats are built on
//! this ~200-line subset instead of serde: enough for flat records of
//! numbers, strings, booleans and nulls — which is all the telemetry
//! schemas contain.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer value, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialise with two-space indentation.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON cannot encode Inf/NaN; the schemas guarantee finiteness
        // upstream, so this is a defensive fallback.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_value() {
        let v = Json::Obj(vec![
            (
                "name".to_string(),
                Json::Str("sse/sigma \"dace\"".to_string()),
            ),
            ("count".to_string(), Json::Num(42.0)),
            ("ratio".to_string(), Json::Num(0.125)),
            ("ok".to_string(), Json::Bool(true)),
            ("missing".to_string(), Json::Null),
            (
                "items".to_string(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5e-3)]),
            ),
            ("empty".to_string(), Json::Arr(vec![])),
        ]);
        let text = v.dump();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn accessors_extract_fields() {
        let v = Json::parse(r#"{"a": 3, "b": "x", "c": [1, 2], "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert!(v.get("e").is_none());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("line\nbreak\ttab \\ \"q\" \u{1}".to_string());
        assert_eq!(Json::parse(&v.dump()).unwrap(), v);
    }

    #[test]
    fn large_integers_stay_exact() {
        let n = 9_007_199_254_740_992u64; // 2^53
        let v = Json::Num(1_234_567_890_123.0);
        assert_eq!(
            Json::parse(&v.dump()).unwrap().as_u64(),
            Some(1_234_567_890_123)
        );
        let big = Json::Num(n as f64);
        assert_eq!(Json::parse(&big.dump()).unwrap().as_u64(), Some(n));
    }
}
