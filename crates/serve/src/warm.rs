//! Per-variant warm-start store.
//!
//! Every converged bias point deposits its self-energies here; a later
//! point of the same variant seeds its Born iteration from the nearest
//! deposited bias. Seeds are shared behind `Arc` — depositing never
//! copies tensors, and a lookup clones only at the solver boundary
//! (`ScfOptions::warm` takes owned state).
//!
//! The store is **bounded**: each seed holds full Σ/Π tensors, so an
//! unbounded store would grow service memory with every distinct bias a
//! long-running deployment ever sees. At `capacity` a deposit evicts one
//! entry, chosen to preserve *bias-space coverage* rather than recency
//! alone: the victim is the entry whose nearest neighbor (among the other
//! entries and the incoming bias) is closest — the most redundant seed —
//! with deposit age breaking ties (evict oldest). Well-spread biases
//! survive; crowded duplicates and stale near-duplicates go first.

use std::sync::{Arc, Mutex};

use qt_core::scf::WarmStart;

struct Entry {
    bias: f64,
    /// Monotone deposit sequence number (older = smaller).
    age: u64,
    seed: Arc<WarmStart>,
}

struct Inner {
    entries: Vec<Entry>,
    next_age: u64,
}

/// Bounded nearest-bias warm-start store for one device variant.
pub struct WarmStore {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl Default for WarmStore {
    fn default() -> Self {
        WarmStore::with_capacity(16)
    }
}

impl WarmStore {
    pub fn new() -> Self {
        WarmStore::default()
    }

    /// A store retaining at most `capacity` seeds (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        WarmStore {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                next_age: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of retained seeds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deposit the converged state of `bias`. Replaces an existing entry
    /// at the same bias (latest solve wins); at capacity, evicts the most
    /// redundant entry (smallest nearest-neighbor gap in bias space,
    /// oldest on ties) and counts the eviction. Non-finite biases are
    /// ignored — they must never enter nearest-neighbor comparisons.
    pub fn deposit(&self, bias: f64, seed: Arc<WarmStart>) {
        if !bias.is_finite() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let age = inner.next_age;
        inner.next_age += 1;
        if let Some(slot) = inner.entries.iter_mut().find(|e| e.bias == bias) {
            slot.seed = seed;
            slot.age = age;
            return;
        }
        if inner.entries.len() >= self.capacity {
            let victim = most_redundant(&inner.entries, bias);
            inner.entries.swap_remove(victim);
            qt_telemetry::counters::add_service_warm_evicted();
        }
        inner.entries.push(Entry { bias, age, seed });
    }

    /// The seed whose bias is nearest to `bias`, if any. `bias` must be
    /// finite (enforced upstream at [`crate::Service::submit`]); a
    /// non-finite probe returns `None` instead of poisoning the
    /// comparison.
    pub fn nearest(&self, bias: f64) -> Option<(f64, Arc<WarmStart>)> {
        if !bias.is_finite() {
            return None;
        }
        let inner = self.inner.lock().unwrap();
        inner
            .entries
            .iter()
            .min_by(|a, b| (a.bias - bias).abs().total_cmp(&(b.bias - bias).abs()))
            .map(|e| (e.bias, e.seed.clone()))
    }

    /// Number of deposited seeds.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained biases, ascending (diagnostics/tests).
    pub fn biases(&self) -> Vec<f64> {
        let inner = self.inner.lock().unwrap();
        let mut b: Vec<f64> = inner.entries.iter().map(|e| e.bias).collect();
        b.sort_by(f64::total_cmp);
        b
    }
}

/// Index of the entry to evict so the surviving set (plus `incoming`)
/// stays maximally spread: the entry with the smallest distance to its
/// nearest neighbor (other entries and the incoming bias all count as
/// neighbors), oldest on ties.
fn most_redundant(entries: &[Entry], incoming: f64) -> usize {
    let mut victim = 0;
    let mut victim_gap = f64::INFINITY;
    for (i, e) in entries.iter().enumerate() {
        let mut gap = (e.bias - incoming).abs();
        for (j, o) in entries.iter().enumerate() {
            if j != i {
                gap = gap.min((e.bias - o.bias).abs());
            }
        }
        let crowded = gap < victim_gap;
        let older_tie = gap == victim_gap && e.age < entries[victim].age;
        if crowded || older_tie {
            victim = i;
            victim_gap = gap;
        }
    }
    victim
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_core::gf::{ElectronSelfEnergy, PhononSelfEnergy};
    use qt_core::params::SimParams;

    fn seed() -> Arc<WarmStart> {
        let p = SimParams {
            nkz: 1,
            nqz: 1,
            ne: 2,
            nw: 1,
            na: 4,
            nb: 2,
            norb: 1,
            bnum: 2,
        };
        Arc::new(WarmStart {
            sigma: ElectronSelfEnergy::zeros(&p),
            pi: PhononSelfEnergy::zeros(&p),
        })
    }

    #[test]
    fn nearest_picks_the_closest_bias_and_deposit_replaces() {
        let store = WarmStore::new();
        assert!(store.nearest(0.1).is_none());
        store.deposit(0.0, seed());
        store.deposit(0.4, seed());
        assert_eq!(store.nearest(0.1).unwrap().0, 0.0);
        assert_eq!(store.nearest(0.3).unwrap().0, 0.4);
        let replacement = seed();
        store.deposit(0.4, replacement.clone());
        assert_eq!(store.len(), 2, "same-bias deposit replaces, not appends");
        assert!(Arc::ptr_eq(&store.nearest(0.39).unwrap().1, &replacement));
    }

    #[test]
    fn capacity_bounds_the_store_and_eviction_keeps_the_spread() {
        let store = WarmStore::with_capacity(3);
        let before = qt_telemetry::counters::total_service_warm_evicted();
        store.deposit(0.0, seed());
        store.deposit(1.0, seed());
        store.deposit(0.98, seed()); // crowds 1.0
        assert_eq!(store.len(), 3);
        assert_eq!(
            qt_telemetry::counters::total_service_warm_evicted(),
            before,
            "no eviction below capacity"
        );
        // A fourth, well-separated bias must evict one of the crowded
        // pair (0.98 is older than nothing — 0.98 and 1.0 have the same
        // min-gap, so the older of the two goes: 1.0).
        store.deposit(0.5, seed());
        assert_eq!(store.len(), 3, "store must stay at capacity");
        assert!(
            qt_telemetry::counters::total_service_warm_evicted() >= before + 1,
            "eviction must be counted"
        );
        let biases = store.biases();
        assert!(biases.contains(&0.0), "spread endpoint 0.0 must survive");
        assert!(biases.contains(&0.5), "the incoming bias is retained");
        assert_eq!(
            biases.iter().filter(|&&b| b == 0.98 || b == 1.0).count(),
            1,
            "exactly one of the crowded pair survives, got {biases:?}"
        );
    }

    #[test]
    fn eviction_prefers_the_oldest_on_gap_ties() {
        let store = WarmStore::with_capacity(2);
        store.deposit(0.0, seed()); // age 0
        store.deposit(1.0, seed()); // age 1
                                    // Incoming 0.5 is equidistant: both entries tie on min-gap (1.0
                                    // against each other... 0.0↔1.0 gap 1.0, each ↔0.5 gap 0.5 —
                                    // symmetric), so the oldest (0.0) goes.
        store.deposit(0.5, seed());
        let biases = store.biases();
        assert_eq!(biases, vec![0.5, 1.0], "oldest entry evicted on ties");
    }

    #[test]
    fn non_finite_probes_and_deposits_are_inert() {
        let store = WarmStore::new();
        store.deposit(0.2, seed());
        assert!(store.nearest(f64::NAN).is_none());
        assert!(store.nearest(f64::INFINITY).is_none());
        store.deposit(f64::NAN, seed());
        store.deposit(f64::NEG_INFINITY, seed());
        assert_eq!(store.len(), 1, "non-finite biases must never be stored");
        assert_eq!(store.nearest(0.0).unwrap().0, 0.2);
    }
}
