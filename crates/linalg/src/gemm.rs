//! Complex GEMM kernels — the blocked, packed, register-tiled hot path.
//!
//! Every flop of the simulator funnels through this module (the paper's
//! central claim is that after the data-centric transformations both RGF and
//! the SSE kernels are *GEMM-bound*, §4.2/Fig. 11c), so the kernel is built
//! as a BLIS-style hierarchy instead of a naive triple loop:
//!
//! * an outer **macro-kernel** tiles `(MC, KC, NC)` so the packed A-panel
//!   stays L2-resident and the packed B-panel streams from L3;
//! * operand panels are **packed** into contiguous buffers with the real and
//!   imaginary lanes split per k-slice, so the register kernel vectorizes as
//!   plain f64 FMAs (no interleaved-complex shuffles). Packing buffers come
//!   from a thread-local pool and are reused across calls;
//! * the inner **microkernel** holds an `MR x NR` block of C in registers
//!   (split re/im accumulators) and performs a rank-1 update per k-slice;
//! * rayon parallelism runs over MC-aligned macro-tile row bands of C, with
//!   the packed B-panel shared read-only between workers.
//!
//! Packing is also where operand *layout adapters* live, so the specialized
//! entry points cost nothing extra:
//!
//! * [`gemm_bdagger_acc`] packs `B^H` during the packing step (conjugate
//!   transpose is free — a strided read it would have paid anyway);
//! * [`gemm_window_acc`] packs the `ω`-window of consecutive `no x no`
//!   blocks as the horizontally-concatenated `no x win·no` operand of the
//!   paper's single fused GEMM (Fig. 11c), replacing a loop of tiny products;
//! * [`batched_gemm_acc`] runs same-shape batch items through the packed
//!   path in per-thread chunks so the pooled buffers amortize across items.
//!
//! The pre-existing i-k-j kernels are kept verbatim as `gemm_naive_*`
//! reference implementations: they anchor the proptest correctness suite,
//! the `gemm_sweep` benchmark baseline, and serve as the fallback below the
//! calibrated [`NAIVE_THRESHOLD`].

use crate::complex::{c64, Complex64};
use crate::dense::Matrix;
use crate::flops;
use rayon::prelude::*;

/// Rows of C held in registers by the microkernel. With `NR = 4` the tile is
/// 16 complex accumulators = 32 f64 — exactly the 16 × 256-bit register file
/// of AVX2, the widest baseline we target without feature detection.
pub const MR: usize = 4;
/// Columns of C held in registers by the microkernel.
pub const NR: usize = 4;
/// Rows of the packed A-panel (`MC x KC` complex = 256 KiB, L2-resident).
pub const MC: usize = 64;
/// Depth of one packing pass.
pub const KC: usize = 256;
/// Columns of the packed B-panel (`KC x NC` complex = 4 MiB, L3-resident).
pub const NC: usize = 1024;

/// Below this many complex multiply-adds the product stays single-threaded.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Below this many complex multiply-adds (or when a dimension cannot fill a
/// register tile) the naive kernel wins: packing costs `O(mk + kn)` writes
/// that only amortize once the `O(mkn)` compute dominates. Calibrated on the
/// 8×8×8 crossover measured by the `gemm_sweep` bench.
const NAIVE_THRESHOLD: usize = 8 * 8 * 8;

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// `out = a @ b` (out must be zero- or garbage-initialized; it is overwritten).
pub fn gemm(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    out.fill_zero();
    gemm_acc(a, b, out);
}

/// `out += a @ b`.
pub fn gemm_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "inner dimension mismatch");
    assert_eq!(out.shape(), (m, n), "output shape mismatch");
    gemm_raw_acc(m, k, n, a.as_slice(), b.as_slice(), out.as_mut_slice());
}

/// Slice-level `out[m x n] += a[m x k] @ b[k x n]`, all row-major.
pub fn gemm_raw_acc(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    flops::add_gemm_flops_batched(m, k, n, 1);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let work = m * k * n;
    if work < NAIVE_THRESHOLD || m < MR || n < NR {
        gemm_naive_acc(m, k, n, a, b, out);
    } else {
        gemm_blocked::<true>(
            m,
            k,
            n,
            PanelA::Rows { a, ld: k },
            PanelB::Rows { b, ld: n },
            out,
            Complex64::ONE,
            work >= PAR_THRESHOLD,
        );
    }
}

/// `out += scale · (a @ b)`, slice-level and row-major like
/// [`gemm_raw_acc`]. The scale rides the blocked kernel's existing
/// accumulate-with-scale epilogue (the same mechanism
/// [`gemm_window_acc`] uses), so `C −= A·B` chains in RGF cost one GEMM
/// instead of a product, a temporary and a subtraction.
pub fn gemm_scaled_acc(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
    scale: Complex64,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    flops::add_gemm_flops_batched(m, k, n, 1);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let work = m * k * n;
    if work < NAIVE_THRESHOLD || m < MR || n < NR {
        gemm_naive_scaled_acc(m, k, n, a, b, out, scale);
    } else {
        gemm_blocked::<true>(
            m,
            k,
            n,
            PanelA::Rows { a, ld: k },
            PanelB::Rows { b, ld: n },
            out,
            scale,
            work >= PAR_THRESHOLD,
        );
    }
}

/// `out += scale · (a @ b^H)` with `b` stored row-major as `n x k` — the
/// scaled sibling of [`gemm_bdagger_acc`] for RGF's `−X·G^dagger` terms.
pub fn gemm_bdagger_scaled_acc(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
    scale: Complex64,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    flops::add_gemm_flops_batched(m, k, n, 1);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let work = m * k * n;
    if work < NAIVE_THRESHOLD || m < MR || n < NR {
        gemm_naive_bdagger_scaled_acc(m, k, n, a, b, out, scale);
    } else {
        gemm_blocked::<true>(
            m,
            k,
            n,
            PanelA::Rows { a, ld: k },
            PanelB::Dagger { b, ld: k },
            out,
            scale,
            work >= PAR_THRESHOLD,
        );
    }
}

/// `out += a @ b` through the blocked/packed path unconditionally — the
/// entry the proptest suite and the `gemm_sweep` bench use so the microkernel
/// is exercised even at shapes the dispatcher would route to the naive
/// fallback.
pub fn gemm_blocked_acc(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    flops::add_gemm_flops_batched(m, k, n, 1);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    gemm_blocked::<true>(
        m,
        k,
        n,
        PanelA::Rows { a, ld: k },
        PanelB::Rows { b, ld: n },
        out,
        Complex64::ONE,
        m * k * n >= PAR_THRESHOLD,
    );
}

/// `out += a @ b` through the blocked/packed path with the telemetry
/// hot-section timers compiled out (`INSTRUMENT = false`) and no flop
/// accounting. This is the honest baseline for the telemetry-overhead
/// comparison: `gemm_blocked_acc` with telemetry *disabled* must stay
/// within noise of this monomorphization with telemetry *absent*.
pub fn gemm_blocked_acc_uninstrumented(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    gemm_blocked::<false>(
        m,
        k,
        n,
        PanelA::Rows { a, ld: k },
        PanelB::Rows { b, ld: n },
        out,
        Complex64::ONE,
        m * k * n >= PAR_THRESHOLD,
    );
}

/// `out[idx] += a[idx] @ b[idx]` for a batch of equally-shaped small
/// matrices packed contiguously (each `m x k`, `k x n`, `m x n`).
///
/// Batch items are grouped into per-thread chunks so the packed panels of
/// the blocked kernel amortize their pooled buffers across many tiny
/// `Norb x Norb` products — the untransformed-SSE hot loop.
pub fn batched_gemm_acc(
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
) {
    assert_eq!(a.len(), batch * m * k);
    assert_eq!(b.len(), batch * k * n);
    assert_eq!(out.len(), batch * m * n);
    flops::add_gemm_flops_batched(m, k, n, batch);
    if batch == 0 || m == 0 || k == 0 || n == 0 {
        return;
    }
    let per = m * k * n;
    let use_blocked = m >= MR && n >= NR && per >= NAIVE_THRESHOLD;
    let item = |at: &[Complex64], bt: &[Complex64], ot: &mut [Complex64]| {
        if use_blocked {
            gemm_blocked::<true>(
                m,
                k,
                n,
                PanelA::Rows { a: at, ld: k },
                PanelB::Rows { b: bt, ld: n },
                ot,
                Complex64::ONE,
                false,
            );
        } else {
            gemm_naive_acc(m, k, n, at, bt, ot);
        }
    };
    if per * batch >= PAR_THRESHOLD && batch > 1 {
        // Chunks of consecutive items per rayon task: each task reuses its
        // thread's pooled packing buffers across the whole chunk.
        let chunk = batch
            .div_ceil(rayon::current_num_threads().max(1) * 4)
            .max(1);
        out.par_chunks_mut(chunk * m * n)
            .enumerate()
            .for_each(|(ci, oc)| {
                let t0 = ci * chunk;
                for (ti, ot) in oc.chunks_mut(m * n).enumerate() {
                    let t = t0 + ti;
                    item(
                        &a[t * m * k..(t + 1) * m * k],
                        &b[t * k * n..(t + 1) * k * n],
                        ot,
                    );
                }
            });
    } else {
        for t in 0..batch {
            item(
                &a[t * m * k..(t + 1) * m * k],
                &b[t * k * n..(t + 1) * k * n],
                &mut out[t * m * n..(t + 1) * m * n],
            );
        }
    }
}

/// `out += scale · (a_view @ b)` where `a_view` is an `m x k` row-major view
/// with row stride `lda >= k` into a larger matrix, while `b` (`k x n`) and
/// `out` (`m x n`) are contiguous. Serial and uninstrumented — no flop
/// accounting, no hot-section timers — because it is the internal building
/// block of the blocked LU substitution, whose flops the LU entry points
/// already account in closed form (double-counting would break the exact
/// model residuals).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_view_a_scaled_acc_uninstrumented(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    lda: usize,
    b: &[Complex64],
    out: &mut [Complex64],
    scale: Complex64,
) {
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    gemm_view_abc_scaled_acc_uninstrumented(m, k, n, a, lda, b, n, out, n, scale);
}

/// `c += scale · (a_view @ b_view)` where all three operands are row-major
/// views with independent row strides into larger buffers. This is the
/// in-place trailing update of the blocked LU factorization
/// (`A22 −= L21 · U12` inside one packed-factor buffer), which needs a
/// strided C on top of [`gemm_view_a_scaled_acc_uninstrumented`]'s strided
/// A. Serial and uninstrumented for the same reason: LU accounts its flops
/// in closed form.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_view_abc_scaled_acc_uninstrumented(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    lda: usize,
    b: &[Complex64],
    ldb: usize,
    c: &mut [Complex64],
    ldc: usize,
    scale: Complex64,
) {
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    debug_assert!(lda >= k && a.len() >= (m - 1) * lda + k);
    debug_assert!(ldb >= n && b.len() >= (k - 1) * ldb + n);
    debug_assert!(ldc >= n && c.len() >= (m - 1) * ldc + n);
    if m * k * n < NAIVE_THRESHOLD || m < MR || n < NR {
        for i in 0..m {
            let a_row = &a[i * lda..i * lda + k];
            let c_row = &mut c[i * ldc..i * ldc + n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == Complex64::ZERO {
                    continue;
                }
                let av = a_ip * scale;
                let b_row = &b[p * ldb..p * ldb + n];
                for (o, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *o = o.mul_add(av, bv);
                }
            }
        }
        return;
    }
    // The same macro/micro pipeline as `gemm_blocked`, with the C row
    // stride decoupled from the logical width.
    let mut jc = 0;
    while jc < n {
        let nc = (n - jc).min(NC);
        let nc_pad = nc.next_multiple_of(NR);
        let mut pc = 0;
        while pc < k {
            let kc = (k - pc).min(KC);
            let mut b_buf = pack_pool::take(nc_pad * kc * 2);
            pack_b(PanelB::Rows { b, ld: ldb }, pc, kc, jc, nc, &mut b_buf);
            let mut ic = 0;
            while ic < m {
                let mc = (m - ic).min(MC);
                process_band::<false>(
                    PanelA::Rows { a, ld: lda },
                    ic,
                    mc,
                    pc,
                    kc,
                    nc,
                    &b_buf,
                    &mut c[ic * ldc + jc..],
                    ldc,
                    scale,
                );
                ic += MC;
            }
            pack_pool::give(b_buf);
            pc += kc;
        }
        jc += NC;
    }
}

/// Batched GEMM with one *shared* right operand: `out[t] += a[t] @ b` for
/// `batch` stacked row-major `m x k` items against a single `k x n` B.
///
/// This is the schedule the SSE σ rescheduling lowers to: after flipping
/// the (energy, ω) loops, every energy in a window multiplies the *same*
/// `D(q, ω)` block, so the batch degenerates into one packed
/// `batch·m x k x n` product — the stacked A items are literally the
/// row-major left operand. One packing pass serves the whole batch
/// (cheaper than [`batched_gemm_acc`]'s per-item packing), and the flop
/// count is identical: `8·batch·m·k·n`.
pub fn batched_gemm_shared_b_acc(
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
) {
    assert_eq!(a.len(), batch * m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), batch * m * n);
    gemm_raw_acc(batch * m, k, n, a, b, out);
}

/// [`batched_gemm_shared_b_acc`] with the scale riding the accumulate
/// epilogue: `out[t] += scale · (a[t] @ b)` for every item of the batch.
#[allow(clippy::too_many_arguments)]
pub fn batched_gemm_shared_b_scaled_acc(
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
    scale: Complex64,
) {
    assert_eq!(a.len(), batch * m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), batch * m * n);
    gemm_scaled_acc(batch * m, k, n, a, b, out, scale);
}

/// `out += a @ b^H` (`out[m x n] += a[m x k] @ b^H`, with `b` stored
/// row-major as `n x k`). The conjugate transpose happens while packing the
/// B-panel, so it costs nothing beyond the strided reads packing performs
/// anyway — `B^H` is never materialized.
pub fn gemm_bdagger_acc(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    flops::add_gemm_flops_batched(m, k, n, 1);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let work = m * k * n;
    if work < NAIVE_THRESHOLD || m < MR || n < NR {
        gemm_naive_bdagger_acc(m, k, n, a, b, out);
    } else {
        gemm_blocked::<true>(
            m,
            k,
            n,
            PanelA::Rows { a, ld: k },
            PanelB::Dagger { b, ld: k },
            out,
            Complex64::ONE,
            work >= PAR_THRESHOLD,
        );
    }
}

/// Windowed batched product: `out += scale · Σ_w A_w @ B_w` over `win`
/// consecutive row-major `no x no` blocks of `a_blocks` / `b_blocks`.
///
/// This is the paper's Fig. 11c GEMM substitution executed literally: the
/// stacked B blocks *are* the row-major `win·no x no` right operand, and the
/// A blocks are packed as the horizontally-concatenated `no x win·no` left
/// operand ([`PanelA::BlockCat`]), so the whole ω-window collapses into one
/// `no x win·no x no` packed product instead of `win` tiny GEMMs.
pub fn gemm_window_acc(
    no: usize,
    win: usize,
    a_blocks: &[Complex64],
    b_blocks: &[Complex64],
    out: &mut [Complex64],
    scale: Complex64,
) {
    debug_assert_eq!(a_blocks.len(), win * no * no);
    debug_assert_eq!(b_blocks.len(), win * no * no);
    debug_assert_eq!(out.len(), no * no);
    flops::add_gemm_flops_batched(no, win * no, no, 1);
    if no == 0 || win == 0 {
        return;
    }
    let work = no * no * no * win;
    if work < NAIVE_THRESHOLD || no < MR {
        gemm_naive_window_acc(no, win, a_blocks, b_blocks, out, scale);
    } else {
        gemm_window_blocked_acc_inner(
            no,
            win,
            a_blocks,
            b_blocks,
            out,
            scale,
            work >= PAR_THRESHOLD,
        );
    }
}

/// [`gemm_window_acc`] through the blocked path unconditionally (testing /
/// benchmarking entry, like [`gemm_blocked_acc`]).
pub fn gemm_window_blocked_acc(
    no: usize,
    win: usize,
    a_blocks: &[Complex64],
    b_blocks: &[Complex64],
    out: &mut [Complex64],
    scale: Complex64,
) {
    debug_assert_eq!(a_blocks.len(), win * no * no);
    debug_assert_eq!(b_blocks.len(), win * no * no);
    debug_assert_eq!(out.len(), no * no);
    flops::add_gemm_flops_batched(no, win * no, no, 1);
    if no == 0 || win == 0 {
        return;
    }
    gemm_window_blocked_acc_inner(no, win, a_blocks, b_blocks, out, scale, false);
}

fn gemm_window_blocked_acc_inner(
    no: usize,
    win: usize,
    a_blocks: &[Complex64],
    b_blocks: &[Complex64],
    out: &mut [Complex64],
    scale: Complex64,
    parallel: bool,
) {
    gemm_blocked::<true>(
        no,
        win * no,
        no,
        PanelA::BlockCat { a: a_blocks, no },
        // Stacked row-major `no x no` blocks are exactly row-major
        // `win·no x no`.
        PanelB::Rows {
            b: b_blocks,
            ld: no,
        },
        out,
        scale,
        parallel,
    );
}

// ---------------------------------------------------------------------------
// Naive reference kernels (seed implementation, kept verbatim)
// ---------------------------------------------------------------------------

/// Naive serial `i-k-j` kernel: `out[m x n] += a[m x k] @ b[k x n]`.
/// Reference implementation for tests/benches and small-size fallback.
pub fn gemm_naive_acc(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == Complex64::ZERO {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o = o.mul_add(a_ip, b_pj);
            }
        }
    }
}

/// Naive serial `out += a @ b^H` with `b` stored row-major as `n x k`.
pub fn gemm_naive_bdagger_acc(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = Complex64::ZERO;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc = acc.mul_add(x, y.conj());
            }
            out[i * n + j] += acc;
        }
    }
}

/// Naive serial reference for [`gemm_scaled_acc`]: per-entry dot product
/// accumulated unscaled, then folded into `out` with the scale — the same
/// epilogue order as the blocked kernel.
pub fn gemm_naive_scaled_acc(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
    scale: Complex64,
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let mut acc = Complex64::ZERO;
            for (p, &a_ip) in a_row.iter().enumerate() {
                acc = acc.mul_add(a_ip, b[p * n + j]);
            }
            out[i * n + j] += acc * scale;
        }
    }
}

/// Naive serial reference for [`gemm_bdagger_scaled_acc`].
pub fn gemm_naive_bdagger_scaled_acc(
    m: usize,
    k: usize,
    n: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
    scale: Complex64,
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = Complex64::ZERO;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc = acc.mul_add(x, y.conj());
            }
            out[i * n + j] += acc * scale;
        }
    }
}

/// Naive serial loop-of-products reference for [`batched_gemm_acc`].
pub fn gemm_naive_batched_acc(
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
) {
    for t in 0..batch {
        gemm_naive_acc(
            m,
            k,
            n,
            &a[t * m * k..(t + 1) * m * k],
            &b[t * k * n..(t + 1) * k * n],
            &mut out[t * m * n..(t + 1) * m * n],
        );
    }
}

/// Naive reference for [`gemm_window_acc`]: a loop of `win` small products
/// accumulated and scaled at the end.
pub fn gemm_naive_window_acc(
    no: usize,
    win: usize,
    a_blocks: &[Complex64],
    b_blocks: &[Complex64],
    out: &mut [Complex64],
    scale: Complex64,
) {
    let nn = no * no;
    let mut acc = pack_pool::take_c(nn);
    acc[..nn].fill(Complex64::ZERO);
    for w in 0..win {
        gemm_naive_acc(
            no,
            no,
            no,
            &a_blocks[w * nn..(w + 1) * nn],
            &b_blocks[w * nn..(w + 1) * nn],
            &mut acc[..nn],
        );
    }
    for (o, v) in out.iter_mut().zip(acc[..nn].iter()) {
        *o += *v * scale;
    }
    pack_pool::give_c(acc);
}

// ---------------------------------------------------------------------------
// Packing: operand layout adapters
// ---------------------------------------------------------------------------

/// Left-operand layouts the packing step can read from.
#[derive(Clone, Copy)]
enum PanelA<'a> {
    /// Row-major `m x k` with row stride `ld`.
    Rows { a: &'a [Complex64], ld: usize },
    /// `win` consecutive row-major `no x no` blocks viewed as the horizontal
    /// concatenation `[A_0 | A_1 | … ]` of shape `no x win·no` — the fused
    /// ω-window operand of Fig. 11c.
    BlockCat { a: &'a [Complex64], no: usize },
}

impl PanelA<'_> {
    #[inline(always)]
    fn get(self, i: usize, p: usize) -> Complex64 {
        match self {
            PanelA::Rows { a, ld } => a[i * ld + p],
            PanelA::BlockCat { a, no } => a[(p / no) * no * no + i * no + (p % no)],
        }
    }
}

/// Right-operand layouts the packing step can read from.
#[derive(Clone, Copy)]
enum PanelB<'a> {
    /// Row-major `k x n` with row stride `ld`.
    Rows { b: &'a [Complex64], ld: usize },
    /// `b` stored row-major `n x k`; the panel is `b^H` (conjugation happens
    /// here, during packing — never materialized).
    Dagger { b: &'a [Complex64], ld: usize },
}

impl PanelB<'_> {
    #[inline(always)]
    fn get(self, p: usize, j: usize) -> Complex64 {
        match self {
            PanelB::Rows { b, ld } => b[p * ld + j],
            PanelB::Dagger { b, ld } => b[j * ld + p].conj(),
        }
    }
}

/// Pack `mc x kc` rows of A (from row `ic`, depth `pc`) into MR-row
/// micro-panels with split re/im lanes per k-slice; rows beyond `mc` are
/// zero-padded so the microkernel never needs edge cases.
fn pack_a(src: PanelA<'_>, ic: usize, mc: usize, pc: usize, kc: usize, buf: &mut [f64]) {
    let mut off = 0;
    let mut ir = 0;
    while ir < mc {
        let mr = (mc - ir).min(MR);
        for p in 0..kc {
            for i in 0..MR {
                let z = if i < mr {
                    src.get(ic + ir + i, pc + p)
                } else {
                    Complex64::ZERO
                };
                buf[off + i] = z.re;
                buf[off + MR + i] = z.im;
            }
            off += 2 * MR;
        }
        ir += MR;
    }
}

/// Pack `kc x nc` columns of B (from depth `pc`, column `jc`) into NR-column
/// micro-panels with split re/im lanes per k-slice, zero-padded to NR.
fn pack_b(src: PanelB<'_>, pc: usize, kc: usize, jc: usize, nc: usize, buf: &mut [f64]) {
    let mut off = 0;
    let mut jr = 0;
    while jr < nc {
        let nr = (nc - jr).min(NR);
        for p in 0..kc {
            for j in 0..NR {
                let z = if j < nr {
                    src.get(pc + p, jc + jr + j)
                } else {
                    Complex64::ZERO
                };
                buf[off + j] = z.re;
                buf[off + NR + j] = z.im;
            }
            off += 2 * NR;
        }
        jr += NR;
    }
}

/// Thread-local pool of packing buffers: `take`/`give` instead of a held
/// borrow so nested GEMMs on a work-stealing rayon thread can't double-borrow.
mod pack_pool {
    use crate::complex::Complex64;
    use std::cell::RefCell;

    thread_local! {
        static POOL_F: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
        static POOL_C: RefCell<Vec<Vec<Complex64>>> = const { RefCell::new(Vec::new()) };
    }

    pub fn take(len: usize) -> Vec<f64> {
        let mut buf = POOL_F.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        buf
    }

    pub fn give(buf: Vec<f64>) {
        POOL_F.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < 8 {
                p.push(buf);
            }
        });
    }

    pub fn take_c(len: usize) -> Vec<Complex64> {
        let mut buf = POOL_C.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        if buf.len() < len {
            buf.resize(len, Complex64::ZERO);
        }
        buf
    }

    pub fn give_c(buf: Vec<Complex64>) {
        POOL_C.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < 8 {
                p.push(buf);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Macro-kernel and microkernel
// ---------------------------------------------------------------------------

/// Time `f` under the given telemetry hot section when `INSTRUMENT` holds;
/// call it directly otherwise. The `INSTRUMENT = false` instantiation is the
/// uninstrumented twin the telemetry-overhead comparison runs against.
#[inline(always)]
fn maybe_timed<const INSTRUMENT: bool, R>(
    section: qt_telemetry::counters::HotSection,
    f: impl FnOnce() -> R,
) -> R {
    if INSTRUMENT {
        qt_telemetry::counters::timed(section, f)
    } else {
        f()
    }
}

/// Blocked driver: `out[m x n] += scale · A @ B` with A/B read through their
/// packing adapters. `parallel` distributes MC-aligned row bands of C over
/// the rayon pool; the packed B-panel is shared read-only.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked<const INSTRUMENT: bool>(
    m: usize,
    k: usize,
    n: usize,
    a: PanelA<'_>,
    b: PanelB<'_>,
    out: &mut [Complex64],
    scale: Complex64,
    parallel: bool,
) {
    let nthreads = rayon::current_num_threads().max(1);
    // Band height: enough bands to feed every worker, MR-aligned, at most MC
    // so the packed A-panel stays L2-resident.
    let band_rows = if parallel {
        m.div_ceil(nthreads).next_multiple_of(MR).clamp(MR, MC)
    } else {
        m
    };
    let mut jc = 0;
    while jc < n {
        let nc = (n - jc).min(NC);
        let nc_pad = nc.next_multiple_of(NR);
        let mut pc = 0;
        while pc < k {
            let kc = (k - pc).min(KC);
            let mut b_buf = pack_pool::take(nc_pad * kc * 2);
            maybe_timed::<INSTRUMENT, _>(qt_telemetry::counters::HotSection::GemmPack, || {
                pack_b(b, pc, kc, jc, nc, &mut b_buf)
            });
            let b_pack: &[f64] = &b_buf;
            if parallel && m > band_rows {
                out.par_chunks_mut(band_rows * n)
                    .enumerate()
                    .for_each(|(t, band)| {
                        let ic = t * band_rows;
                        let mc = band.len() / n;
                        process_band::<INSTRUMENT>(
                            a,
                            ic,
                            mc,
                            pc,
                            kc,
                            nc,
                            b_pack,
                            &mut band[jc..],
                            n,
                            scale,
                        );
                    });
            } else {
                let mut ic = 0;
                while ic < m {
                    let mc = (m - ic).min(MC);
                    process_band::<INSTRUMENT>(
                        a,
                        ic,
                        mc,
                        pc,
                        kc,
                        nc,
                        b_pack,
                        &mut out[ic * n + jc..],
                        n,
                        scale,
                    );
                    ic += MC;
                }
            }
            pack_pool::give(b_buf);
            pc += kc;
        }
        jc += NC;
    }
}

/// Pack one A row band and sweep the microkernel over its `(ir, jr)` tiles.
/// `c` starts at the band's `(0, jc)` entry with row stride `ldc`.
#[allow(clippy::too_many_arguments)]
fn process_band<const INSTRUMENT: bool>(
    a: PanelA<'_>,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    nc: usize,
    b_pack: &[f64],
    c: &mut [Complex64],
    ldc: usize,
    scale: Complex64,
) {
    use qt_telemetry::counters::HotSection;
    let mc_pad = mc.next_multiple_of(MR);
    let mut a_buf = pack_pool::take(mc_pad * kc * 2);
    maybe_timed::<INSTRUMENT, _>(HotSection::GemmPack, || {
        pack_a(a, ic, mc, pc, kc, &mut a_buf)
    });
    maybe_timed::<INSTRUMENT, _>(HotSection::GemmKernel, || {
        macro_tile(mc, kc, nc, &a_buf, b_pack, c, ldc, scale)
    });
    pack_pool::give(a_buf);
}

/// Sweep the register microkernel over an `mc x nc` block of C using fully
/// packed panels. Edge tiles compute the full padded tile and store only the
/// `mr x nr` live corner.
#[allow(clippy::too_many_arguments)]
fn macro_tile(
    mc: usize,
    kc: usize,
    nc: usize,
    a_pack: &[f64],
    b_pack: &[f64],
    c: &mut [Complex64],
    ldc: usize,
    scale: Complex64,
) {
    let panel_a = kc * 2 * MR;
    let panel_b = kc * 2 * NR;
    let plain = scale == Complex64::ONE;
    let use_fma = fma_available();
    let mut jr = 0;
    while jr < nc {
        let nr = (nc - jr).min(NR);
        let bp = &b_pack[(jr / NR) * panel_b..(jr / NR + 1) * panel_b];
        let mut ir = 0;
        while ir < mc {
            let mr = (mc - ir).min(MR);
            let ap = &a_pack[(ir / MR) * panel_a..(ir / MR + 1) * panel_a];
            let mut cre = [[0.0f64; NR]; MR];
            let mut cim = [[0.0f64; NR]; MR];
            microkernel(use_fma, kc, ap, bp, &mut cre, &mut cim);
            for i in 0..mr {
                let base = (ir + i) * ldc + jr;
                let row = &mut c[base..base + nr];
                if plain {
                    for (j, o) in row.iter_mut().enumerate() {
                        o.re += cre[i][j];
                        o.im += cim[i][j];
                    }
                } else {
                    for (j, o) in row.iter_mut().enumerate() {
                        *o += c64(cre[i][j], cim[i][j]) * scale;
                    }
                }
            }
            ir += MR;
        }
        jr += NR;
    }
}

/// True when the host supports the AVX2+FMA instantiation of the
/// microkernel (one cached relaxed atomic load per query).
#[inline]
fn fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Dispatch to the widest microkernel instantiation the host supports. The
/// default x86-64 target only assumes SSE2, so the AVX2+FMA variant is
/// selected at runtime rather than compile time.
#[inline(always)]
fn microkernel(
    use_fma: bool,
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    cre: &mut [[f64; NR]; MR],
    cim: &mut [[f64; NR]; MR],
) {
    #[cfg(target_arch = "x86_64")]
    if use_fma {
        // SAFETY: `use_fma` is only true when AVX2 and FMA were detected.
        unsafe { microkernel_avx2(kc, ap, bp, cre, cim) };
        return;
    }
    let _ = use_fma;
    microkernel_body(kc, ap, bp, cre, cim);
}

/// AVX2+FMA instantiation: identical body, compiled with the features
/// enabled so the autovectorizer emits 256-bit broadcast-FMA sequences.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_avx2(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    cre: &mut [[f64; NR]; MR],
    cim: &mut [[f64; NR]; MR],
) {
    microkernel_body(kc, ap, bp, cre, cim);
}

/// Register-blocked rank-1-update kernel over split re/im packed panels:
/// `C[MR x NR] += A_panel @ B_panel`. The split lanes make every multiply a
/// plain f64 FMA, so the autovectorizer emits broadcast-FMA over the NR lane
/// without complex-interleave shuffles.
#[inline(always)]
fn microkernel_body(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    cre: &mut [[f64; NR]; MR],
    cim: &mut [[f64; NR]; MR],
) {
    debug_assert!(ap.len() >= kc * 2 * MR);
    debug_assert!(bp.len() >= kc * 2 * NR);
    for p in 0..kc {
        let a = &ap[p * 2 * MR..(p + 1) * 2 * MR];
        let b = &bp[p * 2 * NR..(p + 1) * 2 * NR];
        let ar: &[f64; MR] = a[..MR].try_into().unwrap();
        let ai: &[f64; MR] = a[MR..].try_into().unwrap();
        let br: &[f64; NR] = b[..NR].try_into().unwrap();
        let bi: &[f64; NR] = b[NR..].try_into().unwrap();
        for i in 0..MR {
            for j in 0..NR {
                cre[i][j] += ar[i] * br[j] - ai[i] * bi[j];
                cim[i][j] += ar[i] * bi[j] + ai[i] * br[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    fn randv(len: usize, r: &mut impl rand::Rng) -> Vec<Complex64> {
        (0..len)
            .map(|_| c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0)))
            .collect()
    }

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        Matrix::from_fn(m, n, |i, j| (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum())
    }

    #[test]
    fn gemm_matches_naive() {
        let mut r = rng();
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (7, 5, 6), (16, 16, 16), (33, 17, 9)] {
            let a = Matrix::random(m, k, &mut r);
            let b = Matrix::random(k, n, &mut r);
            let mut out = Matrix::zeros(m, n);
            gemm(&a, &b, &mut out);
            assert!(out.max_abs_diff(&naive(&a, &b)) < 1e-12, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_parallel_path_matches() {
        let mut r = rng();
        let a = Matrix::random(80, 70, &mut r);
        let b = Matrix::random(70, 90, &mut r);
        let mut out = Matrix::zeros(80, 90);
        gemm(&a, &b, &mut out);
        assert!(out.max_abs_diff(&naive(&a, &b)) < 1e-10);
    }

    #[test]
    fn blocked_path_matches_at_tile_edges() {
        // Shapes straddling MR/NR/MC/KC boundaries, forced through the
        // blocked path regardless of the dispatcher's thresholds.
        let mut r = rng();
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 9, 2),
            (4, 4, 4),
            (5, 5, 5),
            (MR, KC + 3, NR),
            (MC + 1, 7, NR + 1),
            (2 * MR + 3, 19, 3 * NR + 2),
        ] {
            let a = Matrix::random(m, k, &mut r);
            let b = Matrix::random(k, n, &mut r);
            let mut out = Matrix::random(m, n, &mut r);
            let mut want = out.clone();
            gemm_blocked_acc(m, k, n, a.as_slice(), b.as_slice(), out.as_mut_slice());
            gemm_naive_acc(m, k, n, a.as_slice(), b.as_slice(), want.as_mut_slice());
            assert!(out.max_abs_diff(&want) < 1e-11, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_acc_accumulates() {
        let mut r = rng();
        let a = Matrix::random(4, 4, &mut r);
        let b = Matrix::random(4, 4, &mut r);
        let mut out = Matrix::identity(4);
        gemm_acc(&a, &b, &mut out);
        let expect = &Matrix::identity(4) + &naive(&a, &b);
        assert!(out.max_abs_diff(&expect) < 1e-13);
    }

    #[test]
    fn scaled_acc_matches_scale_of_product() {
        let mut r = rng();
        for &(m, k, n) in &[(2, 3, 4), (5, 5, 5), (12, 9, 11), (24, 16, 20)] {
            let a = Matrix::random(m, k, &mut r);
            let b = Matrix::random(k, n, &mut r);
            let scale = c64(-1.5, 0.25);
            let mut out = Matrix::random(m, n, &mut r);
            let expect = &out + &naive(&a, &b).scale(scale);
            gemm_scaled_acc(
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                out.as_mut_slice(),
                scale,
            );
            assert!(out.max_abs_diff(&expect) < 1e-12, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn bdagger_scaled_acc_matches_explicit() {
        let mut r = rng();
        for &(m, k, n) in &[(3, 4, 2), (6, 6, 6), (13, 8, 10)] {
            let a = Matrix::random(m, k, &mut r);
            let b = Matrix::random(n, k, &mut r);
            let scale = c64(0.0, -1.0);
            let mut out = Matrix::random(m, n, &mut r);
            let expect = &out + &a.matmul(&b.dagger()).scale(scale);
            gemm_bdagger_scaled_acc(
                m,
                k,
                n,
                a.as_slice(),
                b.as_slice(),
                out.as_mut_slice(),
                scale,
            );
            assert!(out.max_abs_diff(&expect) < 1e-12, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn shared_b_batch_matches_loop_of_gemms() {
        let mut r = rng();
        let (m, k, n, batch) = (2, 3, 3, 7);
        let a = randv(batch * m * k, &mut r);
        let bm = Matrix::random(k, n, &mut r);
        let mut out = vec![Complex64::ZERO; batch * m * n];
        let f0 = flops::flop_count();
        batched_gemm_shared_b_acc(m, k, n, batch, &a, bm.as_slice(), &mut out);
        assert_eq!(
            flops::flop_count() - f0,
            (8 * batch * m * k * n) as u64,
            "shared-B batch must count exactly the per-item flops"
        );
        for t in 0..batch {
            let am = Matrix::from_vec(m, k, a[t * m * k..(t + 1) * m * k].to_vec());
            let expect = naive(&am, &bm);
            let got = Matrix::from_vec(m, n, out[t * m * n..(t + 1) * m * n].to_vec());
            assert!(got.max_abs_diff(&expect) < 1e-13, "item {t}");
        }
    }

    #[test]
    fn batched_matches_loop_of_gemms() {
        let mut r = rng();
        let (m, k, n, batch) = (3, 4, 2, 5);
        let a = randv(batch * m * k, &mut r);
        let b = randv(batch * k * n, &mut r);
        let mut out = vec![Complex64::ZERO; batch * m * n];
        batched_gemm_acc(m, k, n, batch, &a, &b, &mut out);
        for t in 0..batch {
            let am = Matrix::from_vec(m, k, a[t * m * k..(t + 1) * m * k].to_vec());
            let bm = Matrix::from_vec(k, n, b[t * k * n..(t + 1) * k * n].to_vec());
            let expect = naive(&am, &bm);
            let got = Matrix::from_vec(m, n, out[t * m * n..(t + 1) * m * n].to_vec());
            assert!(got.max_abs_diff(&expect) < 1e-12);
        }
    }

    #[test]
    fn batched_blocked_path_matches_reference() {
        // 12x12x12 items are above NAIVE_THRESHOLD, and 64 of them exceed
        // PAR_THRESHOLD, so this exercises the chunked packed path.
        let mut r = rng();
        let (m, k, n, batch) = (12, 12, 12, 64);
        let a = randv(batch * m * k, &mut r);
        let b = randv(batch * k * n, &mut r);
        let mut out = vec![Complex64::ZERO; batch * m * n];
        let mut want = out.clone();
        batched_gemm_acc(m, k, n, batch, &a, &b, &mut out);
        gemm_naive_batched_acc(m, k, n, batch, &a, &b, &mut want);
        let diff = out
            .iter()
            .zip(&want)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-11, "max diff {diff}");
    }

    #[test]
    fn bdagger_matches_explicit_dagger() {
        let mut r = rng();
        let a = Matrix::random(3, 5, &mut r);
        let b = Matrix::random(4, 5, &mut r); // b^H is 5x4
        let mut out = vec![Complex64::ZERO; 3 * 4];
        gemm_bdagger_acc(3, 5, 4, a.as_slice(), b.as_slice(), &mut out);
        let expect = a.matmul(&b.dagger());
        let got = Matrix::from_vec(3, 4, out);
        assert!(got.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn bdagger_blocked_and_parallel_paths_match() {
        let mut r = rng();
        for (m, k, n) in [(24, 18, 20), (80, 70, 90)] {
            let a = Matrix::random(m, k, &mut r);
            let b = Matrix::random(n, k, &mut r);
            let mut out = vec![Complex64::ZERO; m * n];
            gemm_bdagger_acc(m, k, n, a.as_slice(), b.as_slice(), &mut out);
            let expect = a.matmul(&b.dagger());
            let got = Matrix::from_vec(m, n, out);
            assert!(got.max_abs_diff(&expect) < 1e-10, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn window_matches_loop_of_products() {
        let mut r = rng();
        for (no, win) in [(2, 3), (4, 1), (4, 7), (8, 5)] {
            let nn = no * no;
            let a = randv(win * nn, &mut r);
            let b = randv(win * nn, &mut r);
            let scale = c64(0.3, -0.7);
            let mut got = randv(nn, &mut r);
            let mut want = got.clone();
            gemm_window_acc(no, win, &a, &b, &mut got, scale);
            gemm_naive_window_acc(no, win, &a, &b, &mut want, scale);
            let diff = got
                .iter()
                .zip(&want)
                .map(|(x, y)| (*x - *y).abs())
                .fold(0.0, f64::max);
            assert!(diff < 1e-11, "no={no} win={win} diff={diff}");
            // Also force the blocked path at shapes the dispatcher may not.
            let mut blocked = want.clone();
            let mut want2 = want.clone();
            gemm_window_blocked_acc(no, win, &a, &b, &mut blocked, scale);
            gemm_naive_window_acc(no, win, &a, &b, &mut want2, scale);
            let diff2 = blocked
                .iter()
                .zip(&want2)
                .map(|(x, y)| (*x - *y).abs())
                .fold(0.0, f64::max);
            assert!(diff2 < 1e-11, "blocked no={no} win={win} diff={diff2}");
        }
    }

    #[test]
    fn flop_accounting() {
        let (_, d) = crate::flops::count_flops(|| {
            let a = Matrix::zeros(2, 3);
            let b = Matrix::zeros(3, 4);
            let mut out = Matrix::zeros(2, 4);
            gemm(&a, &b, &mut out);
        });
        assert_eq!(d, 8 * 2 * 3 * 4);
    }

    #[test]
    fn flop_accounting_is_uniform_across_variants() {
        let mut r = rng();
        let (m, k, n, batch) = (4, 5, 6, 3);
        let a = randv(batch * m * k, &mut r);
        let b = randv(batch * k * n, &mut r);
        let per = 8 * (m * k * n) as u64;
        let (_, d) = crate::flops::count_flops(|| {
            let mut out = vec![Complex64::ZERO; batch * m * n];
            batched_gemm_acc(m, k, n, batch, &a, &b, &mut out);
        });
        assert_eq!(d, per * batch as u64);
        let bd = randv(n * k, &mut r);
        let (_, d) = crate::flops::count_flops(|| {
            let mut out = vec![Complex64::ZERO; m * n];
            gemm_bdagger_acc(m, k, n, &a[..m * k], &bd, &mut out);
        });
        assert_eq!(d, per);
        let (no, win) = (4, 3);
        let wa = randv(win * no * no, &mut r);
        let wb = randv(win * no * no, &mut r);
        let (_, d) = crate::flops::count_flops(|| {
            let mut out = vec![Complex64::ZERO; no * no];
            gemm_window_acc(no, win, &wa, &wb, &mut out, Complex64::ONE);
        });
        assert_eq!(d, 8 * (no * (win * no) * no) as u64);
    }
}
