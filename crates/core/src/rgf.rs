//! Recursive Green's Function solver (§2, ref. \[23\] Svizhenko et al.).
//!
//! Given the block tri-diagonal `A = z·S − H − Σᴿ` and block-diagonal
//! lesser self-energy `Σ<`, RGF computes the diagonal (and first
//! sub-diagonal) blocks of
//!
//! * `Gᴿ = A⁻¹`
//! * `G< = Gᴿ Σ< Gᴿ†`
//! * `G> = G< + Gᴿ − Gᴿ†`
//!
//! in `O(bnum · bs³)` instead of dense `O((bnum·bs)³)`. The recursions are
//! the standard left-connected forward pass plus the exact backward-pass
//! identities (derived and unit-verified against dense inversion):
//!
//! ```text
//! forward:  gᴿ_n = (A_nn − A_{n,n−1} gᴿ_{n−1} A_{n−1,n})⁻¹
//!           g<_n = gᴿ_n (Σ<_nn + A_{n,n−1} g<_{n−1} A_{n,n−1}†) gᴿ_n†
//! backward: Gᴿ_nn   = gᴿ_n + gᴿ_n A_{n,n+1} Gᴿ_{n+1,n+1} A_{n+1,n} gᴿ_n
//!           G<_nn   = g<_n + gᴿ_n A_{n,n+1} G<_{n+1,n+1} A_{n,n+1}† gᴿ_n†
//!                   + gᴿ_n A_{n,n+1} Gᴿ_{n+1,n+1} A_{n+1,n} g<_n
//!                   + g<_n A_{n+1,n}† Gᴿ_{n+1,n+1}† A_{n,n+1}† gᴿ_n†
//!           Gᴿ_{n+1,n} = −Gᴿ_{n+1,n+1} A_{n+1,n} gᴿ_n
//!           G<_{n+1,n} = −Gᴿ_{n+1,n+1} A_{n+1,n} g<_n − G<_{n+1,n+1} A_{n,n+1}† gᴿ_n†
//! ```

use qt_linalg::gemm::{gemm_acc, gemm_bdagger_acc, gemm_bdagger_scaled_acc, gemm_scaled_acc};
use qt_linalg::{
    c64, invert, invert_ws, workspace, BlockTridiag, CsrMatrix, Matrix, SingularMatrix,
};

/// How the off-diagonal triple products of the forward pass are evaluated
/// (the Table 6 design space, §5.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum MultiplyStrategy {
    /// Densify everything and use plain GEMM (Table 6 "Dense-MM").
    #[default]
    Dense,
    /// Exploit the sparsity of the Hamiltonian coupling blocks:
    /// `CSR × dense` followed by `dense × CSR` (Table 6 "CSRMM", the
    /// paper's fastest route). Off-diagonal `A` blocks are converted to
    /// CSR once per solve; entries below `threshold` are dropped
    /// (structural zeros of the Hamiltonian, not numerical truncation,
    /// with the default of 0).
    Csrmm {
        /// Magnitude below which entries are treated as structural zeros.
        threshold: f64,
    },
}

/// Diagonal and first-subdiagonal Green's-function blocks.
#[derive(Clone, Debug)]
pub struct RgfOutput {
    /// `Gᴿ_nn` for every block.
    pub gr_diag: Vec<Matrix>,
    /// `G<_nn`.
    pub gl_diag: Vec<Matrix>,
    /// `G>_nn`.
    pub gg_diag: Vec<Matrix>,
    /// `Gᴿ_{n+1,n}` (length `bnum − 1`).
    pub gr_lower: Vec<Matrix>,
    /// `Gᴿ_{n,n+1}`.
    pub gr_upper: Vec<Matrix>,
    /// `G<_{n+1,n}`.
    pub gl_lower: Vec<Matrix>,
}

impl RgfOutput {
    /// `G<_{n,n+1}` from anti-Hermiticity: `G<_{n,n+1} = −(G<_{n+1,n})†`.
    pub fn gl_upper(&self, n: usize) -> Matrix {
        self.gl_lower[n].dagger().scale(qt_linalg::c64(-1.0, 0.0))
    }

    /// `G>_{n+1,n} = G<_{n+1,n} + Gᴿ_{n+1,n} − (Gᴿ_{n,n+1})†`.
    pub fn gg_lower(&self, n: usize) -> Matrix {
        let mut gg = self.gl_lower[n].clone();
        gg += &self.gr_lower[n];
        gg -= &self.gr_upper[n].dagger();
        gg
    }

    /// True when every output block is finite (no NaN, no ±Inf) — the
    /// phase-boundary health check the GF phases run before letting RGF
    /// output flow into the SSE convolutions.
    pub fn is_finite(&self) -> bool {
        [
            &self.gr_diag,
            &self.gl_diag,
            &self.gg_diag,
            &self.gr_lower,
            &self.gr_upper,
            &self.gl_lower,
        ]
        .into_iter()
        .flatten()
        .all(|m| {
            m.as_slice()
                .iter()
                .all(|z| z.re.is_finite() && z.im.is_finite())
        })
    }

    /// Return every block to the calling thread's workspace pool. The
    /// Green's-function phases call this once a point's output has been
    /// consumed, so the next (E, kz) point on this worker re-uses the same
    /// buffers instead of round-tripping through the global allocator.
    pub fn recycle(self) {
        for m in self
            .gr_diag
            .into_iter()
            .chain(self.gl_diag)
            .chain(self.gg_diag)
            .chain(self.gr_lower)
            .chain(self.gr_upper)
            .chain(self.gl_lower)
        {
            workspace::give(m);
        }
    }
}

/// Run RGF with the default dense multiply strategy. `a` is the full
/// `z·S − H − Σᴿ` block tri-diagonal; `sigma_lesser[n]` the lesser
/// self-energy of block `n` (boundary + scattering contributions already
/// summed).
pub fn rgf(a: &BlockTridiag, sigma_lesser: &[Matrix]) -> Result<RgfOutput, SingularMatrix> {
    rgf_with_strategy(a, sigma_lesser, MultiplyStrategy::Dense)
}

/// Run RGF with an explicit off-diagonal multiply strategy (Table 6).
pub fn rgf_with_strategy(
    a: &BlockTridiag,
    sigma_lesser: &[Matrix],
    strategy: MultiplyStrategy,
) -> Result<RgfOutput, SingularMatrix> {
    // Thread-local attribution: RGF runs inside the per-(kz, E) rayon
    // workers, so the phase aggregates busy time across workers.
    let _span = qt_telemetry::Span::enter("rgf");
    let nb = a.num_blocks();
    assert_eq!(sigma_lesser.len(), nb, "one Σ< block per RGF block");
    // CSR images of the coupling blocks for the CSRMM route.
    let sparse_couplings: Option<(Vec<CsrMatrix>, Vec<CsrMatrix>)> = match strategy {
        MultiplyStrategy::Dense => None,
        MultiplyStrategy::Csrmm { threshold } => Some((
            (0..nb - 1)
                .map(|n| CsrMatrix::from_dense(a.lower(n), threshold))
                .collect(),
            (0..nb - 1)
                .map(|n| CsrMatrix::from_dense(a.upper(n), threshold))
                .collect(),
        )),
    };
    let bs = a.block_size();
    let neg = c64(-1.0, 0.0);
    // Forward pass: left-connected g's. Every temporary (and the retained
    // g's themselves) is checked out of the per-thread workspace pool, so a
    // warm SCF iteration performs zero heap allocations here.
    let mut g_r: Vec<Matrix> = Vec::with_capacity(nb);
    let mut g_l: Vec<Matrix> = Vec::with_capacity(nb);
    for n in 0..nb {
        let mut m = workspace::take(bs, bs);
        m.copy_from(a.diag(n));
        let mut sig = workspace::take(bs, bs);
        sig.copy_from(&sigma_lesser[n]);
        if n > 0 {
            // A_{n,n−1} couples block n−1 into n; the triple product
            // `A_{n,n−1} · gᴿ_{n−1} · A_{n−1,n}` is the Table 6 operation.
            let tau = a.lower(n - 1);
            match &sparse_couplings {
                None => {
                    let mut tg = workspace::take(bs, bs);
                    gemm_acc(tau, &g_r[n - 1], &mut tg);
                    gemm_scaled_acc(
                        bs,
                        bs,
                        bs,
                        tg.as_slice(),
                        a.upper(n - 1).as_slice(),
                        m.as_mut_slice(),
                        neg,
                    );
                    let mut tl = workspace::take(bs, bs);
                    gemm_acc(tau, &g_l[n - 1], &mut tl);
                    gemm_bdagger_acc(
                        bs,
                        bs,
                        bs,
                        tl.as_slice(),
                        tau.as_slice(),
                        sig.as_mut_slice(),
                    );
                    workspace::give(tg);
                    workspace::give(tl);
                }
                Some((lowers, uppers)) => {
                    // CSRMM: sparse × dense, then dense × sparse.
                    let lo_sp = &lowers[n - 1];
                    let up_sp = &uppers[n - 1];
                    let tg = lo_sp.mul_dense(&g_r[n - 1]);
                    m -= &up_sp.rmul_dense(&tg);
                    let tl = lo_sp.mul_dense(&g_l[n - 1]);
                    sig += &tl.matmul_dagger(tau);
                }
            }
        }
        let gr = invert_ws(&m)?;
        workspace::give(m);
        let mut t = workspace::take(bs, bs);
        gemm_acc(&gr, &sig, &mut t);
        let mut gl = workspace::take(bs, bs);
        gemm_bdagger_acc(bs, bs, bs, t.as_slice(), gr.as_slice(), gl.as_mut_slice());
        workspace::give(t);
        workspace::give(sig);
        g_r.push(gr);
        g_l.push(gl);
    }
    // Backward pass. Blocks are produced highest-index first and the
    // vectors reversed at the end — no `Matrix::zeros(0, 0)` placeholders.
    let mut gr_diag: Vec<Matrix> = Vec::with_capacity(nb);
    let mut gl_diag: Vec<Matrix> = Vec::with_capacity(nb);
    let mut gr_lower: Vec<Matrix> = Vec::with_capacity(nb - 1);
    let mut gr_upper: Vec<Matrix> = Vec::with_capacity(nb - 1);
    let mut gl_lower: Vec<Matrix> = Vec::with_capacity(nb - 1);
    let mut last_gr = workspace::take(bs, bs);
    last_gr.copy_from(&g_r[nb - 1]);
    gr_diag.push(last_gr);
    let mut last_gl = workspace::take(bs, bs);
    last_gl.copy_from(&g_l[nb - 1]);
    gl_diag.push(last_gl);
    for n in (0..nb - 1).rev() {
        let up = a.upper(n); // A_{n,n+1}
        let lo = a.lower(n); // A_{n+1,n}
        let mut gr_next = workspace::take(bs, bs);
        gr_next.copy_from(&gr_diag[gr_diag.len() - 1]);
        let mut gl_next = workspace::take(bs, bs);
        gl_next.copy_from(&gl_diag[gl_diag.len() - 1]);
        let gr_n = &g_r[n];
        let gl_n = &g_l[n];
        // Shared prefixes: t1 = gᴿ_n A_{n,n+1}, t1g = t1 Gᴿ_{n+1,n+1},
        // t2 = t1g A_{n+1,n}.
        let mut t1 = workspace::take(bs, bs);
        gemm_acc(gr_n, up, &mut t1);
        let mut t1g = workspace::take(bs, bs);
        gemm_acc(&t1, &gr_next, &mut t1g);
        let mut t2 = workspace::take(bs, bs);
        gemm_acc(&t1g, lo, &mut t2);
        // Gᴿ_nn = gᴿ_n + t2 gᴿ_n
        let mut grd = workspace::take(bs, bs);
        grd.copy_from(gr_n);
        gemm_acc(&t2, gr_n, &mut grd);
        // G<_nn — four terms, sharing t1/t2 instead of recomputing the
        // triple products.
        let mut gld = workspace::take(bs, bs);
        gld.copy_from(gl_n);
        let mut t3 = workspace::take(bs, bs);
        gemm_acc(&t1, &gl_next, &mut t3);
        let mut t4 = workspace::take(bs, bs);
        gemm_bdagger_acc(bs, bs, bs, t3.as_slice(), up.as_slice(), t4.as_mut_slice());
        gemm_bdagger_acc(
            bs,
            bs,
            bs,
            t4.as_slice(),
            gr_n.as_slice(),
            gld.as_mut_slice(),
        );
        gemm_acc(&t2, gl_n, &mut gld);
        let mut v1 = workspace::take(bs, bs);
        gemm_bdagger_acc(
            bs,
            bs,
            bs,
            gl_n.as_slice(),
            lo.as_slice(),
            v1.as_mut_slice(),
        );
        let mut v2 = workspace::take(bs, bs);
        gemm_bdagger_acc(
            bs,
            bs,
            bs,
            v1.as_slice(),
            gr_next.as_slice(),
            v2.as_mut_slice(),
        );
        let mut v3 = workspace::take(bs, bs);
        gemm_bdagger_acc(bs, bs, bs, v2.as_slice(), up.as_slice(), v3.as_mut_slice());
        gemm_bdagger_acc(
            bs,
            bs,
            bs,
            v3.as_slice(),
            gr_n.as_slice(),
            gld.as_mut_slice(),
        );
        // Off-diagonal blocks. w1 = Gᴿ_{n+1,n+1} A_{n+1,n} feeds both
        // Gᴿ_{n+1,n} and G<_{n+1,n}; Gᴿ_{n,n+1} = −t1g re-uses its buffer.
        let mut w1 = workspace::take(bs, bs);
        gemm_acc(&gr_next, lo, &mut w1);
        let mut grl = workspace::take(bs, bs);
        gemm_scaled_acc(
            bs,
            bs,
            bs,
            w1.as_slice(),
            gr_n.as_slice(),
            grl.as_mut_slice(),
            neg,
        );
        let mut gru = t1g;
        for z in gru.as_mut_slice() {
            *z = -*z;
        }
        let mut gll = workspace::take(bs, bs);
        gemm_scaled_acc(
            bs,
            bs,
            bs,
            w1.as_slice(),
            gl_n.as_slice(),
            gll.as_mut_slice(),
            neg,
        );
        let mut x1 = workspace::take(bs, bs);
        gemm_bdagger_acc(
            bs,
            bs,
            bs,
            gl_next.as_slice(),
            up.as_slice(),
            x1.as_mut_slice(),
        );
        gemm_bdagger_scaled_acc(
            bs,
            bs,
            bs,
            x1.as_slice(),
            gr_n.as_slice(),
            gll.as_mut_slice(),
            neg,
        );
        for tmp in [t1, t2, t3, t4, v1, v2, v3, w1, x1, gr_next, gl_next] {
            workspace::give(tmp);
        }
        gr_diag.push(grd);
        gl_diag.push(gld);
        gr_lower.push(grl);
        gr_upper.push(gru);
        gl_lower.push(gll);
    }
    gr_diag.reverse();
    gl_diag.reverse();
    gr_lower.reverse();
    gr_upper.reverse();
    gl_lower.reverse();
    // G> from the exact identity G> = G< + Gᴿ − Gᴬ.
    let mut gg_diag: Vec<Matrix> = Vec::with_capacity(nb);
    for (gr, gl) in gr_diag.iter().zip(&gl_diag) {
        let mut gg = workspace::take(bs, bs);
        gg.copy_from(gl);
        gg += gr;
        gg.sub_dagger_assign(gr);
        gg_diag.push(gg);
    }
    for m in g_r.into_iter().chain(g_l) {
        workspace::give(m);
    }
    Ok(RgfOutput {
        gr_diag,
        gl_diag,
        gg_diag,
        gr_lower,
        gr_upper,
        gl_lower,
    })
}

/// Dense reference: assemble, invert, and form `G< = Gᴿ Σ< Gᴿ†` exactly.
/// For validation and small problems only (`O(n³)` in the full order).
pub fn dense_reference(
    a: &BlockTridiag,
    sigma_lesser: &[Matrix],
) -> Result<(Matrix, Matrix), SingularMatrix> {
    let bs = a.block_size();
    let full = a.to_dense();
    let gr = invert(&full)?;
    let mut sig = Matrix::zeros(full.rows(), full.cols());
    for (n, s) in sigma_lesser.iter().enumerate() {
        sig.set_submatrix(n * bs, n * bs, s);
    }
    let gl = gr.matmul(&sig).matmul_dagger(&gr);
    Ok((gr, gl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_linalg::{c64, Complex64};
    use rand::{Rng as _, SeedableRng};

    /// Random non-Hermitian block tridiagonal `A` (as `E·S − H − Σᴿ` is)
    /// plus random anti-Hermitian Σ< blocks.
    fn random_problem(nb: usize, bs: usize, seed: u64) -> (BlockTridiag, Vec<Matrix>) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a = BlockTridiag::zeros(nb, bs);
        for n in 0..nb {
            let mut d = Matrix::random(bs, bs, &mut r);
            // Diagonal dominance for well-conditioned inversion, with a
            // lossy imaginary part like a retarded operator has.
            for i in 0..bs {
                d[(i, i)] += c64(4.0, 1.0);
            }
            *a.diag_mut(n) = d;
        }
        for n in 0..nb - 1 {
            *a.upper_mut(n) = Matrix::random(bs, bs, &mut r);
            *a.lower_mut(n) = Matrix::random(bs, bs, &mut r);
        }
        let sig: Vec<Matrix> = (0..nb)
            .map(|_| {
                // Anti-Hermitian lesser self-energy: i·(positive Hermitian).
                let h = Matrix::random_hermitian(bs, &mut r);
                h.scale(Complex64::I)
            })
            .collect();
        (a, sig)
    }

    #[test]
    fn rgf_matches_dense_reference() {
        for (nb, bs, seed) in [(2, 3, 1), (4, 4, 2), (6, 5, 3), (3, 8, 4)] {
            let (a, sig) = random_problem(nb, bs, seed);
            let out = rgf(&a, &sig).unwrap();
            let (gr_dense, gl_dense) = dense_reference(&a, &sig).unwrap();
            for n in 0..nb {
                let gr_blk = gr_dense.submatrix(n * bs, n * bs, bs, bs);
                let gl_blk = gl_dense.submatrix(n * bs, n * bs, bs, bs);
                assert!(
                    out.gr_diag[n].max_abs_diff(&gr_blk) < 1e-10,
                    "GR block {n} mismatch (nb={nb}, bs={bs})"
                );
                assert!(
                    out.gl_diag[n].max_abs_diff(&gl_blk) < 1e-10,
                    "G< block {n} mismatch (nb={nb}, bs={bs})"
                );
            }
            for n in 0..nb - 1 {
                let gr_off = gr_dense.submatrix((n + 1) * bs, n * bs, bs, bs);
                let gr_up = gr_dense.submatrix(n * bs, (n + 1) * bs, bs, bs);
                let gl_off = gl_dense.submatrix((n + 1) * bs, n * bs, bs, bs);
                let gl_up = gl_dense.submatrix(n * bs, (n + 1) * bs, bs, bs);
                assert!(
                    out.gr_upper[n].max_abs_diff(&gr_up) < 1e-10,
                    "GR_{{n,n+1}} block {n} mismatch"
                );
                assert!(
                    out.gl_upper(n).max_abs_diff(&gl_up) < 1e-10,
                    "G<_{{n,n+1}} block {n} mismatch"
                );
                assert!(
                    out.gr_lower[n].max_abs_diff(&gr_off) < 1e-10,
                    "GR_{{n+1,n}} block {n} mismatch"
                );
                assert!(
                    out.gl_lower[n].max_abs_diff(&gl_off) < 1e-10,
                    "G<_{{n+1,n}} block {n} mismatch"
                );
            }
        }
    }

    #[test]
    fn greater_identity_holds() {
        let (a, sig) = random_problem(4, 4, 7);
        let out = rgf(&a, &sig).unwrap();
        for n in 0..4 {
            let mut rhs = out.gl_diag[n].clone();
            rhs += &out.gr_diag[n];
            rhs -= &out.gr_diag[n].dagger();
            assert!(out.gg_diag[n].max_abs_diff(&rhs) < 1e-12);
        }
    }

    #[test]
    fn lesser_blocks_anti_hermitian() {
        // G< must be anti-Hermitian when Σ< is.
        let (a, sig) = random_problem(5, 3, 9);
        let out = rgf(&a, &sig).unwrap();
        for gl in &out.gl_diag {
            let mut sum = gl.clone();
            sum += &gl.dagger();
            assert!(sum.max_abs() < 1e-10, "G< + G<† must vanish");
        }
    }

    #[test]
    fn single_coupling_limit() {
        // With zero couplings the blocks decouple: GR_nn = A_nn^{-1}.
        let mut r = rand::rngs::StdRng::seed_from_u64(11);
        let mut a = BlockTridiag::zeros(3, 3);
        for n in 0..3 {
            let mut d = Matrix::random(3, 3, &mut r);
            for i in 0..3 {
                d[(i, i)] += c64(3.0, 0.5);
            }
            *a.diag_mut(n) = d;
        }
        let sig: Vec<Matrix> = (0..3).map(|_| Matrix::zeros(3, 3)).collect();
        let out = rgf(&a, &sig).unwrap();
        for n in 0..3 {
            let expect = invert(a.diag(n)).unwrap();
            assert!(out.gr_diag[n].max_abs_diff(&expect) < 1e-12);
            assert!(out.gl_diag[n].max_abs() < 1e-14, "no Σ< -> no G<");
            assert!(out.gr_lower[n.min(1)].max_abs() < 1e-14);
        }
    }

    #[test]
    fn csrmm_strategy_matches_dense() {
        // Build an A whose couplings are genuinely sparse (like Hamiltonian
        // blocks) and check both strategies produce identical results while
        // the sparse route performs fewer flop.
        let mut r = rand::rngs::StdRng::seed_from_u64(31);
        let (nb, bs) = (5usize, 12usize);
        let mut a = BlockTridiag::zeros(nb, bs);
        for n in 0..nb {
            let mut d = Matrix::random(bs, bs, &mut r);
            for i in 0..bs {
                d[(i, i)] += c64(4.0, 1.0);
            }
            *a.diag_mut(n) = d;
        }
        for n in 0..nb - 1 {
            let sparse_block = |r: &mut rand::rngs::StdRng| {
                Matrix::from_fn(bs, bs, |_, _| {
                    if r.random_range(0.0..1.0) < 0.15 {
                        c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0))
                    } else {
                        Complex64::ZERO
                    }
                })
            };
            *a.upper_mut(n) = sparse_block(&mut r);
            *a.lower_mut(n) = sparse_block(&mut r);
        }
        let sig: Vec<Matrix> = (0..nb)
            .map(|_| Matrix::random_hermitian(bs, &mut r).scale(Complex64::I))
            .collect();
        let (dense, f_dense) = qt_linalg::count_flops(|| {
            rgf_with_strategy(&a, &sig, MultiplyStrategy::Dense).unwrap()
        });
        let (sparse, f_sparse) = qt_linalg::count_flops(|| {
            rgf_with_strategy(&a, &sig, MultiplyStrategy::Csrmm { threshold: 0.0 }).unwrap()
        });
        for n in 0..nb {
            assert!(dense.gr_diag[n].max_abs_diff(&sparse.gr_diag[n]) < 1e-10);
            assert!(dense.gl_diag[n].max_abs_diff(&sparse.gl_diag[n]) < 1e-10);
        }
        assert!(
            f_sparse < f_dense,
            "CSRMM must do less work on sparse couplings: {f_sparse} vs {f_dense}"
        );
    }

    #[test]
    fn warm_rgf_reuses_workspace_buffers() {
        // After one solve + recycle the thread pool holds the full working
        // set; a second identical solve must not miss the pool once.
        let (a, sig) = random_problem(4, 4, 13);
        rgf(&a, &sig).unwrap().recycle();
        let before = qt_linalg::workspace::fresh_here();
        rgf(&a, &sig).unwrap().recycle();
        assert_eq!(
            qt_linalg::workspace::fresh_here(),
            before,
            "warm RGF must be allocation-free"
        );
    }

    #[test]
    fn flop_scaling_is_linear_in_blocks() {
        // RGF cost grows linearly with bnum (vs cubic dense growth).
        let (a4, s4) = random_problem(4, 6, 21);
        let (a8, s8) = random_problem(8, 6, 22);
        let (_, f4) = qt_linalg::count_flops(|| rgf(&a4, &s4).unwrap());
        let (_, f8) = qt_linalg::count_flops(|| rgf(&a8, &s8).unwrap());
        let ratio = f8 as f64 / f4 as f64;
        assert!(
            ratio > 1.7 && ratio < 2.4,
            "doubling blocks should ~double flops, got {ratio}"
        );
    }
}
