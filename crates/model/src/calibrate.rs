//! GEMM throughput calibration: measure the achieved GF/s of the blocked
//! kernel on the shape classes the simulator actually produces, and derive a
//! [`Machine`] whose sustained-efficiency fields reflect *measured* rather
//! than assumed throughput.
//!
//! The paper's roofline and Table 8 projections assume library GEMM runs at a
//! known fraction of peak. Our reproduction runs on whatever host executes
//! the benchmarks, so the honest analogue is to measure the kernel there:
//! `calibrate()` times each shape class (blocked and naive reference) with
//! the same deterministic inputs the correctness tests use, and
//! [`GemmCalibration::host_machine`] folds the results into the α–β machine
//! model so `qt_model::predict` can be driven by achieved numbers.

use crate::machine::Machine;
use qt_core::rgf::MultiplyStrategy;
use qt_linalg::{c64, gemm, Complex64, CsrMatrix, Matrix};
use std::time::Instant;

/// One GEMM shape family the simulator emits (§4.2 / Table 3).
#[derive(Clone, Copy, Debug)]
pub struct ShapeClass {
    /// Short identifier used in reports ("rgf_block", "sse_batch", …).
    pub name: &'static str,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    /// Number of independent products of this shape per timed pass.
    pub batch: usize,
}

impl ShapeClass {
    /// Real flop per timed pass (8 per complex multiply-accumulate).
    pub fn flops(&self) -> f64 {
        8.0 * (self.m * self.k * self.n * self.batch) as f64
    }
}

/// The three shape families that dominate the simulator's GEMM time:
/// RGF block products (large square), untransformed-SSE Norb batches
/// (many tiny squares), and the fused DaCe window GEMM (wide inner
/// dimension, Fig. 11c).
pub const SHAPE_CLASSES: [ShapeClass; 3] = [
    ShapeClass {
        name: "rgf_block",
        m: 256,
        k: 256,
        n: 256,
        batch: 1,
    },
    ShapeClass {
        name: "sse_batch",
        m: 16,
        k: 16,
        n: 16,
        batch: 512,
    },
    ShapeClass {
        name: "dace_wide",
        m: 8,
        k: 1024,
        n: 8,
        batch: 1,
    },
];

/// Measured throughput of one shape class.
#[derive(Clone, Copy, Debug)]
pub struct ClassThroughput {
    pub class: ShapeClass,
    /// Blocked/packed kernel, flop/s.
    pub blocked_flops: f64,
    /// Naive seed kernel, flop/s.
    pub naive_flops: f64,
}

impl ClassThroughput {
    pub fn speedup(&self) -> f64 {
        self.blocked_flops / self.naive_flops
    }
}

/// Full calibration result for the executing host.
#[derive(Clone, Debug)]
pub struct GemmCalibration {
    pub classes: Vec<ClassThroughput>,
}

/// Deterministic input fill (splitmix-style LCG) so repeated calibrations
/// time identical data without pulling in a RNG dependency.
fn fill(seed: u64, len: usize) -> Vec<Complex64> {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    (0..len).map(|_| c64(next(), next())).collect()
}

fn time_pass(mut f: impl FnMut(), min_reps: usize) -> f64 {
    f(); // warm up (packing pools, page faults)
    let t = Instant::now();
    for _ in 0..min_reps {
        f();
    }
    t.elapsed().as_secs_f64() / min_reps as f64
}

/// Measure blocked and naive throughput for one shape class.
pub fn measure_class(c: &ShapeClass) -> ClassThroughput {
    let a = fill(1, c.batch * c.m * c.k);
    let b = fill(2, c.batch * c.k * c.n);
    let mut out = vec![Complex64::ZERO; c.batch * c.m * c.n];
    // Aim for ~100 Mflop per timed pass so each measurement is O(10 ms).
    let reps = (1e8 / c.flops()).ceil().max(1.0) as usize;
    let blocked_t = time_pass(
        || {
            if c.batch == 1 {
                gemm::gemm_blocked_acc(c.m, c.k, c.n, &a, &b, &mut out);
            } else {
                gemm::batched_gemm_acc(c.m, c.k, c.n, c.batch, &a, &b, &mut out);
            }
        },
        reps,
    );
    let naive_t = time_pass(
        || {
            if c.batch == 1 {
                gemm::gemm_naive_acc(c.m, c.k, c.n, &a, &b, &mut out);
            } else {
                gemm::gemm_naive_batched_acc(c.m, c.k, c.n, c.batch, &a, &b, &mut out);
            }
        },
        reps,
    );
    ClassThroughput {
        class: *c,
        blocked_flops: c.flops() / blocked_t,
        naive_flops: c.flops() / naive_t,
    }
}

/// Run the full calibration sweep over [`SHAPE_CLASSES`].
pub fn calibrate() -> GemmCalibration {
    GemmCalibration {
        classes: SHAPE_CLASSES.iter().map(measure_class).collect(),
    }
}

impl GemmCalibration {
    fn class(&self, name: &str) -> &ClassThroughput {
        self.classes
            .iter()
            .find(|c| c.class.name == name)
            .expect("calibration covers all shape classes")
    }

    /// A [`Machine`] describing the executing host, with the sustained
    /// efficiencies replaced by achieved fractions of `peak_flops`:
    /// `eff_gf` from the RGF block class, `eff_sse` from the batched-SSE
    /// class run through the blocked kernel, `eff_sse_omen` from the same
    /// class through the naive seed kernel (the "untransformed" baseline).
    /// Network fields carry over from `template` — calibration only
    /// measures compute.
    pub fn host_machine(&self, peak_flops: f64, template: &Machine) -> Machine {
        let rgf = self.class("rgf_block");
        let sse = self.class("sse_batch");
        Machine {
            name: "calibrated-host",
            nodes_total: 1,
            gpus_per_node: 1,
            procs_per_node: 1,
            gpu_peak_flops: peak_flops,
            eff_gf: rgf.blocked_flops / peak_flops,
            eff_sse: sse.blocked_flops / peak_flops,
            eff_sse_omen: sse.naive_flops / peak_flops,
            alltoall_bw_per_node: template.alltoall_bw_per_node,
            omen_bw_penalty: template.omen_bw_penalty,
        }
    }
}

/// Measured throughput of the two Table 6 kernel families at one
/// coupling-block size: blocked dense GEMM versus the CSR row kernels.
/// The ratio `sparse_rate / dense_rate` is the density below which the
/// sparse route wins — CSRMM costs `8·nnz·bs` flop against GEMM's
/// `8·bs³`, so sparse time undercuts dense time exactly when
/// `density < sparse_rate / dense_rate`.
#[derive(Clone, Copy, Debug)]
pub struct KernelCalibration {
    /// Block size the rates were measured at.
    pub block_size: usize,
    /// Blocked dense GEMM throughput, flop/s.
    pub dense_rate: f64,
    /// CSR×dense throughput *on the nonzeros*, flop/s. Lower than
    /// `dense_rate` on any real machine (irregular access, no packing),
    /// which is precisely why the crossover sits below density 1.
    pub sparse_rate: f64,
}

impl KernelCalibration {
    /// Density at which the two kernels break even, clamped to `[0, 1]`.
    pub fn crossover(&self) -> f64 {
        if self.dense_rate > 0.0 {
            (self.sparse_rate / self.dense_rate).clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    /// The calibrated [`MultiplyStrategy::Auto`] carrying these rates.
    pub fn strategy(&self, band: f64) -> MultiplyStrategy {
        MultiplyStrategy::Auto {
            dense_rate: self.dense_rate,
            sparse_rate: self.sparse_rate,
            band,
        }
    }
}

/// Deterministic dense matrix at roughly `density`, for the sparse side of
/// the kernel calibration.
fn sparse_fill(seed: u64, rows: usize, cols: usize, density: f64) -> Matrix {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    Matrix::from_fn(rows, cols, |_, _| {
        let keep = (next() + 1.0) / 2.0 < density;
        let (re, im) = (next(), next());
        if keep {
            c64(re, im)
        } else {
            Complex64::ZERO
        }
    })
}

/// Time the blocked GEMM and the CSR×dense kernel at block size `bs`,
/// the sparse side on a representative coupling block of the given
/// structural `density`. Per-nonzero rates are density-dependent in
/// practice (shorter rows amortize less), so calibrate at a density near
/// the device's actual coupling density
/// ([`qt_core::hamiltonian::ElectronModel::coupling_density`]).
pub fn calibrate_kernels(bs: usize, density: f64) -> KernelCalibration {
    let a = fill(3, bs * bs);
    let b = fill(4, bs * bs);
    let mut out = vec![Complex64::ZERO; bs * bs];
    let dense_flops = 8.0 * (bs * bs * bs) as f64;
    let reps = (1e8 / dense_flops).ceil().clamp(1.0, 1e5) as usize;
    let dense_t = time_pass(
        || gemm::gemm_blocked_acc(bs, bs, bs, &a, &b, &mut out),
        reps,
    );
    let coupling = CsrMatrix::from_dense(&sparse_fill(5, bs, bs, density), 0.0);
    let operand = sparse_fill(6, bs, bs, 1.0);
    let mut sout = Matrix::zeros(bs, bs);
    // Rate on the nonzeros: the work CSRMM actually performs.
    let sparse_flops = (8 * coupling.nnz() * bs).max(8) as f64;
    let reps_s = (1e8 / sparse_flops).ceil().clamp(1.0, 1e5) as usize;
    let sparse_t = time_pass(|| coupling.mul_dense_acc(&operand, &mut sout), reps_s);
    KernelCalibration {
        block_size: bs,
        dense_rate: dense_flops / dense_t,
        sparse_rate: sparse_flops / sparse_t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::PIZ_DAINT;

    /// Tiny shapes so the test costs milliseconds, not seconds.
    fn quick() -> GemmCalibration {
        GemmCalibration {
            classes: vec![
                measure_class(&ShapeClass {
                    name: "rgf_block",
                    m: 48,
                    k: 48,
                    n: 48,
                    batch: 1,
                }),
                measure_class(&ShapeClass {
                    name: "sse_batch",
                    m: 8,
                    k: 8,
                    n: 8,
                    batch: 32,
                }),
            ],
        }
    }

    #[test]
    fn calibration_produces_positive_rates() {
        for c in &quick().classes {
            assert!(c.blocked_flops > 0.0 && c.naive_flops > 0.0);
        }
    }

    #[test]
    fn host_machine_inherits_network_and_orders_efficiencies() {
        let cal = quick();
        // Use a generous synthetic peak so efficiencies land in (0, 1).
        let peak = 1e12;
        let m = cal.host_machine(peak, &PIZ_DAINT);
        assert_eq!(m.name, "calibrated-host");
        assert!(m.eff_gf > 0.0 && m.eff_gf < 1.0);
        assert!(m.eff_sse > 0.0 && m.eff_sse < 1.0);
        assert!(m.eff_sse_omen > 0.0);
        assert_eq!(m.alltoall_bw_per_node, PIZ_DAINT.alltoall_bw_per_node);
        assert_eq!(m.omen_bw_penalty, PIZ_DAINT.omen_bw_penalty);
        // compute_rate plumbs the measured efficiency through unchanged.
        let rate = m.compute_rate(1, m.eff_gf);
        assert!((rate - cal.class("rgf_block").blocked_flops).abs() / rate < 1e-12);
    }

    #[test]
    fn kernel_calibration_rates_and_crossover() {
        let k = calibrate_kernels(24, 0.1);
        assert!(k.dense_rate > 0.0 && k.sparse_rate > 0.0);
        let c = k.crossover();
        assert!(c > 0.0 && c <= 1.0, "crossover must be a density, got {c}");
        match k.strategy(0.15) {
            MultiplyStrategy::Auto {
                dense_rate,
                sparse_rate,
                band,
            } => {
                assert_eq!(dense_rate, k.dense_rate);
                assert_eq!(sparse_rate, k.sparse_rate);
                assert_eq!(band, 0.15);
            }
            other => panic!("expected Auto, got {other:?}"),
        }
        // A dead dense rate degrades to an all-sparse crossover of 1.
        let z = KernelCalibration {
            block_size: 8,
            dense_rate: 0.0,
            sparse_rate: 1.0,
        };
        assert_eq!(z.crossover(), 1.0);
    }

    #[test]
    fn shape_class_flop_formula() {
        let c = ShapeClass {
            name: "x",
            m: 2,
            k: 3,
            n: 4,
            batch: 5,
        };
        assert_eq!(c.flops(), 8.0 * 2.0 * 3.0 * 4.0 * 5.0);
    }
}
