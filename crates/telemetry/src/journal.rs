//! Typed event journal: a lock-light, bounded flight recorder.
//!
//! Counters answer *how many*; the journal answers *what happened, in
//! what order, on which rank*. Every site that bumps a resilience or
//! balance counter also emits one typed [`Event`] here, so a chaos run
//! that goes wrong leaves a causal record (HeartbeatTimeout → RankDeath →
//! Retile) instead of an opaque aggregate.
//!
//! Design mirrors [`crate::counters`]: each thread owns a preallocated
//! ring registered once in a global list, so the warm path is one relaxed
//! atomic load (disabled) or one uncontended mutex on the thread's own
//! ring plus a slot write (enabled) — no allocation either way. The
//! `Arc`s keep a ring alive after its thread exits, which the short-lived
//! `qt_dist` world threads rely on.
//!
//! Overflow is never silent: a full ring overwrites its oldest record
//! (flight-recorder semantics — the newest events are the ones a
//! postmortem needs), but every overwrite bumps the `journal.dropped`
//! counter and the drain prepends one `Overflow{n}` marker per
//! overflowed ring.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Default per-thread ring capacity (events). At ~64 bytes per record a
/// ring is ~256 KiB; a full SCF chaos run emits a few thousand events.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// What happened. Variants are `Copy` — no owned data — so emitting an
/// event never allocates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A grid point failed a numerical-health check and was excluded.
    QuarantinePoint {
        /// Flattened `(E, kz)` / `(ω, qz)` grid index.
        grid_index: u64,
    },
    /// A Sancho-Rubio decimation was retried at bumped broadening.
    EtaRetry,
    /// The adaptive SCF controller halved the mixing factor.
    MixingBackoff {
        /// The new (halved) mixing factor.
        factor: f64,
    },
    /// A frame was retransmitted, timed out, or discarded as corrupt.
    CommRetransmit {
        /// Sending world slot.
        src: u64,
        /// Receiving world slot.
        dst: u64,
        /// Wire attempt index (0-based).
        attempt: u64,
    },
    /// A receive poll expired while watching a peer's liveness epoch.
    HeartbeatTimeout {
        /// The world slot whose heartbeat was being watched.
        watched: u64,
    },
    /// A rank was declared permanently dead.
    RankDeath {
        /// The dead world slot (original identity).
        rank: u64,
    },
    /// Survivors re-tiled the decomposition after a death.
    Retile {
        /// Work units migrated onto survivors in this pass.
        moved_units: u64,
    },
    /// An idle rank asked a peer for work.
    StealRequest {
        /// The rank being asked.
        victim: u64,
    },
    /// A straggler granted a work unit to a thief.
    StealGrant {
        /// The requesting rank.
        thief: u64,
        /// The granted work unit.
        unit: u64,
    },
    /// A steal request was declined (empty queue or finished victim).
    StealDeny {
        /// The requesting rank.
        thief: u64,
    },
    /// An SCF checkpoint was written to disk.
    CheckpointWrite,
    /// The kernel selector set or flipped a sticky per-coupling-block
    /// choice between the CSR sparse kernels and the blocked dense GEMM.
    /// Emitted on first choice and on hysteresis flips, not on every
    /// reuse of a settled choice.
    KernelChoice {
        /// Coupling-block index within the device (0-based).
        block: u64,
        /// `true` when the CSR sparse route was chosen.
        sparse: bool,
    },
    /// An SCF iteration completed.
    IterationDone {
        /// Convergence residual; NaN on the first iteration (none yet).
        residual: f64,
        /// Iteration wall time in seconds.
        wall_secs: f64,
    },
    /// A sweep request passed admission control and entered the queue.
    RequestAdmitted {
        /// Service-assigned request id.
        request: u64,
    },
    /// A sweep request was rejected with backpressure (queue full,
    /// breaker open, or shutdown).
    RequestRejected {
        /// Service-assigned request id.
        request: u64,
    },
    /// A sweep request finished with every point answered.
    RequestDone {
        /// Service-assigned request id.
        request: u64,
        /// Points that degraded from a warm start to a cold solve.
        degraded_points: u64,
    },
    /// The deadline watchdog cancelled an in-flight request.
    DeadlineExpired {
        /// Service-assigned request id.
        request: u64,
    },
    /// A warm-started point failed validation and re-ran cold.
    WarmFallback {
        /// Service-assigned request id.
        request: u64,
        /// Sweep point index within the request.
        point: u64,
    },
    /// The circuit breaker quarantined a device variant.
    BreakerOpen {
        /// Variant slot in the service's variant table.
        variant: u64,
    },
    /// Drain-on-shutdown checkpointed an in-flight sweep point.
    DrainCheckpoint {
        /// Service-assigned request id.
        request: u64,
        /// Sweep point index within the request.
        point: u64,
    },
    /// A corpus scenario's observable diverged from its golden record at
    /// one sweep point. The numeric diff rides the event as raw f64 bits
    /// so the postmortem timeline can reproduce the comparison exactly.
    CorpusMismatch {
        /// Sweep point index within the scenario.
        point: u64,
        /// `f64::to_bits` of the golden value.
        golden_bits: u64,
        /// `f64::to_bits` of the observed value.
        got_bits: u64,
    },
    /// Marker prepended at drain time for a ring that overflowed:
    /// `dropped` older events were overwritten before this drain.
    Overflow {
        /// Number of overwritten (lost) events.
        dropped: u64,
    },
}

impl EventKind {
    /// Stable kind tag used in the JSON encoding and postmortem timeline.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::QuarantinePoint { .. } => "quarantine_point",
            EventKind::EtaRetry => "eta_retry",
            EventKind::MixingBackoff { .. } => "mixing_backoff",
            EventKind::CommRetransmit { .. } => "comm_retransmit",
            EventKind::HeartbeatTimeout { .. } => "heartbeat_timeout",
            EventKind::RankDeath { .. } => "rank_death",
            EventKind::Retile { .. } => "retile",
            EventKind::StealRequest { .. } => "steal_request",
            EventKind::StealGrant { .. } => "steal_grant",
            EventKind::StealDeny { .. } => "steal_deny",
            EventKind::CheckpointWrite => "checkpoint_write",
            EventKind::KernelChoice { .. } => "kernel_choice",
            EventKind::IterationDone { .. } => "iteration_done",
            EventKind::RequestAdmitted { .. } => "request_admitted",
            EventKind::RequestRejected { .. } => "request_rejected",
            EventKind::RequestDone { .. } => "request_done",
            EventKind::DeadlineExpired { .. } => "deadline_expired",
            EventKind::WarmFallback { .. } => "warm_fallback",
            EventKind::BreakerOpen { .. } => "breaker_open",
            EventKind::DrainCheckpoint { .. } => "drain_checkpoint",
            EventKind::CorpusMismatch { .. } => "corpus_mismatch",
            EventKind::Overflow { .. } => "overflow",
        }
    }
}

/// One journal record: a timestamped [`EventKind`] with rank/unit/
/// iteration attribution (−1 = not attributed).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Microseconds since the journal epoch.
    pub ts_us: f64,
    /// Emitting world slot, or −1 outside any rank context.
    pub rank: i64,
    /// Work unit being computed, or −1 outside any unit context.
    pub unit: i64,
    /// SCF iteration, or −1 outside the SCF loop.
    pub iteration: i64,
    /// What happened.
    pub kind: EventKind,
}

struct Ring {
    buf: Vec<Event>,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    /// Events lost to overwrites since the last drain.
    dropped: u64,
}

impl Ring {
    fn with_capacity(cap: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(cap.max(1)),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: Event) {
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            // Flight-recorder wrap: overwrite the oldest, account the loss.
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.len();
            self.dropped += 1;
            crate::counters::add_journal_dropped(1);
        }
    }

    /// Records in arrival order, preceded by an `Overflow` marker when
    /// events were lost. Clears the ring.
    fn drain(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len() + 1);
        if self.dropped > 0 {
            // The marker timestamps at the oldest surviving record so the
            // merged timeline shows where the gap sits.
            let ts_us = self.buf.get(self.head).map_or(0.0, |e| e.ts_us);
            out.push(Event {
                ts_us,
                rank: self.buf.get(self.head).map_or(-1, |e| e.rank),
                unit: -1,
                iteration: -1,
                kind: EventKind::Overflow {
                    dropped: self.dropped,
                },
            });
        }
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
        out
    }
}

static JOURNALING: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
/// Capacity applied to rings registered (or re-armed) after the last
/// `set_ring_capacity`. Not an atomic usize only because the lock also
/// serializes re-arming.
static CAPACITY: AtomicI64 = AtomicI64::new(DEFAULT_RING_CAPACITY as i64);
/// Global SCF-iteration context (the loop is sequential; worker threads
/// inherit it).
static ITERATION: AtomicI64 = AtomicI64::new(-1);

thread_local! {
    static RING: Arc<Mutex<Ring>> = {
        let cap = CAPACITY.load(Relaxed) as usize;
        let ring = Arc::new(Mutex::new(Ring::with_capacity(cap)));
        RINGS.lock().unwrap().push(ring.clone());
        ring
    };
    static RANK: Cell<i64> = const { Cell::new(-1) };
    static UNIT: Cell<i64> = const { Cell::new(-1) };
}

/// Turn journaling on or off. Turning it on pins the journal epoch
/// (timestamp zero) if not already set and preallocates the calling
/// thread's ring.
pub fn set_journaling(on: bool) {
    if on {
        let _ = EPOCH.set(Instant::now());
        RING.with(|_| {});
    }
    JOURNALING.store(on, Relaxed);
}

/// Is journaling enabled? One relaxed load — the entire disabled-mode
/// cost of every emission site.
#[inline]
pub fn journaling_enabled() -> bool {
    JOURNALING.load(Relaxed)
}

/// Resize every registered ring (clearing it) and set the capacity for
/// rings registered later. Test hook for overflow regression at tiny
/// capacities; never called on a warm path.
pub fn set_ring_capacity(cap: usize) {
    CAPACITY.store(cap.max(1) as i64, Relaxed);
    for ring in RINGS.lock().unwrap().iter() {
        *ring.lock().unwrap() = Ring::with_capacity(cap);
    }
}

/// Set the calling thread's world-slot attribution (−1 clears it).
/// World-runner bodies call this once per spawned rank thread.
pub fn set_thread_rank(rank: i64) {
    RANK.with(|r| r.set(rank));
}

/// Set the calling thread's work-unit attribution (−1 clears it).
pub fn set_thread_unit(unit: i64) {
    UNIT.with(|u| u.set(unit));
}

/// Set the global SCF-iteration attribution (−1 clears it).
pub fn set_iteration(iteration: i64) {
    ITERATION.store(iteration, Relaxed);
}

/// Microseconds since the journal epoch.
fn now_us() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as f64 / 1e3
}

/// Record `kind` with the calling thread's attribution. No-op (one
/// relaxed load) while journaling is disabled; never allocates while
/// enabled (the ring is preallocated).
#[inline]
pub fn emit(kind: EventKind) {
    if !journaling_enabled() {
        return;
    }
    emit_now(kind);
}

#[cold]
fn emit_now(kind: EventKind) {
    let ev = Event {
        ts_us: now_us(),
        rank: RANK.with(|r| r.get()),
        unit: UNIT.with(|u| u.get()),
        iteration: ITERATION.load(Relaxed),
        kind,
    };
    RING.with(|ring| ring.lock().unwrap().push(ev));
}

/// Drain every thread's ring into one timeline sorted by timestamp.
/// Rings that overflowed contribute an `Overflow{n}` marker. Clears all
/// rings and their drop tallies.
pub fn drain() -> Vec<Event> {
    let mut out = Vec::new();
    for ring in RINGS.lock().unwrap().iter() {
        out.extend(ring.lock().unwrap().drain());
    }
    out.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    out
}

/// Per-kind counts of the currently buffered events, sorted by kind tag.
/// Non-consuming — the report's journal summary must not eat the
/// postmortem's timeline.
pub fn kind_counts() -> Vec<(&'static str, u64)> {
    let mut counts: Vec<(&'static str, u64)> = Vec::new();
    for ring in RINGS.lock().unwrap().iter() {
        for e in ring.lock().unwrap().buf.iter() {
            let tag = e.kind.tag();
            match counts.iter_mut().find(|(t, _)| *t == tag) {
                Some((_, n)) => *n += 1,
                None => counts.push((tag, 1)),
            }
        }
    }
    counts.sort_by_key(|&(t, _)| t);
    counts
}

/// Number of events currently buffered across all rings (survivors of
/// any overflow).
pub fn event_count() -> usize {
    RINGS
        .lock()
        .unwrap()
        .iter()
        .map(|r| r.lock().unwrap().buf.len())
        .sum()
}

/// Clear every ring, drop tally, and the attribution contexts. Part of
/// `qt_telemetry::reset_all`.
pub fn reset_journal() {
    for ring in RINGS.lock().unwrap().iter() {
        let mut r = ring.lock().unwrap();
        r.buf.clear();
        r.head = 0;
        r.dropped = 0;
    }
    ITERATION.store(-1, Relaxed);
}

impl Event {
    /// Encode as a flat JSON object (`kind` tag plus kind-specific
    /// fields).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("ts_us".to_string(), Json::Num(self.ts_us)),
            ("rank".to_string(), Json::Num(self.rank as f64)),
            ("unit".to_string(), Json::Num(self.unit as f64)),
            ("iteration".to_string(), Json::Num(self.iteration as f64)),
            ("kind".to_string(), Json::Str(self.kind.tag().to_string())),
        ];
        let mut num = |k: &str, v: f64| fields.push((k.to_string(), Json::Num(v)));
        match self.kind {
            EventKind::QuarantinePoint { grid_index } => num("grid_index", grid_index as f64),
            EventKind::MixingBackoff { factor } => num("factor", factor),
            EventKind::CommRetransmit { src, dst, attempt } => {
                num("src", src as f64);
                num("dst", dst as f64);
                num("attempt", attempt as f64);
            }
            EventKind::HeartbeatTimeout { watched } => num("watched", watched as f64),
            EventKind::RankDeath { rank } => num("dead_rank", rank as f64),
            EventKind::Retile { moved_units } => num("moved_units", moved_units as f64),
            EventKind::StealRequest { victim } => num("victim", victim as f64),
            EventKind::StealGrant { thief, unit } => {
                num("thief", thief as f64);
                num("granted_unit", unit as f64);
            }
            EventKind::StealDeny { thief } => num("thief", thief as f64),
            EventKind::KernelChoice { block, sparse } => {
                num("block", block as f64);
                fields.push(("sparse".to_string(), Json::Bool(sparse)));
            }
            EventKind::IterationDone {
                residual,
                wall_secs,
            } => {
                // NaN (no residual yet) cannot ride JSON; encode as null.
                fields.push((
                    "residual".to_string(),
                    if residual.is_finite() {
                        Json::Num(residual)
                    } else {
                        Json::Null
                    },
                ));
                fields.push(("wall_secs".to_string(), Json::Num(wall_secs)));
            }
            EventKind::RequestAdmitted { request }
            | EventKind::RequestRejected { request }
            | EventKind::DeadlineExpired { request } => num("request", request as f64),
            EventKind::RequestDone {
                request,
                degraded_points,
            } => {
                num("request", request as f64);
                num("degraded_points", degraded_points as f64);
            }
            EventKind::WarmFallback { request, point }
            | EventKind::DrainCheckpoint { request, point } => {
                num("request", request as f64);
                num("point", point as f64);
            }
            EventKind::BreakerOpen { variant } => num("variant", variant as f64),
            EventKind::CorpusMismatch {
                point,
                golden_bits,
                got_bits,
            } => {
                num("point", point as f64);
                // u64 bit patterns exceed f64's integer range; ride as
                // strings to stay lossless.
                fields.push((
                    "golden_bits".to_string(),
                    Json::Str(format!("{golden_bits:#018x}")),
                ));
                fields.push((
                    "got_bits".to_string(),
                    Json::Str(format!("{got_bits:#018x}")),
                ));
            }
            EventKind::Overflow { dropped } => num("dropped", dropped as f64),
            EventKind::EtaRetry | EventKind::CheckpointWrite => {}
        }
        Json::Obj(fields)
    }

    /// Decode an event encoded by [`Event::to_json`].
    pub fn from_json(v: &Json) -> Result<Event, String> {
        let num = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("journal event lacks number {k:?}"))
        };
        let int = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or(format!("journal event lacks integer {k:?}"))
        };
        let tag = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("journal event lacks kind tag")?;
        let kind = match tag {
            "quarantine_point" => EventKind::QuarantinePoint {
                grid_index: int("grid_index")?,
            },
            "eta_retry" => EventKind::EtaRetry,
            "mixing_backoff" => EventKind::MixingBackoff {
                factor: num("factor")?,
            },
            "comm_retransmit" => EventKind::CommRetransmit {
                src: int("src")?,
                dst: int("dst")?,
                attempt: int("attempt")?,
            },
            "heartbeat_timeout" => EventKind::HeartbeatTimeout {
                watched: int("watched")?,
            },
            "rank_death" => EventKind::RankDeath {
                rank: int("dead_rank")?,
            },
            "retile" => EventKind::Retile {
                moved_units: int("moved_units")?,
            },
            "steal_request" => EventKind::StealRequest {
                victim: int("victim")?,
            },
            "steal_grant" => EventKind::StealGrant {
                thief: int("thief")?,
                unit: int("granted_unit")?,
            },
            "steal_deny" => EventKind::StealDeny {
                thief: int("thief")?,
            },
            "checkpoint_write" => EventKind::CheckpointWrite,
            "kernel_choice" => EventKind::KernelChoice {
                block: int("block")?,
                sparse: v
                    .get("sparse")
                    .and_then(Json::as_bool)
                    .ok_or("kernel_choice event lacks bool \"sparse\"")?,
            },
            "iteration_done" => EventKind::IterationDone {
                residual: match v.get("residual") {
                    Some(Json::Num(r)) => *r,
                    _ => f64::NAN,
                },
                wall_secs: num("wall_secs")?,
            },
            "request_admitted" => EventKind::RequestAdmitted {
                request: int("request")?,
            },
            "request_rejected" => EventKind::RequestRejected {
                request: int("request")?,
            },
            "request_done" => EventKind::RequestDone {
                request: int("request")?,
                degraded_points: int("degraded_points")?,
            },
            "deadline_expired" => EventKind::DeadlineExpired {
                request: int("request")?,
            },
            "warm_fallback" => EventKind::WarmFallback {
                request: int("request")?,
                point: int("point")?,
            },
            "breaker_open" => EventKind::BreakerOpen {
                variant: int("variant")?,
            },
            "drain_checkpoint" => EventKind::DrainCheckpoint {
                request: int("request")?,
                point: int("point")?,
            },
            "corpus_mismatch" => {
                let bits = |k: &str| -> Result<u64, String> {
                    let s = v
                        .get(k)
                        .and_then(Json::as_str)
                        .ok_or(format!("corpus_mismatch event lacks string {k:?}"))?;
                    u64::from_str_radix(s.trim_start_matches("0x"), 16)
                        .map_err(|e| format!("bad {k} {s:?}: {e}"))
                };
                EventKind::CorpusMismatch {
                    point: int("point")?,
                    golden_bits: bits("golden_bits")?,
                    got_bits: bits("got_bits")?,
                }
            }
            "overflow" => EventKind::Overflow {
                dropped: int("dropped")?,
            },
            other => return Err(format!("unknown journal event kind {other:?}")),
        };
        let ctx = |k: &str| -> Result<i64, String> { Ok(num(k)? as i64) };
        Ok(Event {
            ts_us: num("ts_us")?,
            rank: ctx("rank")?,
            unit: ctx("unit")?,
            iteration: ctx("iteration")?,
            kind,
        })
    }

    /// One human-readable timeline line (without the timestamp prefix).
    pub fn describe(&self) -> String {
        let mut ctx = String::new();
        if self.rank >= 0 {
            ctx.push_str(&format!(" rank={}", self.rank));
        }
        if self.unit >= 0 {
            ctx.push_str(&format!(" unit={}", self.unit));
        }
        if self.iteration >= 0 {
            ctx.push_str(&format!(" iter={}", self.iteration));
        }
        let what = match self.kind {
            EventKind::QuarantinePoint { grid_index } => {
                format!("quarantined grid point {grid_index}")
            }
            EventKind::EtaRetry => "eta-bump decimation retry".to_string(),
            EventKind::MixingBackoff { factor } => {
                format!("mixing backoff -> factor {factor}")
            }
            EventKind::CommRetransmit { src, dst, attempt } => {
                format!("comm retransmit {src}->{dst} attempt {attempt}")
            }
            EventKind::HeartbeatTimeout { watched } => {
                format!("heartbeat timeout watching rank {watched}")
            }
            EventKind::RankDeath { rank } => format!("rank {rank} declared dead"),
            EventKind::Retile { moved_units } => {
                format!("survivors re-tiled, {moved_units} units migrated")
            }
            EventKind::StealRequest { victim } => format!("steal request to rank {victim}"),
            EventKind::StealGrant { thief, unit } => {
                format!("granted unit {unit} to thief {thief}")
            }
            EventKind::StealDeny { thief } => format!("denied steal request from {thief}"),
            EventKind::CheckpointWrite => "checkpoint written".to_string(),
            EventKind::KernelChoice { block, sparse } => {
                let kernel = if sparse { "sparse CSR" } else { "dense GEMM" };
                format!("coupling block {block} routed to {kernel} kernels")
            }
            EventKind::IterationDone {
                residual,
                wall_secs,
            } => {
                if residual.is_finite() {
                    format!("iteration done, residual {residual:.3e}, {wall_secs:.3}s")
                } else {
                    format!("iteration done (no residual), {wall_secs:.3}s")
                }
            }
            EventKind::RequestAdmitted { request } => {
                format!("request {request} admitted into the sweep queue")
            }
            EventKind::RequestRejected { request } => {
                format!("request {request} rejected with backpressure")
            }
            EventKind::RequestDone {
                request,
                degraded_points,
            } => {
                if degraded_points > 0 {
                    format!("request {request} done ({degraded_points} points degraded to cold)")
                } else {
                    format!("request {request} done")
                }
            }
            EventKind::DeadlineExpired { request } => {
                format!("deadline expired, cancelling request {request}")
            }
            EventKind::WarmFallback { request, point } => {
                format!("request {request} point {point} fell back from warm start to cold solve")
            }
            EventKind::BreakerOpen { variant } => {
                format!("circuit breaker opened for device variant {variant}")
            }
            EventKind::DrainCheckpoint { request, point } => {
                format!("drain checkpointed request {request} point {point}")
            }
            EventKind::CorpusMismatch {
                point,
                golden_bits,
                got_bits,
            } => {
                format!(
                    "corpus point {point} diverged from golden: {:e} vs {:e}",
                    f64::from_bits(golden_bits),
                    f64::from_bits(got_bits)
                )
            }
            EventKind::Overflow { dropped } => {
                format!("[ring overflow: {dropped} older events lost]")
            }
        };
        format!("{what}{ctx}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The journal is process-global; serialize tests that drain it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let _g = lock();
        reset_journal();
        set_journaling(false);
        emit(EventKind::EtaRetry);
        assert_eq!(event_count(), 0);
    }

    #[test]
    fn events_carry_attribution_and_sort_by_time() {
        let _g = lock();
        reset_journal();
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        set_journaling(true);
        set_thread_rank(3);
        set_thread_unit(7);
        set_iteration(2);
        emit(EventKind::HeartbeatTimeout { watched: 1 });
        emit(EventKind::RankDeath { rank: 1 });
        set_journaling(false);
        set_thread_rank(-1);
        set_thread_unit(-1);
        set_iteration(-1);
        let events = drain();
        assert_eq!(events.len(), 2);
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        let death = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::RankDeath { rank: 1 }))
            .unwrap();
        assert_eq!((death.rank, death.unit, death.iteration), (3, 7, 2));
        assert_eq!(event_count(), 0, "drain clears the rings");
    }

    #[test]
    fn overflow_wraps_keeps_newest_and_accounts_drops() {
        let _g = lock();
        reset_journal();
        set_ring_capacity(4);
        set_journaling(true);
        let dropped0 = crate::counters::total_journal_dropped();
        for i in 0..10u64 {
            emit(EventKind::QuarantinePoint { grid_index: i });
        }
        set_journaling(false);
        let events = drain();
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        // 4 survivors + 1 overflow marker; the survivors are the NEWEST 4.
        assert_eq!(events.len(), 5);
        assert!(matches!(events[0].kind, EventKind::Overflow { dropped: 6 }));
        let survivors: Vec<u64> = events[1..]
            .iter()
            .map(|e| match e.kind {
                EventKind::QuarantinePoint { grid_index } => grid_index,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(survivors, vec![6, 7, 8, 9]);
        assert_eq!(
            crate::counters::total_journal_dropped() - dropped0,
            6,
            "every overwrite must bump journal.dropped"
        );
    }

    #[test]
    fn events_roundtrip_through_json() {
        let kinds = [
            EventKind::QuarantinePoint { grid_index: 9 },
            EventKind::EtaRetry,
            EventKind::MixingBackoff { factor: 0.25 },
            EventKind::CommRetransmit {
                src: 1,
                dst: 2,
                attempt: 3,
            },
            EventKind::HeartbeatTimeout { watched: 5 },
            EventKind::RankDeath { rank: 5 },
            EventKind::Retile { moved_units: 4 },
            EventKind::StealRequest { victim: 0 },
            EventKind::StealGrant { thief: 2, unit: 11 },
            EventKind::StealDeny { thief: 2 },
            EventKind::CheckpointWrite,
            EventKind::KernelChoice {
                block: 3,
                sparse: true,
            },
            EventKind::KernelChoice {
                block: 4,
                sparse: false,
            },
            EventKind::IterationDone {
                residual: 1e-6,
                wall_secs: 0.25,
            },
            EventKind::RequestAdmitted { request: 1 },
            EventKind::RequestRejected { request: 2 },
            EventKind::RequestDone {
                request: 1,
                degraded_points: 2,
            },
            EventKind::DeadlineExpired { request: 3 },
            EventKind::WarmFallback {
                request: 1,
                point: 4,
            },
            EventKind::BreakerOpen { variant: 0 },
            EventKind::DrainCheckpoint {
                request: 5,
                point: 6,
            },
            EventKind::CorpusMismatch {
                point: 2,
                golden_bits: 0x3FE0000000000000,
                got_bits: f64::NAN.to_bits(),
            },
            EventKind::Overflow { dropped: 17 },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let ev = Event {
                ts_us: i as f64 * 10.0,
                rank: 1,
                unit: -1,
                iteration: 3,
                kind,
            };
            let back = Event::from_json(&ev.to_json()).unwrap();
            assert_eq!(back, ev, "kind {:?}", kind.tag());
            assert!(!ev.describe().is_empty());
        }
        // The no-residual iteration encodes NaN as null and decodes to NaN.
        let ev = Event {
            ts_us: 0.0,
            rank: -1,
            unit: -1,
            iteration: 0,
            kind: EventKind::IterationDone {
                residual: f64::NAN,
                wall_secs: 1.0,
            },
        };
        let back = Event::from_json(&ev.to_json()).unwrap();
        match back.kind {
            EventKind::IterationDone { residual, .. } => assert!(residual.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn from_json_rejects_unknown_kinds() {
        let v = Json::parse(
            r#"{"ts_us": 0, "rank": -1, "unit": -1, "iteration": -1, "kind": "warp_core_breach"}"#,
        )
        .unwrap();
        assert!(Event::from_json(&v).is_err());
    }
}
