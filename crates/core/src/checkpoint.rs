//! SCF checkpoint/restart.
//!
//! At extreme scale (the paper's §5 projection) a Born loop runs for hours;
//! losing the whole run to a node failure in iteration 14 of 15 is not
//! acceptable. [`ScfCheckpoint`] serializes everything the loop needs to
//! continue *bit-exactly*: the mixed self-energies, the previous `G<`
//! iterate (so the first resumed residual matches the uninterrupted run),
//! the residual/current histories, and the adaptive-mixing controller
//! state.
//!
//! The format is a deliberately simple little-endian binary layout (magic,
//! scalar header, then length-prefixed `f64` arrays for each tensor):
//! raw `f64` bit patterns round-trip exactly, which a text format would
//! not guarantee, and the writer goes through a temp file + atomic rename
//! so a crash mid-write can never leave a torn checkpoint behind.

use crate::gf::{ElectronSelfEnergy, PhononSelfEnergy};
use qt_linalg::{c64, Tensor};
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic prefix identifying checkpoint format version 1.
const MAGIC: &[u8; 8] = b"QTCKPT01";

/// Family prefix shared by every checkpoint format version; the two bytes
/// after it carry the version digits ("01" today).
const FAMILY: &[u8; 6] = b"QTCKPT";

/// Why a checkpoint could not be read.
///
/// Callers that merely *try* to resume (a missing or stale checkpoint is
/// routine) can match on the variant to decide between "start fresh" and
/// "refuse to clobber a file we do not understand": a [`Truncated`] or
/// [`BadMagic`] file is garbage, while [`UnsupportedVersion`] means the
/// file is a real checkpoint from an incompatible build and deserves a
/// loud error rather than a silent cold start.
///
/// [`Truncated`]: CheckpointError::Truncated
/// [`BadMagic`]: CheckpointError::BadMagic
/// [`UnsupportedVersion`]: CheckpointError::UnsupportedVersion
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be opened or read at all.
    Io(io::Error),
    /// The first bytes are not `QTCKPT..` — this is not a checkpoint.
    BadMagic,
    /// The `QTCKPT` family prefix matched but the version digits did not;
    /// `found` is the on-disk version field, `supported` the one this
    /// build reads.
    UnsupportedVersion { found: [u8; 2], supported: [u8; 2] },
    /// The file ended before the structure it promised; `needed` bytes
    /// were requested with only `available` left.
    Truncated { needed: usize, available: usize },
    /// A structurally impossible field (e.g. a length prefix or tensor
    /// shape that cannot fit in the file).
    Invalid(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a qt checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint version `{}` (this build reads `{}`)",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(supported),
            ),
            CheckpointError::Truncated { needed, available } => write!(
                f,
                "truncated checkpoint: needed {needed} bytes, {available} available"
            ),
            CheckpointError::Invalid(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Persistent snapshot of the Born loop between two iterations.
#[derive(Clone, Debug)]
pub struct ScfCheckpoint {
    /// Next iteration to run (iterations `0..iteration` are complete).
    pub iteration: usize,
    /// Adaptive-mixing controller state: the effective mixing factor.
    pub mixing_current: f64,
    /// Adaptive-mixing controller state: last observed residual.
    pub prev_residual: Option<f64>,
    /// Adaptive-mixing controller state: consecutive-decrease streak.
    pub decrease_streak: u32,
    /// Finite residuals recorded so far.
    pub residuals: Vec<f64>,
    /// Electrical current after each completed iteration.
    pub current_history: Vec<f64>,
    /// Mixed electron scattering self-energy Σ≷.
    pub sigma: ElectronSelfEnergy,
    /// Mixed phonon scattering self-energy Π≷.
    pub pi: PhononSelfEnergy,
    /// `G<` of the last completed iteration (residual continuity).
    pub prev_gl: Option<Tensor>,
}

/// When and where [`crate::scf::run_scf_resumable`] writes checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Checkpoint file path (overwritten atomically on every write).
    pub path: std::path::PathBuf,
    /// Write after every `every` completed iterations (0 disables writes).
    pub every: usize,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_slice(out: &mut Vec<u8>, vs: &[f64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_f64(out, v);
    }
}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    put_u64(out, t.shape().len() as u64);
    for &d in t.shape() {
        put_u64(out, d as u64);
    }
    for z in t.as_slice() {
        put_f64(out, z.re);
        put_f64(out, z.im);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(CheckpointError::Truncated {
                needed: n,
                available: self.buf.len() - self.pos,
            });
        };
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.len_checked()?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn tensor(&mut self) -> Result<Tensor, CheckpointError> {
        let ndim = self.len_checked()?;
        let shape: Vec<usize> = (0..ndim)
            .map(|_| self.u64().map(|d| d as usize))
            .collect::<Result<_, _>>()?;
        // Bound the element count before Tensor::zeros: a corrupt shape
        // field must not trigger a multi-terabyte allocation. Each element
        // occupies 16 bytes (re + im) in the file.
        let elems = shape
            .iter()
            .try_fold(1usize, |a, &d| a.checked_mul(d))
            .ok_or(CheckpointError::Invalid("tensor shape overflows usize"))?;
        let need = elems
            .checked_mul(16)
            .ok_or(CheckpointError::Invalid("tensor shape overflows usize"))?;
        if need > self.buf.len() - self.pos {
            return Err(CheckpointError::Invalid(
                "tensor shape exceeds remaining file size",
            ));
        }
        let mut t = Tensor::zeros(&shape);
        for z in t.as_mut_slice() {
            let re = self.f64()?;
            let im = self.f64()?;
            *z = c64(re, im);
        }
        Ok(t)
    }

    /// A length prefix, rejected before allocation when it cannot possibly
    /// fit in the remaining bytes (corrupt headers would otherwise ask for
    /// absurd allocations).
    fn len_checked(&mut self) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        if n > (self.buf.len() - self.pos) as u64 {
            return Err(CheckpointError::Invalid(
                "length field exceeds remaining file size",
            ));
        }
        Ok(n as usize)
    }
}

impl ScfCheckpoint {
    /// Serialize to the format described in the module docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.iteration as u64);
        put_f64(&mut out, self.mixing_current);
        put_u64(&mut out, self.prev_residual.is_some() as u64);
        put_f64(&mut out, self.prev_residual.unwrap_or(0.0));
        put_u64(&mut out, self.decrease_streak as u64);
        put_f64_slice(&mut out, &self.residuals);
        put_f64_slice(&mut out, &self.current_history);
        put_tensor(&mut out, &self.sigma.lesser);
        put_tensor(&mut out, &self.sigma.greater);
        put_tensor(&mut out, &self.pi.lesser);
        put_tensor(&mut out, &self.pi.greater);
        put_u64(&mut out, self.prev_gl.is_some() as u64);
        if let Some(gl) = &self.prev_gl {
            put_tensor(&mut out, gl);
        }
        out
    }

    /// Parse a serialized checkpoint.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut c = Cursor { buf, pos: 0 };
        let magic = c.take(8)?;
        if magic != MAGIC {
            if &magic[..6] == FAMILY {
                return Err(CheckpointError::UnsupportedVersion {
                    found: magic[6..8].try_into().unwrap(),
                    supported: MAGIC[6..8].try_into().unwrap(),
                });
            }
            return Err(CheckpointError::BadMagic);
        }
        let iteration = c.u64()? as usize;
        let mixing_current = c.f64()?;
        let has_prev_res = c.u64()? != 0;
        let prev_res_val = c.f64()?;
        let decrease_streak = c.u64()? as u32;
        let residuals = c.f64_vec()?;
        let current_history = c.f64_vec()?;
        let sigma = ElectronSelfEnergy {
            lesser: c.tensor()?,
            greater: c.tensor()?,
        };
        let pi = PhononSelfEnergy {
            lesser: c.tensor()?,
            greater: c.tensor()?,
        };
        let prev_gl = if c.u64()? != 0 {
            Some(c.tensor()?)
        } else {
            None
        };
        Ok(ScfCheckpoint {
            iteration,
            mixing_current,
            prev_residual: has_prev_res.then_some(prev_res_val),
            decrease_streak,
            residuals,
            current_history,
            sigma,
            pi,
            prev_gl,
        })
    }

    /// Write atomically: serialize to `<path>.tmp`, then rename over
    /// `path`, so readers only ever observe complete checkpoints.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        qt_telemetry::counters::add_checkpoint_write();
        qt_telemetry::journal::emit(qt_telemetry::EventKind::CheckpointWrite);
        Ok(())
    }

    /// Load a checkpoint written by [`ScfCheckpoint::save`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut buf = Vec::new();
        fs::File::open(path)?.read_to_end(&mut buf)?;
        Self::from_bytes(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SimParams;

    fn sample() -> ScfCheckpoint {
        let p = SimParams::test_small();
        let mut sigma = ElectronSelfEnergy::zeros(&p);
        sigma.lesser.as_mut_slice()[3] = c64(1.25e-3, -7.5);
        let mut pi = PhononSelfEnergy::zeros(&p);
        pi.greater.as_mut_slice()[0] = c64(f64::MIN_POSITIVE, 1.0);
        let mut gl = Tensor::zeros(&[2, 3]);
        gl.as_mut_slice()[5] = c64(0.1, 0.2);
        ScfCheckpoint {
            iteration: 7,
            mixing_current: 0.125,
            prev_residual: Some(3.25e-4),
            decrease_streak: 2,
            residuals: vec![0.5, 0.25, 3.25e-4],
            current_history: vec![1.0, 1.5, 1.25],
            sigma,
            pi,
            prev_gl: Some(gl),
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let ck = sample();
        let back = ScfCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.iteration, ck.iteration);
        assert_eq!(back.mixing_current.to_bits(), ck.mixing_current.to_bits());
        assert_eq!(back.prev_residual, ck.prev_residual);
        assert_eq!(back.decrease_streak, ck.decrease_streak);
        assert_eq!(back.residuals, ck.residuals);
        assert_eq!(back.current_history, ck.current_history);
        assert_eq!(back.sigma.lesser.as_slice(), ck.sigma.lesser.as_slice());
        assert_eq!(back.sigma.greater.as_slice(), ck.sigma.greater.as_slice());
        assert_eq!(back.pi.lesser.as_slice(), ck.pi.lesser.as_slice());
        assert_eq!(back.pi.greater.as_slice(), ck.pi.greater.as_slice());
        assert_eq!(
            back.prev_gl.as_ref().unwrap().as_slice(),
            ck.prev_gl.as_ref().unwrap().as_slice()
        );
        assert_eq!(
            back.prev_gl.as_ref().unwrap().shape(),
            ck.prev_gl.as_ref().unwrap().shape()
        );
    }

    #[test]
    fn save_load_via_disk_and_atomic_tmp() {
        let dir = std::env::temp_dir().join("qt-ckpt-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scf.ckpt");
        let writes0 = qt_telemetry::counters::total_checkpoint_writes();
        let ck = sample();
        ck.save(&path).unwrap();
        assert!(qt_telemetry::counters::total_checkpoint_writes() > writes0);
        assert!(!path.with_extension("tmp").exists(), "tmp must be renamed");
        let back = ScfCheckpoint::load(&path).unwrap();
        assert_eq!(back.residuals, ck.residuals);
        // Overwrite (second save) must also succeed atomically.
        ck.save(&path).unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(ScfCheckpoint::from_bytes(b"garbage!").is_err());
        let ck = sample();
        let mut bytes = ck.to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(ScfCheckpoint::from_bytes(&bytes).is_err());
        // Absurd length prefix: flip the residual-count field to u64::MAX.
        let mut bytes = ck.to_bytes();
        // magic(8) + iter(8) + mix(8) + flag(8) + prev(8) + streak(8) = 48.
        bytes[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ScfCheckpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn error_variants_classify_the_corruption() {
        let ck = sample();
        let good = ck.to_bytes();

        // Wrong family prefix entirely → BadMagic.
        let mut bytes = good.clone();
        bytes[..8].copy_from_slice(b"NOTCKPT!");
        assert!(matches!(
            ScfCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        ));

        // Right family, future version digits → UnsupportedVersion that
        // names both versions, NOT BadMagic.
        let mut bytes = good.clone();
        bytes[..8].copy_from_slice(b"QTCKPT99");
        match ScfCheckpoint::from_bytes(&bytes) {
            Err(CheckpointError::UnsupportedVersion { found, supported }) => {
                assert_eq!(&found, b"99");
                assert_eq!(&supported, b"01");
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }

        // Mid-scalar-header truncation → Truncated with honest byte counts
        // (50 bytes ends two bytes into the decrease-streak field).
        match ScfCheckpoint::from_bytes(&good[..50]) {
            Err(CheckpointError::Truncated { needed, available }) => {
                assert_eq!(needed, 8);
                assert_eq!(available, 2);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // A cut inside a tensor body is caught by the shape-vs-file bound
        // before any element read.
        assert!(matches!(
            ScfCheckpoint::from_bytes(&good[..good.len() - 5]),
            Err(CheckpointError::Invalid(_))
        ));

        // A file shorter than the magic itself is also Truncated.
        assert!(matches!(
            ScfCheckpoint::from_bytes(b"QTCK"),
            Err(CheckpointError::Truncated { .. })
        ));

        // Tensor shape that cannot fit in the file → Invalid before any
        // allocation is attempted. The sigma tensor header starts after the
        // scalar block and the two f64 vecs; corrupt its first dim.
        let mut bytes = good.clone();
        let sigma_hdr = 48 + 8 + 8 * ck.residuals.len() + 8 + 8 * ck.current_history.len();
        // ndim stays, first dimension becomes enormous.
        bytes[sigma_hdr + 8..sigma_hdr + 16].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(
            ScfCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::Invalid(_))
        ));

        // Missing file → Io, and `source()` exposes the underlying error.
        let err = ScfCheckpoint::load(Path::new("/nonexistent/qt.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
        // Every variant renders a human-readable message.
        assert!(format!("{err}").contains("I/O"));
    }
}
