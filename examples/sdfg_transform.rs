//! Replay §4.2: build the Σ≷ SSE kernel as a dataflow graph (Fig. 8) and
//! apply the paper's transformation pipeline (Figs. 9–12), printing the
//! data-movement/flop statistics after every step and exporting GraphViz
//! renderings of the before/after graphs.
//!
//! ```sh
//! cargo run --release --example sdfg_transform
//! ```

use dace_omen::sdfg::library;
use dace_omen::sdfg::{Bindings, StateGraph};

fn bindings() -> Bindings {
    // Scaled-down simulation parameters (structure identical to Table 1).
    [
        ("Nkz", 5),
        ("NE", 64),
        ("Nqz", 5),
        ("Nw", 8),
        ("N3D", 3),
        ("NA", 64),
        ("NB", 6),
        ("Norb", 4),
    ]
    .iter()
    .map(|&(k, v)| (k.to_string(), v))
    .collect()
}

fn main() {
    println!("== data-centric transformation of the SSE kernel (Figs. 8-12) ==\n");
    let b = bindings();
    let mut tree = library::sse_sigma_tree();
    tree.validate().expect("valid initial SDFG");

    let initial_dot = StateGraph::from_tree(&tree).to_dot();
    std::fs::write("sse_initial.dot", &initial_dot).expect("write dot");

    let steps = library::transform_sse_sigma(&mut tree, &b).expect("pipeline applies");

    println!(
        "{:<42} {:>14} {:>16} {:>14}",
        "transformation", "Gflop", "accesses", "transients"
    );
    let mut first_flops = None;
    for step in &steps {
        let flops = step.stats.flops as f64 / 1e9;
        first_flops.get_or_insert(flops);
        println!(
            "{:<42} {:>14.3} {:>16} {:>11} KiB",
            step.name,
            flops,
            step.stats.total_accesses(),
            step.stats.transient_bytes / 1024
        );
    }
    let last = steps.last().unwrap();
    println!(
        "\nflop reduction: {:.2}x (paper Table 3: approaches 2x for large Nqz*Nw)",
        first_flops.unwrap() / (last.stats.flops as f64 / 1e9)
    );
    println!(
        "transient footprint reduction: {:.0}x (map fusion, Fig. 12)",
        steps[1].stats.transient_bytes as f64 / last.stats.transient_bytes as f64
    );

    let final_dot = StateGraph::from_tree(&tree).to_dot();
    std::fs::write("sse_transformed.dot", &final_dot).expect("write dot");
    println!("\nwrote sse_initial.dot and sse_transformed.dot (render with `dot -Tpdf`)");

    // Also export the Fig. 4 matmul SDFG and the Fig. 6 top-level view.
    std::fs::write(
        "matmul.dot",
        StateGraph::from_tree(&library::matmul_tree()).to_dot(),
    )
    .expect("write dot");
    for state in library::qt_toplevel() {
        let name = format!("qt_{}.dot", state.name.to_lowercase());
        std::fs::write(&name, StateGraph::from_tree(&state).to_dot()).expect("write dot");
        println!("wrote {name}");
    }
    println!("wrote matmul.dot");
    println!("\nfinal scope tree:\n{tree}");
}
