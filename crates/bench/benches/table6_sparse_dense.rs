//! Table 6: sparse vs dense coupling kernels in RGF.
//!
//! Two granularities:
//!
//! * `table6_rgf_triple_product` — the paper's isolated 3-matrix product
//!   (`F[n] @ gR[n+1] @ E[n+1]`), Dense-MM vs CSRMM vs CSRGEMM. The paper
//!   measured 203.59 / 47.06 / 93.02 ms on a P100 with cuSPARSE; the
//!   reproduction checks the *ordering* and rough ratios on CPU.
//! * `table6_rgf_full_solve` — the same choice embedded in the full
//!   block-tridiagonal solve: all-dense vs forced-CSR coupling products vs
//!   the calibrated per-block auto-selector, across a block-size × density
//!   grid spanning both sides of the crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qt_bench::{
    sparse_rgf_problem, table6_csrgemm, table6_csrmm, table6_dense_mm, table6_operands,
};
use qt_core::rgf::{self, KernelSelector, MultiplyStrategy};
use std::hint::black_box;

fn bench_table6(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_rgf_triple_product");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        let ops = table6_operands(n, 0.06, 11);
        group.bench_with_input(BenchmarkId::new("dense_mm", n), &ops, |b, ops| {
            b.iter(|| black_box(table6_dense_mm(ops)))
        });
        group.bench_with_input(BenchmarkId::new("csrmm", n), &ops, |b, ops| {
            b.iter(|| black_box(table6_csrmm(ops)))
        });
        group.bench_with_input(BenchmarkId::new("csrgemm", n), &ops, |b, ops| {
            b.iter(|| black_box(table6_csrgemm(ops)))
        });
    }
    group.finish();
}

fn bench_table6_full_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_rgf_full_solve");
    group.sample_size(10);
    let blocks = 8usize;
    for &bs in &[32usize, 64] {
        // Calibrate once per block size; the selector then routes every
        // coupling block by measured density.
        let cal = qt_model::calibrate_kernels(bs, 0.08);
        let auto = cal.strategy(0.1);
        for &density in &[0.05f64, 0.2, 0.6] {
            let (a, sig) = sparse_rgf_problem(blocks, bs, density, 42);
            let id = format!("bs{bs}_d{density}");
            group.bench_with_input(BenchmarkId::new("dense", &id), &(), |b, ()| {
                b.iter(|| {
                    black_box(
                        rgf::rgf_with_strategy(&a, &sig, MultiplyStrategy::Dense).expect("rgf"),
                    )
                })
            });
            group.bench_with_input(BenchmarkId::new("csrmm", &id), &(), |b, ()| {
                b.iter(|| {
                    black_box(
                        rgf::rgf_with_strategy(
                            &a,
                            &sig,
                            MultiplyStrategy::Csrmm { threshold: 0.0 },
                        )
                        .expect("rgf"),
                    )
                })
            });
            let sel = KernelSelector::new(blocks - 1);
            group.bench_with_input(BenchmarkId::new("selector", &id), &(), |b, ()| {
                b.iter(|| {
                    black_box(rgf::rgf_with_selector(&a, &sig, auto, Some(&sel)).expect("rgf"))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table6, bench_table6_full_solve);
criterion_main!(benches);
