//! Table 6: sparse vs dense 3-matrix multiplication in RGF
//! (`F[n] @ gR[n+1] @ E[n+1]`) — Dense-MM vs CSRMM vs CSRGEMM.
//!
//! The paper measured 203.59 / 47.06 / 93.02 ms on a P100 with cuSPARSE;
//! the reproduction checks the *ordering* and rough ratios on CPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qt_bench::{table6_csrgemm, table6_csrmm, table6_dense_mm, table6_operands};
use std::hint::black_box;

fn bench_table6(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_rgf_triple_product");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        let ops = table6_operands(n, 0.06, 11);
        group.bench_with_input(BenchmarkId::new("dense_mm", n), &ops, |b, ops| {
            b.iter(|| black_box(table6_dense_mm(ops)))
        });
        group.bench_with_input(BenchmarkId::new("csrmm", n), &ops, |b, ops| {
            b.iter(|| black_box(table6_csrmm(ops)))
        });
        group.bench_with_input(BenchmarkId::new("csrgemm", n), &ops, |b, ops| {
            b.iter(|| black_box(table6_csrgemm(ops)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
