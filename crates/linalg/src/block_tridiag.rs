//! Block tri-diagonal matrices.
//!
//! `H`, `S` and `Φ` "typically exhibit a block tri-diagonal structure" (§2):
//! the 2-D device slice is cut into `bnum` slabs of `NA/bnum` atoms, and only
//! adjacent slabs couple. RGF exploits exactly this structure, so the type
//! stores only the three block diagonals.

use crate::complex::Complex64;
use crate::dense::Matrix;

/// Uniform block tri-diagonal matrix: `nb` diagonal blocks of order `bs`.
#[derive(Clone, Debug)]
pub struct BlockTridiag {
    bs: usize,
    diag: Vec<Matrix>,
    /// `upper[n]` couples block `n` to block `n+1` (i.e. `A[n, n+1]`).
    upper: Vec<Matrix>,
    /// `lower[n]` couples block `n+1` to block `n` (i.e. `A[n+1, n]`).
    lower: Vec<Matrix>,
}

impl BlockTridiag {
    /// All-zero block tri-diagonal with `nb` diagonal blocks of order `bs`.
    pub fn zeros(nb: usize, bs: usize) -> Self {
        assert!(nb > 0, "need at least one block");
        BlockTridiag {
            bs,
            diag: vec![Matrix::zeros(bs, bs); nb],
            upper: vec![Matrix::zeros(bs, bs); nb - 1],
            lower: vec![Matrix::zeros(bs, bs); nb - 1],
        }
    }

    /// Build from explicit block lists (`lower`/`upper` must be one shorter).
    pub fn from_blocks(diag: Vec<Matrix>, upper: Vec<Matrix>, lower: Vec<Matrix>) -> Self {
        assert!(!diag.is_empty());
        assert_eq!(upper.len(), diag.len() - 1);
        assert_eq!(lower.len(), diag.len() - 1);
        let bs = diag[0].rows();
        for m in diag.iter().chain(&upper).chain(&lower) {
            assert_eq!(
                m.shape(),
                (bs, bs),
                "all blocks must be square of equal order"
            );
        }
        BlockTridiag {
            bs,
            diag,
            upper,
            lower,
        }
    }

    /// Decompose into `(diag, upper, lower)` block lists, e.g. to return
    /// workspace-pooled blocks to their arena after an RGF solve.
    pub fn into_parts(self) -> (Vec<Matrix>, Vec<Matrix>, Vec<Matrix>) {
        (self.diag, self.upper, self.lower)
    }

    /// Number of diagonal blocks (`bnum`).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.diag.len()
    }

    /// Order of each block.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.bs
    }

    /// Total matrix order.
    #[inline]
    pub fn order(&self) -> usize {
        self.bs * self.diag.len()
    }

    #[inline]
    pub fn diag(&self, n: usize) -> &Matrix {
        &self.diag[n]
    }

    #[inline]
    pub fn diag_mut(&mut self, n: usize) -> &mut Matrix {
        &mut self.diag[n]
    }

    /// Block `A[n, n+1]`.
    #[inline]
    pub fn upper(&self, n: usize) -> &Matrix {
        &self.upper[n]
    }

    #[inline]
    pub fn upper_mut(&mut self, n: usize) -> &mut Matrix {
        &mut self.upper[n]
    }

    /// Block `A[n+1, n]`.
    #[inline]
    pub fn lower(&self, n: usize) -> &Matrix {
        &self.lower[n]
    }

    #[inline]
    pub fn lower_mut(&mut self, n: usize) -> &mut Matrix {
        &mut self.lower[n]
    }

    /// Assemble the full dense matrix (validation / small problems only).
    pub fn to_dense(&self) -> Matrix {
        let n = self.order();
        let mut m = Matrix::zeros(n, n);
        for (b, d) in self.diag.iter().enumerate() {
            m.set_submatrix(b * self.bs, b * self.bs, d);
        }
        for (b, u) in self.upper.iter().enumerate() {
            m.set_submatrix(b * self.bs, (b + 1) * self.bs, u);
        }
        for (b, l) in self.lower.iter().enumerate() {
            m.set_submatrix((b + 1) * self.bs, b * self.bs, l);
        }
        m
    }

    /// `A - B` blockwise.
    pub fn sub(&self, other: &BlockTridiag) -> BlockTridiag {
        assert_eq!(self.num_blocks(), other.num_blocks());
        assert_eq!(self.bs, other.bs);
        BlockTridiag {
            bs: self.bs,
            diag: self
                .diag
                .iter()
                .zip(&other.diag)
                .map(|(a, b)| a - b)
                .collect(),
            upper: self
                .upper
                .iter()
                .zip(&other.upper)
                .map(|(a, b)| a - b)
                .collect(),
            lower: self
                .lower
                .iter()
                .zip(&other.lower)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Scale all blocks by `z`.
    pub fn scale(&self, z: Complex64) -> BlockTridiag {
        BlockTridiag {
            bs: self.bs,
            diag: self.diag.iter().map(|m| m.scale(z)).collect(),
            upper: self.upper.iter().map(|m| m.scale(z)).collect(),
            lower: self.lower.iter().map(|m| m.scale(z)).collect(),
        }
    }

    /// True if the assembled matrix is Hermitian: diagonal blocks Hermitian
    /// and `lower[n] == upper[n]^dagger`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.diag.iter().all(|d| d.is_hermitian(tol))
            && self
                .upper
                .iter()
                .zip(&self.lower)
                .all(|(u, l)| l.max_abs_diff(&u.dagger()) <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    fn random_bt(nb: usize, bs: usize, r: &mut impl rand::Rng) -> BlockTridiag {
        let mut bt = BlockTridiag::zeros(nb, bs);
        for n in 0..nb {
            *bt.diag_mut(n) = Matrix::random(bs, bs, r);
        }
        for n in 0..nb - 1 {
            *bt.upper_mut(n) = Matrix::random(bs, bs, r);
            *bt.lower_mut(n) = Matrix::random(bs, bs, r);
        }
        bt
    }

    #[test]
    fn dense_assembly_shape_and_content() {
        let mut r = rng();
        let bt = random_bt(4, 3, &mut r);
        let d = bt.to_dense();
        assert_eq!(d.shape(), (12, 12));
        // Off-tridiagonal blocks are zero.
        for i in 0..12 {
            for j in 0..12 {
                let (bi, bj) = (i / 3, j / 3);
                if (bi as isize - bj as isize).abs() > 1 {
                    assert_eq!(d[(i, j)], Complex64::ZERO);
                }
            }
        }
        assert_eq!(d[(0, 0)], bt.diag(0)[(0, 0)]);
        assert_eq!(d[(0, 3)], bt.upper(0)[(0, 0)]);
        assert_eq!(d[(3, 0)], bt.lower(0)[(0, 0)]);
    }

    #[test]
    fn hermitian_construction_detected() {
        let mut r = rng();
        let mut bt = BlockTridiag::zeros(3, 4);
        for n in 0..3 {
            *bt.diag_mut(n) = Matrix::random_hermitian(4, &mut r);
        }
        for n in 0..2 {
            let u = Matrix::random(4, 4, &mut r);
            *bt.lower_mut(n) = u.dagger();
            *bt.upper_mut(n) = u;
        }
        assert!(bt.is_hermitian(1e-12));
        assert!(bt.to_dense().is_hermitian(1e-12));
        // Break it.
        bt.upper_mut(0)[(0, 0)] += Complex64::ONE;
        assert!(!bt.is_hermitian(1e-12));
    }

    #[test]
    fn sub_and_scale_match_dense() {
        let mut r = rng();
        let a = random_bt(3, 2, &mut r);
        let b = random_bt(3, 2, &mut r);
        let d = a.sub(&b).to_dense();
        let expect = &a.to_dense() - &b.to_dense();
        assert!(d.max_abs_diff(&expect) < 1e-14);
        let s = a.scale(crate::complex::c64(0.0, 2.0)).to_dense();
        let expect = a.to_dense().scale(crate::complex::c64(0.0, 2.0));
        assert!(s.max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn single_block_edge_case() {
        let bt = BlockTridiag::zeros(1, 5);
        assert_eq!(bt.order(), 5);
        assert_eq!(bt.to_dense().shape(), (5, 5));
    }
}
