//! OMEN-style Σ≷ kernel.
//!
//! Mirrors the production C++ structure (§4.1): the outer loops are the
//! `(qz, ω)` communication rounds; inside a round every process walks its
//! `(kz, E)` points and accumulates the small matrix products with
//! preallocated work buffers. Compared to [`super::reference`] there are no
//! per-operation allocations, but the `∇H·G` product is still recomputed
//! for every `(qz, ω)` pair — the redundancy the DaCe transformation
//! removes (Fig. 10b), which is why this variant performs
//! `64·NA·NB·N3D·Nkz·Nqz·NE·Nω·Norb³` flop (Table 3, "SSE (OMEN)").

use super::SseInputs;
use crate::gf::ElectronSelfEnergy;
use crate::params::N3D;
use qt_linalg::{c64, gemm, Complex64};

/// Σ≷ with OMEN's loop structure.
pub fn sigma(inputs: &SseInputs<'_>) -> ElectronSelfEnergy {
    let p = inputs.p;
    let no = p.norb;
    let nn = no * no;
    let mut out = ElectronSelfEnergy::zeros(p);
    let scale = c64(super::sigma_scale(p, inputs.grids), 0.0);
    let mut dhg = vec![Complex64::ZERO; nn];
    let mut dhd = vec![Complex64::ZERO; nn];
    let mut prod = vec![Complex64::ZERO; nn];
    for (g, d, d_other, sig) in [
        (
            inputs.g_lesser,
            inputs.d_lesser_pre,
            inputs.d_greater_pre,
            &mut out.lesser,
        ),
        (
            inputs.g_greater,
            inputs.d_greater_pre,
            inputs.d_lesser_pre,
            &mut out.greater,
        ),
    ] {
        // Communication-round ordering: (qz, ω) outermost.
        for q in 0..p.nqz {
            for w in 0..p.nw {
                for k in 0..p.nkz {
                    let kq = inputs.grids.k_minus_q(k, q);
                    for e in 0..p.ne {
                        // Emission and absorption sidebands (G≷(E ∓ ħω)).
                        let sidebands = [inputs.grids.e_minus_w(e, w), inputs.grids.e_plus_w(e, w)];
                        for a in 0..p.na {
                            let dst = sig.inner_mut(&[k, e, a]);
                            for slot in 0..p.nb {
                                let Some(f) = inputs.dev.neighbor(a, slot) else {
                                    continue;
                                };
                                for (side, eshift) in sidebands.iter().enumerate() {
                                    let Some(es) = *eshift else {
                                        continue;
                                    };
                                    let gblk = g.inner(&[kq, es, f]);
                                    for i in 0..N3D {
                                        let dh_i = inputs.dh.inner(&[a, slot, i]);
                                        dhg.fill(Complex64::ZERO);
                                        gemm::gemm_raw_acc(no, no, no, gblk, dh_i, &mut dhg);
                                        // Accumulate ∇H_j · D̃_ij over j before
                                        // the second product — two Norb³ GEMMs
                                        // per (i) point, the 64-factor
                                        // structure of Table 3.
                                        dhd.fill(Complex64::ZERO);
                                        for j in 0..N3D {
                                            let dval = if side == 0 {
                                                d.get(&[q, w, a, slot, i, j])
                                            } else {
                                                d_other.get(&[q, w, a, slot, j, i]).conj()
                                            };
                                            if dval == Complex64::ZERO {
                                                continue;
                                            }
                                            let dh_j = inputs.dh.inner(&[a, slot, j]);
                                            for (t, &s) in dhd.iter_mut().zip(dh_j) {
                                                *t += s * dval;
                                            }
                                        }
                                        prod.fill(Complex64::ZERO);
                                        gemm::gemm_raw_acc(no, no, no, &dhg, &dhd, &mut prod);
                                        for (o, v) in dst.iter_mut().zip(prod.iter()) {
                                            *o += *v * scale;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}
