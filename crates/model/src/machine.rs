//! Machine models of the two evaluation systems (§5).
//!
//! Compute rates use the paper's own sustained-efficiency measurements
//! (44.5% of peak for the GF state, 6.2% for SSE on Summit; Table 7 implies
//! ~24% SSE efficiency per Piz Daint node for the DaCe kernel and ~4.8% for
//! OMEN's). Network rates are *effective achieved* all-to-all bandwidths
//! calibrated once against Table 8 / Fig. 13 — like every α–β model, they
//! absorb latency, synchronization and message-size effects.

use serde::{Deserialize, Serialize};

/// An abstract GPU-accelerated cluster.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Machine {
    pub name: &'static str,
    /// Total node count of the system.
    pub nodes_total: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// MPI ranks per node used by the paper's runs.
    pub procs_per_node: usize,
    /// Double-precision peak per GPU (flop/s).
    pub gpu_peak_flops: f64,
    /// Sustained fraction of peak in the GF phase.
    pub eff_gf: f64,
    /// Sustained fraction of peak in the (DaCe) SSE phase.
    pub eff_sse: f64,
    /// Sustained fraction of peak for OMEN's SSE kernel.
    pub eff_sse_omen: f64,
    /// Effective all-to-all bandwidth per node (B/s) for the DaCe scheme.
    pub alltoall_bw_per_node: f64,
    /// Effective-bandwidth penalty of OMEN's scattered point-to-point
    /// rounds relative to the all-to-all (latency-dominated small
    /// messages).
    pub omen_bw_penalty: f64,
}

impl Machine {
    /// Aggregate sustained compute rate of `nodes` nodes in a phase with
    /// efficiency `eff`.
    pub fn compute_rate(&self, nodes: usize, eff: f64) -> f64 {
        nodes as f64 * self.gpus_per_node as f64 * self.gpu_peak_flops * eff
    }

    /// Aggregate network rate of `nodes` nodes.
    pub fn network_rate(&self, nodes: usize) -> f64 {
        nodes as f64 * self.alltoall_bw_per_node
    }

    /// Total GPUs in `nodes` nodes.
    pub fn gpus(&self, nodes: usize) -> usize {
        nodes * self.gpus_per_node
    }
}

/// CSCS Piz Daint: 5,704 XC50 nodes, 1× P100 (4.7 Tflop/s FP64), Aries.
pub const PIZ_DAINT: Machine = Machine {
    name: "Piz Daint",
    nodes_total: 5704,
    gpus_per_node: 1,
    procs_per_node: 2,
    gpu_peak_flops: 4.7e12,
    eff_gf: 0.50,
    eff_sse: 0.243,
    eff_sse_omen: 0.048,
    alltoall_bw_per_node: 3.0e8,
    omen_bw_penalty: 2.5,
};

/// OLCF Summit: 4,608 nodes, 6× V100 (7.8 Tflop/s FP64), EDR fat tree.
pub const SUMMIT: Machine = Machine {
    name: "Summit",
    nodes_total: 4608,
    gpus_per_node: 6,
    procs_per_node: 6,
    gpu_peak_flops: 7.8e12,
    eff_gf: 0.445,
    eff_sse: 0.062,
    eff_sse_omen: 0.013,
    alltoall_bw_per_node: 3.0e8,
    // Summit's fat tree handles OMEN's scattered rounds at full effective
    // bandwidth (paper comm speedup 79.7× ≈ the pure volume ratio); Piz
    // Daint's Aries sees a ~2.5× effective-bandwidth penalty (417× > the
    // ~170× volume ratio at the largest configuration).
    omen_bw_penalty: 1.0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_gf_rate_matches_table8() {
        // Table 8, Nkz=11 on 1,852 nodes: 2,922 Pflop in 75.84 s
        // → 38.5 Pflop/s sustained. Model: nodes·6·7.8e12·0.445.
        let rate = SUMMIT.compute_rate(1852, SUMMIT.eff_gf);
        let implied = 2922e15 / 75.84;
        assert!(
            (rate / implied - 1.0).abs() < 0.02,
            "model {rate:.3e} vs implied {implied:.3e}"
        );
    }

    #[test]
    fn summit_sse_rate_matches_table8() {
        // Table 8, Nkz=11: 490 Pflop in 95.46 s on 1,852 nodes.
        let rate = SUMMIT.compute_rate(1852, SUMMIT.eff_sse);
        let implied = 490e15 / 95.46;
        assert!(
            (rate / implied - 1.0).abs() < 0.05,
            "model {rate:.3e} vs implied {implied:.3e}"
        );
    }

    #[test]
    fn machines_have_sane_magnitudes() {
        for m in [&PIZ_DAINT, &SUMMIT] {
            assert!(m.gpu_peak_flops > 1e12);
            assert!(m.eff_sse < m.eff_gf, "SSE is the low-intensity phase");
            assert!(m.eff_sse_omen < m.eff_sse);
            assert!(m.omen_bw_penalty >= 1.0);
        }
        // Summit's aggregate peak ~200 Pflop.
        let peak = SUMMIT.compute_rate(SUMMIT.nodes_total, 1.0);
        assert!(peak > 1.9e17 && peak < 2.3e17);
    }
}
