//! Closed-form SSE communication volumes (§4.1).
//!
//! Per process and per GF→SSE exchange, the paper derives:
//!
//! * **OMEN** (momentum×energy decomposition, `P` processes):
//!   `64·Nkz·(NE/P)·Nqz·Nω·NA·Norb²` bytes for `G≷`, plus
//!   `64·Nqz·Nω·NA·NB·N3D²` bytes for `D≷`/`Π≷`.
//! * **DaCe** (energy×atom tiling, `P = TE·TA`):
//!   `64·Nkz·(NE/TE + 2Nω)·(NA/TA + NB)·Norb²` for `G≷`/`Σ≷`, plus
//!   `64·Nqz·Nω·(NA/TA + NB)·NB·N3D²` for `D≷`/`Π≷`.
//!
//! Totals (× `P`) reproduce Tables 4 and 5 to the printed precision — the
//! unit tests below check every cell.

use crate::comm::ELEM_BYTES;
use crate::decomp::{DaceDecomp, OmenDecomp};
use qt_core::params::{SimParams, N3D};

const TIB: f64 = (1u64 << 40) as f64;

/// Per-process OMEN bytes for the electron Green's functions.
pub fn omen_g_bytes_per_proc(p: &SimParams, procs: usize) -> f64 {
    64.0 * p.nkz as f64
        * (p.ne as f64 / procs as f64)
        * (p.nqz * p.nw) as f64
        * p.na as f64
        * (p.norb * p.norb) as f64
}

/// Per-process OMEN bytes for the phonon Green's functions/self-energies.
pub fn omen_d_bytes_per_proc(p: &SimParams) -> f64 {
    64.0 * (p.nqz * p.nw) as f64 * (p.na * p.nb) as f64 * (N3D * N3D) as f64
}

/// Total OMEN SSE communication volume across `procs` processes (bytes).
pub fn omen_total_bytes(p: &SimParams, procs: usize) -> f64 {
    procs as f64 * (omen_g_bytes_per_proc(p, procs) + omen_d_bytes_per_proc(p))
}

/// Per-process DaCe bytes for `G≷`/`Σ≷` under a `(TE, TA)` tiling.
pub fn dace_g_bytes_per_proc(p: &SimParams, te: usize, ta: usize) -> f64 {
    64.0 * p.nkz as f64
        * (p.ne as f64 / te as f64 + 2.0 * p.nw as f64)
        * (p.na as f64 / ta as f64 + p.nb as f64)
        * (p.norb * p.norb) as f64
}

/// Per-process DaCe bytes for `D≷`/`Π≷`.
pub fn dace_d_bytes_per_proc(p: &SimParams, ta: usize) -> f64 {
    64.0 * (p.nqz * p.nw) as f64
        * (p.na as f64 / ta as f64 + p.nb as f64)
        * p.nb as f64
        * (N3D * N3D) as f64
}

/// Total DaCe SSE communication volume across `TE·TA` processes (bytes).
pub fn dace_total_bytes(p: &SimParams, te: usize, ta: usize) -> f64 {
    (te * ta) as f64 * (dace_g_bytes_per_proc(p, te, ta) + dace_d_bytes_per_proc(p, ta))
}

/// Per-process DaCe bytes for `G≷`/`Σ≷` under a full 3-D
/// `(Tkz, TE, TA)` tiling — an extension of §4.1's analysis: tiling the
/// momentum dimension too gives each process a `kz` window of
/// `min(Nkz, Nkz/Tkz + Nqz − 1)` points (the periodic `kz − qz` halo of
/// Fig. 7, clamped at full coverage).
pub fn dace3_g_bytes_per_proc(p: &SimParams, tk: usize, te: usize, ta: usize) -> f64 {
    let kz_window = (p.nkz as f64 / tk as f64 + p.nqz as f64 - 1.0).min(p.nkz as f64);
    64.0 * kz_window
        * (p.ne as f64 / te as f64 + 2.0 * p.nw as f64)
        * (p.na as f64 / ta as f64 + p.nb as f64)
        * (p.norb * p.norb) as f64
}

/// Total 3-D-tiled DaCe volume across `Tkz·TE·TA` processes (bytes).
pub fn dace3_total_bytes(p: &SimParams, tk: usize, te: usize, ta: usize) -> f64 {
    (tk * te * ta) as f64 * (dace3_g_bytes_per_proc(p, tk, te, ta) + dace_d_bytes_per_proc(p, ta))
}

/// Convert bytes to TiB (the unit of Tables 4–5).
pub fn to_tib(bytes: f64) -> f64 {
    bytes / TIB
}

// ---------------------------------------------------------------------------
// Exact per-rank models of the *implemented* schemes
// ---------------------------------------------------------------------------
//
// The Table 4/5 formulas above are the paper's asymptotic per-process forms
// (uniform `NE/P` chunks, unclamped halos, no ownership detail). The
// functions below model the byte streams of [`crate::schemes`] *exactly* —
// same decomposition, same grid clamping, same self-send exemption — so the
// telemetry report can assert measured == model to the byte.

/// Exact bytes each rank sends during [`crate::schemes::omen_scheme`]'s SSE
/// exchange (before the result gather): per `(qz, ω)` round, the round owner
/// broadcasts both `D̃≷` tensors, every rank ships its owned `G≷` sideband
/// slices to the consumer's energy owner, and all non-owners reduce their
/// `Π≷` partials to the owner.
pub fn omen_rank_sent_bytes(p: &SimParams, procs: usize) -> Vec<u64> {
    let dec = OmenDecomp::new(p, procs);
    let nn = (p.norb * p.norb) as u64;
    let d_elems = (p.na * p.nb * N3D * N3D) as u64;
    let pi_elems = (p.na * (p.nb + 1) * N3D * N3D) as u64;
    let g_elems = (p.nkz * p.na) as u64 * nn;
    let mut sent = vec![0u64; procs];
    for q in 0..p.nqz {
        for w in 0..p.nw {
            let owner = dec.d_owner(p, q, w);
            // D̃≷ broadcast: both tensors to every other rank.
            sent[owner] += 2 * d_elems * (procs as u64 - 1);
            // G≷ sideband replication (emission e−ω−1, absorption e+ω+1).
            for e_dst in 0..p.ne {
                for side in 0..2 {
                    let e_src = if side == 0 {
                        e_dst.checked_sub(w + 1)
                    } else {
                        (e_dst + w + 1 < p.ne).then_some(e_dst + w + 1)
                    };
                    let Some(e_src) = e_src else { continue };
                    let src = dec.energy.owner(e_src);
                    if src != dec.energy.owner(e_dst) {
                        sent[src] += 2 * g_elems;
                    }
                }
            }
            // Π≷ partial reduction to the round owner.
            for (r, s) in sent.iter_mut().enumerate() {
                if r != owner {
                    *s += 2 * pi_elems;
                }
            }
        }
    }
    for b in &mut sent {
        *b *= ELEM_BYTES;
    }
    sent
}

/// Total OMEN SSE bytes actually moved (sum of [`omen_rank_sent_bytes`]).
pub fn omen_measured_bytes(p: &SimParams, procs: usize) -> u64 {
    omen_rank_sent_bytes(p, procs).iter().sum()
}

/// Exact bytes each rank sends during [`crate::schemes::dace_scheme`]'s SSE
/// exchange: the `G≷` all-to-all (energy-halo ∩ owned-energies overlap ×
/// destination atom window), the `D̃≷` all-to-all (owned `(qz, ω)` points ×
/// destination atom window), and the per-round `Π≷` tile-slice reduction.
/// `halo` is the device's exact neighbor-index distance
/// (`Device::max_neighbor_index_distance`).
pub fn dace_rank_sent_bytes(p: &SimParams, te: usize, ta: usize, halo: usize) -> Vec<u64> {
    let procs = te * ta;
    let dec = DaceDecomp::new(p, te, ta);
    let gf = OmenDecomp::new(p, procs);
    let nn = (p.norb * p.norb) as u64;
    let d_len = (p.nb * N3D * N3D) as u64;
    let pi_len = ((p.nb + 1) * N3D * N3D) as u64;
    let a_win = |j: usize| {
        let r = dec.atoms.range(j);
        r.start.saturating_sub(halo)..(r.end + halo).min(p.na)
    };
    let mut sent = vec![0u64; procs];
    for (r, s) in sent.iter_mut().enumerate() {
        let my_e = gf.energy.range(r);
        let owned_qw = (0..p.nqz * p.nw)
            .filter(|&i| gf.d_owner(p, i / p.nw, i % p.nw) == r)
            .count() as u64;
        for dst in 0..procs {
            if dst == r {
                continue;
            }
            let (di, dj) = dec.coords(dst);
            let dst_e = dec.energy_halo(di, p.nw);
            let overlap = my_e.clone().filter(|e| dst_e.contains(e)).count() as u64;
            let aw = a_win(dj).len() as u64;
            // All-to-all #1: G≷ tiles with halos.
            *s += 2 * overlap * p.nkz as u64 * aw * nn;
            // All-to-all #2: D̃≷ for the destination's atom window.
            *s += 2 * owned_qw * aw * d_len;
        }
        // Π≷ tile-slice reduction: one slice per non-owned (qz, ω) round.
        let (_, rj) = dec.coords(r);
        let tile = dec.atoms.range(rj).len() as u64;
        let not_owned = (p.nqz * p.nw) as u64 - owned_qw;
        *s += 2 * not_owned * tile * pi_len;
    }
    for b in &mut sent {
        *b *= ELEM_BYTES;
    }
    sent
}

/// Total DaCe SSE bytes actually moved (sum of [`dace_rank_sent_bytes`]).
pub fn dace_measured_bytes(p: &SimParams, te: usize, ta: usize, halo: usize) -> u64 {
    dace_rank_sent_bytes(p, te, ta, halo).iter().sum()
}

/// Exact bytes each *survivor slot* sends during
/// [`crate::schemes::elastic_sse_exchange`] over an arbitrary
/// [`ElasticTiling`]. The elastic scheme replays the classic per-unit
/// protocol with the collectives unrolled to point-to-point messages, so
/// the model is the classic per-unit accounting re-keyed by *owning slot*:
/// a message is free exactly when the source and destination units live on
/// the same survivor. With the full tiling this reduces to
/// [`dace_rank_sent_bytes`].
pub fn dace_elastic_rank_sent_bytes(
    p: &SimParams,
    halo: usize,
    tiling: &crate::decomp::ElasticTiling,
) -> Vec<u64> {
    let dec = &tiling.dec;
    let procs = tiling.procs();
    let gf = OmenDecomp::new(p, procs);
    let nn = (p.norb * p.norb) as u64;
    let d_len = (p.nb * N3D * N3D) as u64;
    let pi_len = ((p.nb + 1) * N3D * N3D) as u64;
    let a_win = |j: usize| {
        let r = dec.atoms.range(j);
        r.start.saturating_sub(halo)..(r.end + halo).min(p.na)
    };
    let mut sent = vec![0u64; tiling.world_size()];
    for (s, bytes) in sent.iter_mut().enumerate() {
        let me = tiling.survivors[s];
        let my_units = tiling.units_of(me);
        let owned_qw = (0..p.nqz * p.nw)
            .filter(|&i| tiling.owner[i % procs] == me)
            .count() as u64;
        for u_dst in 0..procs {
            if !tiling.is_live_unit(u_dst) || tiling.owner_slot(u_dst) == s {
                continue;
            }
            let (di, dj) = dec.coords(u_dst);
            let dst_e = dec.energy_halo(di, p.nw);
            let aw = a_win(dj).len() as u64;
            // Exchange #1: one G≷ halo message per (owned chunk, dst tile).
            for &u_src in &my_units {
                let overlap = gf.energy.range(u_src).filter(|e| dst_e.contains(e)).count() as u64;
                *bytes += 2 * overlap * p.nkz as u64 * aw * nn;
            }
            // Exchange #2: owned (qz, ω) points over the dst atom window.
            *bytes += 2 * owned_qw * aw * d_len;
        }
        // Π≷ tile-slice reduction: every owned unit ships its slice for
        // each (qz, ω) round owned by a *different* survivor (rounds whose
        // owning unit was abandoned are skipped entirely).
        for i in 0..p.nqz * p.nw {
            let owner = tiling.owner[i % procs];
            if owner == me || !tiling.is_survivor(owner) {
                continue;
            }
            for &u in &my_units {
                let tile = dec.atoms.range(dec.coords(u).1).len() as u64;
                *bytes += 2 * tile * pi_len;
            }
        }
    }
    for b in &mut sent {
        *b *= ELEM_BYTES;
    }
    sent
}

/// Total elastic SSE bytes (sum of [`dace_elastic_rank_sent_bytes`]).
pub fn dace_elastic_measured_bytes(
    p: &SimParams,
    halo: usize,
    tiling: &crate::decomp::ElasticTiling,
) -> u64 {
    dace_elastic_rank_sent_bytes(p, halo, tiling).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 4: weak scaling, processes grow with Nkz (`P = 256·Nkz`,
    /// tiling `TE = Nkz`, `TA = 256`).
    #[test]
    fn table4_weak_scaling_volumes() {
        let rows = [
            (3usize, 768usize, 32.11, 0.54),
            (5, 1280, 89.18, 1.22),
            (7, 1792, 174.80, 2.17),
            (9, 2304, 288.95, 3.38),
            (11, 2816, 431.65, 4.86),
        ];
        for (nkz, procs, omen_tib, dace_tib) in rows {
            let p = SimParams::paper_si_4864(nkz);
            let omen = to_tib(omen_total_bytes(&p, procs));
            assert!(
                (omen - omen_tib).abs() / omen_tib < 0.005,
                "OMEN Nkz={nkz}: got {omen:.2}, paper {omen_tib}"
            );
            let (te, ta) = (nkz, procs / nkz);
            assert_eq!(te * ta, procs);
            let dace = to_tib(dace_total_bytes(&p, te, ta));
            assert!(
                (dace - dace_tib).abs() / dace_tib < 0.02,
                "DaCe Nkz={nkz}: got {dace:.3}, paper {dace_tib}"
            );
        }
    }

    /// Table 5: strong scaling at `Nkz = 7` (`TE = 7`, `TA = P/7`).
    #[test]
    fn table5_strong_scaling_volumes() {
        let rows = [
            (224usize, 108.24, 0.95),
            (448, 117.75, 1.13),
            (896, 136.76, 1.48),
            (1792, 174.80, 2.17),
            (2688, 212.84, 2.87),
        ];
        let p = SimParams::paper_si_4864(7);
        for (procs, omen_tib, dace_tib) in rows {
            let omen = to_tib(omen_total_bytes(&p, procs));
            assert!(
                (omen - omen_tib).abs() / omen_tib < 0.005,
                "OMEN P={procs}: got {omen:.2}, paper {omen_tib}"
            );
            let (te, ta) = (7, procs / 7);
            let dace = to_tib(dace_total_bytes(&p, te, ta));
            assert!(
                (dace - dace_tib).abs() / dace_tib < 0.02,
                "DaCe P={procs}: got {dace:.3}, paper {dace_tib}"
            );
        }
    }

    /// The 3-D tiling reduces to the paper's 2-D formula at Tkz = 1.
    #[test]
    fn dace3_reduces_to_dace2_at_tk1() {
        let p = SimParams::paper_si_4864(7);
        for (te, ta) in [(7usize, 256usize), (7, 64), (14, 128)] {
            let v2 = dace_total_bytes(&p, te, ta);
            let v3 = dace3_total_bytes(&p, 1, te, ta);
            assert!((v2 - v3).abs() / v2 < 1e-12);
        }
    }

    /// Why the paper does NOT tile momentum: with `Nqz = Nkz` (its runs),
    /// the periodic `kz − qz` halo spans the whole momentum axis
    /// (`Nkz/Tkz + Nqz − 1 ≥ Nkz` for every `Tkz`), so momentum tiling
    /// only multiplies the process count without shrinking anyone's
    /// working set.
    #[test]
    fn momentum_tiling_cannot_help_when_nqz_equals_nkz() {
        let p = SimParams::paper_si_4864(21); // Nqz = Nkz = 21
        for tk in [3usize, 7, 21] {
            let per_3d = dace3_g_bytes_per_proc(&p, tk, 21, 32);
            let per_2d = dace_g_bytes_per_proc(&p, 21, 32);
            assert!(
                (per_3d - per_2d).abs() / per_2d < 1e-12,
                "Tkz={tk}: per-process G volume must be unchanged"
            );
        }
    }

    /// …but with few phonon momentum points (`Nqz ≪ Nkz`), the halo is
    /// narrow and momentum tiling shrinks the per-process working set —
    /// the kind of extension §6 anticipates.
    #[test]
    fn momentum_tiling_helps_when_nqz_is_small() {
        let mut p = SimParams::paper_si_4864(21);
        p.nqz = 3;
        // Same process count: 2-D (te=21·4, ta=256) vs 3-D (tk=21, te=4, ta=256).
        let v2 = dace_total_bytes(&p, 84, 256);
        let v3 = dace3_total_bytes(&p, 21, 4, 256);
        assert!(
            v3 < v2,
            "momentum tiling should win at Nqz=3: 3D {v3:.3e} vs 2D {v2:.3e}"
        );
    }

    /// The exact OMEN model approaches the Table 4/5 closed form at paper
    /// scale: the asymptotic form counts both sidebands at every `(E, ω)`
    /// point, while the grid clamps `NE·Nω → Nω·(2NE−Nω−1)/2` per side and
    /// intra-rank slices travel for free.
    #[test]
    fn exact_omen_model_approaches_asymptotic_form() {
        let p = SimParams::paper_si_4864(3);
        // Table 4 pairs Nkz=3 with P=768, but the energy split caps the
        // rank count at NE=706; 256 ranks keeps the same volume regime.
        let procs = 256;
        let measured = omen_measured_bytes(&p, procs) as f64;
        let asymptotic = omen_total_bytes(&p, procs);
        let ratio = measured / asymptotic;
        assert!(
            ratio > 0.85 && ratio < 1.05,
            "OMEN exact/asymptotic ratio {ratio}"
        );
    }

    /// Same for DaCe: the implemented scheme ships the `D̃` windows and
    /// tile-sliced `Π` partials, roughly half the asymptotic form's dense
    /// `D≷`/`Π≷` term, while the `G` halo term matches closely; the total
    /// stays within a factor-2 band of Table 4/5.
    #[test]
    fn exact_dace_model_tracks_asymptotic_form() {
        let p = SimParams::paper_si_4864(3);
        // TE·TA must stay within the NE=706 energy chunks of the initial
        // GF layout.
        let (te, ta) = (3, 64);
        // Paper device: nearest-neighbor slabs → halo of about NB/2 atoms;
        // use NB as a conservative window.
        let measured = dace_measured_bytes(&p, te, ta, p.nb) as f64;
        let asymptotic = dace_total_bytes(&p, te, ta);
        let ratio = measured / asymptotic;
        assert!(
            ratio > 0.4 && ratio < 1.1,
            "DaCe exact/asymptotic ratio {ratio}"
        );
    }

    /// With every rank alive the elastic model must agree with the classic
    /// per-rank model byte-for-byte, for every tiling shape.
    #[test]
    fn elastic_model_reduces_to_classic_at_full_world() {
        let p = SimParams::paper_si_4864(3);
        for (te, ta) in [(3usize, 16usize), (3, 64), (6, 32)] {
            let tiling = crate::decomp::ElasticTiling::new(&p, te, ta);
            assert_eq!(
                dace_elastic_rank_sent_bytes(&p, p.nb, &tiling),
                dace_rank_sent_bytes(&p, te, ta, p.nb),
                "te={te} ta={ta}"
            );
        }
    }

    /// Killing a rank moves its units' traffic onto survivors without
    /// changing what the *unit-level* protocol ships: the world total can
    /// only shrink (migrated co-located units stop paying for each other).
    #[test]
    fn elastic_model_total_never_grows_as_ranks_die() {
        let p = SimParams::paper_si_4864(3);
        let mut tiling = crate::decomp::ElasticTiling::new(&p, 3, 16);
        let mut prev = dace_elastic_measured_bytes(&p, p.nb, &tiling);
        for dead in [5usize, 17, 0, 41] {
            tiling.remove_rank(dead);
            let now = dace_elastic_measured_bytes(&p, p.nb, &tiling);
            assert!(
                now <= prev,
                "bytes grew after killing {dead}: {now} > {prev}"
            );
            prev = now;
        }
    }

    /// "Up to two orders of magnitude" reduction (§5.1.1).
    #[test]
    fn reduction_factor_scale() {
        let p = SimParams::paper_si_4864(11);
        let ratio = omen_total_bytes(&p, 2816) / dace_total_bytes(&p, 11, 256);
        assert!(ratio > 80.0 && ratio < 120.0, "ratio {ratio:.1}");
    }

    /// OMEN's G-volume is quadratic in momentum points; DaCe's is linear
    /// (the `Nqz·Nω` replication factor is eliminated).
    #[test]
    fn momentum_scaling_shapes() {
        let procs_per_kz = 256;
        let vol = |nkz: usize| {
            let p = SimParams::paper_si_4864(nkz);
            (
                omen_total_bytes(&p, procs_per_kz * nkz),
                dace_total_bytes(&p, nkz, procs_per_kz),
            )
        };
        let (o3, d3) = vol(3);
        let (o12, d12) = vol(12);
        // OMEN grows ~quadratically with Nkz (=Nqz): expect ~16x at 4x kz.
        let omen_growth = o12 / o3;
        assert!(omen_growth > 12.0 && omen_growth < 20.0, "{omen_growth}");
        // DaCe grows sub-quadratically (linear volume term plus the 2Nω
        // energy halo, which also scales with the kz-proportional process
        // count) — strictly slower than OMEN.
        let dace_growth = d12 / d3;
        assert!(
            dace_growth < 0.75 * omen_growth && dace_growth > 4.0,
            "dace {dace_growth} vs omen {omen_growth}"
        );
    }
}
