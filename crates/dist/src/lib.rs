//! # qt-dist — distributed substrate and communication schemes
//!
//! A thread-backed MPI-like world with exact byte accounting, the paper's
//! two data distributions (OMEN's momentum×energy and DaCe's energy×atom
//! tiling), and runnable implementations of both SSE communication schemes
//! whose measured volumes follow the closed forms of §4.1.

pub mod comm;
pub mod decomp;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod pool;
pub mod runner;
pub mod schemes;
pub mod volume;

#[cfg(feature = "fault-inject")]
pub use comm::run_world_with_faults;
pub use comm::{run_elastic_world, run_world, CommError, LivenessConfig, ThreadComm};
pub use decomp::ElasticTiling;
#[cfg(feature = "fault-inject")]
pub use fault::{FaultAction, FaultPlan, RetryPolicy};
pub use pool::{RankLease, RankPool};
pub use runner::{
    distributed_iteration_elastic, distributed_iteration_tiled, maybe_rebalance,
    ElasticIterationResult, ElasticPolicy,
};
#[cfg(feature = "fault-inject")]
pub use runner::{
    distributed_iteration_elastic_with_faults, distributed_iteration_tiled_with_faults,
};
pub use schemes::{elastic_sse_exchange, elastic_sse_exchange_opts, BalanceStats, ElasticExchange};
#[cfg(feature = "fault-inject")]
pub use schemes::{elastic_sse_exchange_with_faults, elastic_sse_exchange_with_faults_opts};
