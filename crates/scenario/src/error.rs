//! Typed, fail-closed scenario errors.
//!
//! Every failure mode of the scenario pipeline — lexing, schema
//! walking, range checking, cross-field physics, simulation assembly —
//! maps onto one of these variants, each carrying the *key path* of the
//! offending input (`"disorder.vacancy_fraction"`, not "bad value
//! somewhere"). Scenario files are user input: nothing in this crate may
//! panic on them, and `reproduce corpus` prints these errors verbatim as
//! its rejection rationale.

use std::fmt;

/// What went wrong with a scenario file, and where.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The document is not in the supported TOML subset.
    Syntax { line: usize, message: String },
    /// A key the schema does not know. Unknown keys are rejected, not
    /// ignored: a typo like `vacancy_fractoin` silently ignored would
    /// run a *different physical system* than the author wrote.
    UnknownKey { path: String },
    /// A key holds a value of the wrong type.
    TypeMismatch {
        path: String,
        expected: &'static str,
        found: &'static str,
    },
    /// A required key is absent.
    MissingKey { path: String },
    /// A value parses but violates its documented range.
    OutOfRange {
        path: String,
        value: String,
        constraint: String,
    },
    /// A cross-field or assembly-level inconsistency (values fine in
    /// isolation, impossible together).
    Invalid { path: String, reason: String },
}

impl ScenarioError {
    /// The key path the error is attributed to (empty for syntax errors,
    /// which are located by line instead).
    pub fn path(&self) -> &str {
        match self {
            ScenarioError::Syntax { .. } => "",
            ScenarioError::UnknownKey { path }
            | ScenarioError::TypeMismatch { path, .. }
            | ScenarioError::MissingKey { path }
            | ScenarioError::OutOfRange { path, .. }
            | ScenarioError::Invalid { path, .. } => path,
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Syntax { line, message } => {
                write!(f, "syntax error at line {line}: {message}")
            }
            ScenarioError::UnknownKey { path } => {
                write!(
                    f,
                    "unknown key `{path}` (unknown keys are rejected, not ignored)"
                )
            }
            ScenarioError::TypeMismatch {
                path,
                expected,
                found,
            } => write!(f, "`{path}` must be a {expected}, got a {found}"),
            ScenarioError::MissingKey { path } => write!(f, "required key `{path}` is missing"),
            ScenarioError::OutOfRange {
                path,
                value,
                constraint,
            } => write!(
                f,
                "`{path}` = {value} is out of range: must be {constraint}"
            ),
            ScenarioError::Invalid { path, reason } => write!(f, "`{path}` is invalid: {reason}"),
        }
    }
}

impl std::error::Error for ScenarioError {}
