//! Double-precision complex scalar used throughout the simulator.
//!
//! The quantum-transport kernels spend essentially all of their time in
//! complex arithmetic, so the type is a bare `#[repr(C)]` pair of `f64`
//! with every operation inlined. Semantics follow `complex128` (the dtype
//! the paper's Python/DaCe implementation uses).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex64 {
    pub re: f64,
    pub im: f64,
}

/// Shorthand constructor, mirroring `num_complex::Complex64::new`.
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Purely real value.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared modulus `|z|^2`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`. Uses `hypot` for overflow-safe evaluation.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `e^{z}`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        c64(r * self.im.cos(), r * self.im.sin())
    }

    /// Construct from polar form `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64(r * theta.cos(), r * theta.sin())
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        c64(re, if self.im < 0.0 { -im_mag } else { im_mag })
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-accumulate: `self + a * b`, the inner step of every
    /// GEMM microkernel in this crate.
    #[inline(always)]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        c64(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// `self * a + b * c`, used by scaled accumulations.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        c64(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        c64(self.re * rhs, self.im * rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        c64(self * rhs.re, self * rhs.im)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: f64) -> Self {
        c64(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: f64) -> Self {
        c64(self.re - rhs, self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64(3.0, -4.0);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z * z.inv(), Complex64::ONE));
        assert!(close(z / z, Complex64::ONE));
        assert!(close(-(-z), z));
    }

    #[test]
    fn conjugation_and_modulus() {
        let z = c64(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.conj(), c64(25.0, 0.0)));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, c64(-1.0, 0.0)));
    }

    #[test]
    fn exp_euler() {
        let z = c64(0.0, std::f64::consts::PI);
        assert!(close(z.exp(), c64(-1.0, 0.0)));
        // exp(a+b) == exp(a)*exp(b)
        let a = c64(0.3, 1.2);
        let b = c64(-0.7, 0.4);
        assert!(((a + b).exp() - a.exp() * b.exp()).abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.5, 0.7);
        assert!((z.abs() - 2.5).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-4.0, 0.0),
            (3.0, 4.0),
            (-3.0, -4.0),
            (0.0, 2.0),
        ] {
            let z = c64(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt({z}) = {s}");
            assert!(s.re >= 0.0, "principal branch");
        }
    }

    #[test]
    fn mul_add_matches_mul_then_add() {
        let acc = c64(1.0, 2.0);
        let a = c64(-0.5, 0.25);
        let b = c64(2.0, -3.0);
        assert!(close(acc.mul_add(a, b), acc + a * b));
    }

    #[test]
    fn division_by_small_numbers() {
        // Smallest scale where |z|^2 is still representable (the naive
        // formula is documented to underflow below ~1e-154).
        let z = c64(1e-150, 1e-150);
        let w = c64(1.0, 0.0) / z;
        assert!(w.is_finite());
        assert!(close(w * z, Complex64::ONE));
    }

    #[test]
    fn scalar_ops() {
        let z = c64(1.0, -2.0);
        assert_eq!(z * 2.0, c64(2.0, -4.0));
        assert_eq!(2.0 * z, c64(2.0, -4.0));
        assert_eq!(z / 2.0, c64(0.5, -1.0));
        assert_eq!(z + 1.0, c64(2.0, -2.0));
        assert_eq!(z - 1.0, c64(0.0, -2.0));
    }

    #[test]
    fn sum_iterator() {
        let v = vec![c64(1.0, 1.0); 10];
        let s: Complex64 = v.into_iter().sum();
        assert_eq!(s, c64(10.0, 10.0));
    }
}
