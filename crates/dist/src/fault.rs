//! Deterministic fault injection for the thread world (feature
//! `fault-inject`).
//!
//! A [`FaultPlan`] decides, per wire transmission, whether a frame is
//! delivered, dropped, corrupted, or delayed. Decisions are pure functions
//! of `(seed, src, dst, msg_idx, attempt)` hashed with FNV-1a, so a plan
//! replays the *exact same* fault sequence on every run regardless of
//! thread scheduling — the property that makes chaos tests assertable.
//!
//! The recovery protocol lives in [`crate::comm`]: senders retransmit with
//! exponential backoff until a clean frame goes out, receivers validate a
//! checksum and discard corrupted frames while waiting (with a timeout) for
//! the retransmission. With [`RetryPolicy::guarantee_delivery`] the final
//! attempt is always clean, so a faulty run produces *bitwise identical*
//! payloads to a fault-free run — only the traffic and timing differ.

use qt_linalg::Complex64;
use std::time::Duration;

/// What happens to one wire transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Frame arrives intact.
    Deliver,
    /// Frame is lost in transit; the sender must retransmit.
    Drop,
    /// Frame arrives with flipped payload bits and a broken checksum; the
    /// receiver discards it and waits for the retransmission.
    Corrupt,
    /// Frame arrives intact but late.
    Delay,
}

/// Bounded-retry policy shared by senders and receivers.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Wire attempts per logical message before the sender gives up
    /// (panics); also bounds consecutive receive timeouts.
    pub max_attempts: u32,
    /// First backoff sleep; doubles per attempt (capped at 10 ms).
    pub base_backoff: Duration,
    /// How long a receiver waits for a frame before counting a timeout.
    pub recv_timeout: Duration,
    /// Force the final attempt to deliver cleanly, so every logical
    /// message eventually arrives and faulty runs match fault-free ones.
    pub guarantee_delivery: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(100),
            recv_timeout: Duration::from_secs(5),
            guarantee_delivery: true,
        }
    }
}

impl RetryPolicy {
    /// Exponential backoff for `attempt` (0-based), capped at 10 ms so
    /// chaos tests stay fast.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let mul = 1u32 << attempt.min(10);
        self.base_backoff
            .saturating_mul(mul)
            .min(Duration::from_millis(10))
    }
}

/// Seeded, deterministic fault schedule for a whole world.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed mixed into every per-transmission hash.
    pub seed: u64,
    /// Per-mille probability a transmission is dropped.
    pub drop_per_mille: u16,
    /// Per-mille probability a transmission is corrupted.
    pub corrupt_per_mille: u16,
    /// Per-mille probability a transmission is delayed.
    pub delay_per_mille: u16,
    /// How long a delayed frame sits before it is sent.
    pub delay: Duration,
    /// Rank that sleeps before starting its work (a straggler node).
    pub stalled_rank: Option<usize>,
    /// How long the stalled rank sleeps.
    pub stall: Duration,
    /// Retry/timeout policy for the recovery protocol.
    pub retry: RetryPolicy,
    /// Kill schedule: `(rank, msg_idx)` pairs. Rank ids are *original*
    /// (pre-shrink) identities; `msg_idx` counts the rank's outbound
    /// logical messages within one world run, so "kill rank 2 at its 5th
    /// send" replays identically on every run. Once killed, a rank
    /// transmits nothing ever again — the failure detector on the
    /// survivors has to notice the silence.
    pub kill_at: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// A plan with no faults (useful as a builder base).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            corrupt_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::from_micros(200),
            stalled_rank: None,
            stall: Duration::from_millis(20),
            retry: RetryPolicy::default(),
            kill_at: Vec::new(),
        }
    }

    /// Set the per-mille drop rate.
    pub fn with_drops(mut self, per_mille: u16) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// Set the per-mille corruption rate.
    pub fn with_corruption(mut self, per_mille: u16) -> Self {
        self.corrupt_per_mille = per_mille;
        self
    }

    /// Set the per-mille delay rate.
    pub fn with_delays(mut self, per_mille: u16) -> Self {
        self.delay_per_mille = per_mille;
        self
    }

    /// Stall `rank` for `stall` before it starts working.
    pub fn with_stalled_rank(mut self, rank: usize, stall: Duration) -> Self {
        self.stalled_rank = Some(rank);
        self.stall = stall;
        self
    }

    /// Replace the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Schedule `rank` (original identity) to die immediately before its
    /// `msg_idx`-th outbound logical message of a world run.
    pub fn with_kill_at(mut self, rank: usize, msg_idx: u64) -> Self {
        self.kill_at.push((rank, msg_idx));
        self
    }

    /// The kill ordinal for `rank`, if it is scheduled to die.
    pub fn kill_for(&self, rank: usize) -> Option<u64> {
        self.kill_at
            .iter()
            .filter(|&&(r, _)| r == rank)
            .map(|&(_, m)| m)
            .min()
    }

    /// The fault injected into transmission `attempt` of logical message
    /// `msg_idx` on the edge `src → dst`. `is_last` marks the sender's
    /// final allowed attempt.
    pub fn decide(
        &self,
        src: usize,
        dst: usize,
        msg_idx: u64,
        attempt: u32,
        is_last: bool,
    ) -> FaultAction {
        if is_last && self.retry.guarantee_delivery {
            return FaultAction::Deliver;
        }
        let h = fnv1a(&[self.seed, src as u64, dst as u64, msg_idx, attempt as u64]);
        let roll = (h % 1000) as u16;
        let drop_end = self.drop_per_mille;
        let corrupt_end = drop_end + self.corrupt_per_mille;
        let delay_end = corrupt_end + self.delay_per_mille;
        if roll < drop_end {
            FaultAction::Drop
        } else if roll < corrupt_end {
            FaultAction::Corrupt
        } else if roll < delay_end {
            FaultAction::Delay
        } else {
            FaultAction::Deliver
        }
    }
}

/// FNV-1a over a word stream.
fn fnv1a(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Frame checksum: FNV-1a over the payload's raw `f64` bit patterns.
pub fn checksum(data: &[Complex64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for z in data {
        for w in [z.re.to_bits(), z.im.to_bits()] {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// A bit-flipped copy of `data` for a corrupted frame. The *checksum*
/// shipped with a corrupted frame is broken separately (see
/// [`BROKEN_CHECKSUM_XOR`]), so detection never depends on the payload
/// mutation actually changing the hash.
pub(crate) fn corrupted_copy(data: &[Complex64], salt: u64) -> Vec<Complex64> {
    let mut out = data.to_vec();
    if !out.is_empty() {
        let idx = (fnv1a(&[salt]) as usize) % out.len();
        let z = out[idx];
        out[idx] = Complex64::new(
            f64::from_bits(z.re.to_bits() ^ 0x1), // flip the low mantissa bit
            z.im,
        );
    }
    out
}

/// XORed into the true checksum of a corrupted frame so validation is
/// guaranteed to fail (even for empty payloads).
pub(crate) const BROKEN_CHECKSUM_XOR: u64 = 0xdead_beef_dead_beef;

#[cfg(test)]
mod tests {
    use super::*;
    use qt_linalg::c64;

    #[test]
    fn decide_is_deterministic() {
        let plan = FaultPlan::new(42).with_drops(100).with_corruption(50);
        for msg in 0..50u64 {
            for attempt in 0..3u32 {
                let a = plan.decide(0, 1, msg, attempt, false);
                let b = plan.decide(0, 1, msg, attempt, false);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn seed_changes_the_schedule() {
        let a = FaultPlan::new(1).with_drops(500);
        let b = FaultPlan::new(2).with_drops(500);
        let schedule = |p: &FaultPlan| {
            (0..200u64)
                .map(|m| p.decide(0, 1, m, 0, false))
                .collect::<Vec<_>>()
        };
        assert_ne!(schedule(&a), schedule(&b));
    }

    #[test]
    fn guaranteed_last_attempt_always_delivers() {
        let plan = FaultPlan::new(7).with_drops(1000); // drop everything
        for msg in 0..20u64 {
            assert_eq!(plan.decide(0, 1, msg, 3, true), FaultAction::Deliver);
            assert_eq!(plan.decide(0, 1, msg, 0, false), FaultAction::Drop);
        }
    }

    #[test]
    fn fault_rates_roughly_match_per_mille() {
        let plan = FaultPlan::new(99).with_drops(200).with_corruption(100);
        let n = 5000u64;
        let mut drops = 0;
        let mut corrupts = 0;
        for m in 0..n {
            match plan.decide(0, 1, m, 0, false) {
                FaultAction::Drop => drops += 1,
                FaultAction::Corrupt => corrupts += 1,
                _ => {}
            }
        }
        let df = drops as f64 / n as f64;
        let cf = corrupts as f64 / n as f64;
        assert!((df - 0.2).abs() < 0.05, "drop rate {df}");
        assert!((cf - 0.1).abs() < 0.05, "corrupt rate {cf}");
    }

    #[test]
    fn checksum_detects_bit_flips_and_corrupt_frames_never_validate() {
        let data = vec![c64(1.5, -2.5), c64(0.0, 3.25)];
        let ck = checksum(&data);
        let garbage = corrupted_copy(&data, 17);
        assert_ne!(checksum(&garbage), ck);
        // Empty payloads cannot be mutated, but the shipped checksum is
        // broken independently of the payload.
        let empty: Vec<Complex64> = Vec::new();
        assert_eq!(corrupted_copy(&empty, 3), empty);
        assert_ne!(checksum(&empty) ^ BROKEN_CHECKSUM_XOR, checksum(&empty));
    }

    #[test]
    fn kill_schedule_picks_earliest_ordinal_per_rank() {
        let plan = FaultPlan::new(0)
            .with_kill_at(2, 7)
            .with_kill_at(2, 3)
            .with_kill_at(5, 0);
        assert_eq!(plan.kill_for(2), Some(3));
        assert_eq!(plan.kill_for(5), Some(0));
        assert_eq!(plan.kill_for(0), None);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let r = RetryPolicy::default();
        assert!(r.backoff(1) > r.backoff(0));
        assert!(r.backoff(30) <= Duration::from_millis(10));
    }
}
