//! Physical observables: currents, densities, and the atomically-resolved
//! dissipated power that produces the temperature map of Fig. 1(d).

use crate::gf::{ElectronGf, ElectronSelfEnergy};
use crate::grids::Grids;
use crate::params::SimParams;
use qt_linalg::Complex64;

/// Power dissipated by electron-phonon scattering per atom:
/// `P_a = Σ_{kz} ∫ dE/2π · E · Re tr[Σ>_a G<_a − Σ<_a G>_a]`
/// (out-scattering minus in-scattering, weighted by the electron energy).
///
/// Positive values mean the electron gas loses energy to the lattice at
/// atom `a` (Joule heating); the spatial profile is the Fig. 1(d) map.
pub fn dissipated_power_per_atom(
    p: &SimParams,
    grids: &Grids,
    sigma: &ElectronSelfEnergy,
    egf: &ElectronGf,
) -> Vec<f64> {
    let no = p.norb;
    let weight = grids.de / (2.0 * std::f64::consts::PI * p.nkz as f64);
    let mut power = vec![0.0; p.na];
    for k in 0..p.nkz {
        for e in 0..p.ne {
            let energy = grids.energies[e];
            for (a, pw) in power.iter_mut().enumerate() {
                let sl = sigma.lesser.inner(&[k, e, a]);
                let sg = sigma.greater.inner(&[k, e, a]);
                let gl = egf.g_lesser.inner(&[k, e, a]);
                let gg = egf.g_greater.inner(&[k, e, a]);
                // tr(Σ> G< − Σ< G>) with row-major blocks.
                let mut tr = Complex64::ZERO;
                for i in 0..no {
                    for j in 0..no {
                        tr += sg[i * no + j] * gl[j * no + i];
                        tr -= sl[i * no + j] * gg[j * no + i];
                    }
                }
                *pw += energy * tr.re * weight;
            }
        }
    }
    power
}

/// Map per-atom dissipated power onto an effective lattice temperature:
/// `T_a = T0 + c · P_a` with `c` chosen so the hottest atom sits `dt_max`
/// above the bath (a linearized proxy for the thermal solver the paper's
/// Fig. 1(d) visualizes).
pub fn temperature_map(power: &[f64], t0: f64, dt_max: f64) -> Vec<f64> {
    let pmax = power.iter().cloned().fold(0.0_f64, f64::max);
    if pmax <= 0.0 {
        return vec![t0; power.len()];
    }
    power
        .iter()
        .map(|&p| t0 + dt_max * (p.max(0.0) / pmax))
        .collect()
}

/// Electron density per atom: `n_a = −i Σ_{kz} ∫ dE/2π tr G<_aa`.
pub fn electron_density(p: &SimParams, grids: &Grids, egf: &ElectronGf) -> Vec<f64> {
    let no = p.norb;
    let weight = grids.de / (2.0 * std::f64::consts::PI * p.nkz as f64);
    let mut dens = vec![0.0; p.na];
    for k in 0..p.nkz {
        for e in 0..p.ne {
            for (a, d) in dens.iter_mut().enumerate() {
                let gl = egf.g_lesser.inner(&[k, e, a]);
                let mut tr = Complex64::ZERO;
                for o in 0..no {
                    tr += gl[o * no + o];
                }
                *d += (-Complex64::I * tr).re * weight;
            }
        }
    }
    dens
}

/// Local density of states per atom and energy (summed over momentum):
/// `LDOS_a(E) = (1/2π·Nkz) Σ_kz tr[i(G> − G<)_aa]` — the spectral weight
/// available for transport at each site.
pub fn local_dos(p: &SimParams, egf: &ElectronGf) -> Vec<Vec<f64>> {
    let no = p.norb;
    let mut ldos = vec![vec![0.0; p.ne]; p.na];
    let weight = 1.0 / (2.0 * std::f64::consts::PI * p.nkz as f64);
    for k in 0..p.nkz {
        for e in 0..p.ne {
            for (a, row) in ldos.iter_mut().enumerate() {
                let gl = egf.g_lesser.inner(&[k, e, a]);
                let gg = egf.g_greater.inner(&[k, e, a]);
                let mut tr = Complex64::ZERO;
                for o in 0..no {
                    tr += gg[o * no + o] - gl[o * no + o];
                }
                row[e] += (Complex64::I * tr).re * weight;
            }
        }
    }
    ldos
}

/// Total density of states `DOS(E) = Σ_a LDOS_a(E)`.
pub fn density_of_states(p: &SimParams, egf: &ElectronGf) -> Vec<f64> {
    let ldos = local_dos(p, egf);
    (0..p.ne)
        .map(|e| ldos.iter().map(|row| row[e]).sum())
        .collect()
}

/// Ballistic transmission function `T(E) = i(E) / (f_L(E) − f_R(E))`,
/// recovered from the Meir–Wingreen current spectrum (Landauer form).
/// Energies where the occupation difference is below `window_tol` return 0
/// (no signal to divide by).
pub fn transmission_spectrum(
    p: &SimParams,
    grids: &Grids,
    egf: &ElectronGf,
    contacts: &crate::gf::Contacts,
    window_tol: f64,
) -> Vec<f64> {
    use crate::grids::fermi;
    let spec = current_spectrum_by_energy(p, egf);
    grids
        .energies
        .iter()
        .zip(spec)
        .map(|(&e, i)| {
            let df = fermi(e, contacts.mu_left, contacts.temperature)
                - fermi(e, contacts.mu_right, contacts.temperature);
            if df.abs() < window_tol {
                0.0
            } else {
                i / df
            }
        })
        .collect()
}

/// Energy-resolved current spectrum summed over momentum, `i(E)`.
pub fn current_spectrum_by_energy(p: &SimParams, egf: &ElectronGf) -> Vec<f64> {
    let mut spec = vec![0.0; p.ne];
    for k in 0..p.nkz {
        for (e, s) in spec.iter_mut().enumerate() {
            *s += egf.current_spectrum[k * p.ne + e] / p.nkz as f64;
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scf::{run_scf, ScfConfig, Simulation};

    fn converged() -> (Simulation, crate::scf::ScfResult) {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 10,
            nw: 2,
            na: 8,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let sim = Simulation::new(p, -1.2, 1.2);
        let mut cfg = ScfConfig::default();
        cfg.gf.contacts.mu_left = 0.4;
        cfg.gf.contacts.mu_right = -0.4;
        cfg.max_iterations = 10;
        let out = run_scf(&sim, &cfg).unwrap();
        (sim, out)
    }

    #[test]
    fn dissipated_power_is_finite_and_nontrivial() {
        let (sim, out) = converged();
        let power = dissipated_power_per_atom(&sim.p, &sim.grids, &out.sigma, &out.electron);
        assert_eq!(power.len(), sim.p.na);
        assert!(power.iter().all(|p| p.is_finite()));
        let total: f64 = power.iter().map(|p| p.abs()).sum();
        assert!(total > 0.0, "scattering must exchange energy somewhere");
    }

    #[test]
    fn temperature_map_bounds() {
        let power = vec![0.0, 1.0, 2.0, 0.5];
        let t = temperature_map(&power, 300.0, 100.0);
        assert_eq!(t[0], 300.0);
        assert_eq!(t[2], 400.0);
        assert!(t.iter().all(|&x| (300.0..=400.0).contains(&x)));
        // All-zero power: uniform bath temperature.
        let t = temperature_map(&[0.0; 4], 300.0, 100.0);
        assert!(t.iter().all(|&x| x == 300.0));
    }

    #[test]
    fn density_positive() {
        let (sim, out) = converged();
        let dens = electron_density(&sim.p, &sim.grids, &out.electron);
        assert!(
            dens.iter().all(|&n| n >= -1e-9),
            "electron density must be non-negative: {dens:?}"
        );
        assert!(dens.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn dos_is_non_negative_and_integrates_to_states() {
        let (sim, out) = converged();
        let dos = density_of_states(&sim.p, &out.electron);
        assert_eq!(dos.len(), sim.p.ne);
        assert!(dos.iter().all(|&d| d >= -1e-9), "DOS must be non-negative");
        // The spectral weight integrated over the window is bounded by the
        // total orbital count (states outside the window are missed, never
        // overcounted).
        let total: f64 = dos.iter().map(|d| d * sim.grids.de).sum();
        let states = (sim.p.na * sim.p.norb) as f64;
        assert!(total > 0.0 && total <= states * 1.01, "{total} vs {states}");
    }

    #[test]
    fn ldos_sums_to_dos() {
        let (sim, out) = converged();
        let ldos = local_dos(&sim.p, &out.electron);
        let dos = density_of_states(&sim.p, &out.electron);
        for e in 0..sim.p.ne {
            let s: f64 = ldos.iter().map(|row| row[e]).sum();
            assert!((s - dos[e]).abs() < 1e-12);
        }
    }

    #[test]
    fn transmission_is_physical_in_ballistic_limit() {
        // Ballistic (zero SSE) transport: T(E) ∈ [0, channels].
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 16,
            nw: 2,
            na: 8,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let sim = Simulation::new(p, -1.2, 1.2);
        let mut cfg = crate::gf::GfConfig::default();
        cfg.contacts.mu_left = 0.5;
        cfg.contacts.mu_right = -0.5;
        let egf = crate::gf::electron_gf_phase(
            &sim.dev,
            &sim.em,
            &p,
            &sim.grids,
            &crate::gf::ElectronSelfEnergy::zeros(&p),
            &cfg,
        )
        .unwrap();
        let t = transmission_spectrum(&p, &sim.grids, &egf, &cfg.contacts, 1e-3);
        let channels = (p.na / p.bnum * p.norb) as f64; // slab cross-section
        for (e, &ti) in t.iter().enumerate() {
            assert!(
                ti >= -1e-9 && ti <= channels + 1e-6,
                "T(E_{e}) = {ti} outside [0, {channels}]"
            );
        }
        assert!(t.iter().any(|&ti| ti > 1e-6), "some channel must transmit");
    }

    #[test]
    fn spectrum_sums_to_current() {
        let (sim, out) = converged();
        let spec = current_spectrum_by_energy(&sim.p, &out.electron);
        let total: f64 = spec.iter().map(|s| s * sim.grids.de).sum();
        assert!((total - out.electron.current).abs() < 1e-10);
    }
}
