//! A minimal, dependency-free TOML reader for scenario files.
//!
//! The build image vendors no TOML crate, and scenario files need only a
//! small, predictable subset: `[table]` and `[table.subtable]` headers,
//! `key = value` pairs, and values that are strings, integers, floats,
//! booleans, or flat arrays. Everything outside that subset is a
//! *syntax error with a line number* — never a silent skip and never a
//! panic, because scenario files are user input and the whole pipeline
//! is fail-closed.
//!
//! Deliberate restrictions (each rejected with an explanatory error):
//! no multi-line strings, no dotted keys on the left-hand side, no
//! inline tables, no arrays-of-tables (`[[x]]`), no datetime values,
//! and no duplicate keys or table redefinitions. Tables iterate in
//! sorted key order, which makes re-serialization canonical.

use std::collections::BTreeMap;

use crate::error::ScenarioError;

/// A parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Array(Vec<Value>),
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// Type name used in `TypeMismatch` errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }

    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Syntax {
        line,
        message: message.into(),
    }
}

/// Is `c` legal in a bare key or table name segment?
fn bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Parse a TOML document into a root table.
pub fn parse(source: &str) -> Result<BTreeMap<String, Value>, ScenarioError> {
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    // Path of the table currently receiving `key = value` lines.
    let mut current: Vec<String> = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw, lineno)?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            if header.starts_with('[') {
                return Err(syntax(
                    lineno,
                    "arrays of tables ([[...]]) are not supported",
                ));
            }
            let Some(name) = header.strip_suffix(']') else {
                return Err(syntax(lineno, "table header is missing its closing ']'"));
            };
            let path = parse_table_path(name, lineno)?;
            create_table(&mut root, &path, lineno)?;
            current = path;
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(syntax(
                lineno,
                format!("expected `key = value` or a [table] header, got {line:?}"),
            ));
        };
        let key = line[..eq].trim();
        if key.is_empty() {
            return Err(syntax(lineno, "empty key before '='"));
        }
        if !key.chars().all(bare_key_char) {
            return Err(syntax(
                lineno,
                format!("key {key:?} must be a bare key ([A-Za-z0-9_-]+; dotted and quoted keys are not supported)"),
            ));
        }
        let value = parse_value(line[eq + 1..].trim(), lineno)?;
        let table = navigate(&mut root, &current);
        if table.contains_key(key) {
            return Err(syntax(lineno, format!("duplicate key {key:?}")));
        }
        table.insert(key.to_string(), value);
    }
    Ok(root)
}

/// Remove a trailing `# comment`, respecting `#` inside quoted strings.
fn strip_comment(line: &str, lineno: usize) -> Result<&str, ScenarioError> {
    let mut in_str = false;
    for (idx, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '\'' => {
                return Err(syntax(
                    lineno,
                    "single-quoted (literal) strings are not supported; use \"...\"",
                ))
            }
            '#' if !in_str => return Ok(&line[..idx]),
            _ => {}
        }
    }
    if in_str {
        return Err(syntax(lineno, "unterminated string"));
    }
    Ok(line)
}

fn parse_table_path(name: &str, lineno: usize) -> Result<Vec<String>, ScenarioError> {
    let name = name.trim();
    if name.is_empty() {
        return Err(syntax(lineno, "empty table header"));
    }
    let mut path = Vec::new();
    for seg in name.split('.') {
        let seg = seg.trim();
        if seg.is_empty() || !seg.chars().all(bare_key_char) {
            return Err(syntax(lineno, format!("bad table name segment {seg:?}")));
        }
        path.push(seg.to_string());
    }
    Ok(path)
}

/// Create the table at `path`, erroring on redefinition or on a path
/// that crosses a non-table value.
fn create_table(
    root: &mut BTreeMap<String, Value>,
    path: &[String],
    lineno: usize,
) -> Result<(), ScenarioError> {
    let mut table = root;
    for (depth, seg) in path.iter().enumerate() {
        let last = depth + 1 == path.len();
        let slot = table
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(BTreeMap::new()));
        match slot {
            Value::Table(inner) => {
                if last && !inner.is_empty() {
                    return Err(syntax(
                        lineno,
                        format!("table [{}] defined twice", path.join(".")),
                    ));
                }
                table = match table.get_mut(seg) {
                    Some(Value::Table(inner)) => inner,
                    _ => unreachable!("just matched a table"),
                };
            }
            other => {
                return Err(syntax(
                    lineno,
                    format!("{seg:?} is already a {}, not a table", other.kind()),
                ))
            }
        }
    }
    Ok(())
}

fn navigate<'a>(
    root: &'a mut BTreeMap<String, Value>,
    path: &[String],
) -> &'a mut BTreeMap<String, Value> {
    let mut table = root;
    for seg in path {
        table = match table.get_mut(seg) {
            Some(Value::Table(inner)) => inner,
            // `create_table` ran for every header, so the path exists
            // and is all tables.
            _ => unreachable!("table path vanished"),
        };
    }
    table
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ScenarioError> {
    if text.is_empty() {
        return Err(syntax(lineno, "missing value after '='"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(syntax(lineno, "unterminated string"));
        };
        if inner.contains('"') {
            return Err(syntax(lineno, "only one string per value"));
        }
        if inner.contains('\\') {
            return Err(syntax(lineno, "string escapes are not supported"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if let Some(body) = text.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(syntax(
                lineno,
                "unterminated array (must close on the same line)",
            ));
        };
        let mut items = Vec::new();
        for part in split_array(body, lineno)? {
            items.push(parse_value(part.trim(), lineno)?);
        }
        return Ok(Value::Array(items));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    parse_number(text, lineno)
}

/// Split an array body on top-level commas (strings may contain commas).
fn split_array(body: &str, lineno: usize) -> Result<Vec<&str>, ScenarioError> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut depth = 0usize;
    for (idx, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| syntax(lineno, "unbalanced ']' inside array"))?
            }
            ',' if !in_str && depth == 0 => {
                parts.push(&body[start..idx]);
                start = idx + 1;
            }
            _ => {}
        }
    }
    let tail = &body[start..];
    if !tail.trim().is_empty() {
        parts.push(tail);
    } else if !parts.is_empty() && tail.trim().is_empty() && !body.trim().is_empty() {
        // Allow one trailing comma; `[1,,2]` still fails in parse_value
        // because the empty middle part is pushed above.
    }
    Ok(parts)
}

/// Integers and floats. No `inf`/`nan` literals: a scenario has no
/// legitimate use for them and accepting them would let non-finite
/// numbers past the syntax layer.
fn parse_number(text: &str, lineno: usize) -> Result<Value, ScenarioError> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let looks_float = cleaned.contains(['.', 'e', 'E']);
    if !cleaned
        .chars()
        .all(|c| c.is_ascii_digit() || "+-.eE".contains(c))
    {
        return Err(syntax(lineno, format!("unrecognized value {text:?}")));
    }
    if looks_float {
        match cleaned.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Value::Float(f)),
            _ => Err(syntax(lineno, format!("bad float {text:?}"))),
        }
    } else {
        cleaned
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| syntax(lineno, format!("bad integer {text:?}")))
    }
}

/// Canonical serialization: sorted keys, scalar keys before subtables,
/// floats printed with a shortest round-trip representation that always
/// re-parses as a float (Rust's `{:?}` keeps the `.0`).
pub fn dump(root: &BTreeMap<String, Value>) -> String {
    let mut out = String::new();
    dump_table(root, &mut Vec::new(), &mut out);
    out
}

fn dump_table(table: &BTreeMap<String, Value>, path: &mut Vec<String>, out: &mut String) {
    let mut scalars: Vec<(&String, &Value)> = Vec::new();
    let mut subtables: Vec<(&String, &BTreeMap<String, Value>)> = Vec::new();
    for (k, v) in table {
        match v {
            Value::Table(t) => subtables.push((k, t)),
            other => scalars.push((k, other)),
        }
    }
    if !scalars.is_empty() && !path.is_empty() {
        out.push_str(&format!("[{}]\n", path.join(".")));
    }
    for (k, v) in scalars {
        out.push_str(&format!("{k} = {}\n", dump_value(v)));
    }
    for (k, t) in subtables {
        if !out.is_empty() {
            out.push('\n');
        }
        path.push(k.clone());
        if t.values().all(|v| matches!(v, Value::Table(_))) && !t.is_empty() {
            // Pure-subtable containers get no header of their own.
        } else if t.is_empty() {
            out.push_str(&format!("[{}]\n", path.join(".")));
        }
        dump_table(t, path, out);
        path.pop();
    }
}

fn dump_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("{s:?}"),
        Value::Int(i) => format!("{i}"),
        Value::Float(f) => format!("{f:?}"),
        Value::Bool(b) => format!("{b}"),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(dump_value).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Table(_) => unreachable!("inline tables are never produced"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_subset() {
        let doc = r#"
# a scenario
name = "demo"
[geometry]
kind = "nanowire"   # coordination 4
sections = 4
[solver]
tolerance = 1e-6
adaptive = true
biases = [0.1, 0.2, 0.3]
"#;
        let t = parse(doc).unwrap();
        assert_eq!(t["name"], Value::Str("demo".into()));
        let geo = t["geometry"].as_table().unwrap();
        assert_eq!(geo["kind"], Value::Str("nanowire".into()));
        assert_eq!(geo["sections"], Value::Int(4));
        let solver = t["solver"].as_table().unwrap();
        assert_eq!(solver["tolerance"], Value::Float(1e-6));
        assert_eq!(solver["adaptive"], Value::Bool(true));
        assert_eq!(
            solver["biases"],
            Value::Array(vec![
                Value::Float(0.1),
                Value::Float(0.2),
                Value::Float(0.3)
            ])
        );
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = |doc: &str| match parse(doc) {
            Err(ScenarioError::Syntax { line, .. }) => line,
            other => panic!("expected syntax error, got {other:?}"),
        };
        assert_eq!(err("key"), 1);
        assert_eq!(err("a = 1\nb = "), 2);
        assert_eq!(err("a = 1\n\nc = \"unterminated"), 3);
        assert_eq!(err("[t]\na = 1\n[t]\n"), 3); // redefinition
        assert_eq!(err("a = 1\na = 2"), 2); // duplicate
        assert_eq!(err("a = nan"), 1);
        assert_eq!(err("a = inf"), 1);
        assert_eq!(err("[[t]]"), 1);
        assert_eq!(err("a.b = 1"), 1);
        assert_eq!(err("a = 'literal'"), 1);
        assert_eq!(err("a = [1, 2"), 1);
    }

    #[test]
    fn dump_is_canonical_and_reparses() {
        let doc = r#"
z = 3
a = "x"
[n.m]
q = 1.5
[n.k]
r = [1, 2]
"#;
        let t = parse(doc).unwrap();
        let dumped = dump(&t);
        let t2 = parse(&dumped).unwrap();
        assert_eq!(t, t2, "dump must re-parse to the same tree:\n{dumped}");
        // Canonical: dumping again yields the identical text.
        assert_eq!(dump(&t2), dumped);
        // Floats keep their float-ness through the round trip.
        let nm = t2["n"].as_table().unwrap()["m"].as_table().unwrap();
        assert_eq!(nm["q"], Value::Float(1.5));
    }
}
