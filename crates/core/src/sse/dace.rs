//! Data-centric transformed SSE kernels (Fig. 12).
//!
//! The Σ≷ kernel applies the full §4.2 pipeline:
//!
//! 1. **Redundancy removal** — `∇H·G` is computed once per `(a, b, i, kz, E)`
//!    instead of once per `(a, b, i, j, kz, E, qz, ω)`: the `(qz, ω)`
//!    dimensions only offset the `(kz, E)` indices, which already span the
//!    full grid (Fig. 10b). This halves the flop count (Table 3).
//! 2. **Data layout** — `G≷` is permuted to `[NA, Nkz, NE, Norb, Norb]` so
//!    the per-atom `(kz, E)` batch is contiguous (Fig. 10c).
//! 3. **Multiplication fusion** — the `Nkz·NE` small products collapse into
//!    one wide GEMM per `(a, b, i)` (Fig. 10d).
//! 4. **GEMM substitution over ω** — the accumulation over the frequency
//!    window becomes a windowed batched product (Fig. 11).
//! 5. **Map fusion over `(a, b)`** — all transients are per-`(a, b)` work
//!    buffers of rank 3, not global 7-D tensors (Fig. 12), and the outer
//!    atom loop parallelizes over the rayon pool.

use super::SseInputs;
use crate::gf::{ElectronSelfEnergy, PhononSelfEnergy};
use crate::params::N3D;
use qt_linalg::{c64, gemm, Complex64, Matrix, Tensor};
use rayon::prelude::*;

/// Σ≷ via the transformed kernel.
pub fn sigma(inputs: &SseInputs<'_>) -> ElectronSelfEnergy {
    let p = inputs.p;
    let no = p.norb;
    let nn = no * no;
    let scale = c64(super::sigma_scale(p, inputs.grids), 0.0);
    // Data-layout transformation: G≷ -> [NA, Nkz, NE, No, No].
    let perm = [2usize, 0, 1, 3, 4];
    let g_l = inputs.g_lesser.permuted(&perm);
    let g_g = inputs.g_greater.permuted(&perm);
    let ke = p.nkz * p.ne;

    // Per-atom partial results, joined at the end (atoms are independent).
    let partials: Vec<(Vec<Complex64>, Vec<Complex64>)> = (0..p.na)
        .into_par_iter()
        .map(|a| {
            let mut sig_l = vec![Complex64::ZERO; ke * nn];
            let mut sig_g = vec![Complex64::ZERO; ke * nn];
            // Rank-3 transients of the fused kernel (Fig. 12): one (kz, E)
            // batch and one (qz, ω) window per direction i.
            let mut dhg = vec![vec![Complex64::ZERO; ke * nn]; N3D];
            let mut dhd_rev = vec![vec![Complex64::ZERO; p.nqz * p.nw * nn]; N3D];
            let mut dhd_fwd = vec![vec![Complex64::ZERO; p.nqz * p.nw * nn]; N3D];
            for slot in 0..p.nb {
                let Some(f) = inputs.dev.neighbor(a, slot) else {
                    continue;
                };
                for (g_perm, d, d_other, sig) in [
                    (&g_l, inputs.d_lesser_pre, inputs.d_greater_pre, &mut sig_l),
                    (&g_g, inputs.d_greater_pre, inputs.d_lesser_pre, &mut sig_g),
                ] {
                    // (1 + 3) ∇H·G: one wide GEMM per direction over the
                    // contiguous (kz, E) batch of atom f.
                    let g_batch = g_perm.inner(&[f]); // [Nkz*NE*no, no]
                    for (i, dhg_i) in dhg.iter_mut().enumerate() {
                        let dh_i = inputs.dh.inner(&[a, slot, i]);
                        dhg_i.fill(Complex64::ZERO);
                        gemm::gemm_raw_acc(ke * no, no, no, g_batch, dh_i, dhg_i);
                    }
                    // ∇H·D̃ windows. Emission blocks are stored ω-reversed
                    // so the E−ω window is a contiguous ascending-E slice;
                    // absorption blocks (bosonic image conj D̃≶ᵀ) are stored
                    // ascending for the E+ω window.
                    for i in 0..N3D {
                        let (dhd_r, dhd_f) = (&mut dhd_rev[i], &mut dhd_fwd[i]);
                        dhd_r.fill(Complex64::ZERO);
                        dhd_f.fill(Complex64::ZERO);
                        for q in 0..p.nqz {
                            for w in 0..p.nw {
                                let base_r = (q * p.nw + (p.nw - 1 - w)) * nn;
                                let base_f = (q * p.nw + w) * nn;
                                for j in 0..N3D {
                                    let dval = d.get(&[q, w, a, slot, i, j]);
                                    let dval_abs = d_other.get(&[q, w, a, slot, j, i]).conj();
                                    let dh_j = inputs.dh.inner(&[a, slot, j]);
                                    if dval != Complex64::ZERO {
                                        for (t, &s) in
                                            dhd_r[base_r..base_r + nn].iter_mut().zip(dh_j)
                                        {
                                            *t += s * dval;
                                        }
                                    }
                                    if dval_abs != Complex64::ZERO {
                                        for (t, &s) in
                                            dhd_f[base_f..base_f + nn].iter_mut().zip(dh_j)
                                        {
                                            *t += s * dval_abs;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Windowed GEMM accumulation (Fig. 11c): for every
                    // (kz, qz, E), Σ[k, E] += Σ_ω dHG[k−q, E−ω−1] · dHD[q, ω].
                    for k in 0..p.nkz {
                        for q in 0..p.nqz {
                            let kq = inputs.grids.k_minus_q(k, q);
                            for e in 0..p.ne {
                                let dst = &mut sig[(k * p.ne + e) * nn..(k * p.ne + e + 1) * nn];
                                // Emission window E−ω.
                                let win = e.min(p.nw);
                                if win > 0 {
                                    for (dhg_i, dhd_i) in dhg.iter().zip(&dhd_rev) {
                                        // Ascending E' = e−win .. e−1 pairs
                                        // with reversed-ω blocks.
                                        let a_off = (kq * p.ne + e - win) * nn;
                                        let b_off = (q * p.nw + p.nw - win) * nn;
                                        gemm::gemm_window_acc(
                                            no,
                                            win,
                                            &dhg_i[a_off..a_off + win * nn],
                                            &dhd_i[b_off..b_off + win * nn],
                                            dst,
                                            scale,
                                        );
                                    }
                                }
                                // Absorption window E+ω.
                                let win = (p.ne - 1 - e).min(p.nw);
                                if win > 0 {
                                    for (dhg_i, dhd_i) in dhg.iter().zip(&dhd_fwd) {
                                        // Ascending E' = e+1 .. e+win pairs
                                        // with ascending-ω blocks.
                                        let a_off = (kq * p.ne + e + 1) * nn;
                                        let b_off = (q * p.nw) * nn;
                                        gemm::gemm_window_acc(
                                            no,
                                            win,
                                            &dhg_i[a_off..a_off + win * nn],
                                            &dhd_i[b_off..b_off + win * nn],
                                            dst,
                                            scale,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
            (sig_l, sig_g)
        })
        .collect();
    // Scatter per-atom results into the output tensors.
    let mut out = ElectronSelfEnergy::zeros(p);
    for (a, (sl, sg)) in partials.into_iter().enumerate() {
        for k in 0..p.nkz {
            for e in 0..p.ne {
                let src = (k * p.ne + e) * nn;
                out.lesser
                    .inner_mut(&[k, e, a])
                    .copy_from_slice(&sl[src..src + nn]);
                out.greater
                    .inner_mut(&[k, e, a])
                    .copy_from_slice(&sg[src..src + nn]);
            }
        }
    }
    out
}

/// Π≷ via the transformed kernel: same contraction as
/// [`super::reference::pi`], restructured so the `∇H·G` products are hoisted
/// out of the `(i, j)` loops and all work buffers are preallocated.
pub fn pi(inputs: &SseInputs<'_>) -> PhononSelfEnergy {
    let p = inputs.p;
    let no = p.norb;
    let scale = c64(super::pi_scale(p, inputs.grids), 0.0);
    let mut out = PhononSelfEnergy::zeros(p);
    // Per (a, slot) pair, computed in parallel and scattered.
    let pairs: Vec<(usize, usize, usize)> = (0..p.na)
        .flat_map(|a| (0..p.nb).map(move |s| (a, s, 0usize)))
        .collect();
    let results: Vec<Option<(usize, usize, Matrix, Matrix)>> = pairs
        .par_iter()
        .map(|&(a, slot, _)| {
            let b = inputs.dev.neighbor(a, slot)?;
            // Precompute ∇H_ba,i and ∇H_ab,j once.
            let dh_ba: Vec<Matrix> = (0..N3D)
                .map(|i| super::reference::dh_reverse(inputs, a, slot, b, i))
                .collect();
            let dh_ab: Vec<Matrix> = (0..N3D)
                .map(|j| Matrix::from_vec(no, no, inputs.dh.inner(&[a, slot, j]).to_vec()))
                .collect();
            let mut t_l = Matrix::zeros(N3D * p.nqz, N3D * p.nw); // (i·q, j·w) layout
            let mut t_g = Matrix::zeros(N3D * p.nqz, N3D * p.nw);
            for (g_hi, g_lo, t_out) in [
                (inputs.g_lesser, inputs.g_greater, &mut t_l),
                (inputs.g_greater, inputs.g_lesser, &mut t_g),
            ] {
                for q in 0..p.nqz {
                    for w in 0..p.nw {
                        for k in 0..p.nkz {
                            let kq = inputs.grids.k_plus_q(k, q);
                            for e in 0..p.ne {
                                let Some(ep) = inputs.grids.e_plus_w(e, w) else {
                                    continue;
                                };
                                let g1 = tensor_mat(g_hi, &[kq, ep, a], no);
                                let g2 = tensor_mat(g_lo, &[k, e, b], no);
                                // Hoisted products reused across (i, j).
                                let pg1: Vec<Matrix> =
                                    dh_ba.iter().map(|m| m.matmul(&g1)).collect();
                                let qg2: Vec<Matrix> =
                                    dh_ab.iter().map(|m| m.matmul(&g2)).collect();
                                for (i, p1) in pg1.iter().enumerate() {
                                    for (j, q2) in qg2.iter().enumerate() {
                                        // tr(P·Q) without forming P·Q.
                                        let mut tr = Complex64::ZERO;
                                        for m in 0..no {
                                            for n in 0..no {
                                                tr = tr.mul_add(p1[(m, n)], q2[(n, m)]);
                                            }
                                        }
                                        qt_linalg::add_flops(8 * (no * no) as u64);
                                        t_out[(i * p.nqz + q, j * p.nw + w)] += tr;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Some((a, slot, t_l.scale(scale), t_g.scale(scale)))
        })
        .collect();
    for r in results.into_iter().flatten() {
        let (a, slot, t_l, t_g) = r;
        for (t, tensor_pair) in [(&t_l, &mut out.lesser), (&t_g, &mut out.greater)] {
            for q in 0..p.nqz {
                for w in 0..p.nw {
                    for i in 0..N3D {
                        for j in 0..N3D {
                            let v = t[(i * p.nqz + q, j * p.nw + w)];
                            tensor_pair.add_assign_at(&[q, w, a, slot, i, j], v);
                            let nbslot = p.nb;
                            tensor_pair.add_assign_at(&[q, w, a, nbslot, i, j], -v);
                        }
                    }
                }
            }
        }
    }
    out
}

#[inline]
fn tensor_mat(t: &Tensor, idx: &[usize], no: usize) -> Matrix {
    Matrix::from_vec(no, no, t.inner(idx).to_vec())
}
