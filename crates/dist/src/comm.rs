//! Simulated message passing: an MPI-like communicator over OS threads.
//!
//! Substitution (DESIGN.md §4): the paper's MPI runs on Piz Daint/Summit.
//! Communication *volume* is hardware-independent, so a rank-per-thread
//! world with per-edge byte accounting reproduces the paper's volume
//! measurements (Tables 4–5) exactly, and lets the distributed SSE schemes
//! run for real at reduced scale.
//!
//! Messages are `Vec<Complex64>` payloads tagged with a `u64`; each ordered
//! pair of ranks has its own FIFO channel, so point-to-point ordering is
//! MPI-like. Sends are non-blocking (unbounded channels); receives block.
//!
//! With the `fault-inject` feature a world can carry a
//! [`crate::fault::FaultPlan`]: every remote transmission then goes through
//! a reliable-delivery protocol (checksummed frames, sender-side
//! retransmission with exponential backoff, receiver-side timeout and
//! discard of corrupted frames). Worlds without a plan — including every
//! world built by [`ThreadComm::world`] — take exactly the fault-free path,
//! so the byte-accounting model stays exact.
//!
//! ## Liveness and elasticity
//!
//! The classic API (`send`/`recv`/`barrier`) assumes every rank outlives
//! the exchange — a permanently dead rank hangs its peers. The elastic API
//! (`try_send`/`try_recv`/`try_barrier`) adds a failure detector: every
//! rank owns a monotone *epoch* counter (bumped on each elastic send,
//! receive poll, and explicit [`ThreadComm::heartbeat`]); a receiver whose
//! channel stays silent checks the sender's epoch and, once it has not
//! moved for [`LivenessConfig::deadline`], files a death certificate and
//! returns a typed [`CommError::RankDeath`] instead of blocking forever.
//! Death certificates are shared world state, so one detection aborts
//! every waiting survivor — the supervision loop in `runner.rs` then
//! re-tiles over the survivors and retries. Worlds built by
//! [`ThreadComm::elastic_world`] carry an *identity* map so a shrunken
//! survivor world keeps reporting the original (pre-shrink) rank ids.

use crossbeam::channel::{unbounded, Receiver, Sender};
use qt_linalg::Complex64;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

#[cfg(feature = "fault-inject")]
use crate::fault::{self, FaultAction, FaultPlan};

/// Typed failure of an elastic communication primitive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// A peer went silent past the liveness deadline (or its endpoint
    /// vanished). `rank` is the *original* identity of the dead peer,
    /// `epoch` the last liveness epoch observed from it.
    RankDeath { rank: usize, epoch: u64 },
    /// This rank was killed by the fault plan's `kill_at` schedule; it
    /// must fall silent and unwind without transmitting anything else.
    Killed { rank: usize },
    /// A sender exhausted its retry budget without a clean delivery; the
    /// destination is the prime suspect for the failure detector.
    DeliveryFailed {
        src: usize,
        dst: usize,
        msg_idx: u64,
        attempts: u32,
    },
}

impl CommError {
    /// The original rank id this error implicates as dead.
    pub fn suspect(&self) -> usize {
        match self {
            CommError::RankDeath { rank, .. } => *rank,
            CommError::Killed { rank } => *rank,
            CommError::DeliveryFailed { dst, .. } => *dst,
        }
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankDeath { rank, epoch } => {
                write!(f, "rank {rank} declared dead (last epoch {epoch})")
            }
            CommError::Killed { rank } => write!(f, "rank {rank} killed by fault schedule"),
            CommError::DeliveryFailed {
                src,
                dst,
                msg_idx,
                attempts,
            } => write!(
                f,
                "rank {src} -> {dst}: message {msg_idx} exhausted {attempts} attempts \
                 without delivery"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Failure-detector tuning for the elastic primitives.
#[derive(Clone, Copy, Debug)]
pub struct LivenessConfig {
    /// How often a blocked receiver re-polls its channel (and re-checks
    /// peer epochs). Each poll also bumps the poller's own epoch, so a
    /// rank that is merely *waiting* never looks dead.
    pub poll: Duration,
    /// How long a peer's epoch may stand still before it is declared
    /// dead. Must comfortably exceed the longest heartbeat-free compute
    /// stretch of the scheme.
    pub deadline: Duration,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            poll: Duration::from_millis(1),
            deadline: Duration::from_millis(500),
        }
    }
}

/// Bytes per payload element.
pub const ELEM_BYTES: u64 = 16;

#[cfg(not(feature = "fault-inject"))]
type Payload = (u64, Vec<Complex64>);
/// `(tag, data, checksum)` — the checksum is 0 and ignored unless the
/// world carries a fault plan.
#[cfg(feature = "fault-inject")]
type Payload = (u64, Vec<Complex64>, u64);

/// Monotone world id: every world instance (including each survivor world
/// built during elastic recovery) salts its trace flow ids with a fresh
/// value, so send→recv arcs from different worlds never collide in one
/// Chrome trace.
static WORLD_SALT: AtomicU64 = AtomicU64::new(1);

struct WorldInner {
    n: usize,
    /// This world's flow-id salt (see [`WORLD_SALT`]).
    salt: u64,
    /// `senders[dst][src]` sends into `receivers`' matching channel.
    senders: Vec<Vec<Sender<Payload>>>,
    /// Bytes sent per rank.
    sent: Vec<AtomicU64>,
    /// Bytes received per rank.
    received: Vec<AtomicU64>,
    barrier: Barrier,
    /// Liveness epoch per world slot: monotone counter bumped by elastic
    /// sends, receive polls, and explicit heartbeats.
    epochs: Vec<AtomicU64>,
    /// Death certificates per world slot; shared so one detection aborts
    /// every waiting survivor.
    dead: Vec<AtomicBool>,
    /// Arrival generations for the liveness-aware [`ThreadComm::try_barrier`].
    arrivals: Vec<AtomicU64>,
    /// Original (pre-shrink) rank identity per world slot; `identity[i]
    /// == i` for worlds that never lost a rank.
    identity: Vec<usize>,
    /// Installed fault schedule; `None` means the fault-free fast path.
    #[cfg(feature = "fault-inject")]
    plan: Option<Arc<FaultPlan>>,
}

/// One rank's endpoint.
pub struct ThreadComm {
    rank: usize,
    world: Arc<WorldInner>,
    /// `receivers[src]` yields messages sent by `src` to this rank.
    receivers: Vec<Receiver<Payload>>,
    /// Generation of the last `try_barrier` this rank entered.
    barrier_gen: Cell<u64>,
    /// Per-destination ordinal of the next *cleanly delivered* outbound
    /// frame; the receive side keeps the mirror count, and per-pair FIFO
    /// makes the two agree — that shared ordinal keys the send→recv trace
    /// flow arc. Single-threaded per rank.
    flow_out: RefCell<Vec<u64>>,
    /// Per-source ordinal of the next *accepted* (checksum-clean) inbound
    /// frame.
    flow_in: RefCell<Vec<u64>>,
    /// Per-destination ordinal of the next logical message, the `msg_idx`
    /// fed to the deterministic fault schedule. Single-threaded per rank.
    #[cfg(feature = "fault-inject")]
    msg_seq: RefCell<Vec<u64>>,
    /// Outbound ordinal at which this rank's process dies (from the
    /// plan's `kill_at` schedule, matched by original identity).
    #[cfg(feature = "fault-inject")]
    kill_at: Option<u64>,
    /// Total elastic sends attempted so far (the kill ordinal clock).
    #[cfg(feature = "fault-inject")]
    total_sends: Cell<u64>,
    /// Set once the kill fired: the rank transmits nothing ever again.
    #[cfg(feature = "fault-inject")]
    killed: Cell<bool>,
}

impl ThreadComm {
    /// Create a world of `n` ranks; returns one endpoint per rank.
    pub fn world(n: usize) -> Vec<ThreadComm> {
        #[cfg(feature = "fault-inject")]
        return Self::build((0..n).collect(), None);
        #[cfg(not(feature = "fault-inject"))]
        Self::build((0..n).collect())
    }

    /// Create a world whose remote traffic runs under `plan`'s fault
    /// schedule and recovery protocol.
    #[cfg(feature = "fault-inject")]
    pub fn world_with_faults(n: usize, plan: FaultPlan) -> Vec<ThreadComm> {
        Self::build((0..n).collect(), Some(Arc::new(plan)))
    }

    /// Create a survivor world: slot `i` carries the original rank id
    /// `identity[i]`, so death reports and kill schedules keep referring
    /// to pre-shrink identities across recovery attempts.
    pub fn elastic_world(identity: Vec<usize>) -> Vec<ThreadComm> {
        #[cfg(feature = "fault-inject")]
        return Self::build(identity, None);
        #[cfg(not(feature = "fault-inject"))]
        Self::build(identity)
    }

    /// A survivor world under `plan` (kills matched by original identity).
    #[cfg(feature = "fault-inject")]
    pub fn elastic_world_with_faults(identity: Vec<usize>, plan: FaultPlan) -> Vec<ThreadComm> {
        Self::build(identity, Some(Arc::new(plan)))
    }

    fn build(
        identity: Vec<usize>,
        #[cfg(feature = "fault-inject")] plan: Option<Arc<FaultPlan>>,
    ) -> Vec<ThreadComm> {
        let n = identity.len();
        assert!(n > 0);
        let mut senders = vec![Vec::with_capacity(n); n];
        let mut receivers: Vec<Vec<Receiver<Payload>>> = (0..n).map(|_| Vec::new()).collect();
        for dst in 0..n {
            for _src in 0..n {
                let (tx, rx) = unbounded();
                senders[dst].push(tx);
                receivers[dst].push(rx);
            }
        }
        let inner = Arc::new(WorldInner {
            n,
            salt: WORLD_SALT.fetch_add(1, Ordering::Relaxed),
            senders,
            sent: (0..n).map(|_| AtomicU64::new(0)).collect(),
            received: (0..n).map(|_| AtomicU64::new(0)).collect(),
            barrier: Barrier::new(n),
            epochs: (0..n).map(|_| AtomicU64::new(0)).collect(),
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
            arrivals: (0..n).map(|_| AtomicU64::new(0)).collect(),
            identity,
            #[cfg(feature = "fault-inject")]
            plan,
        });
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rxs)| {
                #[cfg(feature = "fault-inject")]
                let kill_at = inner
                    .plan
                    .as_ref()
                    .and_then(|p| p.kill_for(inner.identity[rank]));
                ThreadComm {
                    rank,
                    world: inner.clone(),
                    receivers: rxs,
                    barrier_gen: Cell::new(0),
                    flow_out: RefCell::new(vec![0; n]),
                    flow_in: RefCell::new(vec![0; n]),
                    #[cfg(feature = "fault-inject")]
                    msg_seq: RefCell::new(vec![0; n]),
                    #[cfg(feature = "fault-inject")]
                    kill_at,
                    #[cfg(feature = "fault-inject")]
                    total_sends: Cell::new(0),
                    #[cfg(feature = "fault-inject")]
                    killed: Cell::new(false),
                }
            })
            .collect()
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.world.n
    }

    /// Original (pre-shrink) identity of this rank slot.
    #[inline]
    pub fn identity(&self) -> usize {
        self.world.identity[self.rank]
    }

    /// Original identity of world slot `slot`.
    #[inline]
    pub fn identity_of(&self, slot: usize) -> usize {
        self.world.identity[slot]
    }

    /// Announce liveness: bump this rank's epoch. Call from long
    /// heartbeat-free compute stretches so waiting peers never mistake
    /// computation for death.
    #[inline]
    pub fn heartbeat(&self) {
        self.world.epochs[self.rank].fetch_add(1, Ordering::Release);
    }

    /// Last observed liveness epoch of world slot `slot`.
    #[inline]
    pub fn epoch_of(&self, slot: usize) -> u64 {
        self.world.epochs[slot].load(Ordering::Acquire)
    }

    /// File a death certificate for world slot `slot`.
    pub(crate) fn declare_dead(&self, slot: usize) {
        self.world.dead[slot].store(true, Ordering::Release);
    }

    /// First slot other than `me` with a death certificate on file.
    pub(crate) fn first_dead_excluding(&self, me: usize) -> Option<usize> {
        (0..self.world.n).find(|&s| s != me && self.world.dead[s].load(Ordering::Acquire))
    }

    /// This world's trace flow-id salt (shared by every endpoint, unique
    /// per world instance). Protocol layers salt their own arcs with it.
    pub(crate) fn world_salt(&self) -> u64 {
        self.world.salt
    }

    /// Account a cleanly delivered outbound frame to `dst` and emit the
    /// `"s"` half of its send→recv trace flow arc. The ordinal always
    /// advances (even with tracing off) so both sides stay in step no
    /// matter when tracing was enabled.
    fn note_clean_send(&self, dst: usize, tag: u64) {
        let seq = {
            let mut s = self.flow_out.borrow_mut();
            let v = s[dst];
            s[dst] += 1;
            v
        };
        if qt_telemetry::tracing_enabled() {
            let id = qt_telemetry::trace::flow_id(&[
                self.world.salt,
                self.rank as u64,
                dst as u64,
                tag,
                seq,
            ]);
            qt_telemetry::trace::record_flow_start("comm/msg", self.identity(), id);
        }
    }

    /// Account an accepted (checksum-clean) inbound frame from `src` and
    /// emit the `"f"` half of its send→recv trace flow arc.
    fn note_clean_recv(&self, src: usize, tag: u64) {
        let seq = {
            let mut s = self.flow_in.borrow_mut();
            let v = s[src];
            s[src] += 1;
            v
        };
        if qt_telemetry::tracing_enabled() {
            let id = qt_telemetry::trace::flow_id(&[
                self.world.salt,
                src as u64,
                self.rank as u64,
                tag,
                seq,
            ]);
            qt_telemetry::trace::record_flow_finish("comm/msg", self.identity(), id);
        }
    }

    /// Point-to-point send (non-blocking). Self-sends are allowed and do
    /// not count toward network bytes.
    pub fn send(&self, dst: usize, tag: u64, data: Vec<Complex64>) {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.world.plan {
            let plan = plan.clone();
            self.send_with_plan(&plan, dst, tag, data);
            return;
        }
        let bytes = data.len() as u64 * ELEM_BYTES;
        if dst != self.rank {
            self.world.sent[self.rank].fetch_add(bytes, Ordering::Relaxed);
            self.world.received[dst].fetch_add(bytes, Ordering::Relaxed);
            // Single accounting point for network traffic: phase spans and
            // the telemetry report read the same byte stream the
            // per-rank counters feed.
            qt_telemetry::counters::add_bytes(bytes);
            // Flow start strictly precedes the channel push so the paired
            // finish can never carry an earlier timestamp.
            self.note_clean_send(dst, tag);
        }
        self.world.senders[dst][self.rank]
            .send(Self::frame(tag, data))
            .expect("receiver alive");
    }

    #[cfg(not(feature = "fault-inject"))]
    #[inline]
    fn frame(tag: u64, data: Vec<Complex64>) -> Payload {
        (tag, data)
    }

    #[cfg(feature = "fault-inject")]
    #[inline]
    fn frame(tag: u64, data: Vec<Complex64>) -> Payload {
        (tag, data, 0)
    }

    /// Classic wrapper over [`ThreadComm::try_send_with_plan`]: the
    /// static schemes have no recovery story, so a typed delivery failure
    /// (or a vanished peer) escalates to a panic.
    #[cfg(feature = "fault-inject")]
    fn send_with_plan(&self, plan: &FaultPlan, dst: usize, tag: u64, data: Vec<Complex64>) {
        if let Err(e) = self.try_send_with_plan(plan, dst, tag, data) {
            panic!("{e}");
        }
    }

    /// Reliable send under a fault plan: each wire attempt rolls the
    /// deterministic schedule; drops and corruptions trigger a
    /// backed-off retransmission, and (under `guarantee_delivery`) the
    /// final attempt always carries the clean frame — so the receiver
    /// obtains the exact payload a fault-free run would. The retransmit
    /// loop is bounded: after `retry.max_attempts` wire attempts the
    /// sender surfaces [`CommError::DeliveryFailed`] instead of backing
    /// off forever, and a destination whose endpoint is gone surfaces
    /// [`CommError::RankDeath`] immediately.
    #[cfg(feature = "fault-inject")]
    fn try_send_with_plan(
        &self,
        plan: &FaultPlan,
        dst: usize,
        tag: u64,
        data: Vec<Complex64>,
    ) -> Result<(), CommError> {
        if dst == self.rank {
            // Self-sends never cross the network: no faults, no bytes.
            self.world.senders[dst][self.rank]
                .send((tag, data, 0))
                .expect("own receiver alive");
            return Ok(());
        }
        self.heartbeat();
        let msg_idx = {
            let mut seq = self.msg_seq.borrow_mut();
            let idx = seq[dst];
            seq[dst] += 1;
            idx
        };
        let dead_dst = |comm: &Self| {
            comm.declare_dead(dst);
            CommError::RankDeath {
                rank: comm.identity_of(dst),
                epoch: comm.epoch_of(dst),
            }
        };
        let bytes = data.len() as u64 * ELEM_BYTES;
        let cksum = fault::checksum(&data);
        let max = plan.retry.max_attempts.max(1);
        let mut payload = Some(data);
        for attempt in 0..max {
            let is_last = attempt + 1 == max;
            self.heartbeat();
            match plan.decide(self.rank, dst, msg_idx, attempt, is_last) {
                FaultAction::Drop => {
                    // The frame left this rank's NIC and vanished: the
                    // send-side bytes are spent, nothing arrives.
                    self.world.sent[self.rank].fetch_add(bytes, Ordering::Relaxed);
                    qt_telemetry::counters::add_bytes(bytes);
                    qt_telemetry::counters::add_comm_retry();
                    qt_telemetry::journal::emit(qt_telemetry::EventKind::CommRetransmit {
                        src: self.identity() as u64,
                        dst: self.identity_of(dst) as u64,
                        attempt: attempt as u64,
                    });
                    std::thread::sleep(plan.retry.backoff(attempt));
                }
                FaultAction::Corrupt => {
                    // A mangled frame arrives (and costs both sides'
                    // bytes); its checksum is broken so the receiver is
                    // guaranteed to discard it and keep waiting.
                    let garbage =
                        fault::corrupted_copy(payload.as_deref().unwrap(), plan.seed ^ msg_idx);
                    self.world.sent[self.rank].fetch_add(bytes, Ordering::Relaxed);
                    self.world.received[dst].fetch_add(bytes, Ordering::Relaxed);
                    qt_telemetry::counters::add_bytes(bytes);
                    qt_telemetry::counters::add_comm_retry();
                    qt_telemetry::journal::emit(qt_telemetry::EventKind::CommRetransmit {
                        src: self.identity() as u64,
                        dst: self.identity_of(dst) as u64,
                        attempt: attempt as u64,
                    });
                    self.world.senders[dst][self.rank]
                        .send((tag, garbage, cksum ^ fault::BROKEN_CHECKSUM_XOR))
                        .map_err(|_| dead_dst(self))?;
                    std::thread::sleep(plan.retry.backoff(attempt));
                }
                action @ (FaultAction::Deliver | FaultAction::Delay) => {
                    if action == FaultAction::Delay {
                        std::thread::sleep(plan.delay);
                    }
                    self.world.sent[self.rank].fetch_add(bytes, Ordering::Relaxed);
                    self.world.received[dst].fetch_add(bytes, Ordering::Relaxed);
                    qt_telemetry::counters::add_bytes(bytes);
                    self.note_clean_send(dst, tag);
                    self.world.senders[dst][self.rank]
                        .send((tag, payload.take().expect("delivered once"), cksum))
                        .map_err(|_| dead_dst(self))?;
                    return Ok(());
                }
            }
        }
        Err(CommError::DeliveryFailed {
            src: self.identity(),
            dst: self.identity_of(dst),
            msg_idx,
            attempts: max,
        })
    }

    /// Elastic point-to-point send. Like [`ThreadComm::send`], but a
    /// destination whose endpoint has vanished yields a typed
    /// [`CommError::RankDeath`] instead of a panic, the plan's `kill_at`
    /// schedule can terminate *this* rank ([`CommError::Killed`]), and a
    /// bounded retransmit loop surfaces [`CommError::DeliveryFailed`].
    pub fn try_send(&self, dst: usize, tag: u64, data: Vec<Complex64>) -> Result<(), CommError> {
        #[cfg(feature = "fault-inject")]
        {
            if self.killed.get() {
                return Err(CommError::Killed {
                    rank: self.identity(),
                });
            }
            if let Some(kill) = self.kill_at {
                if self.total_sends.get() >= kill {
                    // The process dies *before* this frame leaves the
                    // NIC: file its own death certificate (the closing
                    // TCP connection a real peer would observe) and fall
                    // silent for the rest of the world run.
                    self.killed.set(true);
                    self.declare_dead(self.rank);
                    return Err(CommError::Killed {
                        rank: self.identity(),
                    });
                }
            }
            self.total_sends.set(self.total_sends.get() + 1);
            if let Some(plan) = &self.world.plan {
                let plan = plan.clone();
                return self.try_send_with_plan(&plan, dst, tag, data);
            }
        }
        self.heartbeat();
        let bytes = data.len() as u64 * ELEM_BYTES;
        if dst != self.rank {
            self.world.sent[self.rank].fetch_add(bytes, Ordering::Relaxed);
            self.world.received[dst].fetch_add(bytes, Ordering::Relaxed);
            qt_telemetry::counters::add_bytes(bytes);
            self.note_clean_send(dst, tag);
        }
        self.world.senders[dst][self.rank]
            .send(Self::frame(tag, data))
            .map_err(|_| {
                // The destination's receivers were dropped when its
                // closure unwound: death evidence.
                self.declare_dead(dst);
                CommError::RankDeath {
                    rank: self.identity_of(dst),
                    epoch: self.epoch_of(dst),
                }
            })
    }

    /// Blocking receive of the next message from `src`; asserts the tag
    /// matches (protocols here are deterministic).
    pub fn recv(&self, src: usize, tag: u64) -> Vec<Complex64> {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.world.plan {
            let plan = plan.clone();
            return self.recv_with_plan(&plan, src, tag);
        }
        let payload = self.receivers[src].recv().expect("sender alive");
        let (got_tag, data) = Self::unframe(payload);
        assert_eq!(
            got_tag, tag,
            "rank {} expected tag {tag} from {src}, got {got_tag}",
            self.rank
        );
        if src != self.rank {
            self.note_clean_recv(src, tag);
        }
        data
    }

    #[cfg(not(feature = "fault-inject"))]
    #[inline]
    fn unframe(p: Payload) -> (u64, Vec<Complex64>) {
        p
    }

    #[cfg(feature = "fault-inject")]
    #[inline]
    fn unframe(p: Payload) -> (u64, Vec<Complex64>) {
        (p.0, p.1)
    }

    /// Receive under a fault plan: validate the checksum, discard
    /// corrupted frames (the retransmission is already on its way), and
    /// bound how long a silent channel is tolerated via
    /// `retry.recv_timeout` × `retry.max_attempts`.
    #[cfg(feature = "fault-inject")]
    fn recv_with_plan(&self, plan: &FaultPlan, src: usize, tag: u64) -> Vec<Complex64> {
        use crossbeam::channel::RecvTimeoutError;
        let mut timeouts = 0u32;
        loop {
            match self.receivers[src].recv_timeout(plan.retry.recv_timeout) {
                Ok((got_tag, data, cksum)) => {
                    if src == self.rank || fault::checksum(&data) == cksum {
                        assert_eq!(
                            got_tag, tag,
                            "rank {} expected tag {tag} from {src}, got {got_tag}",
                            self.rank
                        );
                        if src != self.rank {
                            self.note_clean_recv(src, tag);
                        }
                        return data;
                    }
                    // Corrupted in transit: discard; the sender counted
                    // the fault and is retransmitting.
                }
                Err(RecvTimeoutError::Timeout) => {
                    timeouts += 1;
                    qt_telemetry::counters::add_comm_retry();
                    qt_telemetry::journal::emit(qt_telemetry::EventKind::CommRetransmit {
                        src: self.identity_of(src) as u64,
                        dst: self.identity() as u64,
                        attempt: timeouts as u64,
                    });
                    assert!(
                        timeouts <= plan.retry.max_attempts,
                        "rank {} timed out {timeouts} times waiting for tag {tag} from {src}",
                        self.rank
                    );
                    std::thread::sleep(plan.retry.backoff(timeouts));
                }
                Err(RecvTimeoutError::Disconnected) => panic!("sender alive"),
            }
        }
    }

    /// Elastic blocking receive with a failure detector. Polls the
    /// channel every `live.poll`; while silent it watches `src`'s
    /// liveness epoch and the world's death certificates. Once `src`'s
    /// epoch has not moved for `live.deadline` the peer is declared dead
    /// and the call returns [`CommError::RankDeath`]; an already-filed
    /// certificate (for any rank) aborts immediately so one detection
    /// cascades to every waiting survivor.
    pub fn try_recv(
        &self,
        src: usize,
        tag: u64,
        live: &LivenessConfig,
    ) -> Result<Vec<Complex64>, CommError> {
        use crossbeam::channel::RecvTimeoutError;
        let mut last_epoch = self.epoch_of(src);
        let mut last_progress = Instant::now();
        loop {
            match self.receivers[src].recv_timeout(live.poll) {
                Ok(payload) => {
                    #[cfg(feature = "fault-inject")]
                    let payload = {
                        let (got_tag, data, cksum) = payload;
                        if self.world.plan.is_some()
                            && src != self.rank
                            && fault::checksum(&data) != cksum
                        {
                            // Corrupted in transit: discard and keep
                            // waiting for the retransmission.
                            continue;
                        }
                        (got_tag, data, cksum)
                    };
                    let (got_tag, data) = Self::unframe(payload);
                    assert_eq!(
                        got_tag, tag,
                        "rank {} expected tag {tag} from {src}, got {got_tag}",
                        self.rank
                    );
                    if src != self.rank {
                        self.note_clean_recv(src, tag);
                    }
                    return Ok(data);
                }
                Err(RecvTimeoutError::Timeout) => {
                    qt_telemetry::counters::add_heartbeat_timeout();
                    qt_telemetry::journal::emit(qt_telemetry::EventKind::HeartbeatTimeout {
                        watched: self.identity_of(src) as u64,
                    });
                    // Waiting is progress: keep our own epoch moving so
                    // peers blocked on *us* don't declare us dead.
                    self.heartbeat();
                    if let Some(s) = self.first_dead_excluding(self.rank) {
                        return Err(CommError::RankDeath {
                            rank: self.identity_of(s),
                            epoch: self.epoch_of(s),
                        });
                    }
                    let e = self.epoch_of(src);
                    if e != last_epoch {
                        last_epoch = e;
                        last_progress = Instant::now();
                    } else if last_progress.elapsed() >= live.deadline {
                        self.declare_dead(src);
                        return Err(CommError::RankDeath {
                            rank: self.identity_of(src),
                            epoch: e,
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Unreachable today (all Sender clones live in the
                    // shared world), but a vanished channel is death
                    // evidence all the same.
                    self.declare_dead(src);
                    return Err(CommError::RankDeath {
                        rank: self.identity_of(src),
                        epoch: self.epoch_of(src),
                    });
                }
            }
        }
    }

    /// Non-blocking receive: the next already-delivered message from
    /// `src`, if any. Asserts the tag like [`ThreadComm::recv`] — callers
    /// poll inside a protocol window whose messages all ride one tag, and
    /// per-pair FIFO guarantees nothing else can be pending. Under a fault
    /// plan a corrupted frame is discarded (the retransmission is already
    /// on its way) and the poll reports empty.
    // Without fault injection the `continue` (corrupt-frame discard) is
    // compiled out and the loop body always exits on first pass.
    #[cfg_attr(not(feature = "fault-inject"), allow(clippy::never_loop))]
    pub fn poll_recv(&self, src: usize, tag: u64) -> Option<Vec<Complex64>> {
        loop {
            match self.receivers[src].try_recv() {
                Ok(payload) => {
                    #[cfg(feature = "fault-inject")]
                    let payload = {
                        let (got_tag, data, cksum) = payload;
                        if self.world.plan.is_some()
                            && src != self.rank
                            && fault::checksum(&data) != cksum
                        {
                            continue;
                        }
                        (got_tag, data, cksum)
                    };
                    let (got_tag, data) = Self::unframe(payload);
                    assert_eq!(
                        got_tag, tag,
                        "rank {} polled tag {tag} from {src}, got {got_tag}",
                        self.rank
                    );
                    if src != self.rank {
                        self.note_clean_recv(src, tag);
                    }
                    return Some(data);
                }
                Err(_) => return None,
            }
        }
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.world.barrier.wait();
    }

    /// Liveness-aware barrier. A dead rank never reaches a
    /// [`ThreadComm::barrier`], which would hang every survivor; this
    /// variant records per-rank arrival generations and runs the same
    /// epoch-deadline detector while waiting, so a death surfaces as
    /// [`CommError::RankDeath`] on every survivor instead.
    pub fn try_barrier(&self, live: &LivenessConfig) -> Result<(), CommError> {
        let gen = self.barrier_gen.get() + 1;
        self.barrier_gen.set(gen);
        self.world.arrivals[self.rank].store(gen, Ordering::Release);
        let n = self.world.n;
        let mut last: Vec<(u64, Instant)> =
            (0..n).map(|s| (self.epoch_of(s), Instant::now())).collect();
        loop {
            if (0..n).all(|s| self.world.arrivals[s].load(Ordering::Acquire) >= gen) {
                return Ok(());
            }
            if let Some(s) = self.first_dead_excluding(self.rank) {
                return Err(CommError::RankDeath {
                    rank: self.identity_of(s),
                    epoch: self.epoch_of(s),
                });
            }
            std::thread::sleep(live.poll);
            self.heartbeat();
            for (s, entry) in last.iter_mut().enumerate() {
                if self.world.arrivals[s].load(Ordering::Acquire) >= gen {
                    continue;
                }
                let e = self.epoch_of(s);
                if e != entry.0 {
                    *entry = (e, Instant::now());
                } else if entry.1.elapsed() >= live.deadline {
                    self.declare_dead(s);
                    return Err(CommError::RankDeath {
                        rank: self.identity_of(s),
                        epoch: e,
                    });
                }
            }
        }
    }

    /// Broadcast from `root`: returns the payload on every rank.
    pub fn bcast(&self, root: usize, data: Option<Vec<Complex64>>, tag: u64) -> Vec<Complex64> {
        if self.rank == root {
            let data = data.expect("root must provide data");
            for dst in 0..self.size() {
                if dst != root {
                    self.send(dst, tag, data.clone());
                }
            }
            data
        } else {
            self.recv(root, tag)
        }
    }

    /// All-to-all with variable counts: `sendbufs[dst]` goes to `dst`;
    /// returns `recvbufs[src]`.
    pub fn alltoallv(&self, sendbufs: Vec<Vec<Complex64>>, tag: u64) -> Vec<Vec<Complex64>> {
        assert_eq!(sendbufs.len(), self.size());
        for (dst, buf) in sendbufs.into_iter().enumerate() {
            self.send(dst, tag, buf);
        }
        (0..self.size()).map(|src| self.recv(src, tag)).collect()
    }

    /// Element-wise sum-reduction to `root`; returns `Some(total)` on root.
    pub fn reduce_sum(
        &self,
        root: usize,
        mut data: Vec<Complex64>,
        tag: u64,
    ) -> Option<Vec<Complex64>> {
        if self.rank == root {
            for src in 0..self.size() {
                if src == root {
                    continue;
                }
                let part = self.recv(src, tag);
                assert_eq!(part.len(), data.len());
                for (d, p) in data.iter_mut().zip(part) {
                    *d += p;
                }
            }
            Some(data)
        } else {
            self.send(root, tag, data);
            None
        }
    }

    /// Element-wise sum-reduction, result on every rank.
    pub fn allreduce_sum(&self, data: Vec<Complex64>, tag: u64) -> Vec<Complex64> {
        let n = data.len();
        match self.reduce_sum(0, data, tag) {
            Some(total) => self.bcast(0, Some(total), tag.wrapping_add(1)),
            None => {
                let out = self.bcast(0, None, tag.wrapping_add(1));
                assert_eq!(out.len(), n);
                out
            }
        }
    }

    /// Total bytes this rank has sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.world.sent[self.rank].load(Ordering::Relaxed)
    }

    /// Total bytes this rank has received so far.
    pub fn bytes_received(&self) -> u64 {
        self.world.received[self.rank].load(Ordering::Relaxed)
    }

    /// Total bytes moved across the whole world (sum of sends).
    pub fn world_bytes(&self) -> u64 {
        self.world
            .sent
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }
}

/// Run `f` on `n` ranks (one OS thread each) and collect the results in
/// rank order.
pub fn run_world<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadComm) -> T + Sync,
{
    run_comms(ThreadComm::world(n), f)
}

/// Run `f` on `n` ranks under `plan`'s deterministic fault schedule. The
/// stalled rank (if any) sleeps `plan.stall` before starting its work, so
/// every peer's receive path exercises the timeout/backoff protocol.
#[cfg(feature = "fault-inject")]
pub fn run_world_with_faults<T, F>(n: usize, plan: FaultPlan, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadComm) -> T + Sync,
{
    let stalled = plan.stalled_rank;
    let stall = plan.stall;
    let comms = ThreadComm::world_with_faults(n, plan);
    run_comms(comms, move |comm| {
        if stalled == Some(comm.rank()) {
            std::thread::sleep(stall);
        }
        f(comm)
    })
}

/// Run a fallible closure on a survivor world (slot `i` has original
/// identity `identity[i]`) and collect each rank's outcome — typed
/// errors, not panics, so the supervision loop can inspect deaths.
pub fn run_elastic_world<T, F>(identity: Vec<usize>, f: F) -> Vec<Result<T, CommError>>
where
    T: Send,
    F: Fn(ThreadComm) -> Result<T, CommError> + Sync,
{
    run_comms(ThreadComm::elastic_world(identity), f)
}

/// [`run_elastic_world`] under a fault plan: kill schedules (matched by
/// original identity) and the message-level fault protocol both apply.
#[cfg(feature = "fault-inject")]
pub fn run_elastic_world_with_faults<T, F>(
    identity: Vec<usize>,
    plan: FaultPlan,
    f: F,
) -> Vec<Result<T, CommError>>
where
    T: Send,
    F: Fn(ThreadComm) -> Result<T, CommError> + Sync,
{
    let stalled = plan.stalled_rank;
    let stall = plan.stall;
    let comms = ThreadComm::elastic_world_with_faults(identity, plan);
    run_comms(comms, move |comm| {
        if stalled == Some(comm.identity()) {
            std::thread::sleep(stall);
        }
        f(comm)
    })
}

fn run_comms<T, F>(comms: Vec<ThreadComm>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadComm) -> T + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                scope.spawn(|| {
                    // Journal attribution: every event this rank thread
                    // emits carries its original (pre-shrink) identity.
                    qt_telemetry::journal::set_thread_rank(comm.identity() as i64);
                    let out = f(comm);
                    qt_telemetry::journal::set_thread_rank(-1);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_linalg::c64;

    #[test]
    fn point_to_point_roundtrip() {
        let out = run_world(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![c64(1.0, 2.0), c64(3.0, 4.0)]);
                0.0
            } else {
                let data = comm.recv(0, 7);
                data[1].re
            }
        });
        assert_eq!(out[1], 3.0);
    }

    #[test]
    fn byte_accounting() {
        let out = run_world(3, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![Complex64::ZERO; 10]);
                comm.send(2, 0, vec![Complex64::ZERO; 5]);
            } else {
                comm.recv(0, 0);
            }
            comm.barrier();
            (comm.bytes_sent(), comm.bytes_received(), comm.world_bytes())
        });
        assert_eq!(out[0].0, 15 * 16);
        assert_eq!(out[1].1, 10 * 16);
        assert_eq!(out[2].1, 5 * 16);
        assert!(out.iter().all(|&(_, _, w)| w == 15 * 16));
    }

    #[test]
    fn self_send_is_free() {
        let out = run_world(1, |comm| {
            comm.send(0, 3, vec![Complex64::ZERO; 100]);
            let d = comm.recv(0, 3);
            (d.len(), comm.world_bytes())
        });
        assert_eq!(out[0], (100, 0));
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let out = run_world(4, |comm| {
            let data = if comm.rank() == 2 {
                Some(vec![c64(9.0, 0.0); 8])
            } else {
                None
            };
            let got = comm.bcast(2, data, 11);
            got[0].re
        });
        assert!(out.iter().all(|&v| v == 9.0));
    }

    #[test]
    fn alltoallv_exchanges_rank_stamped_buffers() {
        let out = run_world(3, |comm| {
            let sendbufs: Vec<Vec<Complex64>> = (0..3)
                .map(|dst| vec![c64(comm.rank() as f64, dst as f64); comm.rank() + 1])
                .collect();
            let recv = comm.alltoallv(sendbufs, 21);
            // recv[src] came from src, stamped (src, my_rank), len src+1.
            (0..3).all(|src| {
                recv[src].len() == src + 1 && recv[src][0] == c64(src as f64, comm.rank() as f64)
            })
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn reductions_sum() {
        let out = run_world(4, |comm| {
            let data = vec![c64(1.0, comm.rank() as f64); 2];
            let total = comm.allreduce_sum(data, 31);
            total[0]
        });
        for v in out {
            assert_eq!(v, c64(4.0, 6.0)); // 1+1+1+1, 0+1+2+3
        }
    }

    #[test]
    fn ring_pipeline() {
        // Each rank forwards an accumulating token around the ring twice —
        // exercises interleaved send/recv across many ranks.
        let n = 8;
        let out = run_world(n, |comm| {
            let rank = comm.rank();
            let next = (rank + 1) % n;
            let prev = (rank + n - 1) % n;
            let mut value = 0.0;
            for lap in 0..2u64 {
                if rank == 0 {
                    comm.send(next, lap, vec![c64(value + 1.0, 0.0)]);
                    value = comm.recv(prev, lap)[0].re;
                } else {
                    let got = comm.recv(prev, lap)[0].re;
                    value = got;
                    comm.send(next, lap, vec![c64(got + 1.0, 0.0)]);
                }
            }
            value
        });
        // After two laps the token has been incremented 2n times; rank 0
        // sees the full count.
        assert_eq!(out[0], (2 * n) as f64);
    }

    #[test]
    fn world_of_one_runs_collectives() {
        let out = run_world(1, |comm| {
            let b = comm.bcast(0, Some(vec![c64(5.0, 0.0)]), 1);
            let r = comm.allreduce_sum(vec![c64(2.0, 0.0)], 2);
            let a = comm.alltoallv(vec![vec![c64(3.0, 0.0)]], 3);
            comm.barrier();
            b[0].re + r[0].re + a[0][0].re
        });
        assert_eq!(out[0], 10.0);
        // No network bytes for a single rank.
    }

    #[test]
    fn elastic_world_roundtrip_keeps_identities() {
        // A 2-slot survivor world standing in for original ranks {0, 2}.
        let live = LivenessConfig::default();
        let out = run_elastic_world(vec![0, 2], move |comm| {
            assert_eq!(comm.identity_of(1), 2);
            if comm.rank() == 0 {
                comm.try_send(1, 4, vec![c64(8.0, 0.0)])?;
                comm.try_barrier(&live)?;
                Ok(comm.identity())
            } else {
                let d = comm.try_recv(0, 4, &live)?;
                comm.try_barrier(&live)?;
                Ok(d[0].re as usize + comm.identity())
            }
        });
        assert_eq!(out[0], Ok(0));
        assert_eq!(out[1], Ok(10)); // 8.0 payload + identity 2
    }

    #[test]
    fn silent_peer_is_declared_dead_by_deadline() {
        let live = LivenessConfig {
            poll: Duration::from_millis(1),
            deadline: Duration::from_millis(30),
        };
        let out = run_elastic_world(vec![0, 1], move |comm| {
            if comm.rank() == 0 {
                // Rank 1 never sends and never heartbeats: the detector
                // must convert the silence into a typed death.
                comm.try_recv(1, 9, &live).map(|_| ())
            } else {
                std::thread::sleep(Duration::from_millis(120));
                Ok(())
            }
        });
        assert_eq!(
            out[0],
            Err(CommError::RankDeath { rank: 1, epoch: 0 }),
            "silence past the deadline must surface as RankDeath"
        );
        assert_eq!(out[1], Ok(()));
    }

    #[test]
    fn death_certificate_cascades_through_try_barrier() {
        // Rank 2 dies silently; rank 0 detects it in try_recv, and the
        // shared certificate aborts rank 1's barrier wait too.
        let live = LivenessConfig {
            poll: Duration::from_millis(1),
            deadline: Duration::from_millis(30),
        };
        let out = run_elastic_world(vec![0, 1, 2], move |comm| match comm.rank() {
            0 => comm.try_recv(2, 5, &live).map(|_| ()),
            1 => comm.try_barrier(&live),
            _ => {
                std::thread::sleep(Duration::from_millis(150));
                Ok(())
            }
        });
        assert_eq!(out[0].as_ref().unwrap_err().suspect(), 2);
        assert_eq!(out[1].as_ref().unwrap_err().suspect(), 2);
    }

    #[test]
    fn heartbeats_keep_a_computing_rank_alive() {
        let live = LivenessConfig {
            poll: Duration::from_millis(1),
            deadline: Duration::from_millis(40),
        };
        let out = run_elastic_world(vec![0, 1], move |comm| {
            if comm.rank() == 0 {
                comm.try_recv(1, 3, &live).map(|d| d[0].re)
            } else {
                // "Compute" well past the deadline, but heartbeat while
                // doing so — the peer must keep waiting.
                for _ in 0..10 {
                    std::thread::sleep(Duration::from_millis(10));
                    comm.heartbeat();
                }
                comm.try_send(0, 3, vec![c64(7.0, 0.0)])?;
                Ok(0.0)
            }
        });
        assert_eq!(out[0], Ok(7.0));
    }

    #[test]
    fn ordered_delivery_per_pair() {
        let out = run_world(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..50u64 {
                    comm.send(1, i, vec![c64(i as f64, 0.0)]);
                }
                true
            } else {
                (0..50u64).all(|i| comm.recv(0, i)[0].re == i as f64)
            }
        });
        assert!(out[1]);
    }
}
