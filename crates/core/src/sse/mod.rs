//! Scattering self-energies (SSE): Eqs. (3)–(5), the computational
//! bottleneck of the simulation (§2: up to 95% of total time before the
//! paper's transformations).
//!
//! Three implementations of the Σ≷ kernel coexist, all computing *exactly*
//! the same contraction (unit tests enforce bit-level agreement up to
//! floating-point reassociation):
//!
//! * [`mod@reference`] — the untransformed 8-D loop nest of Fig. 5/8, with a
//!   fresh allocation per small operation (the "Python" row of Table 7);
//! * [`omen`] — the production-OMEN structure: `(qz, ω)` rounds with
//!   preallocated work buffers but still one small GEMM per point;
//! * [`dace`] — the transformed kernel of Fig. 12: redundancy removal,
//!   `[a, kz, E]` data layout, and wide batched GEMMs over `(kz, E)` and
//!   the `ω` window.
//!
//! The Π≷ kernel (Eqs. 4–5) has reference and transformed variants as well.

pub mod dace;
pub mod omen;
pub mod reference;

use crate::device::Device;
use crate::gf::{ElectronSelfEnergy, PhononGf, PhononSelfEnergy};
use crate::grids::Grids;
use crate::params::{SimParams, N3D};
use qt_linalg::{Complex64, Tensor};

/// Which implementation of the SSE kernels to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SseVariant {
    /// Untransformed reference (Fig. 8).
    Reference,
    /// OMEN-style production loop structure.
    Omen,
    /// Data-centric transformed kernel (Fig. 12).
    Dace,
}

/// Inputs shared by all SSE kernels.
pub struct SseInputs<'a> {
    pub dev: &'a Device,
    pub p: &'a SimParams,
    pub grids: &'a Grids,
    /// Hamiltonian derivatives `∇H[a, slot, i, :, :]`.
    pub dh: &'a Tensor,
    /// Electron Green's functions `[Nkz, NE, NA, Norb, Norb]`.
    pub g_lesser: &'a Tensor,
    pub g_greater: &'a Tensor,
    /// Preprocessed phonon combination `D̃≷[qz, ω, a, slot, i, j]`
    /// (see [`preprocess_d`]).
    pub d_lesser_pre: &'a Tensor,
    pub d_greater_pre: &'a Tensor,
}

/// Energy-integration prefactor of the Σ kernel (`∫dω/2π` discretized, with
/// the momentum average over `Nqz`).
pub fn sigma_scale(p: &SimParams, grids: &Grids) -> f64 {
    grids.de / (2.0 * std::f64::consts::PI * p.nqz as f64)
}

/// Energy-integration prefactor of the Π kernel.
pub fn pi_scale(p: &SimParams, grids: &Grids) -> f64 {
    grids.de / (2.0 * std::f64::consts::PI * p.nkz as f64)
}

/// Build the phonon tensor combination entering Eq. (3):
/// `D̃_ab^{ij} = D_ba^{ij} − D_bb^{ij} − D_aa^{ij} + D_ab^{ij}`,
/// for every neighbor slot. Pairs whose reverse slot is missing use the
/// anti-Hermitian image `D_ba = −(D_ab)†`.
pub fn preprocess_d(dev: &Device, p: &SimParams, ph: &PhononGf) -> (Tensor, Tensor) {
    let _span = qt_telemetry::Span::enter_global("sse/preprocess_d");
    let shape = [p.nqz, p.nw, p.na, p.nb, N3D, N3D];
    let mut out_l = Tensor::zeros(&shape);
    let mut out_g = Tensor::zeros(&shape);
    for (src, dst) in [(&ph.d_lesser, &mut out_l), (&ph.d_greater, &mut out_g)] {
        for q in 0..p.nqz {
            for w in 0..p.nw {
                for a in 0..p.na {
                    for slot in 0..p.nb {
                        let Some(b) = dev.neighbor(a, slot) else {
                            continue;
                        };
                        let d_ab = src.inner(&[q, w, a, slot]);
                        let d_aa = src.inner(&[q, w, a, p.nb]);
                        let d_bb = src.inner(&[q, w, b, p.nb]);
                        let back = (0..p.nb).find(|&s| dev.neighbor(b, s) == Some(a));
                        let mut d_ba = [Complex64::ZERO; N3D * N3D];
                        match back {
                            Some(s) => d_ba.copy_from_slice(src.inner(&[q, w, b, s])),
                            None => {
                                // Anti-Hermitian image of the pair block:
                                // −(d_ab)†, built without heap temporaries.
                                for i in 0..N3D {
                                    for j in 0..N3D {
                                        d_ba[i * N3D + j] = -d_ab[j * N3D + i].conj();
                                    }
                                }
                            }
                        };
                        let dst_slice = dst.inner_mut(&[q, w, a, slot]);
                        for idx in 0..N3D * N3D {
                            dst_slice[idx] = d_ba[idx] - d_bb[idx] - d_aa[idx] + d_ab[idx];
                        }
                    }
                }
            }
        }
    }
    (out_l, out_g)
}

/// Enforce the dissipative structure of the electron self-energies:
/// exact lesser/greater functions satisfy `−iΣ< ⪰ 0` and `iΣ> ⪰ 0`
/// (which makes `Γ = i(Σᴿ − Σᴬ) = i(Σ< − Σ>) ⪰ 0` under the paper's
/// `Σᴿ ≈ (Σ> − Σ<)/2`). The truncated kernel (diagonal blocks only,
/// finite grids) can leak small negative eigenvalues that act as *gain*
/// and destabilize the Born iteration; each atom block is therefore
/// projected onto the PSD cone — the standard positivity enforcement of
/// self-consistent Born solvers.
pub fn stabilize_sigma(sigma: &mut ElectronSelfEnergy, p: &SimParams) {
    use qt_linalg::psd_project_scaled_in_place;
    let no = p.norb;
    // (tensor, factor ζ): block = ζ · PSD(ζ̄·block) with ζ = i for lesser
    // (−iΣ< PSD) and ζ = −i for greater (iΣ> PSD). The projection runs in
    // place on each atom block with pooled temporaries, so the stabilizer
    // stays off the allocator in steady state.
    for (t, zeta) in [
        (&mut sigma.lesser, Complex64::I),
        (&mut sigma.greater, -Complex64::I),
    ] {
        for k in 0..p.nkz {
            for e in 0..p.ne {
                for a in 0..p.na {
                    psd_project_scaled_in_place(no, zeta, t.inner_mut(&[k, e, a]));
                }
            }
        }
    }
}

/// Same positivity enforcement for the phonon self-energies
/// (`iΠ< ⪰ 0`, `iΠ> ⪰ 0` with the boson sign convention of
/// [`crate::boundary::phonon_lesser_greater`]). Applied to the diagonal
/// slots, the ones injected into the phonon RGF.
pub fn stabilize_pi(pi: &mut PhononSelfEnergy, p: &SimParams) {
    use qt_linalg::psd_project_scaled_in_place;
    for t in [&mut pi.lesser, &mut pi.greater] {
        for q in 0..p.nqz {
            for w in 0..p.nw {
                for a in 0..p.na {
                    psd_project_scaled_in_place(N3D, Complex64::I, t.inner_mut(&[q, w, a, p.nb]));
                }
            }
        }
    }
}

/// Compute Σ≷ with the selected variant.
pub fn sigma(inputs: &SseInputs<'_>, variant: SseVariant) -> ElectronSelfEnergy {
    let _span = qt_telemetry::Span::enter_global(match variant {
        SseVariant::Reference => "sse/sigma/reference",
        SseVariant::Omen => "sse/sigma/omen",
        SseVariant::Dace => "sse/sigma/dace",
    });
    match variant {
        SseVariant::Reference => reference::sigma(inputs),
        SseVariant::Omen => omen::sigma(inputs),
        SseVariant::Dace => dace::sigma(inputs),
    }
}

/// Compute Π≷ with the selected variant (`Omen` aliases `Reference`; the
/// paper's production code restructures only its communication, which lives
/// in `qt-dist`).
pub fn pi(inputs: &SseInputs<'_>, variant: SseVariant) -> PhononSelfEnergy {
    let _span = qt_telemetry::Span::enter_global(match variant {
        SseVariant::Reference | SseVariant::Omen => "sse/pi/reference",
        SseVariant::Dace => "sse/pi/dace",
    });
    match variant {
        SseVariant::Reference | SseVariant::Omen => reference::pi(inputs),
        SseVariant::Dace => dace::pi(inputs),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::gf::{self, GfConfig};
    use crate::hamiltonian::{ElectronModel, PhononModel};

    pub struct Fixture {
        pub p: SimParams,
        pub dev: Device,
        pub grids: Grids,
        pub dh: Tensor,
        pub g_lesser: Tensor,
        pub g_greater: Tensor,
        pub d_lesser_pre: Tensor,
        pub d_greater_pre: Tensor,
    }

    impl Fixture {
        pub fn inputs(&self) -> SseInputs<'_> {
            SseInputs {
                dev: &self.dev,
                p: &self.p,
                grids: &self.grids,
                dh: &self.dh,
                g_lesser: &self.g_lesser,
                g_greater: &self.g_greater,
                d_lesser_pre: &self.d_lesser_pre,
                d_greater_pre: &self.d_greater_pre,
            }
        }
    }

    /// Build a small but fully physical fixture by running one GF phase.
    pub fn fixture() -> Fixture {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 8,
            nw: 2,
            na: 8,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        let cfg = GfConfig::default();
        let esse = gf::ElectronSelfEnergy::zeros(&p);
        let psse = gf::PhononSelfEnergy::zeros(&p);
        let egf = gf::electron_gf_phase(&dev, &em, &p, &grids, &esse, &cfg).unwrap();
        let pgf = gf::phonon_gf_phase(&dev, &pm, &p, &grids, &psse, &cfg).unwrap();
        let (dl, dg) = preprocess_d(&dev, &p, &pgf);
        Fixture {
            dh: em.dh_tensor(&dev),
            g_lesser: egf.g_lesser,
            g_greater: egf.g_greater,
            d_lesser_pre: dl,
            d_greater_pre: dg,
            p,
            dev,
            grids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::fixture;
    use super::*;
    use qt_linalg::Matrix;

    #[test]
    fn variants_agree_on_sigma() {
        let fx = fixture();
        let inputs = fx.inputs();
        let r = sigma(&inputs, SseVariant::Reference);
        let o = sigma(&inputs, SseVariant::Omen);
        let d = sigma(&inputs, SseVariant::Dace);
        let ls = r.lesser.norm().max(1e-30);
        let gs = r.greater.norm().max(1e-30);
        assert!(
            r.lesser.max_abs_diff(&o.lesser) / ls < 1e-12,
            "omen vs reference (lesser)"
        );
        assert!(
            r.lesser.max_abs_diff(&d.lesser) / ls < 1e-12,
            "dace vs reference (lesser): {}",
            r.lesser.max_abs_diff(&d.lesser) / ls
        );
        assert!(r.greater.max_abs_diff(&o.greater) / gs < 1e-12);
        assert!(r.greater.max_abs_diff(&d.greater) / gs < 1e-12);
        // The kernel actually produces something.
        assert!(r.lesser.norm() > 1e-20, "Σ< must be non-zero");
    }

    #[test]
    fn variants_agree_on_pi() {
        let fx = fixture();
        let inputs = fx.inputs();
        let r = pi(&inputs, SseVariant::Reference);
        let d = pi(&inputs, SseVariant::Dace);
        let ls = r.lesser.norm().max(1e-30);
        let gs = r.greater.norm().max(1e-30);
        assert!(r.lesser.max_abs_diff(&d.lesser) / ls < 1e-12);
        assert!(r.greater.max_abs_diff(&d.greater) / gs < 1e-12);
        assert!(r.lesser.norm() > 1e-20);
    }

    #[test]
    fn dace_variant_does_less_work() {
        let fx = fixture();
        let inputs = fx.inputs();
        let (_, flops_omen) = qt_linalg::count_flops(|| sigma(&inputs, SseVariant::Omen));
        let (_, flops_dace) = qt_linalg::count_flops(|| sigma(&inputs, SseVariant::Dace));
        // Redundancy removal cuts the ∇HG stage by ~Nqz·Nω; total
        // reduction approaches 2× for large Nqz·Nω (Table 3). At the tiny
        // fixture it must still be strictly less.
        assert!(
            flops_dace < flops_omen,
            "dace {flops_dace} must be below omen {flops_omen}"
        );
    }

    #[test]
    fn zero_phonons_give_zero_sigma() {
        let mut fx = fixture();
        fx.d_lesser_pre.fill_zero();
        fx.d_greater_pre.fill_zero();
        let inputs = fx.inputs();
        for v in [SseVariant::Reference, SseVariant::Omen, SseVariant::Dace] {
            let s = sigma(&inputs, v);
            assert!(s.lesser.norm() < 1e-30);
            assert!(s.greater.norm() < 1e-30);
        }
    }

    #[test]
    fn stabilization_makes_blocks_anti_hermitian() {
        let fx = fixture();
        let inputs = fx.inputs();
        let mut s = sigma(&inputs, SseVariant::Dace);
        stabilize_sigma(&mut s, &fx.p);
        for k in 0..fx.p.nkz {
            for e in 0..fx.p.ne {
                for a in 0..fx.p.na {
                    let blk =
                        Matrix::from_vec(fx.p.norb, fx.p.norb, s.lesser.inner(&[k, e, a]).to_vec());
                    let mut sum = blk.clone();
                    sum += &blk.dagger();
                    assert!(sum.max_abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn preprocess_d_antisymmetry_structure() {
        // D̃ vanishes when all four D blocks are equal (uniform field).
        let fx = fixture();
        let mut ph = crate::gf::PhononGf {
            d_lesser: Tensor::zeros(&[fx.p.nqz, fx.p.nw, fx.p.na, fx.p.nb + 1, N3D, N3D]),
            d_greater: Tensor::zeros(&[fx.p.nqz, fx.p.nw, fx.p.na, fx.p.nb + 1, N3D, N3D]),
            energy_current: 0.0,
            coverage: crate::health::CoverageReport::full(fx.p.nqz * fx.p.nw),
        };
        // Fill every block with the same anti-Hermitian matrix.
        let blk = [
            qt_linalg::c64(0.0, 1.0),
            qt_linalg::c64(0.5, 0.25),
            qt_linalg::c64(0.1, -0.3),
            qt_linalg::c64(-0.5, 0.25),
            qt_linalg::c64(0.0, 2.0),
            qt_linalg::c64(0.2, 0.1),
            qt_linalg::c64(-0.1, -0.3),
            qt_linalg::c64(-0.2, 0.1),
            qt_linalg::c64(0.0, 0.7),
        ];
        for t in [&mut ph.d_lesser, &mut ph.d_greater] {
            for q in 0..fx.p.nqz {
                for w in 0..fx.p.nw {
                    for a in 0..fx.p.na {
                        for s in 0..=fx.p.nb {
                            t.inner_mut(&[q, w, a, s]).copy_from_slice(&blk);
                        }
                    }
                }
            }
        }
        let (dl, _) = preprocess_d(&fx.dev, &fx.p, &ph);
        // D_ba − D_bb − D_aa + D_ab = M − M − M + M = 0 wherever the
        // reverse slot exists.
        for a in 0..fx.p.na {
            for s in 0..fx.p.nb {
                let Some(b) = fx.dev.neighbor(a, s) else {
                    continue;
                };
                if (0..fx.p.nb).any(|r| fx.dev.neighbor(b, r) == Some(a)) {
                    let v = dl.inner(&[0, 0, a, s]);
                    assert!(v.iter().all(|z| z.abs() < 1e-14));
                }
            }
        }
    }
}
