//! Quickstart: run a small dissipative quantum-transport simulation
//! end-to-end — build a device, iterate the GF ↔ SSE loop to convergence
//! (Fig. 2), and print current and convergence history.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dace_omen::prelude::*;

fn main() {
    // A small FinFET slice: 32 atoms in 8 transport slabs, 2 orbitals per
    // atom, 3 momentum points, 24 energies, 4 phonon frequencies.
    let params = SimParams {
        nkz: 3,
        nqz: 3,
        ne: 24,
        nw: 4,
        na: 32,
        nb: 4,
        norb: 2,
        bnum: 8,
    };
    params.validate().expect("parameters consistent");
    println!("== dissipative NEGF quickstart ==");
    println!(
        "device: NA={} atoms, {} slabs, Norb={}, grid {}x{} (kz x E), {} phonon frequencies",
        params.na, params.bnum, params.norb, params.nkz, params.ne, params.nw
    );

    let sim = Simulation::new(params, -1.2, 1.2);
    let mut cfg = ScfConfig {
        max_iterations: 35,
        tolerance: 1e-6,
        variant: SseVariant::Dace,
        ..Default::default()
    };
    cfg.gf.contacts = Contacts {
        mu_left: 0.25,
        mu_right: -0.25,
        temperature: 300.0,
        ..Contacts::default()
    };

    let (result, flop) = qt_linalg::count_flops(|| run_scf(&sim, &cfg).expect("SCF solve"));

    println!(
        "\nself-consistent Born loop ({:?} SSE kernel):",
        cfg.variant
    );
    println!(
        "  converged: {} after {} iterations ({:.2} Gflop total)",
        result.converged,
        result.iterations,
        flop as f64 / 1e9
    );
    for (i, (res, cur)) in result
        .residuals
        .iter()
        .zip(result.current_history.iter().skip(1))
        .enumerate()
    {
        println!("  iter {:>2}: |dG|/|G| = {res:9.3e}   I = {cur:.6}", i + 2);
    }
    println!(
        "\nballistic current (iter 1): {:.6}",
        result.current_history[0]
    );
    println!(
        "dissipative current:        {:.6}",
        result.current_history.last().unwrap()
    );

    // Observables.
    let power =
        observables::dissipated_power_per_atom(&sim.p, &sim.grids, &result.sigma, &result.electron);
    let total: f64 = power.iter().sum();
    println!("total dissipated power: {total:.3e} (arb. units)");
    let dens = observables::electron_density(&sim.p, &sim.grids, &result.electron);
    println!(
        "electron density range: [{:.4}, {:.4}]",
        dens.iter().cloned().fold(f64::INFINITY, f64::min),
        dens.iter().cloned().fold(0.0, f64::max)
    );
}
