//! Property tests for the weighted partitioner behind adaptive tiling.
//!
//! Three invariants make cost-driven re-tiling safe to run every SCF
//! iteration:
//!
//! 1. **Exact partition** — every work unit lands on exactly one rank in
//!    `0..parts`, for any weight vector (including zeros, NaNs, and
//!    negatives, which the partitioner treats as weightless).
//! 2. **LPT bound** — `max_load ≤ total/parts + max_weight`, the list
//!    scheduling guarantee; boundary refinement may only improve it.
//! 3. **Determinism** — the assignment is a pure function of
//!    `(weights, parts)`: the same inputs re-partition identically, so a
//!    re-tiling decision replays bit-for-bit across runs.

use proptest::prelude::*;
use qt_dist::decomp::partition_weighted;

/// Seeded weight vector: deterministic pseudo-random positive weights
/// with an occasional zero / non-finite entry mixed in.
fn weights_from(seed: u64, n: usize) -> Vec<f64> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match (s >> 33) % 16 {
                0 => 0.0,
                1 => f64::NAN,
                2 => -3.0,
                _ => 1.0 + ((s >> 40) % 1000) as f64 / 10.0,
            }
        })
        .collect()
}

fn sane(w: f64) -> f64 {
    if w.is_finite() && w > 0.0 {
        w
    } else {
        0.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weighted_partition_is_exact(
        seed in 0u64..1u64 << 32,
        n in 0usize..48,
        parts in 1usize..12,
    ) {
        let weights = weights_from(seed, n);
        let owner = partition_weighted(&weights, parts);
        prop_assert_eq!(owner.len(), n);
        prop_assert!(owner.iter().all(|&r| r < parts), "owner out of range: {:?}", owner);
    }

    #[test]
    fn weighted_partition_respects_lpt_bound(
        seed in 0u64..1u64 << 32,
        n in 1usize..48,
        parts in 1usize..12,
    ) {
        let weights = weights_from(seed, n);
        let owner = partition_weighted(&weights, parts);
        let mut load = vec![0.0f64; parts];
        for (u, &r) in owner.iter().enumerate() {
            load[r] += sane(weights[u]);
        }
        let max_load = load.iter().cloned().fold(0.0, f64::max);
        let total: f64 = weights.iter().cloned().map(sane).sum();
        let max_w = weights.iter().cloned().map(sane).fold(0.0, f64::max);
        prop_assert!(
            max_load <= total / parts as f64 + max_w + 1e-9,
            "LPT bound violated: max_load {max_load}, total {total}, parts {parts}, max_w {max_w}"
        );
    }

    #[test]
    fn weighted_partition_is_deterministic(
        seed in 0u64..1u64 << 32,
        n in 0usize..48,
        parts in 1usize..12,
    ) {
        let weights = weights_from(seed, n);
        let a = partition_weighted(&weights, parts);
        let b = partition_weighted(&weights, parts);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn equal_weights_spread_across_all_parts() {
    // With n ≥ parts equal weights nobody idles: refinement cannot beat
    // the uniform spread, and ties break toward low rank ids.
    let owner = partition_weighted(&[2.0; 8], 4);
    let mut counts = [0usize; 4];
    for &r in &owner {
        counts[r] += 1;
    }
    assert_eq!(counts, [2, 2, 2, 2]);
}
